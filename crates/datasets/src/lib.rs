//! # cora-datasets
//!
//! Synthetic sequence-length workloads matching the NLP datasets of the
//! CoRa evaluation (Table 3). The experiments consume only the multiset of
//! sequence lengths in a mini-batch, so we model each dataset as a
//! power-transformed uniform distribution on `[min, max]` whose mean is
//! matched *exactly* to the paper's reported mean: with `U ~ Uniform(0,1)`
//! and `c = (max - mean)/(mean - min)`, the length `min + (max-min)·U^c`
//! has expectation `mean`. Sampling is deterministic per (dataset, seed).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight datasets of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// RACE reading comprehension (80 / 364 / 512).
    Race,
    /// English Wikipedia, max length 512 (12 / 371 / 512).
    Wiki512,
    /// SQuAD v2.0 (39 / 192 / 384).
    Squad,
    /// English Wikipedia, max length 128 (14 / 117 / 128).
    Wiki128,
    /// MNLI (9 / 43 / 128).
    Mnli,
    /// XNLI (9 / 70 / 128).
    Xnli,
    /// MRPC (21 / 59 / 102).
    Mrpc,
    /// CoLA (6 / 13 / 37).
    Cola,
}

/// All datasets, in the paper's (descending mean length) order.
pub const ALL_DATASETS: [Dataset; 8] = [
    Dataset::Race,
    Dataset::Wiki512,
    Dataset::Squad,
    Dataset::Wiki128,
    Dataset::Mnli,
    Dataset::Xnli,
    Dataset::Mrpc,
    Dataset::Cola,
];

impl Dataset {
    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Race => "RACE",
            Dataset::Wiki512 => "Wiki512",
            Dataset::Squad => "SQuAD",
            Dataset::Wiki128 => "Wiki128",
            Dataset::Mnli => "MNLI",
            Dataset::Xnli => "XNLI",
            Dataset::Mrpc => "MRPC",
            Dataset::Cola => "CoLA",
        }
    }

    /// `(min, mean, max)` sequence lengths from Table 3.
    pub fn stats(self) -> (usize, usize, usize) {
        match self {
            Dataset::Race => (80, 364, 512),
            Dataset::Wiki512 => (12, 371, 512),
            Dataset::Squad => (39, 192, 384),
            Dataset::Wiki128 => (14, 117, 128),
            Dataset::Mnli => (9, 43, 128),
            Dataset::Xnli => (9, 70, 128),
            Dataset::Mrpc => (21, 59, 102),
            Dataset::Cola => (6, 13, 37),
        }
    }

    /// The model's maximum sequence length for this dataset (the padding
    /// target of the fully padded dense baselines).
    pub fn max_len(self) -> usize {
        self.stats().2
    }

    /// Samples `n` sequence lengths deterministically.
    pub fn sample_lengths(self, n: usize, seed: u64) -> Vec<usize> {
        let (min, mean, max) = self.stats();
        let (minf, meanf, maxf) = (min as f64, mean as f64, max as f64);
        // c chosen so E[min + (max-min) U^c] = mean.
        let c = (maxf - meanf) / (meanf - minf);
        let mut rng =
            StdRng::seed_from_u64(seed ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>();
                let l = minf + (maxf - minf) * u.powf(c);
                (l.round() as usize).clamp(min, max)
            })
            .collect()
    }

    /// Samples a batch and sorts it descending — the order CoRa's
    /// transformer implementation uses so heavy thread blocks schedule
    /// first (§D.2), and the order micro-batching requires (Fig. 26).
    pub fn sample_batch_sorted(self, n: usize, seed: u64) -> Vec<usize> {
        let mut lens = self.sample_lengths(n, seed);
        lens.sort_unstable_by(|a, b| b.cmp(a));
        lens
    }
}

/// Splits a (sorted) batch into micro-batches of size `micro`, each padded
/// to its own maximum (the TF-UB / PT-UB execution mode of §D.8).
pub fn micro_batches(lens: &[usize], micro: usize) -> Vec<Vec<usize>> {
    assert!(micro > 0, "micro-batch size must be positive");
    lens.chunks(micro).map(|c| c.to_vec()).collect()
}

/// Adds *bulk padding*: appends one virtual sequence so the total length
/// is a multiple of `multiple` (§7.2's fused-linear-operator padding).
/// Returns the padded total.
pub fn bulk_pad_total(lens: &[usize], multiple: usize) -> usize {
    assert!(multiple > 0, "bulk padding multiple must be positive");
    let total: usize = lens.iter().sum();
    total.div_ceil(multiple) * multiple
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_respect_support() {
        for ds in ALL_DATASETS {
            let (min, _, max) = ds.stats();
            let lens = ds.sample_lengths(512, 7);
            assert!(lens.iter().all(|&l| l >= min && l <= max), "{ds:?}");
        }
    }

    #[test]
    fn sample_mean_tracks_paper_mean() {
        for ds in ALL_DATASETS {
            let (_, mean, max) = ds.stats();
            let lens = ds.sample_lengths(20_000, 42);
            let got = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
            let tol = (max as f64) * 0.03 + 2.0;
            assert!(
                (got - mean as f64).abs() < tol,
                "{ds:?}: sampled mean {got:.1} vs paper {mean} (tol {tol:.1})"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = Dataset::Mnli.sample_lengths(64, 3);
        let b = Dataset::Mnli.sample_lengths(64, 3);
        let c = Dataset::Mnli.sample_lengths(64, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_batches_descend() {
        let lens = Dataset::Race.sample_batch_sorted(128, 1);
        assert!(lens.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn micro_batching_partitions() {
        let lens = vec![9, 8, 7, 6, 5];
        let mb = micro_batches(&lens, 2);
        assert_eq!(mb.len(), 3);
        assert_eq!(mb[2], vec![5]);
        let total: usize = mb.iter().flatten().sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn bulk_padding_rounds_up() {
        assert_eq!(bulk_pad_total(&[10, 20, 33], 64), 64);
        assert_eq!(bulk_pad_total(&[64], 64), 64);
        assert_eq!(bulk_pad_total(&[65], 64), 128);
    }

    #[test]
    fn names_cover_all() {
        let names: Vec<&str> = ALL_DATASETS.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"RACE") && names.contains(&"CoLA"));
    }
}
