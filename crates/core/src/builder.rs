//! A compact builder facade over the Ragged API for common operator
//! shapes (Listing 1 of the paper in spirit: declare dims, extents,
//! tensors, computation — then schedule).

use std::rc::Rc;

use cora_ir::FExpr;
use cora_ragged::{DgraphError, Dim, LengthFn, RaggedLayout};

use crate::api::{BodyFn, LoopSpec, Operator, TensorRef};
use crate::program::Program;
use crate::schedule::{Schedule, ScheduleError};

/// Errors from building or compiling an operator through the facade.
#[derive(Debug)]
pub enum BuildError {
    /// The layout's dimension structure is invalid.
    Layout(DgraphError),
    /// The schedule is illegal for the operator.
    Schedule(ScheduleError),
    /// The builder was used inconsistently.
    Incomplete(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Layout(e) => write!(f, "layout error: {e}"),
            BuildError::Schedule(e) => write!(f, "schedule error: {e}"),
            BuildError::Incomplete(m) => write!(f, "incomplete operator description: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<DgraphError> for BuildError {
    fn from(e: DgraphError) -> Self {
        BuildError::Layout(e)
    }
}

impl From<ScheduleError> for BuildError {
    fn from(e: ScheduleError) -> Self {
        BuildError::Schedule(e)
    }
}

enum DimDecl {
    Const {
        name: String,
        extent: usize,
    },
    Var {
        name: String,
        dep: String,
        lens: LengthFn,
    },
}

/// Builder for simple ragged operators (elementwise maps and custom
/// bodies over a shared input/output iteration space).
pub struct OpBuilder {
    name: String,
    dims: Vec<DimDecl>,
    input: Option<String>,
    body: Option<ElementwiseFn>,
    storage_pads: Vec<(String, usize)>,
}

type ElementwiseFn = Rc<dyn Fn(FExpr) -> FExpr>;

impl OpBuilder {
    /// Starts an operator named `name`.
    pub fn new(name: impl Into<String>) -> OpBuilder {
        OpBuilder {
            name: name.into(),
            dims: Vec::new(),
            input: None,
            body: None,
            storage_pads: Vec::new(),
        }
    }

    /// Adds a constant dimension.
    pub fn cdim(mut self, name: impl Into<String>, extent: usize) -> Self {
        self.dims.push(DimDecl::Const {
            name: name.into(),
            extent,
        });
        self
    }

    /// Adds a variable dimension whose slice sizes along `dep` are `lens`.
    pub fn vdim_of(
        mut self,
        name: impl Into<String>,
        dep: impl Into<String>,
        lens: Vec<usize>,
    ) -> Self {
        self.dims.push(DimDecl::Var {
            name: name.into(),
            dep: dep.into(),
            lens: LengthFn::new(lens),
        });
        self
    }

    /// Pads the storage of a named dimension to a multiple.
    pub fn pad_dimension(mut self, name: impl Into<String>, multiple: usize) -> Self {
        self.storage_pads.push((name.into(), multiple));
        self
    }

    /// Names the input tensor (same iteration space as the output).
    pub fn input(mut self, name: impl Into<String>) -> Self {
        self.input = Some(name.into());
        self
    }

    /// Sets an elementwise body: `out[ix] = f(in[ix])`.
    pub fn elementwise(mut self, f: impl Fn(FExpr) -> FExpr + 'static) -> Self {
        self.body = Some(Rc::new(f));
        self
    }

    /// Builds the scheduled-but-unscheduled operator.
    pub fn build(self) -> Result<BuiltOp, BuildError> {
        let input_name = self
            .input
            .ok_or_else(|| BuildError::Incomplete("missing input tensor".into()))?;
        let f = self
            .body
            .ok_or_else(|| BuildError::Incomplete("missing body".into()))?;
        if self.dims.is_empty() {
            return Err(BuildError::Incomplete("no dimensions declared".into()));
        }
        let make_layout = |pads: &[(String, usize)]| -> Result<RaggedLayout, DgraphError> {
            let mut handles: Vec<(String, Dim)> = Vec::new();
            let mut b = RaggedLayout::builder();
            for d in &self.dims {
                match d {
                    DimDecl::Const { name, extent } => {
                        let dim = Dim::new(name.clone());
                        handles.push((name.clone(), dim.clone()));
                        b = b.cdim(dim, *extent);
                    }
                    DimDecl::Var { name, dep, lens } => {
                        let dim = Dim::new(name.clone());
                        let dep_dim = handles
                            .iter()
                            .find(|(n, _)| n == dep)
                            .map(|(_, d)| d.clone())
                            .unwrap_or_else(|| Dim::new("missing"));
                        handles.push((name.clone(), dim.clone()));
                        b = b.vdim(dim, &dep_dim, lens.clone());
                    }
                }
                if let Some((_, pad)) = pads.iter().find(|(n, _)| {
                    n == match d {
                        DimDecl::Const { name, .. } | DimDecl::Var { name, .. } => name,
                    }
                }) {
                    b = b.pad(*pad);
                }
            }
            b.build()
        };
        let in_layout = make_layout(&self.storage_pads)?;
        let out_layout = make_layout(&self.storage_pads)?;
        let input = TensorRef::new(input_name, in_layout);
        let output = TensorRef::new(format!("{}_out", self.name), out_layout);

        let mut loops = Vec::new();
        let dim_names: Vec<String> = self
            .dims
            .iter()
            .map(|d| match d {
                DimDecl::Const { name, .. } | DimDecl::Var { name, .. } => name.clone(),
            })
            .collect();
        for d in &self.dims {
            match d {
                DimDecl::Const { name, extent } => {
                    loops.push(LoopSpec::fixed(name.clone(), *extent))
                }
                DimDecl::Var { name, dep, lens } => {
                    let dep_pos = dim_names
                        .iter()
                        .position(|n| n == dep)
                        .ok_or_else(|| BuildError::Incomplete(format!("unknown dep `{dep}`")))?;
                    loops.push(LoopSpec::variable(name.clone(), dep_pos, lens.clone()));
                }
            }
        }
        let in_ref = input.clone();
        let body: BodyFn = Rc::new(move |args| f(in_ref.at(args)));
        Ok(BuiltOp {
            op: Operator::new(self.name, loops, vec![], output, vec![input], body),
        })
    }
}

/// An operator built through [`OpBuilder`], ready for scheduling and
/// compilation.
pub struct BuiltOp {
    /// The underlying operator (full API available).
    pub op: Operator,
}

impl BuiltOp {
    /// Mutable access to the schedule.
    pub fn schedule(&mut self) -> &mut Schedule {
        self.op.schedule_mut()
    }

    /// Compiles to an executable program.
    pub fn compile(&self) -> Result<Program, ScheduleError> {
        crate::lower::lower(&self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_elementwise_end_to_end() {
        let lens = vec![5usize, 2, 3];
        let mut b = OpBuilder::new("double")
            .cdim("batch", lens.len())
            .vdim_of("len", "batch", lens.clone())
            .input("A")
            .elementwise(|x| x * 2.0)
            .build()
            .unwrap();
        b.schedule().pad_loop("len", 1);
        let p = b.compile().unwrap();
        let n: usize = lens.iter().sum();
        let input: Vec<f32> = (0..n).map(|x| x as f32).collect();
        let r = p.run(&[("A", input.clone())]);
        let expect: Vec<f32> = input.iter().map(|x| 2.0 * x).collect();
        assert_eq!(r.output, expect);
        assert!(p.cuda_source().contains("for"));
    }

    #[test]
    fn missing_body_rejected() {
        let e = OpBuilder::new("x").cdim("b", 2).input("A").build();
        assert!(matches!(e, Err(BuildError::Incomplete(_))));
    }

    #[test]
    fn storage_padding_allows_loop_padding() {
        let lens = vec![5usize, 2, 3];
        let mut b = OpBuilder::new("double")
            .cdim("batch", lens.len())
            .vdim_of("len", "batch", lens)
            .pad_dimension("len", 4)
            .input("A")
            .elementwise(|x| x + 1.0)
            .build()
            .unwrap();
        b.schedule().pad_loop("len", 2);
        assert!(b.compile().is_ok());
        // Loop padding beyond storage padding is illegal (§4.1).
        let lens2 = vec![5usize, 2, 3];
        let mut b2 = OpBuilder::new("double")
            .cdim("batch", lens2.len())
            .vdim_of("len", "batch", lens2)
            .pad_dimension("len", 2)
            .input("A")
            .elementwise(|x| x + 1.0)
            .build()
            .unwrap();
        b2.schedule().pad_loop("len", 8);
        assert!(matches!(
            b2.compile(),
            Err(ScheduleError::LoopPaddingExceedsStorage { .. })
        ));
    }
}
