//! Multi-operator compiled pipelines: chaining compiled programs through
//! a statically planned buffer arena.
//!
//! A single [`CompiledProgram`] executes
//! one ragged operator. Real workloads — the paper's §7 transformer
//! encoder layer above all — are *chains* of operators whose
//! intermediates exist only to feed the next stage. Running such a chain
//! through the single-program interface costs, per operator per call:
//! a fresh output `Vec`, a prelude rebuild, aux-table rebinding and
//! dispatch-order resolution. [`CompiledPipeline`] hoists all of it to
//! *once per shape*:
//!
//! * **Wiring** ([`PipelineBuilder`]): stages connect through named
//!   pipeline buffers (interned with [`cora_ir::slots::Interner`], the
//!   same dense-identity machinery the VM uses within one program). Each
//!   buffer has exactly one writer; external inputs are declared up
//!   front and bound per call.
//! * **Buffer plan** ([`BufferPlan`]): every stage-produced buffer gets a
//!   lifetime `[def stage, last use stage]`, and buffers with disjoint
//!   lifetimes share an arena *slot*. Slots are allocated once per
//!   session, so repeated calls allocate no intermediate storage at all.
//! * **Execution** ([`PipelineSession`]): per stage, the prelude is built
//!   and bound once, the parallel dispatch order resolved once (the
//!   per-layer analogue of
//!   [`ParallelSession`]), and each run
//!   binds arena views through the VM's borrowed-buffer entry points.
//!   Runs execute serially ([`PipelineSession::run_serial`]) or with
//!   every outlined block axis dispatched across a [`CpuPool`]
//!   ([`PipelineSession::run`]), with identical results — parallel
//!   stages are bit-identical to serial ones — and per-stage
//!   [`InterpStats`].
//!
//! # Example
//!
//! Two chained elementwise operators (`Y = 2·X`, `Z = 2·Y`), compiled
//! once and run twice off one session — the reuse pattern a multi-layer
//! model wants, where "layer" means "same shapes, new inputs":
//!
//! ```
//! use cora_core::pipeline::PipelineBuilder;
//! use cora_core::prelude::*;
//! use std::rc::Rc;
//!
//! fn double_op(name: &str, n: usize) -> Operator {
//!     let a = TensorRef::new("In", cora_ragged::RaggedLayout::dense(&[n]));
//!     let out = TensorRef::new("Out", cora_ragged::RaggedLayout::dense(&[n]));
//!     let a2 = a.clone();
//!     let body: BodyFn = Rc::new(move |args| a2.at(args) * 2.0);
//!     let mut op = Operator::new(
//!         name,
//!         vec![LoopSpec::fixed("i", n)],
//!         vec![],
//!         out,
//!         vec![a],
//!         body,
//!     );
//!     op.schedule_mut().bind("i", ForKind::GpuBlockX);
//!     op
//! }
//!
//! let mut b = PipelineBuilder::new("demo");
//! b.input("X", 4).unwrap();
//! let double = lower(&double_op("double", 4)).unwrap().compile();
//! b.stage("double", double.clone(), &[("In", "X")], "Y").unwrap();
//! b.stage("again", double, &[("In", "Y")], "Z").unwrap();
//! let pipeline = b.build("Z").unwrap();
//!
//! // Everything shape-dependent is resolved here, once.
//! let mut session = pipeline.session().unwrap();
//! let pool = CpuPool::new(2);
//! for _layer in 0..2 {
//!     let run = session.run(&pool, &[("X", &[1.0, 2.0, 3.0, 4.0])]);
//!     assert_eq!(run.output, vec![4.0, 8.0, 12.0, 16.0]);
//!     assert_eq!(run.stages.len(), 2);
//! }
//! ```

use std::fmt;
use std::mem;

use cora_exec::cpu::CpuPool;
use cora_exec::interp::InterpStats;
use cora_exec::vm::{BoundBuf, VmShared};
use cora_ir::slots::Interner;

use crate::program::{CompiledProgram, ParallelSession};
use crate::schedule::ScheduleError;

/// Errors raised while wiring a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A buffer name was declared or produced twice (every pipeline
    /// buffer has exactly one writer).
    DuplicateBuffer(String),
    /// A stage wire references a pipeline buffer that does not exist
    /// (not an external input and not produced by an earlier stage).
    UnknownBuffer {
        /// Stage label.
        stage: String,
        /// The missing pipeline buffer.
        name: String,
    },
    /// A stage wire names a program buffer the program does not read.
    NotAnInput {
        /// Stage label.
        stage: String,
        /// The program-side name.
        name: String,
    },
    /// A program input buffer was left unwired.
    UnwiredInput {
        /// Stage label.
        stage: String,
        /// The program-side name.
        name: String,
    },
    /// A stage wires the same program input twice.
    DuplicateWire {
        /// Stage label.
        stage: String,
        /// The program-side name.
        name: String,
    },
    /// The designated pipeline output is not produced by any stage.
    MissingOutput(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::DuplicateBuffer(n) => {
                write!(f, "pipeline buffer `{n}` already has a writer")
            }
            PipelineError::UnknownBuffer { stage, name } => {
                write!(
                    f,
                    "stage `{stage}` reads undeclared pipeline buffer `{name}`"
                )
            }
            PipelineError::NotAnInput { stage, name } => {
                write!(
                    f,
                    "stage `{stage}` wires `{name}`, which its program never reads"
                )
            }
            PipelineError::UnwiredInput { stage, name } => {
                write!(f, "stage `{stage}` leaves program input `{name}` unwired")
            }
            PipelineError::DuplicateWire { stage, name } => {
                write!(f, "stage `{stage}` wires program input `{name}` twice")
            }
            PipelineError::MissingOutput(n) => {
                write!(f, "pipeline output `{n}` is not produced by any stage")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One pipeline buffer: its element count and (for stage outputs) the
/// producing stage.
#[derive(Debug, Clone)]
struct BufDecl {
    size: usize,
    /// `None` for external inputs, `Some(stage)` for stage outputs.
    def: Option<usize>,
}

/// One wired stage.
#[derive(Debug)]
struct StageSpec {
    label: String,
    program: CompiledProgram,
    /// `(program buffer name, pipeline buffer id)` for every program
    /// input.
    inputs: Vec<(String, u32)>,
    /// Pipeline buffer id the stage produces.
    output: u32,
}

/// Builder for [`CompiledPipeline`]: declare external inputs, then add
/// stages in execution order, wiring each program's input buffers to
/// pipeline buffers (external inputs or earlier stages' outputs).
#[derive(Debug)]
pub struct PipelineBuilder {
    name: String,
    bufs: Interner,
    decls: Vec<BufDecl>,
    stages: Vec<StageSpec>,
}

impl PipelineBuilder {
    /// Creates an empty pipeline.
    pub fn new(name: impl Into<String>) -> PipelineBuilder {
        PipelineBuilder {
            name: name.into(),
            bufs: Interner::new(),
            decls: Vec::new(),
            stages: Vec::new(),
        }
    }

    /// Declares an external input buffer of `size` elements, bound per
    /// run by the caller.
    ///
    /// # Errors
    ///
    /// [`PipelineError::DuplicateBuffer`] if the name is taken.
    pub fn input(&mut self, name: &str, size: usize) -> Result<&mut Self, PipelineError> {
        if self.bufs.get(name).is_some() {
            return Err(PipelineError::DuplicateBuffer(name.to_string()));
        }
        let id = self.bufs.intern(name);
        debug_assert_eq!(id as usize, self.decls.len());
        self.decls.push(BufDecl { size, def: None });
        Ok(self)
    }

    /// Appends a stage: `program` runs with each of its float inputs
    /// wired to a pipeline buffer (`wires` maps *program* buffer names to
    /// *pipeline* buffer names) and produces the new pipeline buffer
    /// `output` (sized [`CompiledProgram::output_size`]).
    ///
    /// # Errors
    ///
    /// See [`PipelineError`]: unknown or duplicate buffers, wires to
    /// buffers the program never reads, or unwired program inputs.
    pub fn stage(
        &mut self,
        label: &str,
        program: CompiledProgram,
        wires: &[(&str, &str)],
        output: &str,
    ) -> Result<&mut Self, PipelineError> {
        let needed = program.input_names();
        for (i, (pname, _)) in wires.iter().enumerate() {
            if !needed.contains(pname) {
                return Err(PipelineError::NotAnInput {
                    stage: label.to_string(),
                    name: pname.to_string(),
                });
            }
            if wires[..i].iter().any(|(p, _)| p == pname) {
                return Err(PipelineError::DuplicateWire {
                    stage: label.to_string(),
                    name: pname.to_string(),
                });
            }
        }
        let mut inputs = Vec::with_capacity(needed.len());
        for pname in needed {
            let Some((_, target)) = wires.iter().find(|(p, _)| *p == pname) else {
                return Err(PipelineError::UnwiredInput {
                    stage: label.to_string(),
                    name: pname.to_string(),
                });
            };
            let Some(id) = self.bufs.get(target) else {
                return Err(PipelineError::UnknownBuffer {
                    stage: label.to_string(),
                    name: target.to_string(),
                });
            };
            inputs.push((pname.to_string(), id));
        }
        if self.bufs.get(output).is_some() {
            return Err(PipelineError::DuplicateBuffer(output.to_string()));
        }
        let out_id = self.bufs.intern(output);
        debug_assert_eq!(out_id as usize, self.decls.len());
        self.decls.push(BufDecl {
            size: program.output_size(),
            def: Some(self.stages.len()),
        });
        self.stages.push(StageSpec {
            label: label.to_string(),
            program,
            inputs,
            output: out_id,
        });
        Ok(self)
    }

    /// Finalises the pipeline with `output` as the buffer
    /// [`PipelineRun::output`] returns, computing the arena buffer plan.
    ///
    /// # Errors
    ///
    /// [`PipelineError::MissingOutput`] if `output` is not a stage
    /// output.
    pub fn build(self, output: &str) -> Result<CompiledPipeline, PipelineError> {
        let out_id = self
            .bufs
            .get(output)
            .filter(|&id| self.decls[id as usize].def.is_some())
            .ok_or_else(|| PipelineError::MissingOutput(output.to_string()))?;
        let plan = BufferPlan::assign(&self.bufs, &self.decls, &self.stages, out_id);
        Ok(CompiledPipeline {
            name: self.name,
            bufs: self.bufs,
            decls: self.decls,
            stages: self.stages,
            plan,
            output: out_id,
        })
    }
}

/// One planned intermediate buffer: its lifetime in stage indices and the
/// arena slot it was assigned.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// Pipeline buffer name.
    pub name: String,
    /// Element count.
    pub size: usize,
    /// Producing stage index.
    pub def: usize,
    /// Last stage index that reads the buffer (the pipeline output stays
    /// live through the final stage). Equals `def` for dead outputs.
    pub last_use: usize,
    /// Assigned arena slot.
    pub slot: u32,
}

/// The static arena plan: every stage output is assigned a slot such that
/// two buffers share a slot only when their lifetimes are disjoint, and
/// each slot is sized for the largest buffer it ever holds.
#[derive(Debug, Clone)]
pub struct BufferPlan {
    entries: Vec<PlanEntry>,
    /// Buffer id → planned entry index (externals unmapped).
    entry_of: Vec<Option<usize>>,
    slot_sizes: Vec<usize>,
}

impl BufferPlan {
    fn assign(bufs: &Interner, decls: &[BufDecl], stages: &[StageSpec], output: u32) -> BufferPlan {
        // Lifetimes: def = producing stage; last_use = max reading stage
        // (the pipeline output is read "after" the last stage).
        let mut last_use: Vec<usize> = decls.iter().map(|d| d.def.unwrap_or(0)).collect();
        for (si, st) in stages.iter().enumerate() {
            for (_, id) in &st.inputs {
                last_use[*id as usize] = last_use[*id as usize].max(si);
            }
        }
        last_use[output as usize] = stages.len();

        let mut entries: Vec<PlanEntry> = Vec::new();
        let mut entry_of: Vec<Option<usize>> = vec![None; decls.len()];
        let mut slot_sizes: Vec<usize> = Vec::new();
        let mut free: Vec<u32> = Vec::new();
        // One output per stage, so walking stages walks defs in order.
        for (si, st) in stages.iter().enumerate() {
            // Release buffers whose last use is strictly before this
            // stage — their slots may be reused by this stage's output
            // (but not by anything live *during* their last use).
            for e in &entries {
                if e.last_use < si && !free.contains(&e.slot) {
                    let still_held = entries.iter().any(|o| o.slot == e.slot && o.last_use >= si);
                    if !still_held {
                        free.push(e.slot);
                    }
                }
            }
            let id = st.output as usize;
            let size = decls[id].size;
            // Best fit: the smallest free slot that already fits, else
            // the free slot needing the least growth, else a new slot.
            let slot = match free
                .iter()
                .enumerate()
                .filter(|(_, &s)| slot_sizes[s as usize] >= size)
                .min_by_key(|(_, &s)| slot_sizes[s as usize])
                .or_else(|| {
                    free.iter()
                        .enumerate()
                        .max_by_key(|(_, &s)| slot_sizes[s as usize])
                })
                .map(|(i, _)| i)
            {
                Some(i) => free.swap_remove(i),
                None => {
                    slot_sizes.push(0);
                    (slot_sizes.len() - 1) as u32
                }
            };
            slot_sizes[slot as usize] = slot_sizes[slot as usize].max(size);
            entry_of[id] = Some(entries.len());
            entries.push(PlanEntry {
                name: bufs.names()[id].clone(),
                size,
                def: si,
                last_use: last_use[id],
                slot,
            });
        }
        BufferPlan {
            entries,
            entry_of,
            slot_sizes,
        }
    }

    /// The planned stage outputs, in stage order.
    pub fn entries(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// Number of arena slots.
    pub fn slot_count(&self) -> usize {
        self.slot_sizes.len()
    }

    /// Total arena size in elements (what a session allocates once).
    pub fn arena_elems(&self) -> usize {
        self.slot_sizes.iter().sum()
    }

    /// Sum of all planned buffer sizes — what per-op fresh allocation
    /// would cost per call; `arena_elems() ≤ unshared_elems()`.
    pub fn unshared_elems(&self) -> usize {
        self.entries.iter().map(|e| e.size).sum()
    }

    fn slot_of(&self, buf: u32) -> Option<u32> {
        self.entry_of[buf as usize].map(|i| self.entries[i].slot)
    }
}

/// A wired, buffer-planned chain of compiled programs. Create with
/// [`PipelineBuilder`]; execute through [`CompiledPipeline::session`].
#[derive(Debug)]
pub struct CompiledPipeline {
    name: String,
    bufs: Interner,
    decls: Vec<BufDecl>,
    stages: Vec<StageSpec>,
    plan: BufferPlan,
    output: u32,
}

impl CompiledPipeline {
    /// Pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Stage labels, in execution order.
    pub fn stage_labels(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.label.as_str()).collect()
    }

    /// `(label, compiled program)` per stage, in execution order — the
    /// autotuner's deterministic measurer reads each stage's bytecode
    /// census from here.
    pub fn stage_programs(&self) -> impl Iterator<Item = (&str, &CompiledProgram)> {
        self.stages.iter().map(|s| (s.label.as_str(), &s.program))
    }

    /// The arena buffer plan.
    pub fn plan(&self) -> &BufferPlan {
        &self.plan
    }

    /// Element count of the pipeline output.
    pub fn output_size(&self) -> usize {
        self.decls[self.output as usize].size
    }

    /// Prepares a reusable session: per stage, the prelude is built and
    /// bound, the parallel dispatch order resolved, and the arena
    /// allocated — everything shape-dependent, done once. Repeated
    /// [`PipelineSession::run`]s then only bind the external inputs.
    ///
    /// The session owns its prep work. To keep the prep (safety proofs,
    /// preludes, arena) alive *across* sessions — e.g. in a session pool
    /// that checks sessions out per request — use
    /// [`CompiledPipeline::prepare`] + [`CompiledPipeline::session_with`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::BlockAxisNotOutlinable`] when a stage
    /// binds a block axis the outliner cannot hoist (stages with *no*
    /// block axis are legal — they run serially in both modes).
    pub fn session(&self) -> Result<PipelineSession<'_>, ScheduleError> {
        let prep = self.prepare()?;
        let mut stages = Vec::with_capacity(self.stages.len());
        for (spec, sp) in self.stages.iter().zip(prep.stages) {
            let serial = spec.program.serial_shared_with(&sp.serial_prelude);
            let par = sp.par.map(|p| spec.program.parallel_session_owned(p));
            stages.push(PreparedStage { spec, serial, par });
        }
        Ok(PipelineSession {
            pipeline: self,
            stages,
            slots: SlotArena::Owned(prep.slots),
        })
    }

    /// Computes the expensive, fully *owned* prep work of a session —
    /// per-stage preludes, parallel dispatch orders, the safety-verifier
    /// proofs and the arena — without borrowing the pipeline. A
    /// [`PipelinePrep`] can be stored beside its pipeline (in a cache or
    /// session pool) and turned into a live session on demand with
    /// [`CompiledPipeline::session_with`], which skips every proof and
    /// allocates nothing beyond the per-stage slot tables.
    ///
    /// # Errors
    ///
    /// As for [`CompiledPipeline::session`].
    pub fn prepare(&self) -> Result<PipelinePrep, ScheduleError> {
        let mut stages = Vec::with_capacity(self.stages.len());
        for spec in &self.stages {
            let serial_prelude = spec.program.build_prelude();
            let par = spec.program.parallel_prep()?;
            if let Some(prep) = &par {
                // Cross-check the verifier's proven access hulls against
                // the planner's buffer sizes: every input the stage reads
                // must fit inside the arena slot it is wired to. Both
                // derive from the same lowering, so a mismatch is a
                // planner or verifier bug, not a user error.
                let outcome = prep.verify_outcome();
                for (name, buf) in &spec.inputs {
                    if let Some(need) = outcome.required_input_len(name) {
                        let planned = self.decls[*buf as usize].size;
                        assert!(
                            planned as i64 >= need,
                            "stage `{}`: verified access hull of `{name}` needs \
                             {need} elements but the plan allots {planned}",
                            spec.label
                        );
                    }
                }
            }
            stages.push(StagePrep {
                serial_prelude,
                par,
            });
        }
        Ok(PipelinePrep {
            stages,
            slots: self
                .plan
                .slot_sizes
                .iter()
                .map(|&n| vec![0.0f32; n])
                .collect(),
        })
    }

    /// Mints a [`PipelineSession`] from a previously computed
    /// [`PipelinePrep`]: no proofs re-run, no arena allocation — the
    /// prep's arena buffers are borrowed and literally reused across
    /// sessions. The prep **must** come from this pipeline's own
    /// [`CompiledPipeline::prepare`].
    ///
    /// # Panics
    ///
    /// Panics if the prep's stage count does not match this pipeline.
    pub fn session_with<'p>(&'p self, prep: &'p mut PipelinePrep) -> PipelineSession<'p> {
        assert_eq!(
            prep.stages.len(),
            self.stages.len(),
            "prep was built for a different pipeline ({} stages vs {})",
            prep.stages.len(),
            self.stages.len()
        );
        let PipelinePrep { stages: sp, slots } = prep;
        let stages = self
            .stages
            .iter()
            .zip(sp.iter())
            .map(|(spec, sp)| PreparedStage {
                spec,
                serial: spec.program.serial_shared_with(&sp.serial_prelude),
                par: sp
                    .par
                    .as_ref()
                    .map(|p| spec.program.parallel_session_with(p)),
            })
            .collect();
        PipelineSession {
            pipeline: self,
            stages,
            slots: SlotArena::Borrowed(slots),
        }
    }
}

/// The owned prep work of one pipeline session: per-stage preludes and
/// parallel preps (dispatch order + safety proof) plus the arena
/// buffers. Borrows nothing; create with [`CompiledPipeline::prepare`],
/// use with [`CompiledPipeline::session_with`].
#[derive(Debug, Clone)]
pub struct PipelinePrep {
    stages: Vec<StagePrep>,
    /// Arena: one buffer per plan slot, reused across sessions.
    slots: Vec<Vec<f32>>,
}

impl PipelinePrep {
    /// Total arena size in elements (allocated once, reused per session).
    pub fn arena_elems(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }
}

/// Owned prep of one stage.
#[derive(Debug, Clone)]
struct StagePrep {
    serial_prelude: crate::prelude_gen::PreludeData,
    par: Option<crate::program::ParallelPrep>,
}

/// One stage with its shape-invariant bindings resolved.
#[derive(Debug)]
struct PreparedStage<'p> {
    spec: &'p StageSpec,
    /// Full serial program with prelude bound (borrowed-buffer runs).
    serial: VmShared<'p>,
    /// Outlined parallel session, when the stage has a block axis.
    par: Option<ParallelSession<'p>>,
}

/// Statistics of one executed stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Stage label.
    pub label: String,
    /// Instruction-mix statistics (parallel runs sum per-worker counters,
    /// equalling the serial run exactly).
    pub stats: InterpStats,
}

/// Result of one pipeline execution.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The pipeline output buffer.
    pub output: Vec<f32>,
    /// Per-stage statistics, in execution order.
    pub stages: Vec<StageStats>,
}

impl PipelineRun {
    /// Sum of all stages' statistics.
    pub fn total_stats(&self) -> InterpStats {
        self.stages
            .iter()
            .fold(InterpStats::default(), |acc, s| acc + s.stats)
    }
}

/// A prepared pipeline execution: preludes bound, dispatch orders
/// resolved, arena allocated. Created by [`CompiledPipeline::session`];
/// reuse one session for every run of the same shape (per layer, per
/// call) — after construction, runs allocate no intermediate buffers.
#[derive(Debug)]
pub struct PipelineSession<'p> {
    pipeline: &'p CompiledPipeline,
    stages: Vec<PreparedStage<'p>>,
    /// Arena: one buffer per plan slot — owned on the
    /// [`CompiledPipeline::session`] path, borrowed from a
    /// [`PipelinePrep`] on the [`CompiledPipeline::session_with`] path.
    slots: SlotArena<'p>,
}

/// Owned-or-borrowed arena storage.
#[derive(Debug)]
enum SlotArena<'p> {
    Owned(Vec<Vec<f32>>),
    Borrowed(&'p mut Vec<Vec<f32>>),
}

impl SlotArena<'_> {
    fn get(&mut self) -> &mut Vec<Vec<f32>> {
        match self {
            SlotArena::Owned(v) => v,
            SlotArena::Borrowed(v) => v,
        }
    }
}

impl PipelineSession<'_> {
    /// Runs every stage with its outlined block axis dispatched across
    /// `pool` (stages without a block axis run serially). Outputs are
    /// bit-identical to [`PipelineSession::run_serial`], and each stage's
    /// summed per-worker statistics equal its serial statistics exactly.
    ///
    /// # Panics
    ///
    /// Panics if an external input is missing, misnamed or mis-sized.
    pub fn run(&mut self, pool: &CpuPool, inputs: &[(&str, &[f32])]) -> PipelineRun {
        self.run_inner(Some(pool), inputs)
    }

    /// The safety proof behind each stage, in stage order: `Some` with
    /// the stage's [`crate::verify::VerifyOutcome`] when it runs on the
    /// parallel tier (in-bounds and disjoint-store proven at this
    /// shape), `None` when the stage has no block axis and runs
    /// serially (no shared-output writes to prove anything about).
    pub fn verify_outcomes(&self) -> Vec<(&str, Option<&crate::verify::VerifyOutcome>)> {
        self.stages
            .iter()
            .map(|st| {
                (
                    st.spec.label.as_str(),
                    st.par.as_ref().map(|p| p.verify_outcome()),
                )
            })
            .collect()
    }

    /// Runs every stage on the calling thread.
    ///
    /// # Panics
    ///
    /// As for [`PipelineSession::run`].
    pub fn run_serial(&mut self, inputs: &[(&str, &[f32])]) -> PipelineRun {
        self.run_inner(None, inputs)
    }

    fn run_inner(&mut self, pool: Option<&CpuPool>, inputs: &[(&str, &[f32])]) -> PipelineRun {
        let pl = self.pipeline;
        // Resolve and validate the external inputs.
        let mut ext: Vec<Option<&[f32]>> = vec![None; pl.decls.len()];
        for (name, data) in inputs {
            let id = pl
                .bufs
                .get(name)
                .unwrap_or_else(|| panic!("unknown pipeline input `{name}`"));
            let d = &pl.decls[id as usize];
            assert!(
                d.def.is_none(),
                "`{name}` is a stage output, not an external input"
            );
            assert_eq!(
                data.len(),
                d.size,
                "pipeline input `{name}` length mismatch"
            );
            ext[id as usize] = Some(*data);
        }
        for (id, d) in pl.decls.iter().enumerate() {
            assert!(
                d.def.is_some() || ext[id].is_some(),
                "missing pipeline input `{}`",
                pl.bufs.names()[id]
            );
        }

        let mut stage_stats = Vec::with_capacity(self.stages.len());
        let slots = self.slots.get();
        for st in self.stages.iter_mut() {
            let spec = st.spec;
            let out_size = pl.decls[spec.output as usize].size;
            let out_slot = pl
                .plan
                .slot_of(spec.output)
                .expect("stage outputs are planned") as usize;
            // Take the output's slot out of the arena (O(1), no
            // allocation) so the remaining slots can be borrowed as
            // inputs; the plan guarantees no live input shares it.
            let mut out = mem::take(&mut slots[out_slot]);
            let ins: Vec<(&str, &[f32])> = spec
                .inputs
                .iter()
                .map(|(pname, bid)| {
                    let slice: &[f32] = match pl.decls[*bid as usize].def {
                        None => ext[*bid as usize].expect("validated above"),
                        Some(_) => {
                            let slot = pl.plan.slot_of(*bid).expect("planned") as usize;
                            assert_ne!(
                                slot, out_slot,
                                "buffer plan aliased a live input of stage `{}`",
                                spec.label
                            );
                            &slots[slot][..pl.decls[*bid as usize].size]
                        }
                    };
                    (pname.as_str(), slice)
                })
                .collect();
            let out_view = &mut out[..out_size];
            let stats = match (pool, st.par.as_mut()) {
                (Some(pool), Some(par)) => par.run_into(pool, &ins, out_view),
                _ => {
                    out_view.fill(spec.program.output_init());
                    let mut bufs: Vec<(&str, BoundBuf<'_>)> =
                        ins.iter().map(|(n, s)| (*n, BoundBuf::In(s))).collect();
                    bufs.push((spec.program.output_name(), BoundBuf::Out(out_view)));
                    st.serial.run_borrowed(bufs)
                }
            };
            drop(ins);
            slots[out_slot] = out;
            stage_stats.push(StageStats {
                label: spec.label.clone(),
                stats,
            });
        }

        let out_slot = pl.plan.slot_of(pl.output).expect("output is planned") as usize;
        PipelineRun {
            output: slots[out_slot][..pl.decls[pl.output as usize].size].to_vec(),
            stages: stage_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use cora_ragged::RaggedLayout;
    use std::rc::Rc;

    /// `Out[i] = In[i] * c + d` over a dense row, block-bound.
    fn affine_op(name: &str, n: usize, c: f32, d: f32) -> Operator {
        let a = TensorRef::new("In", RaggedLayout::dense(&[n]));
        let out = TensorRef::new("Out", RaggedLayout::dense(&[n]));
        let a2 = a.clone();
        let body: BodyFn = Rc::new(move |args| a2.at(args) * c + d);
        let mut op = Operator::new(
            name,
            vec![LoopSpec::fixed("i", n)],
            vec![],
            out,
            vec![a],
            body,
        );
        op.schedule_mut().bind("i", ForKind::GpuBlockX);
        op
    }

    /// `Out[i] = A[i] + B[i]`, block-bound.
    fn add_op(name: &str, n: usize) -> Operator {
        let a = TensorRef::new("A", RaggedLayout::dense(&[n]));
        let b = TensorRef::new("B", RaggedLayout::dense(&[n]));
        let out = TensorRef::new("Out", RaggedLayout::dense(&[n]));
        let (a2, b2) = (a.clone(), b.clone());
        let body: BodyFn = Rc::new(move |args| a2.at(args) + b2.at(args));
        let mut op = Operator::new(
            name,
            vec![LoopSpec::fixed("i", n)],
            vec![],
            out,
            vec![a, b],
            body,
        );
        op.schedule_mut().bind("i", ForKind::GpuBlockX);
        op
    }

    fn compiled(op: &Operator) -> CompiledProgram {
        lower(op).expect("legal schedule").compile()
    }

    /// X → double → Y → add(Y, X) → Z → halve → W: a diamond with a
    /// long-lived input and reusable intermediate slots.
    fn diamond(n: usize) -> CompiledPipeline {
        let mut b = PipelineBuilder::new("diamond");
        b.input("X", n).unwrap();
        b.stage(
            "double",
            compiled(&affine_op("double", n, 2.0, 0.0)),
            &[("In", "X")],
            "Y",
        )
        .unwrap();
        b.stage(
            "add",
            compiled(&add_op("add", n)),
            &[("A", "Y"), ("B", "X")],
            "Z",
        )
        .unwrap();
        b.stage(
            "halve",
            compiled(&affine_op("halve", n, 0.5, 1.0)),
            &[("In", "Z")],
            "W",
        )
        .unwrap();
        b.build("W").unwrap()
    }

    #[test]
    fn pipeline_computes_the_chain_and_reuses_slots() {
        let n = 6usize;
        let p = diamond(n);
        assert_eq!(p.stage_count(), 3);
        assert_eq!(p.output_size(), n);
        // Y dies after stage 1, so W (def stage 2) reuses its slot: the
        // arena needs 2 slots, not 3.
        assert_eq!(p.plan().slot_count(), 2);
        assert_eq!(p.plan().arena_elems(), 2 * n);
        assert!(p.plan().arena_elems() < p.plan().unshared_elems());

        let x: Vec<f32> = (0..n).map(|v| v as f32).collect();
        let mut session = p.session().unwrap();
        let pool = CpuPool::new(4);
        let want: Vec<f32> = x.iter().map(|v| 0.5 * (2.0 * v + v) + 1.0).collect();
        // Session reuse: repeated runs, serial and parallel, all agree.
        for _ in 0..2 {
            let serial = session.run_serial(&[("X", &x)]);
            assert_eq!(serial.output, want);
            let par = session.run(&pool, &[("X", &x)]);
            assert_eq!(par.output, serial.output, "parallel must be bit-identical");
            assert_eq!(par.stages.len(), serial.stages.len());
            for (a, b) in par.stages.iter().zip(&serial.stages) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.stats, b.stats, "stage `{}` stats diverge", a.label);
            }
            assert_eq!(par.total_stats(), serial.total_stats());
        }
    }

    #[test]
    fn plan_never_aliases_overlapping_lifetimes() {
        let p = diamond(5);
        let entries = p.plan().entries();
        for (i, a) in entries.iter().enumerate() {
            assert!(a.last_use >= a.def);
            for b in &entries[i + 1..] {
                if a.slot == b.slot {
                    assert!(
                        a.last_use < b.def || b.last_use < a.def,
                        "`{}` [{}, {}] and `{}` [{}, {}] share slot {}",
                        a.name,
                        a.def,
                        a.last_use,
                        b.name,
                        b.def,
                        b.last_use,
                        a.slot
                    );
                }
            }
        }
    }

    #[test]
    fn builder_rejects_bad_wiring() {
        let n = 4;
        let mut b = PipelineBuilder::new("bad");
        b.input("X", n).unwrap();
        assert_eq!(
            b.input("X", n).unwrap_err(),
            PipelineError::DuplicateBuffer("X".into())
        );
        let err = b
            .stage(
                "s",
                compiled(&affine_op("s", n, 1.0, 0.0)),
                &[("In", "nope")],
                "Y",
            )
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnknownBuffer { .. }), "{err}");
        let err = b
            .stage("s", compiled(&affine_op("s", n, 1.0, 0.0)), &[], "Y")
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnwiredInput { .. }), "{err}");
        let err = b
            .stage(
                "s",
                compiled(&affine_op("s", n, 1.0, 0.0)),
                &[("In", "X"), ("Bogus", "X")],
                "Y",
            )
            .unwrap_err();
        assert!(matches!(err, PipelineError::NotAnInput { .. }), "{err}");
        let err = b
            .stage(
                "s",
                compiled(&add_op("s", n)),
                &[("A", "X"), ("B", "X"), ("A", "X")],
                "Y",
            )
            .unwrap_err();
        assert!(matches!(err, PipelineError::DuplicateWire { .. }), "{err}");
        b.stage(
            "ok",
            compiled(&affine_op("ok", n, 1.0, 0.0)),
            &[("In", "X")],
            "Y",
        )
        .unwrap();
        let err = b
            .stage(
                "dup",
                compiled(&affine_op("dup", n, 1.0, 0.0)),
                &[("In", "X")],
                "Y",
            )
            .unwrap_err();
        assert_eq!(err, PipelineError::DuplicateBuffer("Y".into()));
        let err = b.build("X").unwrap_err();
        assert_eq!(err, PipelineError::MissingOutput("X".into()));
    }

    #[test]
    fn serial_stage_without_block_axis_is_legal() {
        let n = 4;
        let mut op = affine_op("plain", n, 3.0, 0.0);
        op.schedule = Schedule::default(); // drop the block binding
        let mut b = PipelineBuilder::new("serial");
        b.input("X", n).unwrap();
        b.stage("plain", compiled(&op), &[("In", "X")], "Y")
            .unwrap();
        let p = b.build("Y").unwrap();
        let mut s = p.session().unwrap();
        let x = vec![1.0f32; n];
        // Parallel mode falls back to serial execution for this stage.
        let run = s.run(&CpuPool::new(2), &[("X", &x)]);
        assert_eq!(run.output, vec![3.0; n]);
    }
}
