//! The Ragged API (§4): describing ragged operators.
//!
//! Users declare named dimensions, loop extents (constant, or variable as
//! a function of one outer loop — matching the prototype restriction of
//! §6), ragged input/output tensors, and a body expression over the loop
//! variables. Tensor accesses in the body go through [`TensorRef::at`],
//! which lowers multi-dimensional indices to flat offsets using
//! Algorithm 1 — the user never sees an offset.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use cora_ir::{Expr, FExpr, StoreKind};
use cora_ragged::access::offset_expr;
use cora_ragged::{LengthFn, RaggedLayout};

use crate::schedule::Schedule;

/// Naming convention for a tensor's per-dimension auxiliary offset buffer.
pub fn aux_buffer_name(tensor: &str, d: usize) -> String {
    format!("{tensor}__A{d}")
}

/// Naming convention for a tensor's per-dimension padded-length buffer.
pub fn lens_buffer_name(tensor: &str, d: usize) -> String {
    format!("{tensor}__lens{d}")
}

/// A declared tensor: a name bound to a ragged storage layout.
#[derive(Clone)]
pub struct TensorRef {
    name: String,
    layout: Arc<RaggedLayout>,
}

impl TensorRef {
    /// Declares a tensor with the given layout.
    pub fn new(name: impl Into<String>, layout: RaggedLayout) -> TensorRef {
        TensorRef {
            name: name.into(),
            layout: Arc::new(layout),
        }
    }

    /// The tensor's name (also its buffer name in lowered code).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The storage layout.
    pub fn layout(&self) -> &RaggedLayout {
        &self.layout
    }

    /// Shared handle to the layout.
    pub fn layout_arc(&self) -> Arc<RaggedLayout> {
        Arc::clone(&self.layout)
    }

    /// A load of this tensor at symbolic indices, lowered to a flat offset
    /// through the tensor's auxiliary structures (Algorithm 1).
    pub fn at(&self, idx: &[Expr]) -> FExpr {
        FExpr::load(self.name.clone(), self.offset(idx))
    }

    /// The flat-offset expression for symbolic indices.
    pub fn offset(&self, idx: &[Expr]) -> Expr {
        let t = self.name.clone();
        let t2 = self.name.clone();
        offset_expr(
            &self.layout,
            idx,
            &move |d| aux_buffer_name(&t, d),
            &move |d| lens_buffer_name(&t2, d),
        )
    }
}

impl fmt::Debug for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TensorRef({}, {} dims)", self.name, self.layout.ndim())
    }
}

/// The extent of one loop in an operator's loop nest.
#[derive(Debug, Clone)]
pub enum LoopExtent {
    /// Constant trip count (a cloop).
    Fixed(usize),
    /// Variable trip count (a vloop): iteration `v` of the loop at
    /// position `dep` runs this loop for `lens.len_at(v)` iterations.
    Variable {
        /// Position (in the operator's loop list) of the outer loop the
        /// extent depends on.
        dep: usize,
        /// Tabulated extent function.
        lens: LengthFn,
    },
}

impl LoopExtent {
    /// True for constant loops.
    pub fn is_fixed(&self) -> bool {
        matches!(self, LoopExtent::Fixed(_))
    }

    /// Maximum trip count.
    pub fn max(&self) -> usize {
        match self {
            LoopExtent::Fixed(e) => *e,
            LoopExtent::Variable { lens, .. } => lens.max(),
        }
    }
}

/// One loop of the operator: a name plus an extent.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Loop (iteration variable) name; also used in scheduling directives.
    pub name: String,
    /// Trip-count specification.
    pub extent: LoopExtent,
}

impl LoopSpec {
    /// A constant loop.
    pub fn fixed(name: impl Into<String>, extent: usize) -> LoopSpec {
        LoopSpec {
            name: name.into(),
            extent: LoopExtent::Fixed(extent),
        }
    }

    /// A variable loop dependent on the loop at position `dep`.
    pub fn variable(name: impl Into<String>, dep: usize, lens: impl Into<LengthFn>) -> LoopSpec {
        LoopSpec {
            name: name.into(),
            extent: LoopExtent::Variable {
                dep,
                lens: lens.into(),
            },
        }
    }
}

/// The operator body: maps the loop variables (spatial loops first, then
/// reduction loops) to the value contributed at that point.
pub type BodyFn = Rc<dyn Fn(&[Expr]) -> FExpr>;

/// A ragged operator: loop nest + output tensor + body.
///
/// The output is indexed by the spatial loop variables in order (one loop
/// per output dimension). Reduction loops accumulate into the output with
/// `+=` after it is initialised to `init`.
pub struct Operator {
    /// Operator name (kernel name in reports).
    pub name: String,
    /// Spatial loops, outermost first; loop `i` indexes output dim `i`.
    pub loops: Vec<LoopSpec>,
    /// Reduction loops, nested inside all spatial loops.
    pub reduce: Vec<LoopSpec>,
    /// Output tensor declaration.
    pub output: TensorRef,
    /// Input tensor declarations (for prelude planning).
    pub inputs: Vec<TensorRef>,
    /// Body expression.
    pub body: BodyFn,
    /// Initial value of the output when reductions are present.
    pub init: f32,
    /// Combine rule of the reduction loops: `+=` by default,
    /// [`StoreKind::MaxAssign`] for max-reductions (set via
    /// [`Operator::reduce_max`]). Ignored when [`Operator::reduce`] is
    /// empty.
    pub reduce_kind: StoreKind,
    /// Attached schedule.
    pub schedule: Schedule,
    /// Index shifts applied to loop variables (operation splitting's
    /// second half iterates `[s1(o), s(o))` — represented as extent
    /// `s(o) - s1(o)` plus a shift of `s1(o)`).
    pub shifts: Vec<LoopShift>,
    /// Extra integer auxiliary tables the prelude must materialise, for
    /// bodies that index through structures the layouts do not describe
    /// (e.g. the per-row sequence-start table of a flattened masked
    /// attention kernel). Each entry becomes a bound aux buffer the body
    /// can `Expr::load` from.
    pub aux_tables: Vec<(String, LengthFn)>,
}

/// A per-loop index shift: the loop variable is offset by a table lookup
/// at its dependence (used by operation splitting, §4.1).
#[derive(Debug, Clone)]
pub struct LoopShift {
    /// Which loop is shifted.
    pub loop_name: String,
    /// Position of the loop the shift table is indexed by.
    pub dep: usize,
    /// Prelude buffer holding the shift amounts.
    pub buffer: String,
    /// The shift table.
    pub lens: LengthFn,
}

impl fmt::Debug for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Operator")
            .field("name", &self.name)
            .field("loops", &self.loops)
            .field("reduce", &self.reduce)
            .field("output", &self.output)
            .finish_non_exhaustive()
    }
}

impl Operator {
    /// Creates an operator with an empty schedule.
    pub fn new(
        name: impl Into<String>,
        loops: Vec<LoopSpec>,
        reduce: Vec<LoopSpec>,
        output: TensorRef,
        inputs: Vec<TensorRef>,
        body: BodyFn,
    ) -> Operator {
        Operator {
            name: name.into(),
            loops,
            reduce,
            output,
            inputs,
            body,
            init: 0.0,
            reduce_kind: StoreKind::AddAssign,
            schedule: Schedule::default(),
            shifts: Vec::new(),
            aux_tables: Vec::new(),
        }
    }

    /// Mutable access to the schedule.
    pub fn schedule_mut(&mut self) -> &mut Schedule {
        &mut self.schedule
    }

    /// Turns the reduction into a max-reduction: the output is
    /// initialised to `-∞` and reduction iterations combine with
    /// `max=` instead of `+=` (row-max of softmax, pooling).
    pub fn reduce_max(&mut self) -> &mut Self {
        self.reduce_kind = StoreKind::MaxAssign;
        self.init = f32::NEG_INFINITY;
        self
    }

    /// Declares an extra auxiliary table (see [`Operator::aux_tables`]);
    /// the body may then `Expr::load(name, idx)` from it.
    pub fn add_aux_table(
        &mut self,
        name: impl Into<String>,
        values: impl Into<LengthFn>,
    ) -> &mut Self {
        self.aux_tables.push((name.into(), values.into()));
        self
    }

    /// Finds a loop (spatial or reduction) by name.
    pub fn find_loop(&self, name: &str) -> Option<&LoopSpec> {
        self.loops
            .iter()
            .chain(self.reduce.iter())
            .find(|l| l.name == name)
    }

    /// Total iteration count of the (unpadded) loop nest — the "useful
    /// work" baseline the padding-overhead figures compare against.
    pub fn iteration_count(&self) -> u64 {
        // Spatial × reduce, resolving variable extents against their
        // dependences. Only single-level deps exist (validated at lower
        // time), so a simple recursive walk suffices.
        let all: Vec<&LoopSpec> = self.loops.iter().chain(self.reduce.iter()).collect();
        fn rec(loops: &[&LoopSpec], at: usize, idx: &mut Vec<usize>) -> u64 {
            if at == loops.len() {
                return 1;
            }
            let extent = match &loops[at].extent {
                LoopExtent::Fixed(e) => *e,
                LoopExtent::Variable { dep, lens } => lens.len_at(idx[*dep]),
            };
            let mut total = 0u64;
            for v in 0..extent {
                idx[at] = v;
                total += rec(loops, at + 1, idx);
            }
            idx[at] = 0;
            total
        }
        let mut idx = vec![0usize; all.len()];
        rec(&all, 0, &mut idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_ragged::Dim;

    fn ragged_layout(lens: &[usize]) -> RaggedLayout {
        let b = Dim::new("batch");
        let l = Dim::new("len");
        RaggedLayout::builder()
            .cdim(b.clone(), lens.len())
            .vdim(l, &b, lens.to_vec())
            .build()
            .unwrap()
    }

    #[test]
    fn tensor_ref_offsets_use_aux_buffers() {
        let t = TensorRef::new("A", ragged_layout(&[3, 1, 2]));
        let e = t.offset(&[Expr::var("o"), Expr::var("i")]);
        let s = format!("{e}");
        assert!(
            s.contains("A__A0[o]"),
            "offset should load the A_0 array: {s}"
        );
    }

    #[test]
    fn iteration_count_resolves_vloops() {
        let t = TensorRef::new("B", ragged_layout(&[3, 1, 2]));
        let body: BodyFn = Rc::new(|_| FExpr::constant(0.0));
        let op = Operator::new(
            "double",
            vec![
                LoopSpec::fixed("o", 3),
                LoopSpec::variable("i", 0, vec![3usize, 1, 2]),
            ],
            vec![],
            t.clone(),
            vec![t],
            body,
        );
        assert_eq!(op.iteration_count(), 6);
        assert!(op.find_loop("i").is_some());
        assert!(op.find_loop("zz").is_none());
    }

    #[test]
    fn loop_extent_max() {
        assert_eq!(LoopExtent::Fixed(5).max(), 5);
        let v = LoopExtent::Variable {
            dep: 0,
            lens: vec![1usize, 7, 3].into(),
        };
        assert_eq!(v.max(), 7);
        assert!(!v.is_fixed());
    }
}
