//! Operation splitting and horizontal fusion (§4.1, Fig. 5).
//!
//! *Operation splitting* turns one vloop-nest operator into two operators
//! covering disjoint iteration ranges of a vloop: the first runs
//! `[0, s1(o))`, the second `[s1(o), s(o))`. Scheduling them differently
//! lets the bulky first part run guard-free with large tiles while the
//! ragged tail keeps its small extent — no padding needed.
//!
//! *Horizontal fusion* (hfusion, after Li et al. 2020) then executes the
//! two resulting kernels as one launch so the split does not halve
//! parallelism — on the simulated GPU this concatenates their block
//! lists (see [`SimKernel::hfuse`]).
//!
//! [`SimKernel::hfuse`]: cora_exec::gpu::SimKernel::hfuse

use std::rc::Rc;

use cora_exec::cost::{GpuModel, KernelTraits};
use cora_exec::gpu::SimKernel;
use cora_ragged::LengthFn;

use crate::api::{LoopExtent, LoopShift, Operator};
use crate::program::Program;
use crate::schedule::ScheduleError;

/// Splits `op` at vloop `loop_name` with per-slice split points
/// `split_at(dep_index)`.
///
/// Returns `(head, tail)`: `head` iterates `[0, min(split_at(o), s(o)))`,
/// `tail` iterates the remainder. Both inherit empty schedules (the point
/// of the transform is to schedule them differently).
///
/// # Errors
///
/// Returns [`ScheduleError::UnknownLoop`] if `loop_name` is not a vloop of
/// `op`.
pub fn split_operation(
    op: &Operator,
    loop_name: &str,
    split_at: &dyn Fn(usize) -> usize,
) -> Result<(Operator, Operator), ScheduleError> {
    // Locate the loop among spatial + reduce loops.
    let all: Vec<(&crate::api::LoopSpec, bool)> = op
        .loops
        .iter()
        .map(|l| (l, false))
        .chain(op.reduce.iter().map(|l| (l, true)))
        .collect();
    let Some((spec, _is_reduce)) = all.iter().find(|(l, _)| l.name == loop_name) else {
        return Err(ScheduleError::UnknownLoop(loop_name.to_string()));
    };
    let LoopExtent::Variable { dep, lens } = &spec.extent else {
        return Err(ScheduleError::UnknownLoop(format!(
            "{loop_name} is not a vloop; operation splitting targets vloops"
        )));
    };
    let dep = *dep;
    let head_lens: Vec<usize> = (0..lens.domain())
        .map(|o| lens.len_at(o).min(split_at(o)))
        .collect();
    let tail_lens: Vec<usize> = (0..lens.domain())
        .map(|o| lens.len_at(o) - head_lens[o])
        .collect();

    let mut head = clone_operator(op, &format!("{}_head", op.name));
    let mut tail = clone_operator(op, &format!("{}_tail", op.name));
    set_loop_lens(&mut head, loop_name, LengthFn::new(head_lens.clone()));
    set_loop_lens(&mut tail, loop_name, LengthFn::new(tail_lens));
    tail.shifts.push(LoopShift {
        loop_name: loop_name.to_string(),
        dep,
        buffer: format!("{}__split_base", tail.name),
        lens: LengthFn::new(head_lens),
    });
    Ok((head, tail))
}

fn clone_operator(op: &Operator, name: &str) -> Operator {
    Operator {
        name: name.to_string(),
        loops: op.loops.clone(),
        reduce: op.reduce.clone(),
        output: op.output.clone(),
        inputs: op.inputs.clone(),
        body: Rc::clone(&op.body),
        init: op.init,
        reduce_kind: op.reduce_kind,
        schedule: crate::schedule::Schedule::default(),
        shifts: op.shifts.clone(),
        aux_tables: op.aux_tables.clone(),
    }
}

fn set_loop_lens(op: &mut Operator, loop_name: &str, new_lens: LengthFn) {
    for l in op.loops.iter_mut().chain(op.reduce.iter_mut()) {
        if l.name == loop_name {
            if let LoopExtent::Variable { lens, .. } = &mut l.extent {
                *lens = new_lens;
                return;
            }
        }
    }
    unreachable!("loop existence checked by caller");
}

/// Horizontally fuses the simulated kernels of several programs into one
/// launch.
pub fn hfuse_sim(programs: &[&Program], model: &GpuModel, traits: KernelTraits) -> SimKernel {
    assert!(!programs.is_empty(), "hfusion needs at least one program");
    let mut it = programs.iter();
    let first = it.next().expect("non-empty");
    let mut k = first.sim_kernel(model, traits);
    for p in it {
        k = k.hfuse(p.sim_kernel(model, traits));
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BodyFn, LoopSpec, TensorRef};
    use cora_ragged::{Dim, RaggedLayout};

    fn ragged_layout(lens: &[usize]) -> RaggedLayout {
        let b = Dim::new("b");
        let l = Dim::new("l");
        RaggedLayout::builder()
            .cdim(b.clone(), lens.len())
            .vdim(l, &b, lens.to_vec())
            .build()
            .unwrap()
    }

    fn double_op(lens: &[usize]) -> Operator {
        let a = TensorRef::new("A", ragged_layout(lens));
        let out = TensorRef::new("B", ragged_layout(lens));
        let a2 = a.clone();
        let body: BodyFn = Rc::new(move |args| a2.at(args) * 2.0);
        Operator::new(
            "double",
            vec![
                LoopSpec::fixed("o", lens.len()),
                LoopSpec::variable("i", 0, lens.to_vec()),
            ],
            vec![],
            out,
            vec![a],
            body,
        )
    }

    #[test]
    fn split_partitions_iteration_space() {
        let lens = [5usize, 2, 7];
        let op = double_op(&lens);
        let (head, tail) = split_operation(&op, "i", &|_| 4).unwrap();
        assert_eq!(head.iteration_count() + tail.iteration_count(), 14);
        assert_eq!(head.iteration_count(), 4 + 2 + 4);
        assert_eq!(tail.shifts.len(), 1);
    }

    #[test]
    fn split_then_execute_covers_everything() {
        let lens = [5usize, 2, 7];
        let op = double_op(&lens);
        let (head, tail) = split_operation(&op, "i", &|_| 4).unwrap();
        let ph = crate::lower::lower(&head).unwrap();
        let pt = crate::lower::lower(&tail).unwrap();
        let total: usize = lens.iter().sum();
        let input: Vec<f32> = (0..total).map(|x| x as f32).collect();
        let rh = ph.run(&[("A", input.clone())]);
        // Feed head's output as the starting state for tail so the pieces
        // combine (tail writes the disjoint remainder).
        let mut m = pt.prepare(&[("A", input.clone())]).0;
        m.set_fbuffer("B", rh.output);
        m.run(pt.stmt());
        let out = m.take_fbuffer("B").unwrap();
        let expect: Vec<f32> = input.iter().map(|x| 2.0 * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn unknown_loop_rejected() {
        let op = double_op(&[1, 2]);
        assert!(split_operation(&op, "zz", &|_| 1).is_err());
        // Constant loops cannot be op-split in this prototype.
        assert!(split_operation(&op, "o", &|_| 1).is_err());
    }

    #[test]
    fn hfuse_concatenates_blocks() {
        let op = double_op(&[4, 4]);
        let (head, tail) = split_operation(&op, "i", &|_| 2).unwrap();
        let ph = crate::lower::lower(&head).unwrap();
        let pt = crate::lower::lower(&tail).unwrap();
        let model = GpuModel::default();
        let fused = hfuse_sim(&[&ph, &pt], &model, KernelTraits::generated());
        let a = ph.sim_kernel(&model, KernelTraits::generated());
        let b = pt.sim_kernel(&model, KernelTraits::generated());
        assert_eq!(
            fused.block_costs_us.len(),
            a.block_costs_us.len() + b.block_costs_us.len()
        );
    }
}
