//! Bounds inference across fused vloops (§5.2, Fig. 7).
//!
//! When loops `o` and `i` are fused into `f`, bounds inference must
//! translate iteration-variable ranges between the fused and unfused
//! spaces. Fig. 7 gives the four rules; this module implements them over
//! concrete prelude maps (the arrays `ffo`/`ffi`/`foif` take at runtime):
//!
//! 1. `o ∈ [ol, ou] ∧ i ∈ [il, iu]  →  f ∈ [foif(ol, il), foif(ou, iu)]`
//! 2. `f ∈ [fl, fu]                →  o ∈ [ffo(fl), ffo(fu)]`
//! 3. `f ∈ [fl, fu] ∧ ffo(fl) ≠ ffo(fu) → i ∈ [0, max_slice_len - 1]`
//! 4. `f ∈ [fl, fu] ∧ ffo(fl) = ffo(fu) → i ∈ [ffi(fl), ffi(fu)]`
//!
//! All ranges are inclusive, matching the figure.

use cora_ragged::FusedLoopMaps;

/// An inclusive integer range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IncRange {
    /// Creates a range; `lo` must not exceed `hi`.
    pub fn new(lo: i64, hi: i64) -> IncRange {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        IncRange { lo, hi }
    }

    /// Number of integers in the range.
    pub fn len(&self) -> i64 {
        self.hi - self.lo + 1
    }

    /// Ranges are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Bounds translation over one fused loop pair.
#[derive(Debug)]
pub struct FusedBounds<'a> {
    maps: &'a FusedLoopMaps,
    /// Per-`o` slice lengths (the inner loop's extents).
    lens: &'a [usize],
}

impl<'a> FusedBounds<'a> {
    /// Creates a translator for `maps` built from `lens`.
    pub fn new(maps: &'a FusedLoopMaps, lens: &'a [usize]) -> FusedBounds<'a> {
        FusedBounds { maps, lens }
    }

    /// Rule 1: `(o, i)` rectangle → fused range.
    pub fn fused_of(&self, o: IncRange, i: IncRange) -> IncRange {
        IncRange::new(
            self.maps.foif(o.lo as usize, i.lo as usize),
            self.maps.foif(o.hi as usize, i.hi as usize),
        )
    }

    /// Rule 2: fused range → outer range.
    pub fn outer_of(&self, f: IncRange) -> IncRange {
        IncRange::new(self.maps.ffo[f.lo as usize], self.maps.ffo[f.hi as usize])
    }

    /// Rules 3/4: fused range → inner range.
    pub fn inner_of(&self, f: IncRange) -> IncRange {
        let o_lo = self.maps.ffo[f.lo as usize];
        let o_hi = self.maps.ffo[f.hi as usize];
        if o_lo == o_hi {
            // Rule 4: within one slice.
            IncRange::new(self.maps.ffi[f.lo as usize], self.maps.ffi[f.hi as usize])
        } else {
            // Rule 3: spans slices, fall back to the full inner extent of
            // the touched slices.
            let max_len = self.lens[o_lo as usize..=o_hi as usize]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            IncRange::new(0, max_len.saturating_sub(1) as i64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(lens: &[usize]) -> FusedLoopMaps {
        FusedLoopMaps::build(lens)
    }

    #[test]
    fn round_trip_single_point() {
        let lens = [5usize, 2, 3];
        let maps = setup(&lens);
        let b = FusedBounds::new(&maps, &lens);
        let f = b.fused_of(IncRange::new(1, 1), IncRange::new(1, 1));
        assert_eq!(f, IncRange::new(6, 6));
        assert_eq!(b.outer_of(f), IncRange::new(1, 1));
        assert_eq!(b.inner_of(f), IncRange::new(1, 1));
    }

    #[test]
    fn rule3_spanning_slices_widens_inner() {
        let lens = [5usize, 2, 3];
        let maps = setup(&lens);
        let b = FusedBounds::new(&maps, &lens);
        // f from 4 (o=0,i=4) to 6 (o=1,i=1): spans two slices.
        let f = IncRange::new(4, 6);
        assert_eq!(b.outer_of(f), IncRange::new(0, 1));
        assert_eq!(b.inner_of(f), IncRange::new(0, 4));
    }

    #[test]
    fn rule4_within_slice_is_tight() {
        let lens = [5usize, 2, 3];
        let maps = setup(&lens);
        let b = FusedBounds::new(&maps, &lens);
        let f = IncRange::new(1, 3); // o=0, i in [1,3]
        assert_eq!(b.inner_of(f), IncRange::new(1, 3));
    }

    #[test]
    fn fused_range_covers_rectangle_exactly_when_dense() {
        // With uniform lens the fused range of the full rectangle is the
        // whole space.
        let lens = [4usize; 3];
        let maps = setup(&lens);
        let b = FusedBounds::new(&maps, &lens);
        let f = b.fused_of(IncRange::new(0, 2), IncRange::new(0, 3));
        assert_eq!(f, IncRange::new(0, 11));
        assert_eq!(f.len(), 12);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_rejected() {
        IncRange::new(3, 2);
    }
}
