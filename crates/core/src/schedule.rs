//! Scheduling primitives (§4.1).
//!
//! A [`Schedule`] is an ordered list of directives applied during lowering.
//! Alongside the primitives every dense tensor compiler has (split, bind,
//! unroll), CoRa adds the ragged-specific ones this module models:
//!
//! * [`Schedule::pad_loop`] — partial padding of vloops, legal only when
//!   storage padding covers it (checked during lowering);
//! * [`Schedule::fuse_loops`] — vloop fusion via prelude-built maps;
//! * [`Schedule::bulk_pad`] — pad a *fused* loop's total extent;
//! * operation splitting ([`crate::opsplit`]) and horizontal fusion are
//!   operator-level transforms;
//! * [`Schedule::thread_remap`] — load-balancing block permutations.

use cora_ir::ForKind;

/// Thread-remapping policies for the block-axis loop (§4.1, Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RemapPolicy {
    /// Blocks dispatch in loop order.
    #[default]
    Identity,
    /// Blocks with the most work dispatch first (the policy used for trmm
    /// and the transformer kernels).
    LongestFirst,
    /// Reverse loop order (useful for triangular nests where later rows
    /// are heavier).
    Reversed,
}

/// One scheduling directive.
#[derive(Debug, Clone)]
pub enum Directive {
    /// Pad the named vloop's per-slice extents to a multiple.
    PadLoop {
        /// Loop to pad.
        loop_name: String,
        /// Padding multiple.
        multiple: usize,
    },
    /// Split the named loop by a factor into `<name>_o` / `<name>_i`.
    Split {
        /// Loop to split.
        loop_name: String,
        /// Inner extent.
        factor: usize,
    },
    /// Bind the named loop to an execution axis.
    Bind {
        /// Loop to bind.
        loop_name: String,
        /// Target axis.
        kind: ForKind,
    },
    /// Fuse an outer loop with an inner vloop into `<outer>_<inner>_f`,
    /// generating the `ffo`/`ffi`/`foif` prelude maps (§5.1).
    FuseLoops {
        /// Outer loop name.
        outer: String,
        /// Inner loop name (must be immediately inside `outer`).
        inner: String,
    },
    /// Pad the total extent of a fused loop to a multiple (bulk padding,
    /// §7.2).
    BulkPad {
        /// Fused loop name.
        loop_name: String,
        /// Padding multiple.
        multiple: usize,
    },
    /// Reorder the loop nest to the given permutation of the current
    /// loop names (outermost first). A vloop may not move outside the
    /// loop its extent depends on (§4.1's reordering restriction,
    /// checked during lowering).
    Reorder {
        /// Complete permutation of the current loop names.
        order: Vec<String>,
    },
    /// Set the thread-remapping policy for the block axis.
    ThreadRemap(RemapPolicy),
    /// Hoist loop-invariant auxiliary-array loads (§D.7).
    HoistLoads,
    /// Mark a loop for unrolling.
    Unroll {
        /// Loop to unroll.
        loop_name: String,
    },
    /// Mark a loop for vectorization.
    Vectorize {
        /// Loop to vectorize.
        loop_name: String,
    },
}

/// Errors raised when a schedule is illegal for its operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Named loop does not exist.
    UnknownLoop(String),
    /// `pad_loop` exceeds the output tensor's storage padding: the padded
    /// loop nest would access non-existent storage (§4.1's legality rule).
    LoopPaddingExceedsStorage {
        /// The loop at fault.
        loop_name: String,
        /// Loop padding requested.
        loop_pad: usize,
        /// Storage padding available.
        storage_pad: usize,
    },
    /// Fusion partners are not adjacent (inner must be directly inside
    /// outer).
    NonAdjacentFusion {
        /// Outer loop name.
        outer: String,
        /// Inner loop name.
        inner: String,
    },
    /// A vloop was asked to move outside the loop its bound depends on —
    /// the reordering CoRa "currently does not allow" (§4.1).
    VloopReorderedPastDependence {
        /// The vloop at fault.
        loop_name: String,
    },
    /// Splitting a vloop without padding it to a multiple of the factor
    /// requires guards the current lowering refuses to silently add.
    SplitUnpaddedVloop {
        /// The loop at fault.
        loop_name: String,
        /// Requested split factor.
        factor: usize,
    },
    /// A loop bound to a GPU block axis sits where the parallel outliner
    /// cannot hoist it — nested inside a serial loop, guard, statement
    /// sequence or allocation, or storing in a way whose disjointness
    /// across blocks cannot be established. The compiled-parallel tier
    /// surfaces this instead of silently running serially.
    BlockAxisNotOutlinable {
        /// The block-bound loop at fault.
        loop_name: String,
        /// Why outlining is impossible.
        reason: String,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::UnknownLoop(n) => write!(f, "unknown loop `{n}`"),
            ScheduleError::LoopPaddingExceedsStorage {
                loop_name,
                loop_pad,
                storage_pad,
            } => write!(
                f,
                "loop `{loop_name}` padded to multiple of {loop_pad} but storage padding is only {storage_pad}; storage padding must be at least the loop padding"
            ),
            ScheduleError::NonAdjacentFusion { outer, inner } => {
                write!(f, "cannot fuse non-adjacent loops `{outer}` and `{inner}`")
            }
            ScheduleError::VloopReorderedPastDependence { loop_name } => write!(
                f,
                "vloop `{loop_name}` cannot be reordered outside the loop its bound depends on"
            ),
            ScheduleError::SplitUnpaddedVloop { loop_name, factor } => write!(
                f,
                "vloop `{loop_name}` must be padded to a multiple of {factor} before splitting by {factor}"
            ),
            ScheduleError::BlockAxisNotOutlinable { loop_name, reason } => write!(
                f,
                "block-bound loop `{loop_name}` cannot be outlined for parallel execution: {reason}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An ordered schedule.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    directives: Vec<Directive>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The directives in application order.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// Pads a vloop's extents to a multiple (§4.1 "Loop and Storage
    /// Padding").
    pub fn pad_loop(&mut self, loop_name: impl Into<String>, multiple: usize) -> &mut Self {
        assert!(multiple > 0, "padding multiple must be positive");
        self.directives.push(Directive::PadLoop {
            loop_name: loop_name.into(),
            multiple,
        });
        self
    }

    /// Splits a loop by `factor`.
    pub fn split(&mut self, loop_name: impl Into<String>, factor: usize) -> &mut Self {
        assert!(factor > 0, "split factor must be positive");
        self.directives.push(Directive::Split {
            loop_name: loop_name.into(),
            factor,
        });
        self
    }

    /// Binds a loop to an execution axis.
    pub fn bind(&mut self, loop_name: impl Into<String>, kind: ForKind) -> &mut Self {
        self.directives.push(Directive::Bind {
            loop_name: loop_name.into(),
            kind,
        });
        self
    }

    /// Fuses two adjacent loops (outer, inner vloop) — §5.1.
    pub fn fuse_loops(&mut self, outer: impl Into<String>, inner: impl Into<String>) -> &mut Self {
        self.directives.push(Directive::FuseLoops {
            outer: outer.into(),
            inner: inner.into(),
        });
        self
    }

    /// Bulk-pads a fused loop's total extent to a multiple.
    pub fn bulk_pad(&mut self, loop_name: impl Into<String>, multiple: usize) -> &mut Self {
        assert!(multiple > 0, "padding multiple must be positive");
        self.directives.push(Directive::BulkPad {
            loop_name: loop_name.into(),
            multiple,
        });
        self
    }

    /// Reorders the loop nest to the given permutation of the current
    /// loop names, outermost first (classic `reorder`; the paper's §4.1
    /// restriction that a vloop may not move outside its dependence is
    /// checked during lowering). Reordering only reduction loops against
    /// spatial loops is always value-preserving for `+=`/`max=`
    /// reductions; it changes cache behaviour and which loop is
    /// innermost (and hence fusable by the VM).
    pub fn reorder(&mut self, order: &[&str]) -> &mut Self {
        self.directives.push(Directive::Reorder {
            order: order.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Sets the thread-remap policy.
    pub fn thread_remap(&mut self, policy: RemapPolicy) -> &mut Self {
        self.directives.push(Directive::ThreadRemap(policy));
        self
    }

    /// Enables auxiliary-load hoisting.
    pub fn hoist_loads(&mut self) -> &mut Self {
        self.directives.push(Directive::HoistLoads);
        self
    }

    /// Marks a loop unrolled.
    pub fn unroll(&mut self, loop_name: impl Into<String>) -> &mut Self {
        self.directives.push(Directive::Unroll {
            loop_name: loop_name.into(),
        });
        self
    }

    /// Marks a loop vectorized.
    pub fn vectorize(&mut self, loop_name: impl Into<String>) -> &mut Self {
        self.directives.push(Directive::Vectorize {
            loop_name: loop_name.into(),
        });
        self
    }

    /// The configured remap policy (last directive wins).
    pub fn remap_policy(&self) -> RemapPolicy {
        self.directives
            .iter()
            .rev()
            .find_map(|d| match d {
                Directive::ThreadRemap(p) => Some(*p),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// True if load hoisting was requested.
    pub fn hoisting_enabled(&self) -> bool {
        self.directives
            .iter()
            .any(|d| matches!(d, Directive::HoistLoads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_in_order() {
        let mut s = Schedule::new();
        s.pad_loop("i", 2)
            .split("o", 4)
            .bind("o_o", ForKind::GpuBlockX);
        assert_eq!(s.directives().len(), 3);
        assert!(matches!(
            s.directives()[0],
            Directive::PadLoop { ref loop_name, multiple: 2 } if loop_name == "i"
        ));
    }

    #[test]
    fn remap_policy_last_wins() {
        let mut s = Schedule::new();
        assert_eq!(s.remap_policy(), RemapPolicy::Identity);
        s.thread_remap(RemapPolicy::LongestFirst);
        s.thread_remap(RemapPolicy::Reversed);
        assert_eq!(s.remap_policy(), RemapPolicy::Reversed);
    }

    #[test]
    fn hoisting_flag() {
        let mut s = Schedule::new();
        assert!(!s.hoisting_enabled());
        s.hoist_loads();
        assert!(s.hoisting_enabled());
    }

    #[test]
    #[should_panic(expected = "padding multiple must be positive")]
    fn zero_pad_rejected() {
        Schedule::new().pad_loop("i", 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ScheduleError::LoopPaddingExceedsStorage {
            loop_name: "i".into(),
            loop_pad: 8,
            storage_pad: 4,
        };
        let s = e.to_string();
        assert!(s.contains("storage padding must be at least"));
    }
}
