//! The shape-symbolic safety verifier: machine-checked proofs of the
//! two theorems the parallel tier's soundness rests on.
//!
//! CoRa's lowering emits dense-like unpredicated loops whose bounds come
//! from auxiliary data structures (PAPER.md §4), so every memory-safety
//! guarantee of the compiled tier is a statement about affine index
//! arithmetic over those bounds. This module proves, per outlined
//! program and shape:
//!
//! 1. **in-bounds** — every output store and auxiliary-table load lands
//!    inside its planned buffer, and every float input access implies a
//!    minimal input length ([`VerifyOutcome::required_inputs`]) that the
//!    execution entry points check against the buffers actually bound;
//! 2. **disjoint-store** — the store-index sets of any two distinct
//!    block-variable values are disjoint, the contract
//!    `VmShared::run_blocks` needs for lock-free shared-output writes.
//!
//! # How the proof works
//!
//! The engine is an abstract interpretation over the *strided interval*
//! domain [`SInt`] from `cora_ir::interval`. For each block value `b`
//! the outlined body is walked once with the block variable bound to
//! the point `{b}`, host parameters and hoisted bindings bound to their
//! concrete values, and auxiliary-table loads *grounded* in the built
//! prelude data (a point index reads the exact table entry; a range
//! index yields the table slice's min/max hull). Loop variables become
//! dense ranges; `If` guards narrow variable ranges along the taken
//! branch by Fourier–Motzkin elimination over the guard's linear form
//! ([`cora_ir::affine`]) — which is what makes padded/guarded schedules
//! (`pad_loop` + `split`) verify precisely. Every store to the output
//! records a strided region; after all blocks are walked, a
//! sort-and-sweep proves the regions of distinct blocks pairwise
//! disjoint, by interval separation or, for interleaved lanes, by
//! stride/congruence separation.
//!
//! The result is a [`StoreCert`] — the certificate the safe executor
//! entry point `VmShared::run_blocks_proven` enforces per store at run
//! time. Soundness therefore does not hinge on this module being
//! bug-free: the certificate is re-validated on construction and every
//! store is checked against it before it lands, so a verifier bug
//! surfaces as a deterministic panic, never a data race.
//!
//! Failures produce structured [`VerifyError`]s carrying the offending
//! store statement (pretty-printed via `cora_ir::printer`), its index
//! expression, and — for overlaps — the two block values and witness
//! regions, replacing the previously opaque "cannot be outlined"
//! rejection.
//!
//! [`symbolic_store_check`] is the *symbolic* companion (Rule A): a
//! shape-independent linear-form pass the outliner runs before any
//! concrete data exists, catching stores whose block-variable
//! coefficient cancels (`out[b - b + i]`) — programs that evade the
//! syntactic taint screen yet are definitely wrong for every shape.

// `VerifyError` carries full overlap witnesses (two regions + the
// pretty-printed store); the size only matters on the cold compile path.
#![allow(clippy::result_large_err)]

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use cora_exec::vm::StoreCert;
use cora_ir::affine::{linearize, LinForm, LinTerm};
use cora_ir::interval::SInt;
use cora_ir::printer::print_c;
use cora_ir::visit::free_vars;
use cora_ir::{Cond, CondKind, Env, Expr, ExprKind, FExpr, FExprKind, Stmt};

/// A failed safety proof, with the evidence.
#[derive(Debug, Clone)]
pub enum VerifyError {
    /// Two distinct block values may store to the same output element.
    StoreOverlap {
        /// Pretty-printed offending store statement.
        store: String,
        /// The store's index expression.
        index: String,
        /// First witness block value.
        block_a: i64,
        /// Its store region containing the collision.
        region_a: SInt,
        /// Second witness block value.
        block_b: i64,
        /// Its overlapping store region.
        region_b: SInt,
    },
    /// An access provably escapes a buffer of known size.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// The access's index expression.
        index: String,
        /// The abstract index range of the access.
        range: SInt,
        /// The buffer's planned size in elements.
        size: i64,
    },
    /// A store to the output whose index is block-invariant: every
    /// block writes the same elements (found symbolically, so it holds
    /// for *all* shapes).
    BlockInvariantStore {
        /// Pretty-printed offending store statement.
        store: String,
        /// The store's index expression.
        index: String,
    },
    /// The program uses a construct the verifier cannot bound (e.g. an
    /// unbounded store index).
    Unsupported {
        /// Description of the unsupported construct.
        what: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StoreOverlap {
                store,
                index,
                block_a,
                region_a,
                block_b,
                region_b,
            } => write!(
                f,
                "blocks {block_a} and {block_b} may store to the same output \
                 elements: regions {region_a} and {region_b} overlap at the \
                 store `{}` (index `{index}`)",
                store.trim_end()
            ),
            VerifyError::OutOfBounds {
                buffer,
                index,
                range,
                size,
            } => write!(
                f,
                "access to `{buffer}` via `{index}` spans {range}, escaping \
                 the planned size {size}"
            ),
            VerifyError::BlockInvariantStore { store, index } => write!(
                f,
                "the store `{}` indexes through `{index}`, whose linear form \
                 has block-variable coefficient 0: every block writes the \
                 same elements",
                store.trim_end()
            ),
            VerifyError::Unsupported { what } => {
                write!(f, "cannot bound {what}")
            }
        }
    }
}

/// Which proof strategy discharged the obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofKind {
    /// Per-block concrete abstract interpretation over strided
    /// intervals, grounded in the built prelude tables (shape-exact).
    ConcreteInterpretation,
}

/// A successful safety proof for one outlined program at one shape.
///
/// Recorded by `ParallelSession` so the safe wrapper around the
/// parallel executor cites a machine-checked artifact, and so callers
/// (tests, CI, the README's safety story) can inspect what was proven.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// The proof strategy used.
    pub proof: ProofKind,
    /// The disjoint-store certificate (per-block store regions,
    /// re-validated on construction) the executor enforces at run time.
    pub cert: StoreCert,
    /// Number of block values covered by the proof.
    pub n_blocks: usize,
    /// Number of distinct syntactic store sites to the output.
    pub store_sites: usize,
    /// Minimal length of each float input buffer implied by the proven
    /// access hulls, sorted by name. Execution entry points check the
    /// buffers actually bound against these.
    pub required_inputs: Vec<(String, i64)>,
}

impl VerifyOutcome {
    /// Minimal required length of `input`, if the program reads it.
    pub fn required_input_len(&self, input: &str) -> Option<i64> {
        self.required_inputs
            .binary_search_by(|(n, _)| n.as_str().cmp(input))
            .ok()
            .map(|i| self.required_inputs[i].1)
    }
}

/// Shape-level context the concrete proof runs against.
pub struct VerifyCtx<'a> {
    /// Host environment holding the built auxiliary integer tables
    /// (grounding for `Load` expressions).
    pub env: &'a Env,
    /// Scalar bindings: prelude parameters plus hoisted `LetInt`s,
    /// already evaluated on the host.
    pub scalars: &'a [(String, i64)],
    /// The designated output buffer name.
    pub output: &'a str,
    /// The output buffer's planned size in elements.
    pub output_size: usize,
}

/// Proves the in-bounds and disjoint-store theorems for an outlined
/// block body at one concrete shape.
///
/// `min` and `n_blocks` are the block loop's (host-evaluated) lower
/// bound and trip count: block values `min .. min + n_blocks` are each
/// interpreted abstractly and their store regions checked pairwise
/// disjoint.
///
/// # Errors
///
/// Returns a structured [`VerifyError`] naming the offending store,
/// its index expression and the witness regions when a proof fails.
pub fn verify_outlined(
    body: &Stmt,
    block_var: &str,
    min: i64,
    n_blocks: usize,
    ctx: &VerifyCtx<'_>,
) -> Result<VerifyOutcome, VerifyError> {
    let mut sites = SiteTable::default();
    let mut required: HashMap<String, i64> = HashMap::new();
    // (block value, site id, region) triples across all blocks.
    let mut spans: Vec<(i64, usize, SInt)> = Vec::new();

    for b in 0..n_blocks {
        let bv = min + i64::try_from(b).expect("block count fits i64");
        let mut st = BlockState {
            vars: HashMap::new(),
            env: ctx.env,
            output: ctx.output,
            output_size: i64::try_from(ctx.output_size).expect("output size fits i64"),
            scratch: Vec::new(),
            regions: Vec::new(),
            required: &mut required,
            sites: &mut sites,
        };
        for (name, v) in ctx.scalars {
            st.vars.insert(name.clone(), SInt::point(*v));
        }
        st.vars.insert(block_var.to_string(), SInt::point(bv));
        walk_stmt(body, &mut st)?;
        for (site, region) in st.regions {
            if !matches!(region, SInt::Empty) {
                spans.push((bv, site, region));
            }
        }
    }

    // Cross-block disjointness: sort by interval start and sweep; any
    // hull overlap between different blocks must be refuted by the
    // stride/congruence test.
    let mut sorted: Vec<(i64, i64, i64, usize, SInt)> = spans
        .iter()
        .filter_map(|&(bv, site, r)| r.hull().map(|(lo, hi)| (lo, hi, bv, site, r)))
        .collect();
    sorted.sort_by_key(|&(lo, hi, bv, _, _)| (lo, hi, bv));
    for i in 0..sorted.len() {
        let (_, hi_i, bv_i, site_i, r_i) = sorted[i];
        for &(lo_j, _, bv_j, site_j, r_j) in sorted.iter().skip(i + 1) {
            if lo_j > hi_i {
                break;
            }
            if bv_i != bv_j && !r_i.disjoint(r_j) {
                let (store, index) = sites.describe(site_i.min(site_j));
                return Err(VerifyError::StoreOverlap {
                    store,
                    index,
                    block_a: bv_i,
                    region_a: r_i,
                    block_b: bv_j,
                    region_b: r_j,
                });
            }
        }
    }

    // Assemble the certificate; its constructor re-validates the
    // disjointness we just proved (defence-in-depth, not redundancy:
    // the executor trusts only the certificate's own invariant).
    let mut per_block: HashMap<i64, Vec<SInt>> = HashMap::new();
    for (bv, _, r) in spans {
        per_block.entry(bv).or_default().push(r);
    }
    let cert = StoreCert::new(per_block).map_err(|e| VerifyError::Unsupported {
        what: format!("certificate re-validation disagreed with the proof: {e}"),
    })?;

    let mut required_inputs: Vec<(String, i64)> = required.into_iter().collect();
    required_inputs.sort();
    Ok(VerifyOutcome {
        proof: ProofKind::ConcreteInterpretation,
        cert,
        n_blocks,
        store_sites: sites.len(),
        required_inputs,
    })
}

// ---------------------------------------------------------------------
// Concrete per-block abstract interpretation
// ---------------------------------------------------------------------

/// Interns output-store sites by their pretty print, so regions from
/// different blocks attribute overlaps to a stable site identity.
#[derive(Default)]
struct SiteTable {
    ids: HashMap<String, usize>,
    /// `(store print, index print)` per site id.
    descs: Vec<(String, String)>,
}

impl SiteTable {
    fn intern(&mut self, s: &Stmt, index: &Expr) -> usize {
        let store = print_c(s);
        if let Some(&id) = self.ids.get(&store) {
            return id;
        }
        let id = self.descs.len();
        self.ids.insert(store.clone(), id);
        self.descs.push((store, format!("{index}")));
        id
    }

    fn describe(&self, id: usize) -> (String, String) {
        self.descs[id].clone()
    }

    fn len(&self) -> usize {
        self.descs.len()
    }
}

struct BlockState<'a> {
    /// Abstract values of in-scope integer variables.
    vars: HashMap<String, SInt>,
    /// Ground truth for auxiliary-table loads.
    env: &'a Env,
    output: &'a str,
    output_size: i64,
    /// Innermost-last `Alloc` scopes: scratch name and minimal
    /// guaranteed capacity (when the size expression is bounded below).
    scratch: Vec<(String, Option<i64>)>,
    /// Output store regions recorded by this block, per site.
    regions: Vec<(usize, SInt)>,
    /// Float-input access hulls (minimal required lengths), shared
    /// across blocks.
    required: &'a mut HashMap<String, i64>,
    sites: &'a mut SiteTable,
}

impl BlockState<'_> {
    /// The innermost `Alloc` scope covering `name`, if any.
    fn scratch_capacity(&self, name: &str) -> Option<Option<i64>> {
        self.scratch
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, cap)| *cap)
    }

    /// Binds `var`, returning the shadowed value for scope restoration.
    fn bind(&mut self, var: &str, v: SInt) -> Option<SInt> {
        self.vars.insert(var.to_string(), v)
    }

    fn restore(&mut self, var: &str, old: Option<SInt>) {
        match old {
            Some(v) => {
                self.vars.insert(var.to_string(), v);
            }
            None => {
                self.vars.remove(var);
            }
        }
    }
}

fn walk_stmt(s: &Stmt, st: &mut BlockState<'_>) -> Result<(), VerifyError> {
    match s {
        Stmt::For {
            var,
            min,
            extent,
            body,
            ..
        } => {
            let mn = eval_expr(min, st)?;
            let ext = eval_expr(extent, st)?;
            // A provably zero-trip loop contributes nothing (the empty
            // rows of a ragged batch).
            if matches!(ext.hull(), Some((_, hi)) if hi <= 0) {
                return Ok(());
            }
            let range = match (mn.hull(), ext.hull()) {
                (Some((lo, _)), Some((_, ehi))) => {
                    let (_, mhi) = mn.hull().expect("checked");
                    SInt::range(lo, mhi.saturating_add(ehi).saturating_sub(1))
                }
                _ => SInt::Top,
            };
            let old = st.bind(var, range);
            let r = walk_stmt(body, st);
            st.restore(var, old);
            r
        }
        Stmt::LetInt { var, value, body } => {
            let v = eval_expr(value, st)?;
            let old = st.bind(var, v);
            let r = walk_stmt(body, st);
            st.restore(var, old);
            r
        }
        Stmt::Store {
            buffer,
            index,
            value,
            ..
        } => {
            walk_fexpr(value, st)?;
            let idx = eval_expr(index, st)?;
            if let Some(cap) = st.scratch_capacity(buffer) {
                check_known_bounds(buffer, index, idx, cap, st)?;
            } else if buffer == st.output {
                check_known_bounds(buffer, index, idx, Some(st.output_size), st)?;
                let site = st.sites.intern(s, index);
                match st.regions.iter_mut().find(|(id, _)| *id == site) {
                    Some((_, r)) => *r = r.union(idx),
                    None => st.regions.push((site, idx)),
                }
            } else {
                // The outliner's screen rejects stores to shared inputs
                // before the verifier ever runs; record the hull anyway
                // so a direct caller still gets the bound.
                record_required(buffer, idx, st);
            }
            Ok(())
        }
        Stmt::If { cond, then_, else_ } => {
            match eval_cond(cond, st)? {
                Some(true) => walk_stmt(then_, st),
                Some(false) => match else_ {
                    Some(e) => walk_stmt(e, st),
                    None => Ok(()),
                },
                None => {
                    // Walk the taken branch under the guard-narrowed
                    // ranges; infeasible narrowing skips the branch.
                    walk_under_narrowing(cond, then_, st)?;
                    if let Some(e) = else_ {
                        walk_stmt(e, st)?;
                    }
                    Ok(())
                }
            }
        }
        Stmt::Seq(items) => {
            for item in items {
                walk_stmt(item, st)?;
            }
            Ok(())
        }
        Stmt::Alloc { buffer, size, body } => {
            let sz = eval_expr(size, st)?;
            let cap = sz.hull().map(|(lo, _)| lo);
            st.scratch.push((buffer.clone(), cap));
            let r = walk_stmt(body, st);
            st.scratch.pop();
            r
        }
        Stmt::Nop => Ok(()),
    }
}

fn walk_fexpr(f: &FExpr, st: &mut BlockState<'_>) -> Result<(), VerifyError> {
    match f.kind() {
        FExprKind::Const(_) => Ok(()),
        FExprKind::Load(buf, idx) => {
            let r = eval_expr(idx, st)?;
            if let Some(cap) = st.scratch_capacity(buf) {
                check_known_bounds(buf, idx, r, cap, st)?;
            } else if buf == st.output {
                // The outliner rejects in-place programs; a direct
                // caller still gets the output bound checked.
                check_known_bounds(buf, idx, r, Some(st.output_size), st)?;
            } else {
                record_required(buf, r, st);
            }
            Ok(())
        }
        FExprKind::Cast(e) => eval_expr(e, st).map(|_| ()),
        FExprKind::Add(a, b)
        | FExprKind::Sub(a, b)
        | FExprKind::Mul(a, b)
        | FExprKind::Div(a, b)
        | FExprKind::Max(a, b) => {
            walk_fexpr(a, st)?;
            walk_fexpr(b, st)
        }
        FExprKind::Unary(_, a) => walk_fexpr(a, st),
        FExprKind::Select(cond, a, b) => match eval_cond(cond, st)? {
            Some(true) => walk_fexpr(a, st),
            Some(false) => walk_fexpr(b, st),
            None => {
                walk_fexpr_under_narrowing(cond, a, st)?;
                walk_fexpr(b, st)
            }
        },
    }
}

/// Bounds check for a buffer with a known (minimum) capacity. `None`
/// capacity means the size expression itself was unbounded — nothing
/// can be proven, which is an error for the output and tolerated for
/// scratch (the VM's slice indexing still panics safely at run time).
fn check_known_bounds(
    buffer: &str,
    index: &Expr,
    r: SInt,
    cap: Option<i64>,
    st: &BlockState<'_>,
) -> Result<(), VerifyError> {
    if matches!(r, SInt::Empty) {
        return Ok(());
    }
    let oob = |size: i64| VerifyError::OutOfBounds {
        buffer: buffer.to_string(),
        index: format!("{index}"),
        range: r,
        size,
    };
    match cap {
        Some(size) => match r.hull() {
            Some((lo, hi)) if lo >= 0 && hi < size => Ok(()),
            _ => Err(oob(size)),
        },
        None if buffer == st.output => Err(oob(st.output_size)),
        None => Ok(()),
    }
}

/// Records the minimal length `buf` must have to cover the access `r`.
fn record_required(buf: &str, r: SInt, st: &mut BlockState<'_>) {
    if let Some((_, hi)) = r.hull() {
        let need = hi.saturating_add(1).max(0);
        let e = st.required.entry(buf.to_string()).or_insert(0);
        *e = (*e).max(need);
    }
}

// -- Expression evaluation over strided intervals ---------------------

fn eval_expr(e: &Expr, st: &mut BlockState<'_>) -> Result<SInt, VerifyError> {
    Ok(match e.kind() {
        ExprKind::Int(v) => SInt::point(*v),
        ExprKind::Var(n) => st.vars.get(n).copied().unwrap_or(SInt::Top),
        ExprKind::Add(a, b) => eval_expr(a, st)?.add(eval_expr(b, st)?),
        ExprKind::Sub(a, b) => eval_expr(a, st)?.sub(eval_expr(b, st)?),
        ExprKind::Mul(a, b) => eval_expr(a, st)?.mul(eval_expr(b, st)?),
        ExprKind::FloorDiv(a, b) => {
            let sa = eval_expr(a, st)?;
            match eval_expr(b, st)?.as_point() {
                Some(c) if c >= 1 => sa.floor_div_const(c),
                _ => SInt::Top,
            }
        }
        ExprKind::FloorMod(a, b) => {
            let sa = eval_expr(a, st)?;
            match eval_expr(b, st)?.as_point() {
                Some(c) if c >= 1 => sa.floor_mod_const(c),
                _ => SInt::Top,
            }
        }
        ExprKind::Min(a, b) => eval_expr(a, st)?.min_s(eval_expr(b, st)?),
        ExprKind::Max(a, b) => eval_expr(a, st)?.max_s(eval_expr(b, st)?),
        ExprKind::Select(c, a, b) => match eval_cond(c, st)? {
            Some(true) => eval_expr(a, st)?,
            Some(false) => eval_expr(b, st)?,
            None => eval_expr(a, st)?.union(eval_expr(b, st)?),
        },
        // Outlined bodies carry no uninterpreted functions (lowering
        // grounds them into aux tables), but be total regardless.
        ExprKind::Uf(..) => SInt::Top,
        ExprKind::Load(buf, idx) => {
            let r = eval_expr(idx, st)?;
            let Some(data) = st.env.buffer(buf) else {
                return Err(VerifyError::Unsupported {
                    what: format!("a load from unbuilt auxiliary table `{buf}`"),
                });
            };
            let len = i64::try_from(data.len()).expect("table length fits i64");
            match r {
                SInt::Empty => SInt::Empty,
                SInt::Top => {
                    return Err(VerifyError::OutOfBounds {
                        buffer: buf.clone(),
                        index: format!("{idx}"),
                        range: SInt::Top,
                        size: len,
                    });
                }
                SInt::Set { lo, hi, stride } => {
                    if lo < 0 || hi >= len {
                        return Err(VerifyError::OutOfBounds {
                            buffer: buf.clone(),
                            index: format!("{idx}"),
                            range: r,
                            size: len,
                        });
                    }
                    if lo == hi {
                        SInt::point(data[usize::try_from(lo).expect("non-negative")])
                    } else {
                        // Hull of the touched members: exact min/max over
                        // the congruence class within the slice.
                        let mut vmin = i64::MAX;
                        let mut vmax = i64::MIN;
                        let mut i = lo;
                        while i <= hi {
                            let v = data[usize::try_from(i).expect("non-negative")];
                            vmin = vmin.min(v);
                            vmax = vmax.max(v);
                            i += stride;
                        }
                        SInt::range(vmin, vmax)
                    }
                }
            }
        }
    })
}

/// Three-valued condition evaluation: `Some(b)` when provable, `None`
/// when the hulls do not decide it.
fn eval_cond(c: &Cond, st: &mut BlockState<'_>) -> Result<Option<bool>, VerifyError> {
    Ok(match c.kind() {
        CondKind::Const(b) => Some(*b),
        CondKind::Lt(a, b) => cmp_hulls(eval_expr(a, st)?, eval_expr(b, st)?, true),
        CondKind::Le(a, b) => cmp_hulls(eval_expr(a, st)?, eval_expr(b, st)?, false),
        CondKind::Eq(a, b) => {
            let (sa, sb) = (eval_expr(a, st)?, eval_expr(b, st)?);
            match (sa.as_point(), sb.as_point()) {
                (Some(x), Some(y)) => Some(x == y),
                _ if sa.disjoint(sb) => Some(false),
                _ => None,
            }
        }
        CondKind::Ne(a, b) => {
            let (sa, sb) = (eval_expr(a, st)?, eval_expr(b, st)?);
            match (sa.as_point(), sb.as_point()) {
                (Some(x), Some(y)) => Some(x != y),
                _ if sa.disjoint(sb) => Some(true),
                _ => None,
            }
        }
        CondKind::And(x, y) => match (eval_cond(x, st)?, eval_cond(y, st)?) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        CondKind::Or(x, y) => match (eval_cond(x, st)?, eval_cond(y, st)?) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        CondKind::Not(x) => eval_cond(x, st)?.map(|b| !b),
    })
}

/// `a < b` (strict) or `a <= b` over interval hulls.
fn cmp_hulls(a: SInt, b: SInt, strict: bool) -> Option<bool> {
    let ((alo, ahi), (blo, bhi)) = (a.hull()?, b.hull()?);
    if (strict && ahi < blo) || (!strict && ahi <= blo) {
        Some(true)
    } else if (strict && alo >= bhi) || (!strict && alo > bhi) {
        Some(false)
    } else {
        None
    }
}

// -- Guard narrowing (Fourier–Motzkin over linear forms) --------------

/// Walks `body` with variable ranges narrowed by assuming `cond` holds;
/// a narrowing that empties a range proves the branch infeasible for
/// this block, so the body is skipped.
fn walk_under_narrowing(
    cond: &Cond,
    body: &Stmt,
    st: &mut BlockState<'_>,
) -> Result<(), VerifyError> {
    let (saved, feasible) = apply_narrowing(cond, st)?;
    let r = if feasible {
        walk_stmt(body, st)
    } else {
        Ok(())
    };
    for (name, old) in saved {
        st.restore(&name, old);
    }
    r
}

/// [`walk_under_narrowing`] for a float `Select`'s taken branch.
fn walk_fexpr_under_narrowing(
    cond: &Cond,
    f: &FExpr,
    st: &mut BlockState<'_>,
) -> Result<(), VerifyError> {
    let (saved, feasible) = apply_narrowing(cond, st)?;
    let r = if feasible { walk_fexpr(f, st) } else { Ok(()) };
    for (name, old) in saved {
        st.restore(&name, old);
    }
    r
}

/// Bindings shadowed by a guard narrowing, to restore on branch exit.
type Shadowed = Vec<(String, Option<SInt>)>;

/// Applies the narrowings implied by `cond` to the variable ranges,
/// returning the shadowed bindings and whether the branch remains
/// feasible (an emptied range means it cannot execute).
fn apply_narrowing(cond: &Cond, st: &mut BlockState<'_>) -> Result<(Shadowed, bool), VerifyError> {
    let mut saved = Vec::new();
    let feasible = narrow_cond(cond, st, &mut saved)?;
    Ok((saved, feasible))
}

fn narrow_cond(
    cond: &Cond,
    st: &mut BlockState<'_>,
    saved: &mut Vec<(String, Option<SInt>)>,
) -> Result<bool, VerifyError> {
    match cond.kind() {
        CondKind::And(a, b) => Ok(narrow_cond(a, st, saved)? && narrow_cond(b, st, saved)?),
        // `a < b`  ⇔  a − b ≤ −1;  `a <= b`  ⇔  a − b ≤ 0.
        CondKind::Lt(a, b) => narrow_le(a, b, -1, st, saved),
        CondKind::Le(a, b) => narrow_le(a, b, 0, st, saved),
        CondKind::Eq(a, b) => Ok(narrow_le(a, b, 0, st, saved)? && narrow_le(b, a, 0, st, saved)?),
        // `Or`/`Not`/`Ne` narrow nothing (sound: wider ranges only).
        _ => Ok(true),
    }
}

/// Narrows every variable appearing linearly in `lhs − rhs ≤ bound`:
/// for coefficient `c > 0`, `v ≤ ⌊(bound − rest_lo) / c⌋`; for
/// `c < 0` (as `−d`), `v ≥ ⌈(rest_lo − bound) / d⌉`, where `rest` is
/// the form without `v`'s term, evaluated over the current ranges.
fn narrow_le(
    lhs: &Expr,
    rhs: &Expr,
    bound: i64,
    st: &mut BlockState<'_>,
    saved: &mut Vec<(String, Option<SInt>)>,
) -> Result<bool, VerifyError> {
    let binds = HashMap::new();
    let form = linearize(lhs, &binds).sub(&linearize(rhs, &binds));
    let vars: Vec<(String, i64)> = form
        .terms()
        .filter_map(|(t, c)| match t {
            LinTerm::Var(n) => Some((n.clone(), c)),
            LinTerm::Opaque(_) => None,
        })
        .collect();
    for (name, c) in vars {
        // Only narrow variables whose current range is a dense-ish set;
        // unknown variables have nothing to tighten.
        let Some(cur) = st.vars.get(&name).copied() else {
            continue;
        };
        let SInt::Set { lo, hi, stride } = cur else {
            continue;
        };
        let mut rest = form.clone();
        rest.remove_var(&name);
        let Some((rest_lo, _)) = eval_linform(&rest, st)?.hull() else {
            continue;
        };
        let narrowed = if c > 0 {
            let new_hi = (bound - rest_lo).div_euclid(c);
            clamp_sint(lo, hi, stride, None, Some(new_hi))
        } else {
            let d = -c;
            let new_lo = (rest_lo - bound + d - 1).div_euclid(d);
            clamp_sint(lo, hi, stride, Some(new_lo), None)
        };
        if narrowed != cur {
            saved.push((name.clone(), st.bind(&name, narrowed)));
        }
        if matches!(narrowed, SInt::Empty) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Members of `{lo, lo+stride, …, hi}` clamped into the given bounds,
/// keeping the congruence class.
fn clamp_sint(lo: i64, hi: i64, stride: i64, min: Option<i64>, max: Option<i64>) -> SInt {
    let new_lo = match min {
        Some(m) if m > lo => {
            lo + (m - lo).div_euclid(stride) * stride + {
                if (m - lo).rem_euclid(stride) == 0 {
                    0
                } else {
                    stride
                }
            }
        }
        _ => lo,
    };
    let new_hi = match max {
        Some(m) if m < hi => m,
        _ => hi,
    };
    SInt::make(new_lo, new_hi, stride)
}

/// Interval hull of a linear form under the current variable ranges
/// (opaque terms evaluate through [`eval_expr`]).
fn eval_linform(f: &LinForm, st: &mut BlockState<'_>) -> Result<SInt, VerifyError> {
    let mut acc = SInt::point(f.constant_part());
    for (t, c) in f.terms().map(|(t, c)| (t.clone(), c)).collect::<Vec<_>>() {
        let v = match &t {
            LinTerm::Var(n) => st.vars.get(n).copied().unwrap_or(SInt::Top),
            LinTerm::Opaque(e) => eval_expr(e, st)?,
        };
        acc = acc.add(v.mul_const(c));
    }
    Ok(acc)
}

// ---------------------------------------------------------------------
// Rule A: symbolic block-invariance (shape-independent)
// ---------------------------------------------------------------------

/// Symbolically checks every store to `output` for a block-invariant
/// index: a store whose index's linear form has block-variable
/// coefficient 0 and no remaining term that can depend on the block
/// variable is *definitely* wrong — every block writes the same
/// elements, regardless of shapes. This catches cancellation forms
/// (`out[b − b + i]`, `out[b·0 + i]`) that evade the syntactic taint
/// screen, before any concrete shape data exists.
///
/// Taint flows like the screen's: a `For`/`LetInt` variable is
/// block-dependent iff its `min`/value form depends on a tainted
/// variable; shadowing un-taints for the scope. `LetInt` values are
/// substituted through the linear form, so cancellation across a
/// binding is also caught.
///
/// Returns the first offending store as a [`VerifyError::BlockInvariantStore`].
pub fn symbolic_store_check(body: &Stmt, output: &str, block_var: &str) -> Result<(), VerifyError> {
    let mut binds: HashMap<String, LinForm> = HashMap::new();
    let mut tainted: Vec<String> = vec![block_var.to_string()];
    sym_walk(body, output, &mut binds, &mut tainted)
}

fn form_tainted(f: &LinForm, tainted: &[String]) -> bool {
    f.terms().any(|(t, _)| match t {
        LinTerm::Var(n) => tainted.iter().any(|t| t == n),
        LinTerm::Opaque(e) => {
            let mut vs = BTreeSet::new();
            free_vars(e, &mut vs);
            tainted.iter().any(|t| vs.contains(t))
        }
    })
}

fn sym_walk(
    s: &Stmt,
    output: &str,
    binds: &mut HashMap<String, LinForm>,
    tainted: &mut Vec<String>,
) -> Result<(), VerifyError> {
    match s {
        Stmt::For { var, min, body, .. } => {
            sym_scope(var, min, body, output, binds, tainted, false)
        }
        Stmt::LetInt { var, value, body } => {
            sym_scope(var, value, body, output, binds, tainted, true)
        }
        Stmt::Store { buffer, index, .. } => {
            if buffer == output {
                let form = linearize(index, binds);
                if form.coeff_of(block_var_of(tainted)) == 0 && !form_tainted(&form, tainted) {
                    return Err(VerifyError::BlockInvariantStore {
                        store: print_c(s),
                        index: format!("{index}"),
                    });
                }
            }
            Ok(())
        }
        Stmt::If { then_, else_, .. } => {
            sym_walk(then_, output, binds, tainted)?;
            if let Some(e) = else_ {
                sym_walk(e, output, binds, tainted)?;
            }
            Ok(())
        }
        Stmt::Seq(items) => {
            for item in items {
                sym_walk(item, output, binds, tainted)?;
            }
            Ok(())
        }
        Stmt::Alloc { buffer, body, .. } => {
            if buffer == output {
                // Scratch shadowing the output name: inner stores are
                // private (the screen established this already).
                return Ok(());
            }
            sym_walk(body, output, binds, tainted)
        }
        Stmt::Nop => Ok(()),
    }
}

/// The root taint — index 0 is always the block variable itself.
fn block_var_of(tainted: &[String]) -> &str {
    &tainted[0]
}

/// Scoping protocol for one binding site: compute the bound form, set
/// taint, shadow, recurse, restore. `substitute` distinguishes `LetInt`
/// (value substitutes through forms) from `For` (the variable is a
/// range, only its taint propagates).
#[allow(clippy::too_many_arguments)]
fn sym_scope(
    var: &str,
    dep: &Expr,
    body: &Stmt,
    output: &str,
    binds: &mut HashMap<String, LinForm>,
    tainted: &mut Vec<String>,
    substitute: bool,
) -> Result<(), VerifyError> {
    let dep_form = linearize(dep, binds);
    let var_tainted = form_tainted(&dep_form, tainted);
    let shadowed_bind = if substitute {
        binds.insert(var.to_string(), dep_form)
    } else {
        binds.remove(var)
    };
    let shadow_pos = tainted.iter().position(|t| t == var);
    let was_shadowed = if let Some(p) = shadow_pos {
        // Never shadow the block variable itself out of the root slot.
        if p == 0 {
            false
        } else {
            tainted.remove(p);
            true
        }
    } else {
        false
    };
    if var_tainted {
        tainted.push(var.to_string());
    }
    let r = sym_walk(body, output, binds, tainted);
    if var_tainted {
        tainted.pop();
    }
    if was_shadowed {
        tainted.push(var.to_string());
    }
    match shadowed_bind {
        Some(f) => {
            binds.insert(var.to_string(), f);
        }
        None => {
            binds.remove(var);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_ir::FExpr;

    fn ctx_env() -> Env {
        let mut env = Env::new();
        env.set_buffer("row", vec![0i64, 5, 5, 8]);
        env.set_buffer("lens", vec![5i64, 0, 3, 2]);
        env
    }

    fn doubling_body() -> Stmt {
        let idx = Expr::load("row", Expr::var("b")) + Expr::var("i");
        Stmt::loop_(
            "i",
            Expr::load("lens", Expr::var("b")),
            Stmt::store("out", idx.clone(), FExpr::load("A", idx) * 2.0),
        )
    }

    #[test]
    fn ragged_row_partition_verifies() {
        let env = ctx_env();
        let ctx = VerifyCtx {
            env: &env,
            scalars: &[],
            output: "out",
            output_size: 10,
        };
        let out = verify_outlined(&doubling_body(), "b", 0, 4, &ctx).expect("verifies");
        assert_eq!(out.n_blocks, 4);
        assert_eq!(out.store_sites, 1);
        assert_eq!(out.cert.regions_for(0), &[SInt::range(0, 4)]);
        // Block 1 is a zero-length row: no region at all.
        assert!(out.cert.regions_for(1).is_empty());
        assert_eq!(out.required_input_len("A"), Some(10));
    }

    #[test]
    fn overlapping_rows_are_rejected_with_witnesses() {
        let mut env = Env::new();
        // Rows 0 and 2 share element 4.
        env.set_buffer("row", vec![0i64, 5, 4, 8]);
        env.set_buffer("lens", vec![5i64, 0, 3, 2]);
        let ctx = VerifyCtx {
            env: &env,
            scalars: &[],
            output: "out",
            output_size: 10,
        };
        let err = verify_outlined(&doubling_body(), "b", 0, 4, &ctx).unwrap_err();
        match &err {
            VerifyError::StoreOverlap {
                block_a, block_b, ..
            } => {
                assert_eq!((*block_a, *block_b), (0, 2));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("out["), "store cited: {msg}");
        assert!(msg.contains("overlap"), "{msg}");
    }

    #[test]
    fn out_of_bounds_store_is_rejected() {
        let env = ctx_env();
        let ctx = VerifyCtx {
            env: &env,
            scalars: &[],
            output: "out",
            output_size: 9, // one short of the required 10
        };
        let err = verify_outlined(&doubling_body(), "b", 0, 4, &ctx).unwrap_err();
        assert!(matches!(err, VerifyError::OutOfBounds { .. }), "{err}");
        assert!(err.to_string().contains("escaping"), "{err}");
    }

    #[test]
    fn padded_guarded_loop_narrows_to_true_extent() {
        // for i in 0..8 { if i < lens[b] { out[row[b] + i] = 1 } } — the
        // pad_loop shape. Without guard narrowing the padded hull would
        // collide with the next row.
        let env = ctx_env();
        let idx = Expr::load("row", Expr::var("b")) + Expr::var("i");
        let body = Stmt::loop_(
            "i",
            Expr::int(8),
            Stmt::if_then(
                Expr::var("i").lt(Expr::load("lens", Expr::var("b"))),
                Stmt::store("out", idx, FExpr::constant(1.0)),
            ),
        );
        let ctx = VerifyCtx {
            env: &env,
            scalars: &[],
            output: "out",
            output_size: 10,
        };
        let out = verify_outlined(&body, "b", 0, 4, &ctx).expect("narrowing verifies");
        assert_eq!(out.cert.regions_for(0), &[SInt::range(0, 4)]);
        assert_eq!(out.cert.regions_for(3), &[SInt::range(8, 9)]);
    }

    #[test]
    fn interleaved_lanes_verify_by_congruence() {
        // Block b writes out[i*2 + b] for i in 0..4: hulls overlap,
        // parity separates.
        let body = Stmt::loop_(
            "i",
            Expr::int(4),
            Stmt::store(
                "out",
                Expr::var("i") * 2 + Expr::var("b"),
                FExpr::constant(1.0),
            ),
        );
        let env = Env::new();
        let ctx = VerifyCtx {
            env: &env,
            scalars: &[],
            output: "out",
            output_size: 8,
        };
        let out = verify_outlined(&body, "b", 0, 2, &ctx).expect("parity lanes verify");
        assert_eq!(out.cert.regions_for(0), &[SInt::make(0, 6, 2)]);
        assert_eq!(out.cert.regions_for(1), &[SInt::make(1, 7, 2)]);
    }

    #[test]
    fn symbolic_check_catches_cancelled_block_coefficient() {
        // out[b − b + i]: the taint screen sees `b` mentioned; the
        // linear form knows the coefficient is zero.
        let body = Stmt::loop_(
            "i",
            Expr::int(4),
            Stmt::store(
                "out",
                Expr::var("b") - Expr::var("b") + Expr::var("i"),
                FExpr::constant(1.0),
            ),
        );
        let err = symbolic_store_check(&body, "out", "b").unwrap_err();
        assert!(matches!(err, VerifyError::BlockInvariantStore { .. }));
        let msg = err.to_string();
        assert!(msg.contains("coefficient 0"), "{msg}");

        // out[b·0 + i] likewise.
        let zero = Stmt::loop_(
            "i",
            Expr::int(4),
            #[allow(clippy::erasing_op)] // the cancellation is the point
            Stmt::store(
                "out",
                Expr::var("b") * 0 + Expr::var("i"),
                FExpr::constant(1.0),
            ),
        );
        assert!(symbolic_store_check(&zero, "out", "b").is_err());

        // The legitimate hoisted-row pattern stays accepted.
        let ok = Stmt::LetInt {
            var: "h".into(),
            value: Expr::load("row", Expr::var("b")),
            body: Box::new(Stmt::loop_(
                "i",
                Expr::int(4),
                Stmt::store("out", Expr::var("h") + Expr::var("i"), FExpr::constant(1.0)),
            )),
        };
        assert!(symbolic_store_check(&ok, "out", "b").is_ok());
    }
}
