//! Lowering: Ragged API + schedule → loop-nest IR + prelude spec (§5).
//!
//! The pipeline applies scheduling directives in order (padding, splitting,
//! binding, vloop fusion, bulk padding), builds the statement IR with all
//! tensor accesses lowered through Algorithm 1, simplifies index
//! expressions, elides guards the solver proves redundant, and optionally
//! hoists loop-invariant auxiliary loads (§D.7).
//!
//! Memory legality follows the paper: loop padding must be covered by
//! storage padding (§4.1), checked here; bulk padding follows §6's
//! contract — "our implementation currently expects users to correctly
//! allocate memory (taking into account padding requirements as specified
//! in the schedule)".

use std::collections::HashMap;

use cora_ir::{Cond, Expr, ForKind, Solver, Stmt, StoreKind};
use cora_ragged::LengthFn;

use crate::api::{LoopExtent, Operator};
use crate::prelude_gen::{FusionSpec, PreludeSpec};
use crate::program::{BlockCost, Program};
use crate::schedule::{Directive, ScheduleError};

/// A loop after scheduling, before statement construction.
#[derive(Debug, Clone)]
struct LoweredLoop {
    var: String,
    extent: ExtentIr,
    kind: ForKind,
    /// Guard to apply inside this loop (from non-dividing constant
    /// splits): `cond` must hold for the body to execute.
    guard: Option<Cond>,
}

/// Extent representation of a scheduled loop.
#[derive(Debug, Clone)]
enum ExtentIr {
    Const(i64),
    /// Extent read from a prelude-built table at the dependence variable.
    Table {
        buffer: String,
        dep_var: String,
        lens: LengthFn,
    },
    /// Extent is a runtime parameter (fused loops), bound by the prelude.
    Param {
        var: String,
        value: i64,
    },
}

impl ExtentIr {
    fn to_expr(&self) -> Expr {
        match self {
            ExtentIr::Const(e) => Expr::int(*e),
            ExtentIr::Table {
                buffer, dep_var, ..
            } => Expr::load(buffer.clone(), Expr::var(dep_var.clone())),
            ExtentIr::Param { var, .. } => Expr::var(var.clone()),
        }
    }

    fn max(&self) -> i64 {
        match self {
            ExtentIr::Const(e) => *e,
            ExtentIr::Table { lens, .. } => lens.max() as i64,
            ExtentIr::Param { value, .. } => *value,
        }
    }
}

/// Lowers an operator to an executable [`Program`].
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the schedule is illegal (unknown
/// loops, loop padding beyond storage padding, splitting unpadded vloops,
/// non-adjacent fusion).
pub fn lower(op: &Operator) -> Result<Program, ScheduleError> {
    let mut loops: Vec<LoweredLoop> = Vec::new();
    let n_spatial = op.loops.len();
    // Map original loop name -> expression reconstructing it from the
    // scheduled loops.
    let mut var_map: HashMap<String, Expr> = HashMap::new();
    // Original loop name -> position of its *spec* (for dep resolution).
    let spatial_names: Vec<String> = op.loops.iter().map(|l| l.name.clone()).collect();

    let mut prelude = PreludeSpec::new();
    for t in op.inputs.iter().chain(std::iter::once(&op.output)) {
        prelude.add_tensor(t.name(), t.layout_arc());
    }

    for (pos, spec) in op.loops.iter().chain(op.reduce.iter()).enumerate() {
        let extent = match &spec.extent {
            LoopExtent::Fixed(e) => ExtentIr::Const(*e as i64),
            LoopExtent::Variable { dep, lens } => {
                let dep_name = spatial_names
                    .get(*dep)
                    .unwrap_or_else(|| {
                        panic!(
                            "loop `{}` depends on loop index {dep} out of range",
                            spec.name
                        )
                    })
                    .clone();
                let buffer = format!("{}__ext_{}", op.name, spec.name);
                ExtentIr::Table {
                    buffer,
                    dep_var: dep_name,
                    lens: lens.clone(),
                }
            }
        };
        let _ = pos;
        // Operation splitting shifts the loop variable: the body sees
        // `var + shift_table[dep]` while the loop itself runs from 0.
        let reconstructed = match op.shifts.iter().find(|s| s.loop_name == spec.name) {
            Some(shift) => {
                let dep_name = spatial_names[shift.dep].clone();
                prelude.add_loop_table(&shift.buffer, shift.lens.clone());
                Expr::var(spec.name.clone()) + Expr::load(shift.buffer.clone(), Expr::var(dep_name))
            }
            None => Expr::var(spec.name.clone()),
        };
        var_map.insert(spec.name.clone(), reconstructed);
        loops.push(LoweredLoop {
            var: spec.name.clone(),
            extent,
            kind: ForKind::Serial,
            guard: None,
        });
    }

    let mut fusions: Vec<FusionSpec> = Vec::new();

    for directive in op.schedule.directives() {
        match directive {
            Directive::PadLoop {
                loop_name,
                multiple,
            } => {
                let idx = find_loop(&loops, loop_name)?;
                match &mut loops[idx].extent {
                    ExtentIr::Table { lens, .. } => {
                        // Legality: if this is a spatial loop, the output
                        // storage padding must cover the loop padding.
                        if let Some(dpos) = op.loops.iter().position(|l| &l.name == loop_name) {
                            let out_lens = op.output.layout().padded_lens(dpos);
                            if let Some(store_lens) = out_lens {
                                let loop_padded = lens.padded(*multiple);
                                for (slice, (&lp, &sp)) in loop_padded
                                    .as_slice()
                                    .iter()
                                    .zip(store_lens.as_slice())
                                    .enumerate()
                                {
                                    if lp > sp {
                                        let _ = slice;
                                        return Err(ScheduleError::LoopPaddingExceedsStorage {
                                            loop_name: loop_name.clone(),
                                            loop_pad: *multiple,
                                            storage_pad: op.output.layout().dims()[dpos].pad,
                                        });
                                    }
                                }
                            }
                        }
                        *lens = lens.padded(*multiple);
                    }
                    ExtentIr::Const(e) => {
                        *e = (*e as usize).div_ceil(*multiple) as i64 * *multiple as i64;
                    }
                    ExtentIr::Param { .. } => {
                        // Padding a fused loop is bulk padding; redirect.
                        return Err(ScheduleError::UnknownLoop(format!(
                            "{loop_name} (use bulk_pad for fused loops)"
                        )));
                    }
                }
            }
            Directive::Split { loop_name, factor } => {
                let idx = find_loop(&loops, loop_name)?;
                let f = *factor as i64;
                let (outer_ext, inner_guard) = match &loops[idx].extent {
                    ExtentIr::Const(e) => {
                        let outer = (*e + f - 1) / f;
                        let guard = if e % f == 0 {
                            None
                        } else {
                            Some(Expr::var(loop_name.clone()).lt(Expr::int(*e)))
                        };
                        (ExtentIr::Const(outer), guard)
                    }
                    ExtentIr::Table {
                        buffer,
                        dep_var,
                        lens,
                    } => {
                        if lens.as_slice().iter().any(|&l| l % factor != 0) {
                            return Err(ScheduleError::SplitUnpaddedVloop {
                                loop_name: loop_name.clone(),
                                factor: *factor,
                            });
                        }
                        let outer_lens =
                            LengthFn::new(lens.as_slice().iter().map(|&l| l / factor).collect());
                        (
                            ExtentIr::Table {
                                buffer: format!("{buffer}_o"),
                                dep_var: dep_var.clone(),
                                lens: outer_lens,
                            },
                            None,
                        )
                    }
                    ExtentIr::Param { var, value } => {
                        // Fused loops are padded to a multiple before
                        // splitting (bulk padding), so require divisibility.
                        if value % f != 0 {
                            return Err(ScheduleError::SplitUnpaddedVloop {
                                loop_name: loop_name.clone(),
                                factor: *factor,
                            });
                        }
                        (
                            ExtentIr::Param {
                                var: format!("{var}_o"),
                                value: value / f,
                            },
                            None,
                        )
                    }
                };
                let vo = format!("{loop_name}_o");
                let vi = format!("{loop_name}_i");
                // Rebuild the original variable from the two halves.
                let rebuilt = Expr::var(vo.clone()) * f + Expr::var(vi.clone());
                substitute_all(&mut var_map, loop_name, &rebuilt);
                let kind = loops[idx].kind;
                let guard = loops[idx].guard.clone().or(inner_guard);
                loops[idx] = LoweredLoop {
                    var: vo,
                    extent: outer_ext,
                    kind,
                    guard: None,
                };
                loops.insert(
                    idx + 1,
                    LoweredLoop {
                        var: vi,
                        extent: ExtentIr::Const(f),
                        kind: ForKind::Serial,
                        guard,
                    },
                );
            }
            Directive::Bind { loop_name, kind } => {
                let idx = find_loop(&loops, loop_name)?;
                loops[idx].kind = *kind;
            }
            Directive::Unroll { loop_name } => {
                let idx = find_loop(&loops, loop_name)?;
                loops[idx].kind = ForKind::Unrolled;
            }
            Directive::Vectorize { loop_name } => {
                let idx = find_loop(&loops, loop_name)?;
                loops[idx].kind = ForKind::Vectorized;
            }
            Directive::FuseLoops { outer, inner } => {
                let oi = find_loop(&loops, outer)?;
                let ii = find_loop(&loops, inner)?;
                if ii != oi + 1 {
                    return Err(ScheduleError::NonAdjacentFusion {
                        outer: outer.clone(),
                        inner: inner.clone(),
                    });
                }
                let (outer_extent, inner_lens) = match (&loops[oi].extent, &loops[ii].extent) {
                    (ExtentIr::Const(m), ExtentIr::Table { lens, dep_var, .. })
                        if dep_var == &loops[oi].var =>
                    {
                        (*m as usize, lens.clone())
                    }
                    // Fusing two constant loops is ordinary dense fusion.
                    (ExtentIr::Const(m), ExtentIr::Const(e)) => {
                        let lens = LengthFn::new(vec![*e as usize; *m as usize]);
                        (*m as usize, lens)
                    }
                    _ => {
                        return Err(ScheduleError::NonAdjacentFusion {
                            outer: outer.clone(),
                            inner: inner.clone(),
                        })
                    }
                };
                let fused = format!("{}_{}_f", loops[oi].var, loops[ii].var);
                let spec = FusionSpec::new(fused.clone(), outer_extent, inner_lens.clone());
                let total = spec.fused_extent();
                // Body reconstructs o and i from the prelude maps.
                let o_expr = Expr::load(format!("{fused}__ffo"), Expr::var(fused.clone()));
                let i_expr = Expr::load(format!("{fused}__ffi"), Expr::var(fused.clone()));
                substitute_all(&mut var_map, outer, &o_expr);
                substitute_all(&mut var_map, inner, &i_expr);
                let kind = loops[oi].kind;
                loops[oi] = LoweredLoop {
                    var: fused.clone(),
                    extent: ExtentIr::Param {
                        var: format!("F_{fused}"),
                        value: total as i64,
                    },
                    kind,
                    guard: None,
                };
                loops.remove(ii);
                fusions.push(spec);
            }
            Directive::BulkPad {
                loop_name,
                multiple,
            } => {
                let idx = find_loop(&loops, loop_name)?;
                let fused_var = loops[idx].var.clone();
                let Some(spec) = fusions.iter_mut().find(|f| f.name() == fused_var) else {
                    return Err(ScheduleError::UnknownLoop(format!(
                        "{loop_name} is not a fused loop"
                    )));
                };
                spec.bulk_pad(*multiple);
                if let ExtentIr::Param { value, .. } = &mut loops[idx].extent {
                    *value = spec.fused_extent() as i64;
                }
            }
            Directive::Reorder { order } => {
                if order.len() != loops.len()
                    || !loops.iter().all(|l| order.iter().any(|n| n == &l.var))
                {
                    return Err(ScheduleError::UnknownLoop(format!(
                        "reorder [{}] is not a permutation of the current loops [{}]",
                        order.join(", "),
                        loops
                            .iter()
                            .map(|l| l.var.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                let mut reordered = Vec::with_capacity(loops.len());
                for name in order {
                    let idx = find_loop(&loops, name)?;
                    reordered.push(loops[idx].clone());
                }
                // §4.1: a vloop cannot move outside the loop its extent
                // depends on.
                for (pos, l) in reordered.iter().enumerate() {
                    if let ExtentIr::Table { dep_var, .. } = &l.extent {
                        let dep_ok = reordered[..pos].iter().any(|o| &o.var == dep_var);
                        if !dep_ok {
                            return Err(ScheduleError::VloopReorderedPastDependence {
                                loop_name: l.var.clone(),
                            });
                        }
                    }
                }
                loops = reordered;
            }
            Directive::ThreadRemap(_) | Directive::HoistLoads => {
                // Consumed from the schedule directly (see below).
            }
        }
    }

    // ---- Build the body ----------------------------------------------
    let ordered_names: Vec<String> = op
        .loops
        .iter()
        .chain(op.reduce.iter())
        .map(|l| l.name.clone())
        .collect();
    let arg_exprs: Vec<Expr> = ordered_names.iter().map(|n| var_map[n].clone()).collect();
    let value = (op.body)(&arg_exprs);
    let out_index = op.output.offset(&arg_exprs[..n_spatial]);
    let store_kind = if op.reduce.is_empty() {
        StoreKind::Assign
    } else {
        op.reduce_kind
    };
    let mut body = Stmt::Store {
        buffer: op.output.name().to_string(),
        index: out_index,
        value,
        kind: store_kind,
    };

    // ---- Assemble loops (innermost-first wrap) -------------------------
    let mut solver = Solver::new();
    for l in &loops {
        solver.ranges_mut().set(
            l.var.clone(),
            cora_ir::Interval::bounded(0, l.extent.max() - 1),
        );
    }
    for l in loops.iter().rev() {
        if let Some(g) = &l.guard {
            match solver.elide_guard(g) {
                None => {}
                Some(g) => body = Stmt::if_then(g, body),
            }
        }
        body = Stmt::For {
            var: l.var.clone(),
            min: Expr::int(0),
            extent: l.extent.to_expr(),
            kind: l.kind,
            body: Box::new(body),
        };
    }
    if op.schedule.hoisting_enabled() {
        body = cora_ir::visit::hoist_loads(&body);
    }

    // ---- Prelude requirements ------------------------------------------
    for l in &loops {
        if let ExtentIr::Table { buffer, lens, .. } = &l.extent {
            prelude.add_loop_table(buffer, lens.clone());
        }
    }
    for (name, values) in &op.aux_tables {
        prelude.add_loop_table(name, values.clone());
    }
    for f in fusions {
        prelude.add_fusion(f);
    }

    // ---- Block-cost metadata for the GPU simulator ----------------------
    let body_flops = count_store_flops(&body);
    let block_costs = derive_block_costs(&loops, body_flops);

    Ok(Program::new(
        op.name.clone(),
        body,
        prelude,
        op.schedule.remap_policy(),
        op.output.name().to_string(),
        op.output.layout().size(),
        op.init,
        block_costs,
    ))
}

fn find_loop(loops: &[LoweredLoop], name: &str) -> Result<usize, ScheduleError> {
    loops
        .iter()
        .position(|l| l.var == name)
        .ok_or_else(|| ScheduleError::UnknownLoop(name.to_string()))
}

/// Rewrites every mapping in `var_map` that mentions `name`, and the entry
/// for `name` itself, in terms of `replacement`.
fn substitute_all(var_map: &mut HashMap<String, Expr>, name: &str, replacement: &Expr) {
    let mut single = HashMap::new();
    single.insert(name.to_string(), replacement.clone());
    for v in var_map.values_mut() {
        *v = cora_ir::visit::subst(v, &single);
    }
}

/// Counts the FLOPs of the (single) store in the lowered body.
fn count_store_flops(s: &Stmt) -> f64 {
    match s {
        Stmt::For { body, .. } | Stmt::LetInt { body, .. } | Stmt::Alloc { body, .. } => {
            count_store_flops(body)
        }
        Stmt::If { then_, .. } => count_store_flops(then_),
        Stmt::Seq(items) => items.iter().map(count_store_flops).sum(),
        Stmt::Store { value, kind, .. } => {
            let mut n = count_fexpr_flops(value);
            if !matches!(kind, StoreKind::Assign) {
                n += 1.0;
            }
            n
        }
        Stmt::Nop => 0.0,
    }
}

fn count_fexpr_flops(e: &cora_ir::FExpr) -> f64 {
    use cora_ir::FExprKind as K;
    match e.kind() {
        K::Const(_) | K::Load(_, _) | K::Cast(_) => 0.0,
        K::Add(a, b) | K::Sub(a, b) | K::Mul(a, b) | K::Div(a, b) | K::Max(a, b) => {
            1.0 + count_fexpr_flops(a) + count_fexpr_flops(b)
        }
        K::Unary(_, a) => 1.0 + count_fexpr_flops(a),
        K::Select(_, a, b) => count_fexpr_flops(a).max(count_fexpr_flops(b)),
    }
}

/// Derives per-block FLOP counts: the outermost block-bound loop's
/// iterations are blocks; each block's work is the product of inner
/// extents times the body FLOPs, resolved against the extent tables.
fn derive_block_costs(loops: &[LoweredLoop], body_flops: f64) -> Vec<BlockCost> {
    let block_pos = loops
        .iter()
        .position(|l| l.kind.is_block_axis())
        .unwrap_or(0);
    // Iterate the loops at or outside the block axis concretely; multiply
    // extents of inner loops symbolically (resolving tables against the
    // concrete outer indices).
    let mut costs = Vec::new();
    let mut idx: HashMap<String, i64> = HashMap::new();
    enumerate_blocks(loops, 0, block_pos, body_flops, &mut idx, &mut costs);
    costs
}

fn enumerate_blocks(
    loops: &[LoweredLoop],
    at: usize,
    block_pos: usize,
    body_flops: f64,
    idx: &mut HashMap<String, i64>,
    out: &mut Vec<BlockCost>,
) {
    if at > block_pos {
        // Everything inside the block: product of extents at the current
        // outer indices. Variable extents that depend on inner loop
        // variables fall back to their maximum (conservative).
        let mut work = body_flops;
        for l in &loops[at..] {
            let e = match &l.extent {
                ExtentIr::Const(e) => *e,
                ExtentIr::Param { value, .. } => *value,
                ExtentIr::Table { dep_var, lens, .. } => match idx.get(dep_var) {
                    Some(&v) => lens.len_at(v as usize) as i64,
                    None => lens.max() as i64,
                },
            };
            work *= e as f64;
        }
        out.push(BlockCost { flops: work });
        return;
    }
    let l = &loops[at];
    let extent = match &l.extent {
        ExtentIr::Const(e) => *e,
        ExtentIr::Param { value, .. } => *value,
        ExtentIr::Table { dep_var, lens, .. } => match idx.get(dep_var) {
            Some(&v) => lens.len_at(v as usize) as i64,
            None => lens.max() as i64,
        },
    };
    for v in 0..extent {
        idx.insert(l.var.clone(), v);
        enumerate_blocks(loops, at + 1, block_pos, body_flops, idx, out);
    }
    idx.remove(&l.var);
}
