//! Prelude generation: planning and building the auxiliary structures a
//! compiled kernel needs (§2 step 7, §5.1, §5.3).
//!
//! A [`PreludeSpec`] records *what* a program needs (tensor offset arrays,
//! vloop extent tables, fused-loop maps); [`PreludeSpec::build`] runs on
//! the host and produces the concrete arrays, timing each category
//! separately — the §7.4 overhead table reports exactly these times and
//! byte counts.

use std::sync::Arc;
use std::time::Duration;

use cora_ragged::aux::{AuxOffsets, FusedLoopMaps};
use cora_ragged::{LengthFn, RaggedLayout};

use crate::api::{aux_buffer_name, lens_buffer_name};

/// A planned vloop fusion: the data needed to build its maps.
#[derive(Debug, Clone)]
pub struct FusionSpec {
    name: String,
    outer_extent: usize,
    lens: LengthFn,
    /// Extra iterations appended by bulk padding (a virtual sequence).
    bulk_rows: Vec<usize>,
}

impl FusionSpec {
    /// Creates a fusion of an outer loop of `outer_extent` iterations with
    /// an inner vloop whose (loop-padded) extents are `lens`.
    pub fn new(name: impl Into<String>, outer_extent: usize, lens: LengthFn) -> FusionSpec {
        FusionSpec {
            name: name.into(),
            outer_extent,
            lens,
            bulk_rows: Vec::new(),
        }
    }

    /// The fused loop's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The outer loop's trip count at fusion time.
    pub fn outer_extent(&self) -> usize {
        self.outer_extent
    }

    /// Pads the fused extent to a multiple of `multiple` by appending a
    /// virtual padding sequence (§7.2's bulk padding). The caller must
    /// have allocated storage covering the padding, per §6's contract.
    pub fn bulk_pad(&mut self, multiple: usize) {
        assert!(multiple > 0, "bulk padding multiple must be positive");
        let total = self.fused_extent();
        let padded = total.div_ceil(multiple) * multiple;
        if padded > total {
            self.bulk_rows.push(padded - total);
        }
    }

    /// Total fused extent including bulk padding.
    pub fn fused_extent(&self) -> usize {
        self.lens.total() + self.bulk_rows.iter().sum::<usize>()
    }

    /// The per-row lengths including virtual bulk-padding rows.
    pub fn effective_lens(&self) -> Vec<usize> {
        let mut lens = self.lens.as_slice().to_vec();
        lens.extend(self.bulk_rows.iter().copied());
        lens
    }

    /// Builds the runtime maps.
    pub fn build_maps(&self) -> FusedLoopMaps {
        FusedLoopMaps::build(&self.effective_lens())
    }
}

/// Everything a program's prelude must materialise.
#[derive(Debug, Clone, Default)]
pub struct PreludeSpec {
    tensors: Vec<(String, Arc<RaggedLayout>)>,
    loop_tables: Vec<(String, LengthFn)>,
    fusions: Vec<FusionSpec>,
}

/// The concrete arrays produced by running a prelude, with per-category
/// cost accounting.
#[derive(Debug, Clone, Default)]
pub struct PreludeData {
    /// Integer buffers to install (aux offset arrays, length tables,
    /// fusion maps).
    pub int_buffers: Vec<(String, Vec<i64>)>,
    /// Scalar parameters to bind (fused extents).
    pub params: Vec<(String, i64)>,
    /// Time spent building storage offset arrays.
    pub storage_time: Duration,
    /// Time spent building loop-fusion maps.
    pub fusion_time: Duration,
    /// Bytes of storage-related auxiliary data.
    pub storage_bytes: usize,
    /// Bytes of fusion-related auxiliary data.
    pub fusion_bytes: usize,
}

impl PreludeData {
    /// Total auxiliary bytes (what a GPU run must copy host-to-device).
    pub fn total_bytes(&self) -> usize {
        self.storage_bytes + self.fusion_bytes
    }
}

impl PreludeSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor whose offset arrays and length tables the
    /// kernel reads. Duplicate names are kept once.
    pub fn add_tensor(&mut self, name: &str, layout: Arc<RaggedLayout>) {
        if !self.tensors.iter().any(|(n, _)| n == name) {
            self.tensors.push((name.to_string(), layout));
        }
    }

    /// Registers a vloop extent table.
    pub fn add_loop_table(&mut self, buffer: &str, lens: LengthFn) {
        if !self.loop_tables.iter().any(|(n, _)| n == buffer) {
            self.loop_tables.push((buffer.to_string(), lens));
        }
    }

    /// Registers a fusion.
    pub fn add_fusion(&mut self, spec: FusionSpec) {
        self.fusions.push(spec);
    }

    /// The registered fusions.
    pub fn fusions(&self) -> &[FusionSpec] {
        &self.fusions
    }

    /// The registered tensors.
    pub fn tensors(&self) -> &[(String, Arc<RaggedLayout>)] {
        &self.tensors
    }

    /// Builds all auxiliary structures, timing storage and fusion work
    /// separately (the split the §7.4 table reports).
    pub fn build(&self) -> PreludeData {
        let mut data = PreludeData::default();
        let t0 = std::time::Instant::now();
        for (name, layout) in &self.tensors {
            let aux = AuxOffsets::build(layout);
            for d in 0..layout.ndim() {
                if let Some(a) = aux.array(d) {
                    data.storage_bytes += a.len() * 8;
                    data.int_buffers
                        .push((aux_buffer_name(name, d), a.to_vec()));
                }
                if let Some(lens) = layout.padded_lens(d) {
                    let v: Vec<i64> = lens.as_slice().iter().map(|&x| x as i64).collect();
                    data.storage_bytes += v.len() * 8;
                    data.int_buffers.push((lens_buffer_name(name, d), v));
                }
            }
        }
        for (buffer, lens) in &self.loop_tables {
            let v: Vec<i64> = lens.as_slice().iter().map(|&x| x as i64).collect();
            data.storage_bytes += v.len() * 8;
            data.int_buffers.push((buffer.clone(), v));
        }
        data.storage_time = t0.elapsed();

        let t1 = std::time::Instant::now();
        for f in &self.fusions {
            let maps = f.build_maps();
            data.fusion_bytes += maps.memory_bytes();
            data.params
                .push((format!("F_{}", f.name()), maps.fused_extent));
            data.int_buffers
                .push((format!("{}__ffo", f.name()), maps.ffo));
            data.int_buffers
                .push((format!("{}__ffi", f.name()), maps.ffi));
            data.int_buffers
                .push((format!("{}__foif_row", f.name()), maps.foif_row));
        }
        data.fusion_time = t1.elapsed();
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_ragged::Dim;

    fn layout(lens: &[usize]) -> RaggedLayout {
        let b = Dim::new("b");
        let l = Dim::new("l");
        RaggedLayout::builder()
            .cdim(b.clone(), lens.len())
            .vdim(l, &b, lens.to_vec())
            .build()
            .unwrap()
    }

    #[test]
    fn fusion_bulk_padding_extends_extent() {
        let mut f = FusionSpec::new("o_i_f", 3, LengthFn::new(vec![5, 2, 3]));
        assert_eq!(f.fused_extent(), 10);
        f.bulk_pad(8);
        assert_eq!(f.fused_extent(), 16);
        assert_eq!(f.effective_lens(), vec![5, 2, 3, 6]);
        // Already-aligned extents gain nothing.
        let mut g = FusionSpec::new("g", 1, LengthFn::new(vec![8]));
        g.bulk_pad(8);
        assert_eq!(g.fused_extent(), 8);
    }

    #[test]
    fn build_produces_buffers_and_params() {
        let mut spec = PreludeSpec::new();
        spec.add_tensor("A", Arc::new(layout(&[5, 2, 3])));
        spec.add_loop_table("op__ext_i", LengthFn::new(vec![5, 2, 3]));
        spec.add_fusion(FusionSpec::new("o_i_f", 3, LengthFn::new(vec![5, 2, 3])));
        let data = spec.build();
        let names: Vec<&str> = data.int_buffers.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"A__A0"));
        assert!(names.contains(&"A__lens1"));
        assert!(names.contains(&"op__ext_i"));
        assert!(names.contains(&"o_i_f__ffo"));
        assert_eq!(data.params, vec![("F_o_i_f".to_string(), 10)]);
        assert!(data.storage_bytes > 0 && data.fusion_bytes > 0);
        assert_eq!(data.total_bytes(), data.storage_bytes + data.fusion_bytes);
    }

    #[test]
    fn duplicate_tensor_registered_once() {
        let mut spec = PreludeSpec::new();
        let l = Arc::new(layout(&[1, 2]));
        spec.add_tensor("A", Arc::clone(&l));
        spec.add_tensor("A", l);
        assert_eq!(spec.tensors().len(), 1);
    }
}
