//! Parallel outlining: turning a lowered statement's outermost block
//! axis into a block-indexed entry point.
//!
//! CoRa schedules bind loops to GPU block axes (§4.1); on the simulated
//! GPU those loops become the grid, and on the CPU runtime they should
//! become a real parallel region. [`outline`] performs the enabling
//! transformation at the statement level:
//!
//! * it walks down from the root collecting `LetInt` wrappers (produced
//!   by load hoisting, §D.7) until it reaches the outermost
//!   [`cora_ir::ForKind::is_block_axis`] loop,
//! * hoists that loop's bounds (`min`, `extent`) and the collected
//!   bindings into host-evaluated expressions, and
//! * returns the loop body as a standalone statement in which the block
//!   variable is *free* — the block-indexed entry point a parallel
//!   driver executes once per block index.
//!
//! Outlining also carries the safety obligations of the parallel tier:
//!
//! * the body may store **only** to the designated output buffer (plus
//!   scoped `Alloc` scratch, which stays private per worker), and must
//!   not read the output back (an in-place update could observe another
//!   block's stores);
//! * every store to the output must index through the block variable (or
//!   a `LetInt` derived from it), the syntactic core of the argument
//!   that distinct blocks write disjoint output elements.
//!
//! When a block axis exists but one of these conditions fails — most
//! commonly because a schedule nested the block-bound loop inside a
//! serial loop — outlining returns
//! [`ScheduleError::BlockAxisNotOutlinable`] instead of silently falling
//! back to serial execution. A statement with *no* block axis returns
//! `Ok(None)`: running serially is then the correct behaviour, not a
//! degradation.

use std::collections::BTreeSet;

use cora_ir::printer::print_c;
use cora_ir::slots::StmtSlots;
use cora_ir::visit::{count_loads, free_vars};
use cora_ir::{Expr, Stmt};

use crate::schedule::ScheduleError;
use crate::verify;

/// A `LetInt` binding hoisted above the block loop; the parallel driver
/// evaluates it once on the host and binds it as a free variable of the
/// outlined body.
#[derive(Debug, Clone)]
pub struct HoistedLet {
    /// Binding name (free in the outlined body).
    pub var: String,
    /// Bound expression, evaluated against earlier bindings.
    pub value: Expr,
    /// Static aux-load count the binding charges (`LetInt` accounting).
    /// `u64`: shared expression DAGs have exponential static load
    /// counts, which the serial tier charges in full.
    pub aux: u64,
}

/// The outermost block axis of a lowered statement, outlined into a
/// block-indexed entry point.
#[derive(Debug, Clone)]
pub struct BlockOutline {
    /// Host-evaluated bindings, outermost first.
    pub hoisted: Vec<HoistedLet>,
    /// The block loop's iteration variable (free in [`Self::body`]).
    pub block_var: String,
    /// The block loop's lower bound.
    pub min: Expr,
    /// The block loop's trip count.
    pub extent: Expr,
    /// Static aux loads charged once when the bounds evaluate (the
    /// serial tier's `BumpAux` at the loop header).
    pub bounds_aux: u64,
    /// The loop body: one block's work, with [`Self::block_var`] free.
    pub body: Stmt,
}

/// Outlines the outermost block-bound loop of `stmt`.
///
/// Returns `Ok(None)` when no loop is bound to a block axis (serial
/// execution is then correct), `Ok(Some(_))` with the entry point when
/// outlining succeeds.
///
/// # Errors
///
/// Returns [`ScheduleError::BlockAxisNotOutlinable`] when a block axis
/// exists but cannot be hoisted: it is nested inside a serial loop,
/// guard, statement sequence or allocation, the body stores outside the
/// output buffer, reads the output back, or stores to output elements
/// that do not depend on the block index.
pub fn outline(stmt: &Stmt, output: &str) -> Result<Option<BlockOutline>, ScheduleError> {
    let Some(block_name) = first_block_axis(stmt) else {
        return Ok(None);
    };
    let fail = |reason: String| ScheduleError::BlockAxisNotOutlinable {
        loop_name: block_name.clone(),
        reason,
    };

    let mut hoisted: Vec<HoistedLet> = Vec::new();
    let mut cur = stmt;
    loop {
        match cur {
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } if kind.is_block_axis() => {
                validate_body(body, output, var, &fail)?;
                return Ok(Some(BlockOutline {
                    hoisted,
                    block_var: var.clone(),
                    min: min.clone(),
                    extent: extent.clone(),
                    bounds_aux: count_loads(min) + count_loads(extent),
                    body: (**body).clone(),
                }));
            }
            Stmt::LetInt { var, value, body } => {
                hoisted.push(HoistedLet {
                    var: var.clone(),
                    value: value.clone(),
                    aux: count_loads(value),
                });
                cur = body;
            }
            Stmt::For { var, .. } => {
                return Err(fail(format!(
                    "it is nested inside the serial loop `{var}`; bind enclosing \
                     loops to block axes (or reorder the schedule) so the block \
                     axis is outermost"
                )));
            }
            Stmt::If { .. } => {
                return Err(fail("a guard encloses it".to_string()));
            }
            Stmt::Seq(_) => {
                return Err(fail(
                    "it is one of several statements in sequence; the sibling \
                     statements would run once per block"
                        .to_string(),
                ));
            }
            Stmt::Alloc { buffer, .. } => {
                return Err(fail(format!(
                    "allocation of `{buffer}` encloses it; blocks would share \
                     the scratch buffer"
                )));
            }
            Stmt::Store { .. } | Stmt::Nop => {
                unreachable!("first_block_axis found a block loop below this node");
            }
        }
    }
}

/// Checks the parallel-safety obligations of an outlined block body.
fn validate_body(
    body: &Stmt,
    output: &str,
    block_var: &str,
    fail: &impl Fn(String) -> ScheduleError,
) -> Result<(), ScheduleError> {
    let slots = StmtSlots::resolve(body);
    for stored in slots.stored_fbuf_names() {
        if stored != output {
            return Err(fail(format!(
                "the block body stores to `{stored}`, which is not the output \
                 buffer `{output}`"
            )));
        }
    }
    if slots.fbuf_is_inplace(output) {
        return Err(fail(format!(
            "the block body reads the output buffer `{output}` back (in-place \
             update); another block's stores could be observed"
        )));
    }
    let mut taint: Vec<String> = vec![block_var.to_string()];
    check_store_dependence(body, output, &mut taint, fail)?;
    // The screen above is syntactic: it asks whether the index *mentions*
    // a block-derived variable. The symbolic pass asks the stronger
    // question — whether the block variable's coefficient survives in the
    // index's linear form — catching cancellations (`out[b - b + i]`,
    // `out[b*0 + i]`) that mention the block variable yet are
    // block-invariant for every shape.
    verify::symbolic_store_check(body, output, block_var)
        .map_err(|e| fail(format!("a store to `{output}` is block-invariant: {e}")))
}

/// Verifies every store to `output` indexes through a tainted variable
/// (the block variable or a `LetInt` derived from it) — the syntactic
/// core of the disjoint-store argument. Bindings that shadow a tainted
/// name un-taint it for their scope.
fn check_store_dependence(
    s: &Stmt,
    output: &str,
    taint: &mut Vec<String>,
    fail: &impl Fn(String) -> ScheduleError,
) -> Result<(), ScheduleError> {
    match s {
        // The loop variable's *values* depend on the block only if the
        // lower bound does (extent taints trip count, not values);
        // a `LetInt` value propagates taint directly.
        Stmt::For { var, min, body, .. } => scoped_binding(var, min, body, output, taint, fail),
        Stmt::LetInt { var, value, body } => scoped_binding(var, value, body, output, taint, fail),
        Stmt::Store { buffer, index, .. } => {
            if buffer == output && !mentions_taint(index, taint) {
                return Err(fail(format!(
                    "a store to `{output}` indexes only block-invariant \
                     variables, so different blocks would write the same \
                     elements\n  store: {}  index: `{index}`",
                    print_c(s).trim_end()
                )));
            }
            Ok(())
        }
        Stmt::If { then_, else_, .. } => {
            check_store_dependence(then_, output, taint, fail)?;
            if let Some(e) = else_ {
                check_store_dependence(e, output, taint, fail)?;
            }
            Ok(())
        }
        Stmt::Seq(items) => {
            for item in items {
                check_store_dependence(item, output, taint, fail)?;
            }
            Ok(())
        }
        Stmt::Alloc { buffer, body, .. } => {
            // Stores to the scratch buffer are private; if it shadows the
            // output name, inner "output" stores are scratch stores.
            if buffer == output {
                return Ok(());
            }
            check_store_dependence(body, output, taint, fail)
        }
        Stmt::Nop => Ok(()),
    }
}

/// One binding site's taint-scoping protocol, shared by `For` and
/// `LetInt`: `var` becomes tainted iff `dep` mentions the taint set,
/// shadows any outer tainted name of the same spelling for the scope of
/// `body`, and both effects are undone on exit.
fn scoped_binding(
    var: &str,
    dep: &Expr,
    body: &Stmt,
    output: &str,
    taint: &mut Vec<String>,
    fail: &impl Fn(String) -> ScheduleError,
) -> Result<(), ScheduleError> {
    let var_tainted = mentions_taint(dep, taint);
    let shadowed = remove_taint(taint, var);
    if var_tainted {
        taint.push(var.to_string());
    }
    let r = check_store_dependence(body, output, taint, fail);
    if var_tainted {
        taint.pop();
    }
    if shadowed {
        taint.push(var.to_string());
    }
    r
}

fn mentions_taint(e: &Expr, taint: &[String]) -> bool {
    let mut vars = BTreeSet::new();
    free_vars(e, &mut vars);
    taint.iter().any(|t| vars.contains(t))
}

/// Removes `name` from the taint set if present; returns whether it was.
fn remove_taint(taint: &mut Vec<String>, name: &str) -> bool {
    match taint.iter().position(|t| t == name) {
        Some(i) => {
            taint.remove(i);
            true
        }
        None => false,
    }
}

/// The variable of the first (pre-order) block-bound loop, if any.
fn first_block_axis(s: &Stmt) -> Option<String> {
    match s {
        Stmt::For {
            var, kind, body, ..
        } => {
            if kind.is_block_axis() {
                Some(var.clone())
            } else {
                first_block_axis(body)
            }
        }
        Stmt::LetInt { body, .. } | Stmt::Alloc { body, .. } => first_block_axis(body),
        Stmt::If { then_, else_, .. } => {
            first_block_axis(then_).or_else(|| else_.as_ref().and_then(|e| first_block_axis(e)))
        }
        Stmt::Seq(items) => items.iter().find_map(first_block_axis),
        Stmt::Store { .. } | Stmt::Nop => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_ir::{FExpr, ForKind};

    fn block_store(var: &str) -> Stmt {
        Stmt::store("out", Expr::var(var), FExpr::constant(1.0))
    }

    #[test]
    fn no_block_axis_is_serial() {
        let s = Stmt::loop_("i", Expr::int(4), block_store("i"));
        assert!(outline(&s, "out").unwrap().is_none());
    }

    #[test]
    fn outermost_block_axis_outlines() {
        let s = Stmt::loop_kind(
            "b",
            Expr::load("nb", Expr::int(0)),
            ForKind::GpuBlockX,
            block_store("b"),
        );
        let o = outline(&s, "out").unwrap().expect("outlined");
        assert_eq!(o.block_var, "b");
        assert_eq!(o.bounds_aux, 1, "extent load charged at the header");
        assert!(o.hoisted.is_empty());
        // The body sees `b` free.
        let slots = StmtSlots::resolve(&o.body);
        assert_eq!(slots.free_vars.names(), &["b".to_string()]);
    }

    #[test]
    fn letint_wrappers_are_hoisted() {
        let inner = Stmt::loop_kind("b", Expr::var("h"), ForKind::GpuBlockX, block_store("b"));
        let s = Stmt::LetInt {
            var: "h".into(),
            value: Expr::load("tbl", Expr::int(0)),
            body: Box::new(inner),
        };
        let o = outline(&s, "out").unwrap().expect("outlined");
        assert_eq!(o.hoisted.len(), 1);
        assert_eq!(o.hoisted[0].var, "h");
        assert_eq!(o.hoisted[0].aux, 1);
    }

    #[test]
    fn block_axis_inside_serial_loop_errors() {
        let s = Stmt::loop_(
            "o",
            Expr::int(2),
            Stmt::loop_kind(
                "b",
                Expr::int(3),
                ForKind::GpuBlockX,
                Stmt::store(
                    "out",
                    Expr::var("o") * 3 + Expr::var("b"),
                    FExpr::constant(1.0),
                ),
            ),
        );
        let err = outline(&s, "out").unwrap_err();
        match &err {
            ScheduleError::BlockAxisNotOutlinable { loop_name, reason } => {
                assert_eq!(loop_name, "b");
                assert!(reason.contains("serial loop `o`"), "{reason}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("cannot be outlined"), "{msg}");
    }

    #[test]
    fn store_to_non_output_buffer_errors() {
        let body = block_store("b").then(Stmt::store("tmp", Expr::var("b"), FExpr::constant(0.0)));
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let err = outline(&s, "out").unwrap_err();
        assert!(err.to_string().contains("`tmp`"), "{err}");
    }

    #[test]
    fn inplace_output_read_errors() {
        let body = Stmt::store(
            "out",
            Expr::var("b"),
            FExpr::load("out", Expr::var("b")) * 2.0,
        );
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let err = outline(&s, "out").unwrap_err();
        assert!(err.to_string().contains("in-place"), "{err}");
    }

    #[test]
    fn block_invariant_store_errors() {
        // A reduce-style loop bound to blocks: every block writes out[i].
        let body = Stmt::loop_("i", Expr::int(4), block_store("i"));
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let err = outline(&s, "out").unwrap_err();
        assert!(err.to_string().contains("block-invariant"), "{err}");
    }

    #[test]
    fn letint_derived_indices_count_as_block_dependent() {
        // h = row[b]; out[h + i] = 1 — the hoisted-load pattern.
        let store = Stmt::store("out", Expr::var("h") + Expr::var("i"), FExpr::constant(1.0));
        let inner = Stmt::LetInt {
            var: "h".into(),
            value: Expr::load("row", Expr::var("b")),
            body: Box::new(Stmt::loop_("i", Expr::int(2), store)),
        };
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, inner);
        assert!(outline(&s, "out").unwrap().is_some());
    }

    #[test]
    fn alloc_scratch_stores_are_private() {
        let fill = Stmt::store("tile", Expr::int(0), FExpr::constant(1.0));
        let flush = Stmt::store("out", Expr::var("b"), FExpr::load("tile", Expr::int(0)));
        let body = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::int(4),
            body: Box::new(fill.then(flush)),
        };
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        assert!(outline(&s, "out").unwrap().is_some());
    }

    #[test]
    fn block_invariant_diagnostic_cites_the_offending_store() {
        // Satellite check: the message carries the pretty-printed store
        // statement and its index expression, not just a category.
        let body = Stmt::loop_("i", Expr::int(4), block_store("i"));
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let msg = outline(&s, "out").unwrap_err().to_string();
        assert!(msg.contains("out[i] = 1.0f;"), "store cited: {msg}");
        assert!(msg.contains("index: `i`"), "index cited: {msg}");
        assert!(msg.contains("block-invariant"), "{msg}");
    }

    #[test]
    fn cancelled_block_coefficient_is_rejected_symbolically() {
        // out[b - b + i] mentions `b`, so the syntactic screen passes;
        // the linear-form pass sees coefficient 0 and rejects.
        let store = Stmt::store(
            "out",
            Expr::var("b") - Expr::var("b") + Expr::var("i"),
            FExpr::constant(1.0),
        );
        let body = Stmt::loop_("i", Expr::int(4), store);
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let msg = outline(&s, "out").unwrap_err().to_string();
        assert!(msg.contains("coefficient 0"), "{msg}");
        assert!(msg.contains("block-invariant"), "{msg}");
    }

    #[test]
    fn guard_enclosing_block_axis_errors() {
        let s = Stmt::if_then(
            Expr::int(1).lt(Expr::int(2)),
            Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, block_store("b")),
        );
        let err = outline(&s, "out").unwrap_err();
        assert!(err.to_string().contains("guard"), "{err}");
    }
}
