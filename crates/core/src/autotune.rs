//! Shape-bucketed schedule autotuning: search space, persistent cache,
//! and the deterministic search driver.
//!
//! CoRa's schedules (loop order, tiling, block-axis remapping) are
//! hand-picked everywhere else in this workspace. This module adds the
//! search layer sketched by FTuner's insight for dynamic shapes: ragged
//! batches are keyed by a *shape bucket* — the histogram class of their
//! sequence lengths, not the exact length multiset — so one tuning run
//! amortizes over every unseen batch that falls in the same class.
//!
//! The pieces, bottom-up:
//!
//! * [`BucketKey`] — a stable, permutation-invariant histogram class of
//!   a batch's sequence lengths (power-of-two length bins), prefixed by
//!   a caller-chosen model descriptor.
//! * [`StageChoice`] / [`StageSpace`] — one point in, and the
//!   per-operator enumeration of, the schedule space: loop `reorder`,
//!   an optional `split` (tiling), and the block-axis
//!   [`RemapPolicy`]. Every choice a space emits must be
//!   value-preserving for its operator (the differential test suite
//!   locks tuned against default bit-for-bit under Strict math).
//! * [`TuningCache`] — a versioned JSON cache of winning choices keyed
//!   by bucket, with *robust* loads: an unknown schema version or a
//!   malformed entry is reported (log-and-retune), never a panic and
//!   never a silently applied stale schedule.
//! * [`Autotuner`] — the search driver: seeded candidate order, cost
//!   model pruning, a [`TuneBudget`] trial/time cap, and strictly
//!   deterministic selection (lowest score wins; ties break on the
//!   candidate's declared index, never on wall-clock).
//!
//! # Example
//!
//! Tuning one toy "stage" whose candidates have known scores. The
//! driver is generic over how candidates are priced (the cost-model
//! pruning estimate) and measured (wall-clock micro-benchmarks in
//! production; any deterministic proxy in tests and CI):
//!
//! ```
//! use cora_core::autotune::{Autotuner, StageChoice, StageSpace, TuneBudget};
//!
//! // Candidate 0 is the hand-picked default; 2 is secretly the best.
//! let space = StageSpace::new(
//!     "proj",
//!     vec![
//!         StageChoice::default_choice(),
//!         StageChoice::default_choice().with_split("c", 8),
//!         StageChoice::default_choice().with_reorder(&["r", "c", "d"]),
//!     ],
//! );
//! let tuner = Autotuner::new(TuneBudget::trials(16), 42);
//! let scores = [3.0, 5.0, 1.0];
//! let result = tuner.tune_stage(
//!     &space,
//!     |_choice| 1.0,                       // cost-model estimate (no pruning here)
//!     |idx, _choice| Some(scores[idx]),    // measurement, lower is better
//! );
//! assert_eq!(result.best, 2);
//! assert_eq!(result.measured, 3);
//! // The winning choice serializes into the tuning cache as plain JSON.
//! assert!(space.choices()[result.best].to_json().contains("reorder"));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::schedule::RemapPolicy;

/// Version stamp of the tuning-cache file format. Bump on any change to
/// the serialized shape; readers refuse (and re-tune) on mismatch.
pub const CACHE_SCHEMA: u32 = 1;

// ---------------------------------------------------------------------
// Minimal JSON reader (the cache file side of `cora_bench::report`'s
// dependency-free writer).
// ---------------------------------------------------------------------

/// A parsed JSON value (reader subset; the cache only needs objects,
/// arrays, strings and numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, s: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 number".to_string())?;
                s.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number `{s}` at offset {start}"))
            }
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{}`", esc as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "non-utf8 string".to_string())?,
                    );
                }
            }
        }
    }
}

fn write_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Bucket keys
// ---------------------------------------------------------------------

/// The histogram class of one sequence length: 0 for empty sequences,
/// otherwise `floor(log2(len)) + 1` — power-of-two length bins
/// (`[1]`, `[2,3]`, `[4,7]`, `[8,15]`, …). Resampling a length within
/// its bin never changes its class.
pub fn length_class(len: usize) -> u32 {
    if len == 0 {
        0
    } else {
        usize::BITS - len.leading_zeros()
    }
}

/// A shape-bucket key: the FTuner-style histogram class of a ragged
/// batch. Two batches map to the same key iff they have the same model
/// descriptor and the same number of sequences in every
/// [`length_class`] bin — independent of sequence order and of the
/// exact lengths within a bin.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketKey {
    /// Caller-chosen model/config descriptor (hidden size, heads, math
    /// mode, …) — schedules tuned for one model never apply to another.
    model: String,
    /// `(length class, sequence count)`, ascending by class, zero
    /// counts omitted.
    hist: Vec<(u32, usize)>,
}

impl BucketKey {
    /// Builds the key for a batch of sequence lengths.
    pub fn new(model: impl Into<String>, lens: &[usize]) -> BucketKey {
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for &l in lens {
            *counts.entry(length_class(l)).or_insert(0) += 1;
        }
        BucketKey {
            model: model.into(),
            hist: counts.into_iter().collect(),
        }
    }

    /// The model descriptor.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The `(class, count)` histogram, ascending by class.
    pub fn histogram(&self) -> &[(u32, usize)] {
        &self.hist
    }
}

impl fmt::Display for BucketKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}|", self.model)?;
        for (i, (class, count)) in self.hist.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "c{class}:{count}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Schedule choices and spaces
// ---------------------------------------------------------------------

/// One point in a stage's schedule space: the tunable knobs layered on
/// top of the operator's fixed structure (its block-axis binding stays
/// whatever the stage declares). `None` fields mean "keep the
/// operator's hand-picked default for that knob".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StageChoice {
    /// Loop-nest permutation (outermost first), or the default order.
    pub reorder: Option<Vec<String>>,
    /// `(loop, factor)` tiling split, applied after the reorder.
    pub split: Option<(String, usize)>,
    /// Block-axis dispatch policy, or the stage's default.
    pub remap: Option<RemapPolicy>,
}

impl StageChoice {
    /// The hand-picked default: every knob untouched.
    pub fn default_choice() -> StageChoice {
        StageChoice::default()
    }

    /// True when every knob is the default (candidate 0 of any space).
    pub fn is_default(&self) -> bool {
        self.reorder.is_none() && self.split.is_none() && self.remap.is_none()
    }

    /// Sets the loop order (outermost first).
    pub fn with_reorder(mut self, order: &[&str]) -> StageChoice {
        self.reorder = Some(order.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sets a tiling split.
    pub fn with_split(mut self, loop_name: &str, factor: usize) -> StageChoice {
        self.split = Some((loop_name.to_string(), factor));
        self
    }

    /// Sets the block-axis remap policy.
    pub fn with_remap(mut self, remap: RemapPolicy) -> StageChoice {
        self.remap = Some(remap);
        self
    }

    /// Serializes the choice as a stable JSON object (sorted knobs,
    /// defaults omitted — the empty object is the default choice).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |out: &mut String, key: &str, val: String| {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_escaped(out, key);
            out.push(':');
            out.push_str(&val);
        };
        if let Some(remap) = self.remap {
            let mut v = String::new();
            write_json_escaped(&mut v, remap_name(remap));
            field(&mut out, "remap", v);
        }
        if let Some(order) = &self.reorder {
            let mut v = String::from("[");
            for (i, name) in order.iter().enumerate() {
                if i > 0 {
                    v.push(',');
                }
                write_json_escaped(&mut v, name);
            }
            v.push(']');
            field(&mut out, "reorder", v);
        }
        if let Some((name, factor)) = &self.split {
            let mut v = String::from("[");
            write_json_escaped(&mut v, name);
            v.push_str(&format!(",{factor}]"));
            field(&mut out, "split", v);
        }
        out.push('}');
        out
    }

    /// Deserializes a choice from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field. Unknown fields are
    /// rejected (schema drift must trigger a re-tune, not a silent
    /// partial application).
    pub fn from_json(v: &JsonValue) -> Result<StageChoice, String> {
        let fields = v.as_obj().ok_or("stage choice is not an object")?;
        let mut choice = StageChoice::default();
        for (key, val) in fields {
            match key.as_str() {
                "remap" => {
                    let name = val.as_str().ok_or("remap is not a string")?;
                    choice.remap = Some(remap_from_name(name)?);
                }
                "reorder" => {
                    let JsonValue::Arr(items) = val else {
                        return Err("reorder is not an array".to_string());
                    };
                    let mut order = Vec::with_capacity(items.len());
                    for item in items {
                        order.push(
                            item.as_str()
                                .ok_or("reorder entry is not a string")?
                                .to_string(),
                        );
                    }
                    choice.reorder = Some(order);
                }
                "split" => {
                    let JsonValue::Arr(items) = val else {
                        return Err("split is not an array".to_string());
                    };
                    if items.len() != 2 {
                        return Err("split is not a [loop, factor] pair".to_string());
                    }
                    let name = items[0].as_str().ok_or("split loop is not a string")?;
                    let factor = items[1].as_num().ok_or("split factor is not a number")?;
                    if factor < 1.0 || factor.fract() != 0.0 || factor > u32::MAX as f64 {
                        return Err(format!("split factor {factor} is not a positive integer"));
                    }
                    choice.split = Some((name.to_string(), factor as usize));
                }
                other => return Err(format!("unknown stage-choice field `{other}`")),
            }
        }
        Ok(choice)
    }
}

fn remap_name(remap: RemapPolicy) -> &'static str {
    match remap {
        RemapPolicy::Identity => "identity",
        RemapPolicy::LongestFirst => "longest_first",
        RemapPolicy::Reversed => "reversed",
    }
}

fn remap_from_name(name: &str) -> Result<RemapPolicy, String> {
    match name {
        "identity" => Ok(RemapPolicy::Identity),
        "longest_first" => Ok(RemapPolicy::LongestFirst),
        "reversed" => Ok(RemapPolicy::Reversed),
        other => Err(format!("unknown remap policy `{other}`")),
    }
}

/// The enumerable schedule space of one pipeline stage. Candidate 0 is
/// always the hand-picked default — the fallback the search can never
/// do worse than.
#[derive(Debug, Clone)]
pub struct StageSpace {
    stage: String,
    choices: Vec<StageChoice>,
}

impl StageSpace {
    /// Declares a stage's candidates. The first must be the default.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or `choices[0]` is not the default
    /// choice (the fallback guarantee depends on it).
    pub fn new(stage: impl Into<String>, choices: Vec<StageChoice>) -> StageSpace {
        assert!(!choices.is_empty(), "a stage space needs candidates");
        assert!(
            choices[0].is_default(),
            "candidate 0 must be the hand-picked default"
        );
        StageSpace {
            stage: stage.into(),
            choices,
        }
    }

    /// The stage label the space tunes.
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// The candidates, default first.
    pub fn choices(&self) -> &[StageChoice] {
        &self.choices
    }
}

// ---------------------------------------------------------------------
// Tuning cache
// ---------------------------------------------------------------------

/// The winning schedule of one bucket: per-stage choices plus metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheEntry {
    /// Winning choice per tuned stage label.
    pub stages: BTreeMap<String, StageChoice>,
    /// How the entry was produced (`"wallclock"` / `"deterministic"`).
    pub measurer: String,
    /// Search trials spent producing the entry.
    pub trials: usize,
}

/// Outcome of loading a cache file — surfaced so callers can
/// log-and-retune instead of trusting a bad file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLoad {
    /// File parsed; contains this many entries.
    Loaded(usize),
    /// No cache file at the path (first run).
    Missing,
    /// The file's schema version is not [`CACHE_SCHEMA`].
    UnknownVersion(String),
    /// The file or one of its entries failed to parse; the description
    /// says which. The cache starts empty — every bucket re-tunes.
    Malformed(String),
}

impl CacheLoad {
    /// True when the cache contents are usable as loaded.
    pub fn is_usable(&self) -> bool {
        matches!(self, CacheLoad::Loaded(_) | CacheLoad::Missing)
    }
}

/// A persistent map from [`BucketKey`] to winning schedules, serialized
/// as versioned JSON with deterministic (sorted-key) output: two
/// tuning runs that choose the same schedules write byte-identical
/// files.
#[derive(Debug, Clone, Default)]
pub struct TuningCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl TuningCache {
    /// An empty cache.
    pub fn new() -> TuningCache {
        TuningCache::default()
    }

    /// Number of buckets cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no bucket is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a bucket.
    pub fn get(&self, key: &BucketKey) -> Option<&CacheEntry> {
        self.entries.get(&key.to_string())
    }

    /// Inserts (or replaces) a bucket's entry.
    pub fn insert(&mut self, key: &BucketKey, entry: CacheEntry) {
        self.entries.insert(key.to_string(), entry);
    }

    /// The cached buckets, sorted by key.
    pub fn buckets(&self) -> impl Iterator<Item = (&str, &CacheEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the cache deterministically (sorted buckets, sorted
    /// stages, fixed field order, trailing newline).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {CACHE_SCHEMA},\n"));
        out.push_str("  \"entries\": {");
        for (i, (bucket, entry)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_escaped(&mut out, bucket);
            out.push_str(": {\"measurer\": ");
            write_json_escaped(&mut out, &entry.measurer);
            out.push_str(&format!(", \"trials\": {}, \"stages\": {{", entry.trials));
            for (j, (stage, choice)) in entry.stages.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_escaped(&mut out, stage);
                out.push_str(": ");
                out.push_str(&choice.to_json());
            }
            out.push_str("}}");
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a serialized cache.
    ///
    /// # Errors
    ///
    /// Returns [`CacheLoad::UnknownVersion`] / [`CacheLoad::Malformed`]
    /// descriptions via `Err` — the caller decides to re-tune.
    pub fn parse(text: &str) -> Result<TuningCache, CacheLoad> {
        let root =
            JsonValue::parse(text).map_err(|e| CacheLoad::Malformed(format!("json: {e}")))?;
        let schema = root
            .get("schema")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| CacheLoad::Malformed("missing `schema` field".to_string()))?;
        if schema != CACHE_SCHEMA as f64 {
            return Err(CacheLoad::UnknownVersion(format!(
                "cache schema {schema} (supported: {CACHE_SCHEMA})"
            )));
        }
        let entries = root
            .get("entries")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| CacheLoad::Malformed("missing `entries` object".to_string()))?;
        let mut cache = TuningCache::new();
        for (bucket, entry) in entries {
            let bad = |what: &str| CacheLoad::Malformed(format!("bucket `{bucket}`: {what}"));
            let measurer = entry
                .get("measurer")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("missing `measurer`"))?
                .to_string();
            let trials = entry
                .get("trials")
                .and_then(JsonValue::as_num)
                .filter(|t| *t >= 0.0 && t.fract() == 0.0)
                .ok_or_else(|| bad("missing or non-integral `trials`"))?
                as usize;
            let stages_obj = entry
                .get("stages")
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| bad("missing `stages` object"))?;
            let mut stages = BTreeMap::new();
            for (stage, choice) in stages_obj {
                let choice = StageChoice::from_json(choice)
                    .map_err(|e| bad(&format!("stage `{stage}`: {e}")))?;
                stages.insert(stage.clone(), choice);
            }
            cache.entries.insert(
                bucket.clone(),
                CacheEntry {
                    stages,
                    measurer,
                    trials,
                },
            );
        }
        Ok(cache)
    }

    /// Loads a cache file robustly: any problem (missing file, version
    /// mismatch, malformed contents) yields an *empty* cache plus the
    /// [`CacheLoad`] describing why — log-and-retune, never panic,
    /// never a silently applied stale schedule.
    pub fn load(path: &Path) -> (TuningCache, CacheLoad) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (TuningCache::new(), CacheLoad::Missing)
            }
            Err(e) => return (TuningCache::new(), CacheLoad::Malformed(format!("io: {e}"))),
        };
        match TuningCache::parse(&text) {
            Ok(cache) => {
                let n = cache.len();
                (cache, CacheLoad::Loaded(n))
            }
            Err(status) => (TuningCache::new(), status),
        }
    }

    /// Writes the cache to `path` (parent directories created).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }
}

// ---------------------------------------------------------------------
// Budget and search driver
// ---------------------------------------------------------------------

/// Caps on one tuning run: a hard trial count and an optional
/// wall-clock cap. The time cap is only consulted by *wall-clock*
/// measurers — deterministic runs must ignore it, or two identically
/// seeded runs could truncate the search differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneBudget {
    /// Maximum measured candidates across the whole tuning run
    /// (defaults are always measured and count against this).
    pub max_trials: usize,
    /// Optional wall-clock cap in milliseconds (wall-clock mode only).
    pub max_ms: Option<f64>,
}

impl TuneBudget {
    /// A trial-count-only budget.
    pub fn trials(max_trials: usize) -> TuneBudget {
        TuneBudget {
            max_trials,
            max_ms: None,
        }
    }

    /// Adds a wall-clock cap in milliseconds.
    pub fn with_max_ms(mut self, ms: f64) -> TuneBudget {
        self.max_ms = Some(ms);
        self
    }
}

impl Default for TuneBudget {
    /// 64 trials, no time cap.
    fn default() -> TuneBudget {
        TuneBudget::trials(64)
    }
}

/// Per-stage search outcome.
#[derive(Debug, Clone)]
pub struct StageTuneResult {
    /// Stage label.
    pub stage: String,
    /// Winning candidate index (into the space's choices; 0 = default).
    pub best: usize,
    /// Winning candidate's measured score.
    pub best_score: f64,
    /// The default candidate's measured score (the fallback baseline).
    pub default_score: f64,
    /// Candidates actually measured.
    pub measured: usize,
    /// Candidates skipped by cost-model pruning.
    pub pruned: usize,
    /// Candidates skipped because the budget ran out.
    pub skipped: usize,
}

/// The schedule-space search driver.
///
/// Selection is strictly deterministic given deterministic measurements:
/// candidates are visited in a seeded order (default always first, so a
/// baseline always exists), pruned against the cost model's best
/// estimate, and the winner is the lowest `(score, candidate index)`
/// pair — index breaks ties, wall-clock never does. Because the default
/// is always measured and always eligible, the chosen schedule can
/// never score worse than the hand-picked one under the measurer in
/// use.
#[derive(Debug, Clone)]
pub struct Autotuner {
    /// Trial/time caps.
    pub budget: TuneBudget,
    /// Seed for the candidate visit order.
    pub seed: u64,
    /// Prune candidates whose cost-model estimate exceeds this multiple
    /// of the cheapest estimate (default 8.0; the default candidate is
    /// never pruned).
    pub prune_factor: f64,
}

impl Autotuner {
    /// A tuner with the given budget and seed.
    pub fn new(budget: TuneBudget, seed: u64) -> Autotuner {
        Autotuner {
            budget,
            seed,
            prune_factor: 8.0,
        }
    }

    /// Searches one stage space.
    ///
    /// `estimate` prices a candidate with the analytic cost model
    /// (pruning only — units are arbitrary); `measure` returns the
    /// candidate's score (lower is better) or `None` when the candidate
    /// fails to build, which disqualifies it. The returned
    /// [`StageTuneResult::best`] is always a measured candidate, and
    /// the default (candidate 0) is always measured first.
    pub fn tune_stage(
        &self,
        space: &StageSpace,
        mut estimate: impl FnMut(&StageChoice) -> f64,
        mut measure: impl FnMut(usize, &StageChoice) -> Option<f64>,
    ) -> StageTuneResult {
        let choices = space.choices();
        let estimates: Vec<f64> = choices.iter().map(&mut estimate).collect();
        let min_estimate = estimates.iter().copied().fold(f64::INFINITY, f64::min);

        // Seeded visit order over the non-default candidates; the
        // default is always visited first so a baseline always exists.
        let mut order: Vec<usize> = (1..choices.len()).collect();
        seeded_shuffle(&mut order, self.seed ^ hash_str(space.stage()));
        let mut visit = Vec::with_capacity(choices.len());
        visit.push(0usize);
        visit.extend(order);

        let t0 = std::time::Instant::now();
        let mut result = StageTuneResult {
            stage: space.stage().to_string(),
            best: 0,
            best_score: f64::INFINITY,
            default_score: f64::INFINITY,
            measured: 0,
            pruned: 0,
            skipped: 0,
        };
        let mut best: Option<(f64, usize)> = None;
        for &idx in &visit {
            let is_default = idx == 0;
            if !is_default && estimates[idx] > self.prune_factor * min_estimate {
                result.pruned += 1;
                continue;
            }
            if !is_default && result.measured >= self.budget.max_trials {
                result.skipped += 1;
                continue;
            }
            if let Some(max_ms) = self.budget.max_ms {
                if !is_default && t0.elapsed().as_secs_f64() * 1e3 > max_ms {
                    result.skipped += 1;
                    continue;
                }
            }
            let Some(score) = measure(idx, &choices[idx]) else {
                // Candidate failed to build/run: disqualified.
                continue;
            };
            result.measured += 1;
            if is_default {
                result.default_score = score;
            }
            // Deterministic selection: strictly lower score wins; equal
            // scores keep the lower candidate index (so exact ties keep
            // the default). Wall-clock order never breaks ties.
            let better = match best {
                None => true,
                Some((bs, bi)) => score < bs || (score == bs && idx < bi),
            };
            if better {
                best = Some((score, idx));
            }
        }
        let (best_score, best_idx) = best.unwrap_or((f64::INFINITY, 0));
        result.best = best_idx;
        result.best_score = best_score;
        result
    }
}

/// SplitMix64 — the deterministic generator behind the seeded candidate
/// order (no dependency on the vendored `rand` shim, so core stays
/// self-contained).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a stage label: stages shuffle independently per seed.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic Fisher–Yates.
fn seeded_shuffle(items: &mut [usize], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Deterministic pseudo-random float buffer in `[-0.5, 0.5)` for
/// candidate micro-benchmarks (same seed, same data — measurement work
/// is identical run-to-run).
pub fn synthetic_data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    (0..n)
        .map(|_| ((splitmix64(&mut state) >> 40) as f32) * (1.0 / (1u64 << 24) as f32) - 0.5)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_classes_are_log2_bins() {
        assert_eq!(length_class(0), 0);
        assert_eq!(length_class(1), 1);
        assert_eq!(length_class(2), 2);
        assert_eq!(length_class(3), 2);
        assert_eq!(length_class(4), 3);
        assert_eq!(length_class(7), 3);
        assert_eq!(length_class(8), 4);
        assert_eq!(length_class(127), 7);
        assert_eq!(length_class(128), 8);
    }

    #[test]
    fn bucket_key_is_permutation_invariant_and_binned() {
        let a = BucketKey::new("m", &[5, 0, 9, 3]);
        let b = BucketKey::new("m", &[3, 9, 0, 5]);
        assert_eq!(a, b);
        // Resampling within bins: 5→6 ([4,7]), 9→15 ([8,15]), 3→2.
        let c = BucketKey::new("m", &[6, 0, 15, 2]);
        assert_eq!(a, c);
        // Crossing a bin boundary changes the key.
        let d = BucketKey::new("m", &[8, 0, 9, 3]);
        assert_ne!(a, d);
        // Different model descriptor never collides.
        assert_ne!(a, BucketKey::new("other", &[5, 0, 9, 3]));
        assert_eq!(a.to_string(), "m|c0:1,c2:1,c3:1,c4:1");
    }

    #[test]
    fn stage_choice_json_round_trips() {
        let choices = vec![
            StageChoice::default_choice(),
            StageChoice::default_choice().with_remap(RemapPolicy::LongestFirst),
            StageChoice::default_choice()
                .with_reorder(&["r", "c", "d"])
                .with_split("c", 8)
                .with_remap(RemapPolicy::Reversed),
        ];
        for c in &choices {
            let text = c.to_json();
            let parsed = StageChoice::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(&parsed, c, "round trip failed for {text}");
        }
        assert_eq!(choices[0].to_json(), "{}");
    }

    #[test]
    fn stage_choice_rejects_unknown_fields_and_bad_factors() {
        let bad = JsonValue::parse(r#"{"tile": 8}"#).unwrap();
        assert!(StageChoice::from_json(&bad).unwrap_err().contains("tile"));
        let bad = JsonValue::parse(r#"{"split": ["c", 0]}"#).unwrap();
        assert!(StageChoice::from_json(&bad).is_err());
        let bad = JsonValue::parse(r#"{"split": ["c", 2.5]}"#).unwrap();
        assert!(StageChoice::from_json(&bad).is_err());
        let bad = JsonValue::parse(r#"{"remap": "fastest"}"#).unwrap();
        assert!(StageChoice::from_json(&bad).is_err());
    }

    fn sample_cache() -> (TuningCache, BucketKey) {
        let key = BucketKey::new("enc_h64", &[5, 9, 3]);
        let mut stages = BTreeMap::new();
        stages.insert(
            "qkv_proj".to_string(),
            StageChoice::default_choice().with_reorder(&["r", "d", "c"]),
        );
        stages.insert("scores".to_string(), StageChoice::default_choice());
        let mut cache = TuningCache::new();
        cache.insert(
            &key,
            CacheEntry {
                stages,
                measurer: "deterministic".to_string(),
                trials: 7,
            },
        );
        (cache, key)
    }

    #[test]
    fn cache_round_trips_and_serializes_deterministically() {
        let (cache, key) = sample_cache();
        let text = cache.to_json_string();
        let reparsed = TuningCache::parse(&text).unwrap();
        assert_eq!(reparsed.get(&key), cache.get(&key));
        assert_eq!(reparsed.to_json_string(), text, "stable serialization");
        // Insertion order must not leak into the bytes.
        let mut reordered = TuningCache::new();
        reordered.insert(&BucketKey::new("zz", &[1]), CacheEntry::default());
        reordered.insert(&key, cache.get(&key).unwrap().clone());
        let mut other = TuningCache::new();
        other.insert(&key, cache.get(&key).unwrap().clone());
        other.insert(&BucketKey::new("zz", &[1]), CacheEntry::default());
        assert_eq!(reordered.to_json_string(), other.to_json_string());
    }

    #[test]
    fn cache_load_is_robust_to_corruption() {
        // Unknown version: refuse, report, stay empty.
        let err = TuningCache::parse(r#"{"schema": 99, "entries": {}}"#).unwrap_err();
        assert!(matches!(err, CacheLoad::UnknownVersion(_)), "{err:?}");
        assert!(!err.is_usable());
        // Truncated / invalid JSON.
        let err = TuningCache::parse(r#"{"schema": 1, "entries": {"#).unwrap_err();
        assert!(matches!(err, CacheLoad::Malformed(_)), "{err:?}");
        // Entry missing required fields.
        let err =
            TuningCache::parse(r#"{"schema": 1, "entries": {"b": {"stages": {}}}}"#).unwrap_err();
        assert!(matches!(err, CacheLoad::Malformed(_)), "{err:?}");
        // Entry with a malformed stage choice.
        let err = TuningCache::parse(
            r#"{"schema": 1, "entries": {"b": {"measurer": "m", "trials": 1, "stages": {"s": {"split": "nope"}}}}}"#,
        )
        .unwrap_err();
        assert!(matches!(err, CacheLoad::Malformed(_)), "{err:?}");
        // Missing schema field entirely.
        let err = TuningCache::parse(r#"{"entries": {}}"#).unwrap_err();
        assert!(matches!(err, CacheLoad::Malformed(_)), "{err:?}");
    }

    #[test]
    fn cache_file_load_statuses() {
        let dir = std::env::temp_dir().join(format!("cora_tune_cache_{}", std::process::id()));
        let path = dir.join("cache.json");
        let _ = std::fs::remove_dir_all(&dir);
        // Missing file: empty cache, Missing status, usable.
        let (cache, status) = TuningCache::load(&path);
        assert!(cache.is_empty());
        assert_eq!(status, CacheLoad::Missing);
        assert!(status.is_usable());
        // Round trip through disk.
        let (cache, key) = sample_cache();
        cache.save(&path).unwrap();
        let (loaded, status) = TuningCache::load(&path);
        assert_eq!(status, CacheLoad::Loaded(1));
        assert_eq!(loaded.get(&key), cache.get(&key));
        // Corrupt the file: load reports malformed and yields empty.
        std::fs::write(&path, "not json at all").unwrap();
        let (loaded, status) = TuningCache::load(&path);
        assert!(loaded.is_empty());
        assert!(matches!(status, CacheLoad::Malformed(_)), "{status:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn toy_space(n: usize) -> StageSpace {
        let mut choices = vec![StageChoice::default_choice()];
        for f in 0..n.saturating_sub(1) {
            choices.push(StageChoice::default_choice().with_split("c", 2 << f));
        }
        StageSpace::new("toy", choices)
    }

    #[test]
    fn search_is_deterministic_and_index_tie_broken() {
        let space = toy_space(5);
        let tuner = Autotuner::new(TuneBudget::trials(16), 7);
        // All candidates tie: the default (index 0) must win.
        let r = tuner.tune_stage(&space, |_| 1.0, |_, _| Some(2.0));
        assert_eq!(r.best, 0);
        assert_eq!(r.measured, 5);
        assert_eq!(r.default_score, 2.0);
        // A strictly better candidate wins regardless of visit order.
        let scores = [5.0, 4.0, 1.0, 4.0, 1.0];
        let r1 = tuner.tune_stage(&space, |_| 1.0, |i, _| Some(scores[i]));
        let r2 = tuner.tune_stage(&space, |_| 1.0, |i, _| Some(scores[i]));
        assert_eq!(r1.best, 2, "equal scores break ties on candidate index");
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.best_score, r2.best_score);
    }

    #[test]
    fn search_prunes_and_budgets() {
        let space = toy_space(6);
        let tuner = Autotuner::new(TuneBudget::trials(2), 1);
        // Estimates: candidate 3 is wildly expensive → pruned. Budget of
        // 2 trials: default + one more measured, the rest skipped.
        let r = tuner.tune_stage(
            &space,
            |c| {
                if c.split.as_ref().is_some_and(|(_, f)| *f == 8) {
                    1e9
                } else {
                    1.0
                }
            },
            |_, _| Some(1.0),
        );
        assert_eq!(r.measured, 2);
        assert_eq!(r.pruned, 1);
        assert_eq!(r.skipped, 3);
        assert_eq!(r.best, 0, "ties keep the default");
        // The default is never pruned even when its estimate is awful.
        let r = tuner.tune_stage(
            &space,
            |c| if c.is_default() { 1e9 } else { 1.0 },
            |_, _| Some(1.0),
        );
        assert!(r.measured >= 1);
        assert_eq!(r.default_score, 1.0);
    }

    #[test]
    fn failed_candidates_are_disqualified() {
        let space = toy_space(3);
        let tuner = Autotuner::new(TuneBudget::default(), 3);
        // Every non-default candidate fails to build.
        let r = tuner.tune_stage(&space, |_| 1.0, |i, _| (i == 0).then_some(4.0));
        assert_eq!(r.best, 0);
        assert_eq!(r.measured, 1);
    }

    #[test]
    fn synthetic_data_is_deterministic() {
        assert_eq!(synthetic_data(16, 9), synthetic_data(16, 9));
        assert_ne!(synthetic_data(16, 9), synthetic_data(16, 10));
        assert!(synthetic_data(256, 1)
            .iter()
            .all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn json_parser_handles_the_cache_subset() {
        let v = JsonValue::parse(r#"{"a": [1, -2.5e1, "x\n\"yA"], "b": {"c": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-25.0),
                JsonValue::Str("x\n\"yA".to_string()),
            ])
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap(),
            &JsonValue::Bool(true)
        );
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
    }
}
