//! # cora-core
//!
//! The CoRa ragged-tensor compiler (the paper's primary contribution):
//!
//! * [`api`] — the Ragged API: named dimensions, vloops/vdims with
//!   uninterpreted extent functions, tensor declarations with Algorithm-1
//!   access lowering.
//! * [`schedule`] — scheduling primitives, including the ragged-specific
//!   ones: loop/storage padding, vloop fusion, bulk padding, thread
//!   remapping, load hoisting.
//! * [`opsplit`] — operation splitting and horizontal fusion.
//! * [`bounds`] — iteration-variable range translation across fused
//!   vloops (Fig. 7).
//! * [`mod@lower`] — the lowering pipeline to statement IR + prelude spec.
//! * [`outline`] — the parallel outlining pass: hoists the outermost
//!   block-bound loop into a block-indexed entry point for the CPU
//!   runtime.
//! * [`prelude_gen`] — prelude planning and host-side construction of
//!   auxiliary structures.
//! * [`program`] — compiled programs: C/CUDA source, numeric execution
//!   (serial and block-parallel), simulated-GPU kernels.
//! * [`pipeline`] — multi-operator compiled pipelines: chained programs
//!   sharing a statically planned buffer arena, with preludes and
//!   dispatch orders resolved once per shape.
//! * [`builder`] — a compact facade for common operator shapes.
//! * [`autotune`] — shape-bucketed schedule search: candidate spaces
//!   over `Schedule` directives, a versioned persistent tuning cache
//!   keyed by length-histogram buckets, and a deterministic seeded
//!   search driver.
//! * [`verify`] — the shape-symbolic safety verifier: per-shape proofs
//!   of in-bounds accesses and the disjoint-store contract for every
//!   outlined program, producing the `StoreCert` the parallel executor
//!   enforces at run time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod autotune;
pub mod bounds;
pub mod builder;
pub mod lower;
pub mod opsplit;
pub mod outline;
pub mod pipeline;
pub mod prelude_gen;
pub mod program;
pub mod schedule;
pub mod verify;

/// Convenience re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::api::{BodyFn, LoopExtent, LoopShift, LoopSpec, Operator, TensorRef};
    pub use crate::autotune::{
        Autotuner, BucketKey, CacheEntry, CacheLoad, StageChoice, StageSpace, StageTuneResult,
        TuneBudget, TuningCache,
    };
    pub use crate::builder::{BuildError, BuiltOp, OpBuilder};
    pub use crate::lower::lower;
    pub use crate::opsplit::{hfuse_sim, split_operation};
    pub use crate::outline::{outline, BlockOutline};
    pub use crate::pipeline::{
        BufferPlan, CompiledPipeline, PipelineBuilder, PipelineError, PipelinePrep, PipelineRun,
        PipelineSession,
    };
    pub use crate::prelude_gen::{FusionSpec, PreludeData, PreludeSpec};
    pub use crate::program::{CompiledProgram, ParallelPrep, ParallelSession, Program, RunResult};
    pub use crate::schedule::{Directive, RemapPolicy, Schedule, ScheduleError};
    pub use crate::verify::{ProofKind, VerifyError, VerifyOutcome};
    pub use cora_exec::{CpuPool, MathMode};
    pub use cora_ir::{Expr, FExpr, FUnaryOp, ForKind};
}

pub use api::{LoopSpec, Operator, TensorRef};
pub use builder::OpBuilder;
pub use lower::lower;
pub use program::Program;
pub use schedule::{RemapPolicy, Schedule, ScheduleError};
