//! Concrete evaluation of expressions and conditions.
//!
//! Evaluation resolves variables, uninterpreted-function calls (through
//! [`UfEval`]) and auxiliary-buffer loads. It is the semantic ground truth
//! the simplifier and solver are property-tested against.

use std::collections::HashMap;

use crate::expr::{floor_div_i64, floor_mod_i64, Cond, CondKind, Expr, ExprKind};
use crate::ufunc::{UfEval, UfTable};

/// A concrete environment binding everything an [`Expr`] can reference.
#[derive(Debug, Default, Clone)]
pub struct Env {
    vars: HashMap<String, i64>,
    bufs: HashMap<String, Vec<i64>>,
    ufs: UfTable,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds variable `name` to `value`, returning the previous binding.
    pub fn bind(&mut self, name: impl Into<String>, value: i64) -> Option<i64> {
        self.vars.insert(name.into(), value)
    }

    /// Removes the binding for `name`.
    pub fn unbind(&mut self, name: &str) {
        self.vars.remove(name);
    }

    /// Current value of variable `name`, if bound.
    pub fn lookup(&self, name: &str) -> Option<i64> {
        self.vars.get(name).copied()
    }

    /// Installs an integer auxiliary buffer.
    pub fn set_buffer(&mut self, name: impl Into<String>, data: Vec<i64>) {
        self.bufs.insert(name.into(), data);
    }

    /// Reads an auxiliary buffer.
    pub fn buffer(&self, name: &str) -> Option<&[i64]> {
        self.bufs.get(name).map(|v| v.as_slice())
    }

    /// Iterates over every bound variable.
    pub fn vars(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.vars.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Iterates over every installed auxiliary buffer.
    pub fn buffers(&self) -> impl Iterator<Item = (&str, &[i64])> + '_ {
        self.bufs.iter().map(|(n, v)| (n.as_str(), v.as_slice()))
    }

    /// Mutable access to the uninterpreted-function tables.
    pub fn uf_table_mut(&mut self) -> &mut UfTable {
        &mut self.ufs
    }

    /// Shared access to the uninterpreted-function tables.
    pub fn uf_table(&self) -> &UfTable {
        &self.ufs
    }

    /// Evaluates `e` in this environment.
    ///
    /// # Panics
    ///
    /// Panics on unbound variables, missing buffers/tables, out-of-bounds
    /// loads, or division by zero — all of which indicate a lowering bug,
    /// not a user error.
    pub fn eval(&self, e: &Expr) -> i64 {
        match e.kind() {
            ExprKind::Int(v) => *v,
            ExprKind::Var(n) => self
                .lookup(n)
                .unwrap_or_else(|| panic!("unbound variable `{n}` during evaluation")),
            ExprKind::Add(a, b) => self.eval(a) + self.eval(b),
            ExprKind::Sub(a, b) => self.eval(a) - self.eval(b),
            ExprKind::Mul(a, b) => self.eval(a) * self.eval(b),
            ExprKind::FloorDiv(a, b) => floor_div_i64(self.eval(a), self.eval(b)),
            ExprKind::FloorMod(a, b) => floor_mod_i64(self.eval(a), self.eval(b)),
            ExprKind::Min(a, b) => self.eval(a).min(self.eval(b)),
            ExprKind::Max(a, b) => self.eval(a).max(self.eval(b)),
            ExprKind::Select(c, a, b) => {
                if self.eval_cond(c) {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            ExprKind::Uf(f, args) => {
                let argv: Vec<i64> = args.iter().map(|a| self.eval(a)).collect();
                self.ufs.eval_uf(f.name(), &argv)
            }
            ExprKind::Load(buf, idx) => {
                let i = self.eval(idx);
                let data = self
                    .buffer(buf)
                    .unwrap_or_else(|| panic!("missing auxiliary buffer `{buf}`"));
                let iu = usize::try_from(i)
                    .unwrap_or_else(|_| panic!("negative index {i} into buffer `{buf}`"));
                data[iu]
            }
        }
    }

    /// Evaluates condition `c` in this environment.
    pub fn eval_cond(&self, c: &Cond) -> bool {
        match c.kind() {
            CondKind::Const(b) => *b,
            CondKind::Lt(a, b) => self.eval(a) < self.eval(b),
            CondKind::Le(a, b) => self.eval(a) <= self.eval(b),
            CondKind::Eq(a, b) => self.eval(a) == self.eval(b),
            CondKind::Ne(a, b) => self.eval(a) != self.eval(b),
            CondKind::And(a, b) => self.eval_cond(a) && self.eval_cond(b),
            CondKind::Or(a, b) => self.eval_cond(a) || self.eval_cond(b),
            CondKind::Not(a) => !self.eval_cond(a),
        }
    }
}

impl UfEval for Env {
    fn eval_uf(&self, name: &str, args: &[i64]) -> i64 {
        self.ufs.eval_uf(name, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ufunc::UfRef;

    #[test]
    fn arithmetic_and_vars() {
        let mut env = Env::new();
        env.bind("i", 5);
        let e = (Expr::var("i") * 3 + 1).floor_div(Expr::int(2));
        assert_eq!(env.eval(&e), 8);
    }

    #[test]
    fn select_and_conditions() {
        let mut env = Env::new();
        env.bind("x", 2);
        let c = Expr::var("x").lt(Expr::int(3));
        let e = Expr::select(c, Expr::int(10), Expr::int(20));
        assert_eq!(env.eval(&e), 10);
    }

    #[test]
    fn uf_and_load() {
        let mut env = Env::new();
        env.uf_table_mut().insert_table1d("s", vec![4, 1, 7]);
        env.set_buffer("row_idx", vec![0, 4, 5]);
        env.bind("o", 2);
        let s = UfRef::new("s", 1);
        let e = Expr::uf(s, vec![Expr::var("o")]) + Expr::load("row_idx", Expr::var("o") - 1);
        assert_eq!(env.eval(&e), 7 + 4);
    }

    #[test]
    fn ceil_div_round_up_semantics() {
        let env = Env::new();
        for n in 0..30i64 {
            for k in 1..6i64 {
                let e = Expr::int(n).ceil_div(Expr::int(k));
                assert_eq!(env.eval(&e), (n + k - 1).div_euclid(k));
                let r = Expr::int(n).round_up(Expr::int(k));
                assert_eq!(env.eval(&r) % k, 0);
                assert!(env.eval(&r) >= n && env.eval(&r) < n + k);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        Env::new().eval(&Expr::var("ghost"));
    }
}
