//! Pretty-printers rendering lowered IR as C- or CUDA-flavoured source.
//!
//! CoRa generates "target-dependent code such as C or CUDA C++" (§2). Our
//! executable path interprets/dispatches the same IR, but the printers make
//! the compilation result inspectable and are exercised by the examples and
//! golden tests.

use crate::stmt::{ForKind, Stmt, StoreKind};

/// Renders `s` as C-like source.
pub fn print_c(s: &Stmt) -> String {
    let mut p = Printer::new(Dialect::C);
    p.stmt(s);
    p.out
}

/// Renders `s` as CUDA-like source.
///
/// Loops bound to GPU axes print as axis bindings rather than loops, the
/// way a real codegen would emit them.
pub fn print_cuda(s: &Stmt) -> String {
    let mut p = Printer::new(Dialect::Cuda);
    p.stmt(s);
    p.out
}

#[derive(Clone, Copy, PartialEq)]
enum Dialect {
    C,
    Cuda,
}

struct Printer {
    out: String,
    indent: usize,
    dialect: Dialect,
}

impl Printer {
    fn new(dialect: Dialect) -> Self {
        Printer {
            out: String::new(),
            indent: 0,
            dialect,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn axis_name(kind: ForKind) -> &'static str {
        match kind {
            ForKind::GpuBlockX => "blockIdx.x",
            ForKind::GpuBlockY => "blockIdx.y",
            ForKind::GpuThreadX => "threadIdx.x",
            ForKind::GpuThreadY => "threadIdx.y",
            _ => unreachable!("not a GPU axis"),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let is_gpu_axis = kind.is_block_axis() || kind.is_thread_axis();
                if self.dialect == Dialect::Cuda && is_gpu_axis {
                    let axis = Self::axis_name(*kind);
                    self.line(&format!("// {axis} in [{min}, {min} + {extent})"));
                    self.line(&format!("int {var} = {min} + {axis};"));
                    self.stmt(body);
                } else {
                    let prefix = match kind {
                        ForKind::Parallel => "#pragma omp parallel for\n",
                        ForKind::Unrolled => "#pragma unroll\n",
                        ForKind::Vectorized => "#pragma vectorize\n",
                        _ => "",
                    };
                    if !prefix.is_empty() {
                        for l in prefix.trim_end().lines() {
                            self.line(l);
                        }
                    }
                    self.line(&format!(
                        "for (int {var} = {min}; {var} < {min} + {extent}; ++{var}) {{"
                    ));
                    self.indent += 1;
                    self.stmt(body);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::LetInt { var, value, body } => {
                self.line(&format!("int {var} = {value};"));
                self.stmt(body);
            }
            Stmt::Store {
                buffer,
                index,
                value,
                kind,
            } => match kind {
                StoreKind::Assign => self.line(&format!("{buffer}[{index}] = {value};")),
                StoreKind::AddAssign => self.line(&format!("{buffer}[{index}] += {value};")),
                StoreKind::MaxAssign => self.line(&format!(
                    "{buffer}[{index}] = fmaxf({buffer}[{index}], {value});"
                )),
            },
            Stmt::If { cond, then_, else_ } => {
                self.line(&format!("if ({cond}) {{"));
                self.indent += 1;
                self.stmt(then_);
                self.indent -= 1;
                match else_ {
                    Some(e) => {
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt(e);
                        self.indent -= 1;
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            Stmt::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            Stmt::Alloc { buffer, size, body } => {
                let qual = if self.dialect == Dialect::Cuda {
                    "__shared__ "
                } else {
                    ""
                };
                self.line(&format!("{qual}float {buffer}[{size}];"));
                self.stmt(body);
            }
            Stmt::Nop => self.line(";"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::fexpr::FExpr;

    fn sample() -> Stmt {
        Stmt::loop_kind(
            "o",
            Expr::var("M"),
            ForKind::GpuBlockX,
            Stmt::loop_(
                "i",
                Expr::var("n"),
                Stmt::store(
                    "B",
                    Expr::var("o") * Expr::var("n") + Expr::var("i"),
                    FExpr::load("A", Expr::var("o") * Expr::var("n") + Expr::var("i")) * 2.0,
                ),
            ),
        )
    }

    #[test]
    fn c_printer_emits_plain_loop() {
        let txt = print_c(&sample());
        assert!(txt.contains("for (int o = 0"));
        assert!(txt.contains("B[((o*n) + i)] = (A[((o*n) + i)]*2.0f);"));
    }

    #[test]
    fn cuda_printer_binds_block_axis() {
        let txt = print_cuda(&sample());
        assert!(txt.contains("int o = 0 + blockIdx.x;"));
        assert!(!txt.contains("for (int o"));
        assert!(txt.contains("for (int i = 0"));
    }

    #[test]
    fn alloc_prints_shared_in_cuda() {
        let s = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::int(64),
            body: Box::new(Stmt::Nop),
        };
        assert!(print_cuda(&s).contains("__shared__ float tile[64];"));
        assert!(print_c(&s).contains("float tile[64];"));
    }
}
