//! Algebraic simplification with uninterpreted-function axioms.
//!
//! Where the paper hands expressions to Z3 (§B.2), we apply a terminating
//! bottom-up rewriter. It covers the query shapes CoRa's lowering produces:
//! constant folding, neutral/absorbing elements, floor-division
//! cancellation, min/max collapsing, and the three fused-loop axioms
//! (`ffo(foif(o,i)) = o`, `ffi(foif(o,i)) = i`, `foif(ffo(f),ffi(f)) = f`).
//!
//! Every rule is semantics-preserving; `proptest` checks random expressions
//! evaluate identically before and after simplification.

use std::ops::Not;

use crate::expr::{floor_div_i64, floor_mod_i64, Cond, CondKind, Expr, ExprKind};
use crate::ufunc::UfRegistry;

/// Simplifies `e` bottom-up using the axioms in `reg`.
pub fn simplify(e: &Expr, reg: &UfRegistry) -> Expr {
    match e.kind() {
        ExprKind::Int(_) | ExprKind::Var(_) => e.clone(),
        ExprKind::Add(a, b) => simplify_add(simplify(a, reg), simplify(b, reg)),
        ExprKind::Sub(a, b) => simplify_sub(simplify(a, reg), simplify(b, reg)),
        ExprKind::Mul(a, b) => simplify_mul(simplify(a, reg), simplify(b, reg)),
        ExprKind::FloorDiv(a, b) => simplify_div(simplify(a, reg), simplify(b, reg)),
        ExprKind::FloorMod(a, b) => simplify_mod(simplify(a, reg), simplify(b, reg)),
        ExprKind::Min(a, b) => {
            let (a, b) = (simplify(a, reg), simplify(b, reg));
            match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => Expr::int(x.min(y)),
                _ if a == b => a,
                _ => a.min(b),
            }
        }
        ExprKind::Max(a, b) => {
            let (a, b) = (simplify(a, reg), simplify(b, reg));
            match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => Expr::int(x.max(y)),
                _ if a == b => a,
                _ => a.max(b),
            }
        }
        ExprKind::Select(c, a, b) => {
            let c = simplify_cond(c, reg);
            let (a, b) = (simplify(a, reg), simplify(b, reg));
            match c.as_bool() {
                Some(true) => a,
                Some(false) => b,
                None if a == b => a,
                None => Expr::select(c, a, b),
            }
        }
        ExprKind::Uf(f, args) => {
            let args: Vec<Expr> = args.iter().map(|a| simplify(a, reg)).collect();
            apply_uf_axioms(f.name(), &args, reg).unwrap_or_else(|| Expr::uf(f.clone(), args))
        }
        ExprKind::Load(buf, idx) => Expr::load(buf.clone(), simplify(idx, reg)),
    }
}

/// Simplifies a condition bottom-up.
pub fn simplify_cond(c: &Cond, reg: &UfRegistry) -> Cond {
    match c.kind() {
        CondKind::Const(_) => c.clone(),
        CondKind::Lt(a, b) => fold_cmp(simplify(a, reg), simplify(b, reg), |x, y| x < y, Expr::lt),
        CondKind::Le(a, b) => fold_cmp(simplify(a, reg), simplify(b, reg), |x, y| x <= y, Expr::le),
        CondKind::Eq(a, b) => {
            let (a, b) = (simplify(a, reg), simplify(b, reg));
            if a == b {
                return Cond::const_bool(true);
            }
            fold_cmp(a, b, |x, y| x == y, Expr::eq_expr)
        }
        CondKind::Ne(a, b) => {
            let (a, b) = (simplify(a, reg), simplify(b, reg));
            if a == b {
                return Cond::const_bool(false);
            }
            fold_cmp(a, b, |x, y| x != y, Expr::ne_expr)
        }
        CondKind::And(a, b) => {
            let (a, b) = (simplify_cond(a, reg), simplify_cond(b, reg));
            match (a.as_bool(), b.as_bool()) {
                (Some(false), _) | (_, Some(false)) => Cond::const_bool(false),
                (Some(true), _) => b,
                (_, Some(true)) => a,
                _ => a.and(b),
            }
        }
        CondKind::Or(a, b) => {
            let (a, b) = (simplify_cond(a, reg), simplify_cond(b, reg));
            match (a.as_bool(), b.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Cond::const_bool(true),
                (Some(false), _) => b,
                (_, Some(false)) => a,
                _ => a.or(b),
            }
        }
        CondKind::Not(a) => {
            let a = simplify_cond(a, reg);
            match a.as_bool() {
                Some(v) => Cond::const_bool(!v),
                None => a.not(),
            }
        }
    }
}

fn fold_cmp(
    a: Expr,
    b: Expr,
    f: impl Fn(i64, i64) -> bool,
    rebuild: impl Fn(Expr, Expr) -> Cond,
) -> Cond {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => Cond::const_bool(f(x, y)),
        _ => rebuild(a, b),
    }
}

// Constant folding uses checked arithmetic throughout: adversarial
// constants near `i64::MAX`/`i64::MIN` must leave the node unsimplified
// instead of panicking in debug builds (or silently wrapping in release).

fn simplify_add(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => {
            if let Some(v) = x.checked_add(y) {
                return Expr::int(v);
            }
        }
        (Some(0), _) => return b,
        (_, Some(0)) => return a,
        _ => {}
    }
    // (x + c1) + c2 -> x + (c1+c2): keeps offset chains shallow.
    if let (ExprKind::Add(x, c1), Some(c2)) = (a.kind(), b.as_int()) {
        if let Some(c) = c1.as_int().and_then(|c1v| c1v.checked_add(c2)) {
            return simplify_add(x.clone(), Expr::int(c));
        }
    }
    a + b
}

fn simplify_sub(a: Expr, b: Expr) -> Expr {
    if a == b {
        return Expr::int(0);
    }
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => match x.checked_sub(y) {
            Some(v) => Expr::int(v),
            None => a - b,
        },
        (_, Some(0)) => a,
        _ => a - b,
    }
}

fn simplify_mul(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => {
            if let Some(v) = x.checked_mul(y) {
                return Expr::int(v);
            }
        }
        (Some(0), _) | (_, Some(0)) => return Expr::int(0),
        (Some(1), _) => return b,
        (_, Some(1)) => return a,
        _ => {}
    }
    a * b
}

fn simplify_div(a: Expr, b: Expr) -> Expr {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        // `i64::MIN / -1` is the one overflowing division.
        if y != 0 && !(x == i64::MIN && y == -1) {
            return Expr::int(floor_div_i64(x, y));
        }
    }
    if b.is_one() {
        return a;
    }
    if a.is_zero() {
        return Expr::int(0);
    }
    // (x * c) / c -> x for positive constant c.
    if let (ExprKind::Mul(x, c1), Some(c)) = (a.kind(), b.as_int()) {
        if c > 0 && c1.as_int() == Some(c) {
            return x.clone();
        }
    }
    // (x*c1 + r) / c2 where c2 | c1 and 0 <= r < c2 cannot be proven here;
    // handled by the solver with interval context instead.
    a.floor_div(b)
}

fn simplify_mod(a: Expr, b: Expr) -> Expr {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        // floor_mod_i64 is overflow-free for every non-zero divisor.
        if y != 0 {
            return Expr::int(floor_mod_i64(x, y));
        }
    }
    if b.is_one() {
        return Expr::int(0);
    }
    if a.is_zero() {
        return Expr::int(0);
    }
    // (x * c) % c -> 0 for positive constant c.
    if let (ExprKind::Mul(_, c1), Some(c)) = (a.kind(), b.as_int()) {
        if c > 0 && c1.as_int() == Some(c) {
            return Expr::int(0);
        }
    }
    a.floor_mod(b)
}

/// Applies the fused-triple axioms to a UF call; returns `None` if no axiom
/// matched.
fn apply_uf_axioms(name: &str, args: &[Expr], reg: &UfRegistry) -> Option<Expr> {
    // ffo(foif(o, i)) -> o and ffi(foif(o, i)) -> i.
    if let Some(triple) = reg.triple_with_component(name) {
        if args.len() == 1 {
            if let ExprKind::Uf(inner, inner_args) = args[0].kind() {
                if inner.name() == triple.foif.name() && inner_args.len() == 2 {
                    if name == triple.ffo.name() {
                        return Some(inner_args[0].clone());
                    }
                    if name == triple.ffi.name() {
                        return Some(inner_args[1].clone());
                    }
                }
            }
        }
    }
    // foif(ffo(f), ffi(f)) -> f.
    if let Some(triple) = reg.triple_with_foif(name) {
        if args.len() == 2 {
            if let (ExprKind::Uf(f0, a0), ExprKind::Uf(f1, a1)) = (args[0].kind(), args[1].kind()) {
                if f0.name() == triple.ffo.name()
                    && f1.name() == triple.ffi.name()
                    && a0.len() == 1
                    && a1.len() == 1
                    && a0[0] == a1[0]
                {
                    return Some(a0[0].clone());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ufunc::{FusedTriple, UfRef};

    fn reg_with_triple() -> (UfRegistry, UfRef, UfRef, UfRef) {
        let mut reg = UfRegistry::new();
        let foif = UfRef::new("foif", 2);
        let ffo = UfRef::new("ffo", 1);
        let ffi = UfRef::new("ffi", 1);
        reg.register_fused_triple(FusedTriple {
            foif: foif.clone(),
            ffo: ffo.clone(),
            ffi: ffi.clone(),
        });
        (reg, foif, ffo, ffi)
    }

    #[test]
    fn folds_constants() {
        let reg = UfRegistry::new();
        let e = (Expr::int(3) + 4) * 2 - 1;
        assert_eq!(simplify(&e, &reg).as_int(), Some(13));
    }

    #[test]
    // `x * 0` is the point of the test: the simplifier must erase it.
    #[allow(clippy::erasing_op)]
    fn neutral_elements() {
        let reg = UfRegistry::new();
        let x = Expr::var("x");
        assert_eq!(simplify(&(x.clone() + 0), &reg), x);
        assert_eq!(simplify(&(x.clone() * 1), &reg), x);
        assert_eq!(simplify(&(x.clone() * 0), &reg).as_int(), Some(0));
        assert_eq!(simplify(&(x.clone() - x.clone()), &reg).as_int(), Some(0));
    }

    #[test]
    fn mul_div_cancellation() {
        let reg = UfRegistry::new();
        let x = Expr::var("x");
        let e = (x.clone() * 8).floor_div(Expr::int(8));
        assert_eq!(simplify(&e, &reg), x);
        let m = (Expr::var("x") * 8).floor_mod(Expr::int(8));
        assert_eq!(simplify(&m, &reg).as_int(), Some(0));
    }

    #[test]
    fn overflowing_constants_stay_unfolded() {
        let reg = UfRegistry::new();
        assert_eq!(simplify(&(Expr::int(i64::MAX) + 1), &reg).as_int(), None);
        assert_eq!(simplify(&(Expr::int(i64::MIN) - 1), &reg).as_int(), None);
        assert_eq!(simplify(&(Expr::int(i64::MAX) * 2), &reg).as_int(), None);
        let d = Expr::int(i64::MIN).floor_div(Expr::int(-1));
        assert_eq!(simplify(&d, &reg).as_int(), None);
        // Modulo is total for non-zero divisors: MIN % -1 folds to 0.
        let m = Expr::int(i64::MIN).floor_mod(Expr::int(-1));
        assert_eq!(simplify(&m, &reg).as_int(), Some(0));
        let m2 = Expr::int(i64::MIN).floor_mod(Expr::int(3));
        assert_eq!(
            simplify(&m2, &reg).as_int(),
            Some(floor_mod_i64(i64::MIN, 3))
        );
        // The (x + c1) + c2 reassociation must also refuse to overflow.
        let r = simplify(&((Expr::var("x") + i64::MAX) + 1), &reg);
        assert_eq!(format!("{r}"), "((x + 9223372036854775807) + 1)");
    }

    #[test]
    fn add_chain_reassociation() {
        let reg = UfRegistry::new();
        let e = (Expr::var("x") + 3) + 4;
        assert_eq!(format!("{}", simplify(&e, &reg)), "(x + 7)");
    }

    #[test]
    fn fused_axioms_fire() {
        let (reg, foif, ffo, ffi) = reg_with_triple();
        let o = Expr::var("o");
        let i = Expr::var("i");
        let f = Expr::var("f");

        let e1 = Expr::uf(
            ffo.clone(),
            vec![Expr::uf(foif.clone(), vec![o.clone(), i.clone()])],
        );
        assert_eq!(simplify(&e1, &reg), o);

        let e2 = Expr::uf(
            ffi.clone(),
            vec![Expr::uf(foif.clone(), vec![o.clone(), i.clone()])],
        );
        assert_eq!(simplify(&e2, &reg), i);

        let e3 = Expr::uf(
            foif,
            vec![
                Expr::uf(ffo, vec![f.clone()]),
                Expr::uf(ffi, vec![f.clone()]),
            ],
        );
        assert_eq!(simplify(&e3, &reg), f);
    }

    #[test]
    fn select_with_constant_condition() {
        let reg = UfRegistry::new();
        let e = Expr::select(
            Expr::int(1).lt(Expr::int(2)),
            Expr::var("a"),
            Expr::var("b"),
        );
        assert_eq!(simplify(&e, &reg), Expr::var("a"));
    }

    #[test]
    fn cond_simplification() {
        let reg = UfRegistry::new();
        let t = Expr::int(1).lt(Expr::int(2));
        let u = Expr::var("x").lt(Expr::var("y"));
        assert_eq!(
            simplify_cond(&t.clone().and(u.clone()), &reg),
            simplify_cond(&u, &reg)
        );
        assert_eq!(simplify_cond(&t.or(u), &reg).as_bool(), Some(true));
        let same = Expr::var("x").eq_expr(Expr::var("x"));
        assert_eq!(simplify_cond(&same, &reg).as_bool(), Some(true));
    }
}
