//! The solver facade: simplification + interval reasoning + UF axioms.
//!
//! This stands in for the paper's use of the Z3 SMT solver (§B.2): it
//! simplifies expressions containing uninterpreted-function calls and
//! proves (or declines to prove) bound-check conditions so guards can be
//! elided from padded loop bodies.

use crate::expr::{Cond, Expr};
use crate::interval::{infer, prove, Interval, RangeMap};
use crate::simplify::{simplify, simplify_cond};
use crate::ufunc::UfRegistry;

/// A solving context owning the UF registry and variable ranges.
#[derive(Debug, Default)]
pub struct Solver {
    registry: UfRegistry,
    ranges: RangeMap,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared access to the UF registry.
    pub fn registry(&self) -> &UfRegistry {
        &self.registry
    }

    /// Mutable access to the UF registry.
    pub fn registry_mut(&mut self) -> &mut UfRegistry {
        &mut self.registry
    }

    /// Shared access to the variable ranges.
    pub fn ranges(&self) -> &RangeMap {
        &self.ranges
    }

    /// Mutable access to the variable ranges.
    pub fn ranges_mut(&mut self) -> &mut RangeMap {
        &mut self.ranges
    }

    /// Simplifies an expression using the registered axioms.
    pub fn simplify(&self, e: &Expr) -> Expr {
        simplify(e, &self.registry)
    }

    /// Simplifies a condition.
    pub fn simplify_cond(&self, c: &Cond) -> Cond {
        simplify_cond(c, &self.registry)
    }

    /// Infers a sound interval for `e` under the current ranges.
    pub fn interval(&self, e: &Expr) -> Interval {
        infer(&self.simplify(e), &self.ranges, &self.registry)
    }

    /// Tries to decide `c`: `Some(true)` (valid), `Some(false)`
    /// (unsatisfiable), or `None` (unknown).
    pub fn decide(&self, c: &Cond) -> Option<bool> {
        let c = self.simplify_cond(c);
        if let Some(b) = c.as_bool() {
            return Some(b);
        }
        prove(&c, &self.ranges, &self.registry)
    }

    /// Returns `c` unless it is provably always true, in which case the
    /// guard is redundant and `None` is returned.
    ///
    /// This is the elision query CoRa issues when loop padding guarantees
    /// a bound check can never fail (§4.1).
    pub fn elide_guard(&self, c: &Cond) -> Option<Cond> {
        match self.decide(c) {
            Some(true) => None,
            _ => Some(self.simplify_cond(c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::ufunc::{FusedTriple, UfProperties, UfRef};

    #[test]
    fn elides_guard_proved_by_padding() {
        // Loop padded to a multiple of 4 with storage padded to a multiple
        // of 4: access index i < padded_extent always holds.
        let mut s = Solver::new();
        s.ranges_mut().set("i", Interval::bounded(0, 127));
        let c = Expr::var("i").lt(Expr::int(128));
        assert!(s.elide_guard(&c).is_none());
        let c2 = Expr::var("i").lt(Expr::int(100));
        assert!(s.elide_guard(&c2).is_some());
    }

    #[test]
    fn decides_with_uf_bounds() {
        let mut s = Solver::new();
        let len = UfRef::new("s", 1);
        s.registry_mut().register(
            &len,
            UfProperties {
                min_value: Some(1),
                max_value: Some(512),
                ..Default::default()
            },
        );
        s.ranges_mut().set("i", Interval::bounded(0, 0));
        // i < s(o) cannot be decided in general...
        let c = Expr::var("i").lt(Expr::uf(len.clone(), vec![Expr::var("o")]));
        assert_eq!(s.decide(&c), Some(true)); // i == 0 < s >= 1

        // ...but i < s(o) with i up to 511 is unknown.
        s.ranges_mut().set("i", Interval::bounded(0, 511));
        assert_eq!(s.decide(&c), None);
    }

    #[test]
    fn fused_axiom_reaches_decision() {
        let mut s = Solver::new();
        let foif = UfRef::new("foif", 2);
        let ffo = UfRef::new("ffo", 1);
        let ffi = UfRef::new("ffi", 1);
        s.registry_mut().register_fused_triple(FusedTriple {
            foif: foif.clone(),
            ffo: ffo.clone(),
            ffi: ffi.clone(),
        });
        // ffo(foif(o, i)) == o simplifies to true.
        let lhs = Expr::uf(
            ffo,
            vec![Expr::uf(foif, vec![Expr::var("o"), Expr::var("i")])],
        );
        let c = lhs.eq_expr(Expr::var("o"));
        assert_eq!(s.decide(&c), Some(true));
    }
}
