//! Slot resolution: interning every name a lowered statement references
//! into dense indices.
//!
//! The tree-walking interpreter resolves variables, auxiliary buffers,
//! float buffers and uninterpreted functions through `HashMap<String, _>`
//! lookups on every access. A compiled execution tier cannot afford that,
//! so [`StmtSlots::resolve`] walks a [`Stmt`] once and produces a census
//! of the four runtime namespaces:
//!
//! * **free integer variables** — referenced but never bound by an
//!   enclosing `For`/`LetInt` (e.g. fused-extent parameters like
//!   `F_o_i_f`); these must be bound externally before execution,
//! * **integer auxiliary buffers** — always external (row offsets,
//!   extent tables, fusion maps built by the prelude),
//! * **free float buffers** — kernel inputs and outputs; buffers
//!   introduced by `Alloc` are scoped scratch and excluded,
//! * **uninterpreted functions** — opaque symbols resolved to runtime
//!   tables.
//!
//! Each namespace is a dense [`Interner`], so an executor can replace
//! string hashing with direct `Vec` indexing. Binding sites (`For`,
//! `LetInt`, `Alloc`) are *counted* rather than interned: the bytecode
//! compiler alpha-renames each site to its own fresh slot past the free
//! range, which makes shadowing need no save/restore at run time.

use std::collections::HashMap;

use crate::expr::{Cond, CondKind, Expr, ExprKind};
use crate::fexpr::{FExpr, FExprKind};
use crate::stmt::Stmt;
use crate::ufunc::UfRef;

/// A dense string interner for one namespace: names map to stable
/// `u32` slots in first-seen order.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the slot for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX interned names");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Returns the slot for `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// All interned names, indexed by slot.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Census of every name a statement references, split by namespace.
///
/// Produced by [`StmtSlots::resolve`]; consumed by the bytecode compiler
/// in `cora-exec` and by binding-validation logic.
#[derive(Debug, Default, Clone)]
pub struct StmtSlots {
    /// Free integer variables (must be bound before execution).
    pub free_vars: Interner,
    /// Integer auxiliary buffers (always external).
    pub ibufs: Interner,
    /// Free float buffers (inputs/outputs; `Alloc` scratch excluded).
    pub free_fbufs: Interner,
    /// Uninterpreted functions referenced by the statement.
    pub ufs: Interner,
    /// Arity of each uninterpreted function, indexed like [`Self::ufs`].
    pub uf_arities: Vec<usize>,
    /// Number of `For`/`LetInt` binding sites (each gets a fresh slot).
    pub binding_sites: usize,
    /// Number of `Alloc` sites (each gets a fresh float-buffer slot).
    pub alloc_sites: usize,
    /// Per-[`Self::free_fbufs`] slot: true if the statement *stores* into
    /// that buffer. Region metadata for the parallel outliner, which must
    /// prove a block body writes only the designated output buffer.
    pub stored_fbufs: Vec<bool>,
    /// Per-[`Self::free_fbufs`] slot: true if the statement *loads* from
    /// that buffer. Together with [`Self::stored_fbufs`] this classifies
    /// every free float buffer as input, output, or both (in-place).
    pub loaded_fbufs: Vec<bool>,
}

impl StmtSlots {
    /// Walks `s` and resolves every referenced name into its namespace.
    pub fn resolve(s: &Stmt) -> StmtSlots {
        let mut r = Resolver {
            slots: StmtSlots::default(),
            var_scope: Vec::new(),
            fbuf_scope: Vec::new(),
        };
        r.stmt(s);
        r.slots
    }

    /// Total integer-variable slots an executor needs (free + bound).
    pub fn var_slot_count(&self) -> usize {
        self.free_vars.len() + self.binding_sites
    }

    /// Total float-buffer slots an executor needs (free + allocated).
    pub fn fbuf_slot_count(&self) -> usize {
        self.free_fbufs.len() + self.alloc_sites
    }

    /// Names of the free float buffers the statement stores into.
    pub fn stored_fbuf_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.free_fbufs
            .names()
            .iter()
            .zip(&self.stored_fbufs)
            .filter(|(_, &stored)| stored)
            .map(|(n, _)| n.as_str())
    }

    /// True if the statement both loads from and stores into the named
    /// free float buffer (an in-place update, which the parallel tier
    /// must refuse: another block's stores could race the loads).
    pub fn fbuf_is_inplace(&self, name: &str) -> bool {
        match self.free_fbufs.get(name) {
            Some(slot) => self.stored_fbufs[slot as usize] && self.loaded_fbufs[slot as usize],
            None => false,
        }
    }
}

struct Resolver {
    slots: StmtSlots,
    var_scope: Vec<String>,
    fbuf_scope: Vec<String>,
}

impl Resolver {
    fn var_use(&mut self, name: &str) {
        if !self.var_scope.iter().any(|v| v == name) {
            self.slots.free_vars.intern(name);
        }
    }

    fn fbuf_use(&mut self, name: &str, stored: bool) {
        if !self.fbuf_scope.iter().any(|b| b == name) {
            let slot = self.slots.free_fbufs.intern(name) as usize;
            if slot == self.slots.stored_fbufs.len() {
                self.slots.stored_fbufs.push(false);
                self.slots.loaded_fbufs.push(false);
            }
            if stored {
                self.slots.stored_fbufs[slot] = true;
            } else {
                self.slots.loaded_fbufs[slot] = true;
            }
        }
    }

    fn uf_use(&mut self, f: &UfRef) {
        let before = self.slots.ufs.len();
        let id = self.slots.ufs.intern(f.name());
        if id as usize == before {
            self.slots.uf_arities.push(f.arity());
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e.kind() {
            ExprKind::Int(_) => {}
            ExprKind::Var(n) => self.var_use(n),
            ExprKind::Add(a, b)
            | ExprKind::Sub(a, b)
            | ExprKind::Mul(a, b)
            | ExprKind::FloorDiv(a, b)
            | ExprKind::FloorMod(a, b)
            | ExprKind::Min(a, b)
            | ExprKind::Max(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Select(c, a, b) => {
                self.cond(c);
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Uf(f, args) => {
                self.uf_use(f);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Load(buf, idx) => {
                self.slots.ibufs.intern(buf);
                self.expr(idx);
            }
        }
    }

    fn cond(&mut self, c: &Cond) {
        match c.kind() {
            CondKind::Const(_) => {}
            CondKind::Lt(a, b) | CondKind::Le(a, b) | CondKind::Eq(a, b) | CondKind::Ne(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            CondKind::And(a, b) | CondKind::Or(a, b) => {
                self.cond(a);
                self.cond(b);
            }
            CondKind::Not(a) => self.cond(a),
        }
    }

    fn fexpr(&mut self, e: &FExpr) {
        match e.kind() {
            FExprKind::Const(_) => {}
            FExprKind::Load(buf, idx) => {
                self.fbuf_use(buf, false);
                self.expr(idx);
            }
            FExprKind::Cast(i) => self.expr(i),
            FExprKind::Add(a, b)
            | FExprKind::Sub(a, b)
            | FExprKind::Mul(a, b)
            | FExprKind::Div(a, b)
            | FExprKind::Max(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
            }
            FExprKind::Unary(_, a) => self.fexpr(a),
            FExprKind::Select(c, a, b) => {
                self.cond(c);
                self.fexpr(a);
                self.fexpr(b);
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                body,
                kind: _,
            } => {
                // Bounds are evaluated in the enclosing scope, before the
                // iteration variable is bound (interpreter order).
                self.expr(min);
                self.expr(extent);
                self.slots.binding_sites += 1;
                self.var_scope.push(var.clone());
                self.stmt(body);
                self.var_scope.pop();
            }
            Stmt::LetInt { var, value, body } => {
                self.expr(value);
                self.slots.binding_sites += 1;
                self.var_scope.push(var.clone());
                self.stmt(body);
                self.var_scope.pop();
            }
            Stmt::Store {
                buffer,
                index,
                value,
                kind: _,
            } => {
                self.expr(index);
                self.fexpr(value);
                self.fbuf_use(buffer, true);
            }
            Stmt::If { cond, then_, else_ } => {
                self.cond(cond);
                self.stmt(then_);
                if let Some(e) = else_ {
                    self.stmt(e);
                }
            }
            Stmt::Seq(items) => {
                for i in items {
                    self.stmt(i);
                }
            }
            Stmt::Alloc { buffer, size, body } => {
                self.expr(size);
                self.slots.alloc_sites += 1;
                self.fbuf_scope.push(buffer.clone());
                self.stmt(body);
                self.fbuf_scope.pop();
            }
            Stmt::Nop => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fexpr::FExpr;

    #[test]
    fn interner_is_stable_and_dedups() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.get("b"), Some(1));
        assert_eq!(i.get("c"), None);
        assert_eq!(i.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn loop_vars_are_bound_params_are_free() {
        // for o in 0..row[p] { B[row[o]+i_free] = A[o] }
        let idx = Expr::load("row", Expr::var("o")) + Expr::var("i_free");
        let body = Stmt::store("B", idx.clone(), FExpr::load("A", Expr::var("o")));
        let nest = Stmt::loop_("o", Expr::load("row", Expr::var("p")), body);
        let slots = StmtSlots::resolve(&nest);
        assert_eq!(
            slots.free_vars.names(),
            &["p".to_string(), "i_free".to_string()]
        );
        assert_eq!(slots.ibufs.names(), &["row".to_string()]);
        // Store resolution order: index, value (A), then the destination.
        assert_eq!(
            slots.free_fbufs.names(),
            &["A".to_string(), "B".to_string()]
        );
        assert_eq!(slots.binding_sites, 1);
        assert_eq!(slots.var_slot_count(), 3);
    }

    #[test]
    fn alloc_scratch_is_not_free() {
        let body = Stmt::store("tile", Expr::int(0), FExpr::constant(1.0)).then(Stmt::store(
            "out",
            Expr::int(0),
            FExpr::load("tile", Expr::int(0)),
        ));
        let s = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::int(8),
            body: Box::new(body),
        };
        let slots = StmtSlots::resolve(&s);
        assert_eq!(slots.free_fbufs.names(), &["out".to_string()]);
        assert_eq!(slots.alloc_sites, 1);
        assert_eq!(slots.fbuf_slot_count(), 2);
    }

    #[test]
    fn stored_and_loaded_fbufs_are_classified() {
        // B[0] = A[0]; C[0] = C[1] * 2 — A input, B output, C in-place.
        let s = Stmt::store("B", Expr::int(0), FExpr::load("A", Expr::int(0))).then(Stmt::store(
            "C",
            Expr::int(0),
            FExpr::load("C", Expr::int(1)) * 2.0,
        ));
        let slots = StmtSlots::resolve(&s);
        let stored: Vec<&str> = slots.stored_fbuf_names().collect();
        assert_eq!(stored, vec!["B", "C"]);
        assert!(!slots.fbuf_is_inplace("A"));
        assert!(!slots.fbuf_is_inplace("B"));
        assert!(slots.fbuf_is_inplace("C"));
        assert!(!slots.fbuf_is_inplace("missing"));
    }

    #[test]
    fn ufs_record_arity() {
        let s = crate::ufunc::UfRef::new("s", 1);
        let nest = Stmt::loop_(
            "o",
            Expr::uf(s, vec![Expr::var("o2")]),
            Stmt::store("B", Expr::var("o"), FExpr::constant(0.0)),
        );
        let slots = StmtSlots::resolve(&nest);
        assert_eq!(slots.ufs.names(), &["s".to_string()]);
        assert_eq!(slots.uf_arities, vec![1]);
    }
}
