//! Statement IR: the loop-nest form CoRa lowers ragged operators into.
//!
//! A lowered kernel is a tree of [`Stmt`]s: loops (serial, parallel, or
//! bound to simulated GPU grid/thread axes), integer `let` bindings (used
//! for load hoisting, §D.7), stores with accumulation kinds, guards and
//! local allocations. The interpreter in `cora-exec` gives these precise
//! semantics; the printer renders C- and CUDA-flavoured text.

use std::fmt;

use crate::expr::{Cond, Expr};
use crate::fexpr::FExpr;

/// How a loop's iterations are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForKind {
    /// Ordinary sequential loop.
    Serial,
    /// CPU-parallel loop (maps to the thread pool).
    Parallel,
    /// Annotation: body should be unrolled.
    Unrolled,
    /// Annotation: body should be vectorized.
    Vectorized,
    /// Bound to the simulated GPU grid x-axis (`blockIdx.x`).
    GpuBlockX,
    /// Bound to the simulated GPU grid y-axis (`blockIdx.y`).
    GpuBlockY,
    /// Bound to the simulated GPU thread x-axis (`threadIdx.x`).
    GpuThreadX,
    /// Bound to the simulated GPU thread y-axis (`threadIdx.y`).
    GpuThreadY,
}

impl ForKind {
    /// True for GPU grid axes.
    pub fn is_block_axis(self) -> bool {
        matches!(self, ForKind::GpuBlockX | ForKind::GpuBlockY)
    }

    /// True for GPU thread axes.
    pub fn is_thread_axis(self) -> bool {
        matches!(self, ForKind::GpuThreadX | ForKind::GpuThreadY)
    }
}

/// How a [`Stmt::Store`] combines the new value with the old.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// `buf[i] = v`.
    Assign,
    /// `buf[i] += v` (reduction).
    AddAssign,
    /// `buf[i] = max(buf[i], v)` (reduction).
    MaxAssign,
}

/// A statement in the lowered IR.
#[derive(Clone, PartialEq)]
pub enum Stmt {
    /// `for var in min .. min+extent { body }`.
    For {
        /// Iteration variable name.
        var: String,
        /// Lower bound.
        min: Expr,
        /// Trip count.
        extent: Expr,
        /// Execution flavour.
        kind: ForKind,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `let var: i64 = value; body` — used for hoisting aux-array loads.
    LetInt {
        /// Binding name.
        var: String,
        /// Bound integer expression.
        value: Expr,
        /// Scope of the binding.
        body: Box<Stmt>,
    },
    /// Store into a float buffer.
    Store {
        /// Destination buffer name.
        buffer: String,
        /// Flat element index.
        index: Expr,
        /// Value to combine.
        value: FExpr,
        /// Combination rule.
        kind: StoreKind,
    },
    /// Conditional guard.
    If {
        /// Guard condition.
        cond: Cond,
        /// Taken branch.
        then_: Box<Stmt>,
        /// Optional fallthrough branch.
        else_: Option<Box<Stmt>>,
    },
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// Scoped allocation of a float scratch buffer of `size` elements.
    Alloc {
        /// Scratch buffer name.
        buffer: String,
        /// Element count (evaluated on entry).
        size: Expr,
        /// Scope in which the buffer exists.
        body: Box<Stmt>,
    },
    /// No-op (useful as an else-branch placeholder).
    Nop,
}

impl Stmt {
    /// Convenience constructor for a serial loop from 0.
    pub fn loop_(var: impl Into<String>, extent: Expr, body: Stmt) -> Stmt {
        Stmt::For {
            var: var.into(),
            min: Expr::int(0),
            extent,
            kind: ForKind::Serial,
            body: Box::new(body),
        }
    }

    /// Convenience constructor for a loop of a given kind from 0.
    pub fn loop_kind(var: impl Into<String>, extent: Expr, kind: ForKind, body: Stmt) -> Stmt {
        Stmt::For {
            var: var.into(),
            min: Expr::int(0),
            extent,
            kind,
            body: Box::new(body),
        }
    }

    /// Convenience constructor for a plain assignment store.
    pub fn store(buffer: impl Into<String>, index: Expr, value: FExpr) -> Stmt {
        Stmt::Store {
            buffer: buffer.into(),
            index,
            value,
            kind: StoreKind::Assign,
        }
    }

    /// Convenience constructor for a guard with no else branch.
    pub fn if_then(cond: Cond, then_: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_: Box::new(then_),
            else_: None,
        }
    }

    /// Sequences two statements, flattening nested [`Stmt::Seq`]s.
    pub fn then(self, next: Stmt) -> Stmt {
        match (self, next) {
            (Stmt::Seq(mut a), Stmt::Seq(b)) => {
                a.extend(b);
                Stmt::Seq(a)
            }
            (Stmt::Seq(mut a), b) => {
                a.push(b);
                Stmt::Seq(a)
            }
            (a, Stmt::Seq(mut b)) => {
                b.insert(0, a);
                Stmt::Seq(b)
            }
            (a, b) => Stmt::Seq(vec![a, b]),
        }
    }

    /// Counts statements of each syntactic class (used in tests and by the
    /// codegen statistics the benches report).
    pub fn count_nodes(&self) -> usize {
        match self {
            Stmt::For { body, .. } | Stmt::LetInt { body, .. } | Stmt::Alloc { body, .. } => {
                1 + body.count_nodes()
            }
            Stmt::If { then_, else_, .. } => {
                1 + then_.count_nodes() + else_.as_ref().map_or(0, |e| e.count_nodes())
            }
            Stmt::Seq(items) => 1 + items.iter().map(Stmt::count_nodes).sum::<usize>(),
            Stmt::Store { .. } | Stmt::Nop => 1,
        }
    }

    /// Counts `If` guards in the tree — the quantity operation splitting
    /// exists to reduce (§7.1: "eliding conditional checks in the main body").
    pub fn count_guards(&self) -> usize {
        match self {
            Stmt::For { body, .. } | Stmt::LetInt { body, .. } | Stmt::Alloc { body, .. } => {
                body.count_guards()
            }
            Stmt::If { then_, else_, .. } => {
                1 + then_.count_guards() + else_.as_ref().map_or(0, |e| e.count_guards())
            }
            Stmt::Seq(items) => items.iter().map(Stmt::count_guards).sum(),
            Stmt::Store { .. } | Stmt::Nop => 0,
        }
    }
}

impl fmt::Debug for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_c(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_flattening() {
        let s = Stmt::Nop.then(Stmt::Nop).then(Stmt::Nop);
        match s {
            Stmt::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn node_and_guard_counts() {
        let body = Stmt::if_then(
            Expr::var("i").lt(Expr::var("n")),
            Stmt::store("B", Expr::var("i"), FExpr::constant(1.0)),
        );
        let l = Stmt::loop_("i", Expr::int(4), body);
        assert_eq!(l.count_guards(), 1);
        assert_eq!(l.count_nodes(), 3);
    }

    #[test]
    fn for_kind_classification() {
        assert!(ForKind::GpuBlockX.is_block_axis());
        assert!(ForKind::GpuThreadY.is_thread_axis());
        assert!(!ForKind::Serial.is_block_axis());
    }
}
