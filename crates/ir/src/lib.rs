//! # cora-ir
//!
//! The intermediate representation of the CoRa ragged-tensor compiler
//! reproduction: integer index expressions with *uninterpreted functions*
//! (variable loop bounds, fused-loop maps), float value expressions,
//! a loop-nest statement IR, a rewriting simplifier with the paper's
//! fused-loop axioms, interval analysis for bound-check elision, and C/CUDA
//! pretty-printers.
//!
//! This crate is dependency-light and semantically self-contained: every
//! transformation is checked against concrete evaluation ([`eval::Env`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affine;
pub mod eval;
pub mod expr;
pub mod fexpr;
pub mod interval;
pub mod printer;
pub mod simplify;
pub mod slots;
pub mod solve;
pub mod stmt;
pub mod ufunc;
pub mod visit;

pub use affine::{linearize, LinForm, LinTerm};
pub use eval::Env;
pub use expr::{Cond, CondKind, Expr, ExprKind};
pub use fexpr::{FExpr, FExprKind, FUnaryOp};
pub use interval::{Interval, RangeMap, SInt};
pub use slots::StmtSlots;
pub use solve::Solver;
pub use stmt::{ForKind, Stmt, StoreKind};
pub use ufunc::{FusedTriple, UfEval, UfHandle, UfProperties, UfRef, UfRegistry, UfTable};
