//! Integer scalar expressions.
//!
//! CoRa's lowering manipulates *index expressions*: loop variables, extents,
//! memory offsets. Ragged tensors add two constructs absent from dense
//! tensor compilers:
//!
//! * [`ExprKind::Uf`] — a call to an *uninterpreted function* (Strout et
//!   al., 2018) such as the variable loop bound `s(o)` or the fused-loop
//!   maps `ffo`/`ffi`/`foif` of the paper's §5.1. At compile time these are
//!   opaque symbols with registered properties; at run time the prelude
//!   materialises them as arrays.
//! * [`ExprKind::Load`] — a read from a named integer auxiliary buffer
//!   (e.g. a row-offset array produced by the prelude).
//!
//! Expressions are immutable trees shared through [`std::rc::Rc`]; cloning
//! is O(1).

use std::fmt;
use std::rc::Rc;

use crate::ufunc::UfRef;

/// An integer-valued expression (cheaply cloneable handle).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Expr(pub(crate) Rc<ExprKind>);

/// The operator at the root of an [`Expr`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Named integer variable (loop iteration variable or parameter).
    Var(String),
    /// `lhs + rhs`.
    Add(Expr, Expr),
    /// `lhs - rhs`.
    Sub(Expr, Expr),
    /// `lhs * rhs`.
    Mul(Expr, Expr),
    /// Floor division `lhs / rhs` (rounds toward negative infinity).
    FloorDiv(Expr, Expr),
    /// Floor modulo, `lhs - floor_div(lhs, rhs) * rhs`.
    FloorMod(Expr, Expr),
    /// Binary minimum.
    Min(Expr, Expr),
    /// Binary maximum.
    Max(Expr, Expr),
    /// `if cond { then_ } else { else_ }`.
    Select(Cond, Expr, Expr),
    /// Application of an uninterpreted function to integer arguments.
    Uf(UfRef, Vec<Expr>),
    /// Read of element `index` from a named integer auxiliary buffer.
    Load(String, Expr),
}

/// A boolean condition over integer expressions.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cond(pub(crate) Rc<CondKind>);

/// The operator at the root of a [`Cond`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum CondKind {
    /// Boolean literal.
    Const(bool),
    /// `lhs < rhs`.
    Lt(Expr, Expr),
    /// `lhs <= rhs`.
    Le(Expr, Expr),
    /// `lhs == rhs`.
    Eq(Expr, Expr),
    /// `lhs != rhs`.
    Ne(Expr, Expr),
    /// Conjunction.
    And(Cond, Cond),
    /// Disjunction.
    Or(Cond, Cond),
    /// Negation.
    Not(Cond),
}

impl Expr {
    /// Integer literal.
    pub fn int(v: i64) -> Self {
        Expr(Rc::new(ExprKind::Int(v)))
    }

    /// Named variable.
    pub fn var(name: impl Into<String>) -> Self {
        Expr(Rc::new(ExprKind::Var(name.into())))
    }

    /// Uninterpreted-function call.
    pub fn uf(f: UfRef, args: Vec<Expr>) -> Self {
        assert_eq!(
            f.arity(),
            args.len(),
            "uninterpreted function `{}` expects {} argument(s), got {}",
            f.name(),
            f.arity(),
            args.len()
        );
        Expr(Rc::new(ExprKind::Uf(f, args)))
    }

    /// Read from a named integer auxiliary buffer.
    pub fn load(buffer: impl Into<String>, index: Expr) -> Self {
        Expr(Rc::new(ExprKind::Load(buffer.into(), index)))
    }

    /// Conditional select.
    pub fn select(cond: Cond, then_: Expr, else_: Expr) -> Self {
        Expr(Rc::new(ExprKind::Select(cond, then_, else_)))
    }

    /// Binary minimum.
    pub fn min(self, other: Expr) -> Self {
        Expr(Rc::new(ExprKind::Min(self, other)))
    }

    /// Binary maximum.
    pub fn max(self, other: Expr) -> Self {
        Expr(Rc::new(ExprKind::Max(self, other)))
    }

    /// Floor division by `other`.
    pub fn floor_div(self, other: Expr) -> Self {
        Expr(Rc::new(ExprKind::FloorDiv(self, other)))
    }

    /// Floor modulo by `other`.
    pub fn floor_mod(self, other: Expr) -> Self {
        Expr(Rc::new(ExprKind::FloorMod(self, other)))
    }

    /// Ceiling division `ceil(self / other)` expressed with floor division.
    ///
    /// Used pervasively for padded extents: `pad_loop(l, k)` turns extent
    /// `e` into `ceil_div(e, k) * k`.
    pub fn ceil_div(self, other: Expr) -> Self {
        (self + other.clone() - Expr::int(1)).floor_div(other)
    }

    /// Rounds `self` up to the nearest multiple of `multiple`.
    pub fn round_up(self, multiple: Expr) -> Self {
        self.ceil_div(multiple.clone()) * multiple
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Cond {
        Cond(Rc::new(CondKind::Lt(self, other)))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Cond {
        Cond(Rc::new(CondKind::Le(self, other)))
    }

    /// `self == other`.
    pub fn eq_expr(self, other: Expr) -> Cond {
        Cond(Rc::new(CondKind::Eq(self, other)))
    }

    /// `self != other`.
    pub fn ne_expr(self, other: Expr) -> Cond {
        Cond(Rc::new(CondKind::Ne(self, other)))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Cond {
        other.lt(self)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Cond {
        other.le(self)
    }

    /// The root operator.
    pub fn kind(&self) -> &ExprKind {
        &self.0
    }

    /// Returns the literal value if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self.kind() {
            ExprKind::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the variable name if this is a variable reference.
    pub fn as_var(&self) -> Option<&str> {
        match self.kind() {
            ExprKind::Var(n) => Some(n),
            _ => None,
        }
    }

    /// True if the expression is the literal `0`.
    pub fn is_zero(&self) -> bool {
        self.as_int() == Some(0)
    }

    /// True if the expression is the literal `1`.
    pub fn is_one(&self) -> bool {
        self.as_int() == Some(1)
    }
}

impl Cond {
    /// Boolean literal.
    pub fn const_bool(v: bool) -> Self {
        Cond(Rc::new(CondKind::Const(v)))
    }

    /// Conjunction.
    pub fn and(self, other: Cond) -> Self {
        Cond(Rc::new(CondKind::And(self, other)))
    }

    /// Disjunction.
    pub fn or(self, other: Cond) -> Self {
        Cond(Rc::new(CondKind::Or(self, other)))
    }

    /// The root operator.
    pub fn kind(&self) -> &CondKind {
        &self.0
    }

    /// Returns the literal value if this is a boolean constant.
    pub fn as_bool(&self) -> Option<bool> {
        match self.kind() {
            CondKind::Const(b) => Some(*b),
            _ => None,
        }
    }
}

/// Negation.
impl std::ops::Not for Cond {
    type Output = Cond;

    fn not(self) -> Cond {
        Cond(Rc::new(CondKind::Not(self)))
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::int(v)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::int(v as i64)
    }
}

macro_rules! impl_binop {
    ($trait_:ident, $method:ident, $kind:ident) => {
        impl std::ops::$trait_ for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr(Rc::new(ExprKind::$kind(self, rhs)))
            }
        }
        impl std::ops::$trait_<i64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                Expr(Rc::new(ExprKind::$kind(self, Expr::int(rhs))))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);

/// Floor division for `i64` matching [`ExprKind::FloorDiv`] semantics.
pub fn floor_div_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0, "division by zero in index arithmetic");
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Floor modulo for `i64` matching [`ExprKind::FloorMod`] semantics
/// (result has the divisor's sign).
///
/// Computed without the `a - floor_div(a, b) * b` intermediates, which
/// overflow for dividends near `i64::MIN` even though the result always
/// fits.
pub fn floor_mod_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0, "modulo by zero in index arithmetic");
    if b == -1 {
        // Also avoids `i64::MIN.rem_euclid(-1)` overflowing.
        return 0;
    }
    let r = a.rem_euclid(b);
    if r != 0 && b < 0 {
        r + b
    } else {
        r
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Int(v) => write!(f, "{v}"),
            ExprKind::Var(n) => write!(f, "{n}"),
            ExprKind::Add(a, b) => write!(f, "({a} + {b})"),
            ExprKind::Sub(a, b) => write!(f, "({a} - {b})"),
            ExprKind::Mul(a, b) => write!(f, "({a}*{b})"),
            ExprKind::FloorDiv(a, b) => write!(f, "({a}/{b})"),
            ExprKind::FloorMod(a, b) => write!(f, "({a}%{b})"),
            ExprKind::Min(a, b) => write!(f, "min({a}, {b})"),
            ExprKind::Max(a, b) => write!(f, "max({a}, {b})"),
            ExprKind::Select(c, a, b) => write!(f, "({c} ? {a} : {b})"),
            ExprKind::Uf(uf, args) => {
                write!(f, "{}(", uf.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ExprKind::Load(buf, idx) => write!(f, "{buf}[{idx}]"),
        }
    }
}

impl fmt::Debug for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            CondKind::Const(b) => write!(f, "{b}"),
            CondKind::Lt(a, b) => write!(f, "({a} < {b})"),
            CondKind::Le(a, b) => write!(f, "({a} <= {b})"),
            CondKind::Eq(a, b) => write!(f, "({a} == {b})"),
            CondKind::Ne(a, b) => write!(f, "({a} != {b})"),
            CondKind::And(a, b) => write!(f, "({a} && {b})"),
            CondKind::Or(a, b) => write!(f, "({a} || {b})"),
            CondKind::Not(a) => write!(f, "!{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_structure() {
        let e = (Expr::var("i") * 4 + Expr::var("j")).floor_div(Expr::int(2));
        assert_eq!(format!("{e}"), "(((i*4) + j)/2)");
    }

    #[test]
    fn ceil_div_formula() {
        let e = Expr::var("n").ceil_div(Expr::int(4));
        assert_eq!(format!("{e}"), "(((n + 4) - 1)/4)");
    }

    #[test]
    fn floor_div_matches_mathematical_floor() {
        assert_eq!(floor_div_i64(7, 2), 3);
        assert_eq!(floor_div_i64(-7, 2), -4);
        assert_eq!(floor_div_i64(7, -2), -4);
        assert_eq!(floor_mod_i64(-7, 2), 1);
        assert_eq!(floor_mod_i64(7, 2), 1);
    }

    #[test]
    fn as_int_and_predicates() {
        assert_eq!(Expr::int(3).as_int(), Some(3));
        assert!(Expr::int(0).is_zero());
        assert!(Expr::int(1).is_one());
        assert_eq!(Expr::var("x").as_int(), None);
        assert_eq!(Expr::var("x").as_var(), Some("x"));
    }

    #[test]
    #[should_panic(expected = "expects 1 argument")]
    fn uf_arity_is_checked() {
        let f = UfRef::new("s", 1);
        let _ = Expr::uf(f, vec![Expr::int(1), Expr::int(2)]);
    }
}
