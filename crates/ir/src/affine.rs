//! Symbolic affine forms over index expressions — the verifier's
//! symbolic domain.
//!
//! A [`LinForm`] is `c₀ + Σ cᵢ·tᵢ` where each term `tᵢ` is either a
//! variable or an *opaque* non-affine subexpression (an auxiliary-table
//! load, an uninterpreted ragged-extent call, a flooring division, …)
//! kept as-is and identified by its canonical print. Linearization is
//! total: anything that is not affine folds into an opaque term, so the
//! form is always a sound *equality* — the precision question is only
//! how much structure stays visible.
//!
//! The disjoint-store prover (`cora_core::verify`) uses linear forms
//! two ways:
//!
//! * **block-coefficient analysis** — a store index whose linearization
//!   has block-variable coefficient 0 *and* no opaque term mentioning the
//!   block variable is provably block-invariant: every block writes the
//!   same cells, a definite contract violation regardless of shapes;
//! * **interval/congruence separation** — when every term is a loop
//!   variable with a known constant range, `|c_b| >` (width of the
//!   non-block part) separates distinct blocks' index intervals. This is
//!   where the divisibility structure `Schedule::split` introduces
//!   (`v = v_o·f + v_i`) pays off: the factors appear as coefficients.
//!
//! Opaque-term identity is *syntactic* (same print ⇒ same term). That is
//! sound only while a name means one thing throughout the analyzed
//! scope; callers analyzing statements with shadowed bindings must fall
//! back to a scoped (concrete) pass.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::expr::{Expr, ExprKind};
use crate::visit;

/// One non-constant term of a [`LinForm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinTerm {
    /// A scalar integer variable.
    Var(String),
    /// A non-affine subexpression kept opaque (load, UF call, division…).
    Opaque(Expr),
}

impl LinTerm {
    /// Canonical key: the term's pretty-print. Variable names cannot
    /// collide with opaque prints (opaque heads always print brackets,
    /// parentheses or calls).
    pub fn key(&self) -> String {
        match self {
            LinTerm::Var(n) => n.clone(),
            LinTerm::Opaque(e) => format!("{e}"),
        }
    }

    /// True if the term's value can depend on `var`.
    pub fn mentions(&self, var: &str) -> bool {
        match self {
            LinTerm::Var(n) => n == var,
            LinTerm::Opaque(e) => {
                let mut vs = BTreeSet::new();
                visit::free_vars(e, &mut vs);
                vs.contains(var)
            }
        }
    }
}

/// An affine form `constant + Σ coeff·term` with canonicalized,
/// deduplicated terms (zero coefficients are dropped).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinForm {
    terms: BTreeMap<String, (LinTerm, i64)>,
    constant: i64,
}

impl LinForm {
    /// The constant form.
    pub fn constant(c: i64) -> LinForm {
        LinForm {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The form `1·term`.
    pub fn term(t: LinTerm) -> LinForm {
        let mut f = LinForm::default();
        f.add_term(t, 1);
        f
    }

    /// The constant part `c₀`.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// True if the form is a bare constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The non-constant terms with their coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (&LinTerm, i64)> {
        self.terms.values().map(|(t, c)| (t, *c))
    }

    /// Coefficient of the variable `var` (0 if absent).
    pub fn coeff_of(&self, var: &str) -> i64 {
        self.terms.get(var).map_or(0, |(_, c)| *c)
    }

    /// True if any term — including opaque ones via their free
    /// variables — can depend on `var`.
    pub fn depends_on(&self, var: &str) -> bool {
        self.terms.values().any(|(t, _)| t.mentions(var))
    }

    /// Removes `var`'s own linear term, returning its coefficient.
    /// Opaque terms mentioning `var` are untouched (check
    /// [`LinForm::depends_on`] after removal to see whether the rest is
    /// truly `var`-free).
    pub fn remove_var(&mut self, var: &str) -> i64 {
        self.terms.remove(var).map_or(0, |(_, c)| c)
    }

    fn add_term(&mut self, t: LinTerm, c: i64) {
        if c == 0 {
            return;
        }
        let key = t.key();
        let entry = self.terms.entry(key.clone()).or_insert((t, 0));
        entry.1 = entry.1.saturating_add(c);
        if entry.1 == 0 {
            self.terms.remove(&key);
        }
    }

    /// `self + o`.
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not std::ops
    pub fn add(mut self, o: &LinForm) -> LinForm {
        self.constant = self.constant.saturating_add(o.constant);
        for (t, c) in o.terms() {
            self.add_term(t.clone(), c);
        }
        self
    }

    /// `self - o`.
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not std::ops
    pub fn sub(mut self, o: &LinForm) -> LinForm {
        self.constant = self.constant.saturating_sub(o.constant);
        for (t, c) in o.terms() {
            self.add_term(t.clone(), c.saturating_neg());
        }
        self
    }

    /// `self · c`.
    pub fn scale(mut self, c: i64) -> LinForm {
        if c == 0 {
            return LinForm::constant(0);
        }
        self.constant = self.constant.saturating_mul(c);
        let mut scaled = LinForm::constant(self.constant);
        for (_, (t, k)) in std::mem::take(&mut self.terms) {
            scaled.add_term(t, k.saturating_mul(c));
        }
        scaled
    }
}

impl fmt::Display for LinForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (t, c) in self.terms() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if c == 1 {
                write!(f, "{}", t.key())?;
            } else {
                write!(f, "{}·{}", c, t.key())?;
            }
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// Linearizes `e` into an affine form, substituting let-bound variables
/// through `binds` (map variable → its value's form). Total: non-affine
/// structure folds into [`LinTerm::Opaque`] terms.
pub fn linearize(e: &Expr, binds: &HashMap<String, LinForm>) -> LinForm {
    match e.kind() {
        ExprKind::Int(v) => LinForm::constant(*v),
        ExprKind::Var(n) => match binds.get(n) {
            Some(f) => f.clone(),
            None => LinForm::term(LinTerm::Var(n.clone())),
        },
        ExprKind::Add(a, b) => linearize(a, binds).add(&linearize(b, binds)),
        ExprKind::Sub(a, b) => linearize(a, binds).sub(&linearize(b, binds)),
        ExprKind::Mul(a, b) => {
            let fa = linearize(a, binds);
            let fb = linearize(b, binds);
            if fa.is_constant() {
                fb.scale(fa.constant_part())
            } else if fb.is_constant() {
                fa.scale(fb.constant_part())
            } else {
                LinForm::term(LinTerm::Opaque(e.clone()))
            }
        }
        _ => LinForm::term(LinTerm::Opaque(e.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(e: &Expr) -> LinForm {
        linearize(e, &HashMap::new())
    }

    #[test]
    fn affine_structure_is_recovered() {
        // 3·b + 4·i - i + 7 → 3·b + 3·i + 7.
        let e = Expr::var("b") * 3 + Expr::var("i") * 4 - Expr::var("i") + 7;
        let f = lin(&e);
        assert_eq!(f.coeff_of("b"), 3);
        assert_eq!(f.coeff_of("i"), 3);
        assert_eq!(f.constant_part(), 7);
        assert!(!f.depends_on("j"));
    }

    #[test]
    fn cancelled_block_coefficient_is_zero() {
        // b - b + i: the screen sees a mention of b, the form does not.
        let e = Expr::var("b") - Expr::var("b") + Expr::var("i");
        let f = lin(&e);
        assert_eq!(f.coeff_of("b"), 0);
        assert!(!f.depends_on("b"));
    }

    #[test]
    fn opaque_terms_keep_their_dependencies() {
        // row[b] + i: the load is opaque but still depends on b.
        let e = Expr::load("row", Expr::var("b")) + Expr::var("i");
        let f = lin(&e);
        assert_eq!(f.coeff_of("b"), 0);
        assert!(f.depends_on("b"));
        assert_eq!(f.coeff_of("i"), 1);
        // b mod 2 likewise.
        let m = Expr::var("b").floor_mod(Expr::int(2));
        assert!(lin(&m).depends_on("b"));
    }

    #[test]
    fn let_bindings_substitute_through() {
        let mut binds = HashMap::new();
        binds.insert("base".to_string(), lin(&(Expr::var("b") * 8)));
        let f = linearize(&(Expr::var("base") + Expr::var("i")), &binds);
        assert_eq!(f.coeff_of("b"), 8);
        assert_eq!(f.coeff_of("i"), 1);
    }

    #[test]
    fn identical_opaque_terms_merge() {
        let load = Expr::load("t", Expr::var("o"));
        let e = load.clone() * 2 + load.clone();
        let f = lin(&e);
        let terms: Vec<(String, i64)> = f.terms().map(|(t, c)| (t.key(), c)).collect();
        assert_eq!(terms, vec![("t[o]".to_string(), 3)]);
    }
}
