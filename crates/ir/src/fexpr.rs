//! Floating-point value expressions for kernel bodies.
//!
//! Index arithmetic lives in [`crate::expr::Expr`]; the *values* flowing
//! through a kernel body (loads, arithmetic, transcendentals used by
//! softmax/layernorm/GELU) live here. The split mirrors tensor-compiler IRs
//! where address computation and payload computation are distinct types.

use std::fmt;
use std::rc::Rc;

use crate::expr::{Cond, Expr};

/// A `f32`-valued expression (cheaply cloneable handle).
#[derive(Clone, PartialEq)]
pub struct FExpr(pub(crate) Rc<FExprKind>);

/// The operator at the root of an [`FExpr`].
#[derive(Clone, PartialEq)]
pub enum FExprKind {
    /// Floating literal.
    Const(f32),
    /// Read of element `index` (an integer [`Expr`]) from a float buffer.
    Load(String, Expr),
    /// Cast of an integer index expression to `f32`.
    Cast(Expr),
    /// `lhs + rhs`.
    Add(FExpr, FExpr),
    /// `lhs - rhs`.
    Sub(FExpr, FExpr),
    /// `lhs * rhs`.
    Mul(FExpr, FExpr),
    /// `lhs / rhs`.
    Div(FExpr, FExpr),
    /// Binary maximum.
    Max(FExpr, FExpr),
    /// Unary intrinsic call.
    Unary(FUnaryOp, FExpr),
    /// `if cond { then_ } else { else_ }` on an index condition.
    Select(Cond, FExpr, FExpr),
}

/// Unary floating intrinsics needed by the paper's operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FUnaryOp {
    /// Negation.
    Neg,
    /// `e^x` (softmax).
    Exp,
    /// `sqrt(x)` (layer norm).
    Sqrt,
    /// `1/x`.
    Recip,
    /// `tanh(x)` (GELU approximation).
    Tanh,
    /// `max(x, 0)` (ReLU).
    Relu,
}

impl FExpr {
    /// Floating literal.
    pub fn constant(v: f32) -> Self {
        FExpr(Rc::new(FExprKind::Const(v)))
    }

    /// Load `buffer[index]`.
    pub fn load(buffer: impl Into<String>, index: Expr) -> Self {
        FExpr(Rc::new(FExprKind::Load(buffer.into(), index)))
    }

    /// Cast an index expression to `f32`.
    pub fn cast(index: Expr) -> Self {
        FExpr(Rc::new(FExprKind::Cast(index)))
    }

    /// Binary maximum.
    pub fn max(self, other: FExpr) -> Self {
        FExpr(Rc::new(FExprKind::Max(self, other)))
    }

    /// Applies a unary intrinsic.
    pub fn unary(self, op: FUnaryOp) -> Self {
        FExpr(Rc::new(FExprKind::Unary(op, self)))
    }

    /// `e^self`.
    pub fn exp(self) -> Self {
        self.unary(FUnaryOp::Exp)
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Self {
        self.unary(FUnaryOp::Sqrt)
    }

    /// Conditional select on an index condition.
    pub fn select(cond: Cond, then_: FExpr, else_: FExpr) -> Self {
        FExpr(Rc::new(FExprKind::Select(cond, then_, else_)))
    }

    /// The root operator.
    pub fn kind(&self) -> &FExprKind {
        &self.0
    }
}

impl From<f32> for FExpr {
    fn from(v: f32) -> Self {
        FExpr::constant(v)
    }
}

macro_rules! impl_fbinop {
    ($trait_:ident, $method:ident, $kind:ident) => {
        impl std::ops::$trait_ for FExpr {
            type Output = FExpr;
            fn $method(self, rhs: FExpr) -> FExpr {
                FExpr(Rc::new(FExprKind::$kind(self, rhs)))
            }
        }
        impl std::ops::$trait_<f32> for FExpr {
            type Output = FExpr;
            fn $method(self, rhs: f32) -> FExpr {
                FExpr(Rc::new(FExprKind::$kind(self, FExpr::constant(rhs))))
            }
        }
    };
}

impl_fbinop!(Add, add, Add);
impl_fbinop!(Sub, sub, Sub);
impl_fbinop!(Mul, mul, Mul);
impl_fbinop!(Div, div, Div);

/// Applies `op` to a concrete value, matching interpreter semantics.
pub fn apply_unary(op: FUnaryOp, x: f32) -> f32 {
    match op {
        FUnaryOp::Neg => -x,
        FUnaryOp::Exp => x.exp(),
        FUnaryOp::Sqrt => x.sqrt(),
        FUnaryOp::Recip => 1.0 / x,
        FUnaryOp::Tanh => x.tanh(),
        FUnaryOp::Relu => x.max(0.0),
    }
}

impl fmt::Debug for FExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for FExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            FExprKind::Const(v) => write!(f, "{v:?}f"),
            FExprKind::Load(buf, idx) => write!(f, "{buf}[{idx}]"),
            FExprKind::Cast(e) => write!(f, "(float){e}"),
            FExprKind::Add(a, b) => write!(f, "({a} + {b})"),
            FExprKind::Sub(a, b) => write!(f, "({a} - {b})"),
            FExprKind::Mul(a, b) => write!(f, "({a}*{b})"),
            FExprKind::Div(a, b) => write!(f, "({a}/{b})"),
            FExprKind::Max(a, b) => write!(f, "fmaxf({a}, {b})"),
            FExprKind::Unary(op, a) => match op {
                FUnaryOp::Neg => write!(f, "(-{a})"),
                FUnaryOp::Exp => write!(f, "expf({a})"),
                FUnaryOp::Sqrt => write!(f, "sqrtf({a})"),
                FUnaryOp::Recip => write!(f, "(1.0f/{a})"),
                FUnaryOp::Tanh => write!(f, "tanhf({a})"),
                FUnaryOp::Relu => write!(f, "fmaxf({a}, 0.0f)"),
            },
            FExprKind::Select(c, a, b) => write!(f, "({c} ? {a} : {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = FExpr::load("A", Expr::var("i")) * 2.0 + 1.0;
        assert_eq!(format!("{e}"), "((A[i]*2.0f) + 1.0f)");
        let s = FExpr::load("x", Expr::int(0)).exp();
        assert_eq!(format!("{s}"), "expf(x[0])");
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(apply_unary(FUnaryOp::Relu, -3.0), 0.0);
        assert_eq!(apply_unary(FUnaryOp::Neg, 2.0), -2.0);
        assert!((apply_unary(FUnaryOp::Recip, 4.0) - 0.25).abs() < 1e-7);
    }
}
