//! Uninterpreted functions and their registered properties.
//!
//! The paper (§5.1, §B.2) represents variable loop bounds and fused-loop
//! variable relationships as *uninterpreted functions* and feeds Z3 a small
//! set of axioms relating them. We keep the same architecture: a [`UfRef`]
//! is an opaque symbol at compile time; a [`UfRegistry`] records the
//! properties the solver may rely on (value bounds, monotonicity, and the
//! fused-triple axioms); the prelude materialises each symbol as an array at
//! run time.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A reference to an uninterpreted integer function.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct UfRef(Rc<UfData>);

#[derive(PartialEq, Eq, Hash)]
struct UfData {
    name: String,
    arity: usize,
}

impl UfRef {
    /// Creates a new uninterpreted function symbol.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        UfRef(Rc::new(UfData {
            name: name.into(),
            arity,
        }))
    }

    /// The symbol's name (unique within a lowering context).
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Number of integer arguments.
    pub fn arity(&self) -> usize {
        self.0.arity
    }
}

impl fmt::Debug for UfRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uf:{}/{}", self.name(), self.arity())
    }
}

/// Compile-time properties of one uninterpreted function.
#[derive(Debug, Clone, Default)]
pub struct UfProperties {
    /// Smallest value the function can return, if known.
    pub min_value: Option<i64>,
    /// Largest value the function can return, if known.
    pub max_value: Option<i64>,
    /// The function is non-decreasing in each argument.
    ///
    /// Holds for prefix-sum offset arrays (`A_d` in Algorithm 1) and for
    /// `ffo` (the fused-to-outer map), which the paper's Fig. 7 range rules
    /// rely on.
    pub monotonic_nondecreasing: bool,
}

/// The axiom tying together the three maps created by fusing a vloop nest.
///
/// Fusing loops `o` (outer) and `i` (inner, with variable extent) into `f`
/// creates maps satisfying (paper §B.2):
///
/// * `foif(ffo(f), ffi(f)) = f`
/// * `ffo(foif(o, i)) = o`
/// * `ffi(foif(o, i)) = i`
#[derive(Debug, Clone)]
pub struct FusedTriple {
    /// `(o, i) -> f`.
    pub foif: UfRef,
    /// `f -> o`.
    pub ffo: UfRef,
    /// `f -> i`.
    pub ffi: UfRef,
}

/// Registry of uninterpreted-function properties consulted by the solver.
#[derive(Debug, Default)]
pub struct UfRegistry {
    properties: HashMap<String, UfProperties>,
    triples: Vec<FusedTriple>,
}

impl UfRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the properties of `f`.
    pub fn register(&mut self, f: &UfRef, props: UfProperties) {
        self.properties.insert(f.name().to_string(), props);
    }

    /// Registers a fused-loop triple axiom.
    ///
    /// Also marks `ffo` as monotonic non-decreasing, which holds by
    /// construction of the fusion maps.
    pub fn register_fused_triple(&mut self, triple: FusedTriple) {
        self.properties
            .entry(triple.ffo.name().to_string())
            .or_default()
            .monotonic_nondecreasing = true;
        self.triples.push(triple);
    }

    /// Looks up properties for a function name.
    pub fn properties(&self, name: &str) -> Option<&UfProperties> {
        self.properties.get(name)
    }

    /// All registered fused triples.
    pub fn triples(&self) -> &[FusedTriple] {
        &self.triples
    }

    /// Finds the triple in which `name` plays the `foif` role.
    pub fn triple_with_foif(&self, name: &str) -> Option<&FusedTriple> {
        self.triples.iter().find(|t| t.foif.name() == name)
    }

    /// Finds the triple in which `name` plays the `ffo` or `ffi` role.
    pub fn triple_with_component(&self, name: &str) -> Option<&FusedTriple> {
        self.triples
            .iter()
            .find(|t| t.ffo.name() == name || t.ffi.name() == name)
    }
}

/// Runtime implementations of uninterpreted functions.
///
/// The prelude produces tables (plain arrays); the evaluator and interpreter
/// resolve [`UfRef`] calls through this trait.
pub trait UfEval {
    /// Evaluates function `name` on `args`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `name` is unknown or `args` are out of
    /// the tabulated domain; both indicate a compiler bug.
    fn eval_uf(&self, name: &str, args: &[i64]) -> i64;
}

/// A table-backed implementation of [`UfEval`] for tests and the prelude.
#[derive(Debug, Default, Clone)]
pub struct UfTable {
    funcs: HashMap<String, Arc<dyn UfFn>>,
}

/// Table implementations are plain data shared read-only by executors, so
/// the bound is `Send + Sync`: a [`UfHandle`] may be called concurrently
/// from parallel VM workers.
trait UfFn: fmt::Debug + Send + Sync {
    fn call(&self, args: &[i64]) -> i64;
}

#[derive(Debug)]
struct Table1D(Vec<i64>);

impl UfFn for Table1D {
    fn call(&self, args: &[i64]) -> i64 {
        self.0[usize::try_from(args[0]).expect("negative index into 1-D uf table")]
    }
}

#[derive(Debug)]
struct Rows2D(Vec<Vec<i64>>);

impl UfFn for Rows2D {
    fn call(&self, args: &[i64]) -> i64 {
        let r = usize::try_from(args[0]).expect("negative row into 2-D uf table");
        let c = usize::try_from(args[1]).expect("negative col into 2-D uf table");
        self.0[r][c]
    }
}

/// A cheap, callable handle to one tabulated uninterpreted function,
/// resolved by name once so executors can call it without hashing.
/// Handles are `Send + Sync` (the tables are immutable), so parallel VM
/// workers can share them.
#[derive(Debug, Clone)]
pub struct UfHandle(Arc<dyn UfFn>);

impl UfHandle {
    /// Evaluates the function on `args`.
    ///
    /// # Panics
    ///
    /// Panics if `args` are outside the tabulated domain.
    pub fn call(&self, args: &[i64]) -> i64 {
        self.0.call(args)
    }
}

impl UfTable {
    /// Creates an empty table set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `name` to a callable handle, if implemented.
    pub fn handle(&self, name: &str) -> Option<UfHandle> {
        self.funcs.get(name).map(|f| UfHandle(Arc::clone(f)))
    }

    /// Registers a unary function backed by `values` (domain `0..len`).
    pub fn insert_table1d(&mut self, name: impl Into<String>, values: Vec<i64>) {
        self.funcs.insert(name.into(), Arc::new(Table1D(values)));
    }

    /// Registers a binary function backed by ragged rows.
    pub fn insert_rows2d(&mut self, name: impl Into<String>, rows: Vec<Vec<i64>>) {
        self.funcs.insert(name.into(), Arc::new(Rows2D(rows)));
    }

    /// True if `name` has an implementation.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }
}

impl UfEval for UfTable {
    fn eval_uf(&self, name: &str, args: &[i64]) -> i64 {
        self.funcs
            .get(name)
            .unwrap_or_else(|| panic!("no runtime table for uninterpreted function `{name}`"))
            .call(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut reg = UfRegistry::new();
        let s = UfRef::new("s", 1);
        reg.register(
            &s,
            UfProperties {
                min_value: Some(0),
                max_value: Some(128),
                monotonic_nondecreasing: false,
            },
        );
        let p = reg.properties("s").unwrap();
        assert_eq!(p.max_value, Some(128));
    }

    #[test]
    fn fused_triple_marks_ffo_monotonic() {
        let mut reg = UfRegistry::new();
        reg.register_fused_triple(FusedTriple {
            foif: UfRef::new("foif", 2),
            ffo: UfRef::new("ffo", 1),
            ffi: UfRef::new("ffi", 1),
        });
        assert!(reg.properties("ffo").unwrap().monotonic_nondecreasing);
        assert!(reg.triple_with_foif("foif").is_some());
        assert!(reg.triple_with_component("ffi").is_some());
    }

    #[test]
    fn table_eval() {
        let mut t = UfTable::new();
        t.insert_table1d("s", vec![5, 2, 3]);
        t.insert_rows2d("foif", vec![vec![0, 1], vec![2]]);
        assert_eq!(t.eval_uf("s", &[1]), 2);
        assert_eq!(t.eval_uf("foif", &[1, 0]), 2);
    }

    #[test]
    #[should_panic(expected = "no runtime table")]
    fn missing_table_panics() {
        let t = UfTable::new();
        t.eval_uf("nope", &[0]);
    }
}
