//! Traversal and rewriting utilities over expressions and statements.
//!
//! Provides variable substitution (used when splitting/fusing loops turns
//! `i` into `i_outer*tile + i_inner`), free-variable collection, auxiliary
//! buffer-load collection, and the load-hoisting pass of §D.7.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::ops::Not;

use crate::expr::{Cond, CondKind, Expr, ExprKind};
use crate::fexpr::{FExpr, FExprKind};
use crate::stmt::Stmt;

/// Substitutes variables in an integer expression.
pub fn subst(e: &Expr, map: &HashMap<String, Expr>) -> Expr {
    match e.kind() {
        ExprKind::Int(_) => e.clone(),
        ExprKind::Var(n) => map.get(n).cloned().unwrap_or_else(|| e.clone()),
        ExprKind::Add(a, b) => subst(a, map) + subst(b, map),
        ExprKind::Sub(a, b) => subst(a, map) - subst(b, map),
        ExprKind::Mul(a, b) => subst(a, map) * subst(b, map),
        ExprKind::FloorDiv(a, b) => subst(a, map).floor_div(subst(b, map)),
        ExprKind::FloorMod(a, b) => subst(a, map).floor_mod(subst(b, map)),
        ExprKind::Min(a, b) => subst(a, map).min(subst(b, map)),
        ExprKind::Max(a, b) => subst(a, map).max(subst(b, map)),
        ExprKind::Select(c, a, b) => Expr::select(subst_cond(c, map), subst(a, map), subst(b, map)),
        ExprKind::Uf(f, args) => Expr::uf(f.clone(), args.iter().map(|a| subst(a, map)).collect()),
        ExprKind::Load(buf, idx) => Expr::load(buf.clone(), subst(idx, map)),
    }
}

/// Substitutes variables in a condition.
pub fn subst_cond(c: &Cond, map: &HashMap<String, Expr>) -> Cond {
    match c.kind() {
        CondKind::Const(_) => c.clone(),
        CondKind::Lt(a, b) => subst(a, map).lt(subst(b, map)),
        CondKind::Le(a, b) => subst(a, map).le(subst(b, map)),
        CondKind::Eq(a, b) => subst(a, map).eq_expr(subst(b, map)),
        CondKind::Ne(a, b) => subst(a, map).ne_expr(subst(b, map)),
        CondKind::And(a, b) => subst_cond(a, map).and(subst_cond(b, map)),
        CondKind::Or(a, b) => subst_cond(a, map).or(subst_cond(b, map)),
        CondKind::Not(a) => subst_cond(a, map).not(),
    }
}

/// Substitutes variables in a float expression (indices only).
pub fn subst_fexpr(e: &FExpr, map: &HashMap<String, Expr>) -> FExpr {
    match e.kind() {
        FExprKind::Const(_) => e.clone(),
        FExprKind::Load(buf, idx) => FExpr::load(buf.clone(), subst(idx, map)),
        FExprKind::Cast(i) => FExpr::cast(subst(i, map)),
        FExprKind::Add(a, b) => subst_fexpr(a, map) + subst_fexpr(b, map),
        FExprKind::Sub(a, b) => subst_fexpr(a, map) - subst_fexpr(b, map),
        FExprKind::Mul(a, b) => subst_fexpr(a, map) * subst_fexpr(b, map),
        FExprKind::Div(a, b) => subst_fexpr(a, map) / subst_fexpr(b, map),
        FExprKind::Max(a, b) => subst_fexpr(a, map).max(subst_fexpr(b, map)),
        FExprKind::Unary(op, a) => subst_fexpr(a, map).unary(*op),
        FExprKind::Select(c, a, b) => {
            FExpr::select(subst_cond(c, map), subst_fexpr(a, map), subst_fexpr(b, map))
        }
    }
}

/// Substitutes variables throughout a statement tree.
///
/// Bindings shadowed by inner loops or lets are respected.
pub fn subst_stmt(s: &Stmt, map: &HashMap<String, Expr>) -> Stmt {
    match s {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            let mut inner = map.clone();
            inner.remove(var);
            Stmt::For {
                var: var.clone(),
                min: subst(min, map),
                extent: subst(extent, map),
                kind: *kind,
                body: Box::new(subst_stmt(body, &inner)),
            }
        }
        Stmt::LetInt { var, value, body } => {
            let mut inner = map.clone();
            inner.remove(var);
            Stmt::LetInt {
                var: var.clone(),
                value: subst(value, map),
                body: Box::new(subst_stmt(body, &inner)),
            }
        }
        Stmt::Store {
            buffer,
            index,
            value,
            kind,
        } => Stmt::Store {
            buffer: buffer.clone(),
            index: subst(index, map),
            value: subst_fexpr(value, map),
            kind: *kind,
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: subst_cond(cond, map),
            then_: Box::new(subst_stmt(then_, map)),
            else_: else_.as_ref().map(|e| Box::new(subst_stmt(e, map))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|i| subst_stmt(i, map)).collect()),
        Stmt::Alloc { buffer, size, body } => Stmt::Alloc {
            buffer: buffer.clone(),
            size: subst(size, map),
            body: Box::new(subst_stmt(body, map)),
        },
        Stmt::Nop => Stmt::Nop,
    }
}

/// Collects free variable names of an expression.
pub fn free_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e.kind() {
        ExprKind::Int(_) => {}
        ExprKind::Var(n) => {
            out.insert(n.clone());
        }
        ExprKind::Add(a, b)
        | ExprKind::Sub(a, b)
        | ExprKind::Mul(a, b)
        | ExprKind::FloorDiv(a, b)
        | ExprKind::FloorMod(a, b)
        | ExprKind::Min(a, b)
        | ExprKind::Max(a, b) => {
            free_vars(a, out);
            free_vars(b, out);
        }
        ExprKind::Select(c, a, b) => {
            free_vars_cond(c, out);
            free_vars(a, out);
            free_vars(b, out);
        }
        ExprKind::Uf(_, args) => {
            for a in args {
                free_vars(a, out);
            }
        }
        ExprKind::Load(_, idx) => free_vars(idx, out),
    }
}

/// Collects free variable names of a condition.
pub fn free_vars_cond(c: &Cond, out: &mut BTreeSet<String>) {
    match c.kind() {
        CondKind::Const(_) => {}
        CondKind::Lt(a, b) | CondKind::Le(a, b) | CondKind::Eq(a, b) | CondKind::Ne(a, b) => {
            free_vars(a, out);
            free_vars(b, out);
        }
        CondKind::And(a, b) | CondKind::Or(a, b) => {
            free_vars_cond(a, out);
            free_vars_cond(b, out);
        }
        CondKind::Not(a) => free_vars_cond(a, out),
    }
}

/// Counts auxiliary-buffer loads in `e` without allocating.
///
/// Same convention as [`collect_loads`]: both branches of a
/// [`ExprKind::Select`] are counted, its condition is not. This is the
/// *static* per-expression count the interpreter charges to
/// `InterpStats.aux_loads` and the bytecode compiler bakes into
/// instruction metadata, so both execution tiers account identically.
pub fn count_loads(e: &Expr) -> u64 {
    match e.kind() {
        ExprKind::Int(_) | ExprKind::Var(_) => 0,
        ExprKind::Add(a, b)
        | ExprKind::Sub(a, b)
        | ExprKind::Mul(a, b)
        | ExprKind::FloorDiv(a, b)
        | ExprKind::FloorMod(a, b)
        | ExprKind::Min(a, b)
        | ExprKind::Max(a, b)
        | ExprKind::Select(_, a, b) => count_loads(a) + count_loads(b),
        ExprKind::Uf(_, args) => args.iter().map(count_loads).sum(),
        ExprKind::Load(_, idx) => 1 + count_loads(idx),
    }
}

/// Counts auxiliary-buffer loads in a condition without allocating
/// (both sides of comparisons, through `&&`/`||`/`!`).
pub fn count_cond_loads(c: &Cond) -> u64 {
    match c.kind() {
        CondKind::Const(_) => 0,
        CondKind::Lt(a, b) | CondKind::Le(a, b) | CondKind::Eq(a, b) | CondKind::Ne(a, b) => {
            count_loads(a) + count_loads(b)
        }
        CondKind::And(a, b) | CondKind::Or(a, b) => count_cond_loads(a) + count_cond_loads(b),
        CondKind::Not(a) => count_cond_loads(a),
    }
}

/// Collects all auxiliary-buffer loads (`buffer`, `index`) appearing in `e`.
pub fn collect_loads(e: &Expr, out: &mut Vec<(String, Expr)>) {
    match e.kind() {
        ExprKind::Int(_) | ExprKind::Var(_) => {}
        ExprKind::Add(a, b)
        | ExprKind::Sub(a, b)
        | ExprKind::Mul(a, b)
        | ExprKind::FloorDiv(a, b)
        | ExprKind::FloorMod(a, b)
        | ExprKind::Min(a, b)
        | ExprKind::Max(a, b) => {
            collect_loads(a, out);
            collect_loads(b, out);
        }
        ExprKind::Select(_, a, b) => {
            collect_loads(a, out);
            collect_loads(b, out);
        }
        ExprKind::Uf(_, args) => {
            for a in args {
                collect_loads(a, out);
            }
        }
        ExprKind::Load(buf, idx) => {
            collect_loads(idx, out);
            out.push((buf.clone(), idx.clone()));
        }
    }
}

/// Replaces every occurrence of a `Load(buffer, index)` matching `target`
/// with variable `name` inside `e`.
pub fn replace_load(e: &Expr, target: &(String, Expr), name: &str) -> Expr {
    if let ExprKind::Load(buf, idx) = e.kind() {
        if buf == &target.0 && idx == &target.1 {
            return Expr::var(name);
        }
    }
    match e.kind() {
        ExprKind::Int(_) | ExprKind::Var(_) => e.clone(),
        ExprKind::Add(a, b) => replace_load(a, target, name) + replace_load(b, target, name),
        ExprKind::Sub(a, b) => replace_load(a, target, name) - replace_load(b, target, name),
        ExprKind::Mul(a, b) => replace_load(a, target, name) * replace_load(b, target, name),
        ExprKind::FloorDiv(a, b) => {
            replace_load(a, target, name).floor_div(replace_load(b, target, name))
        }
        ExprKind::FloorMod(a, b) => {
            replace_load(a, target, name).floor_mod(replace_load(b, target, name))
        }
        ExprKind::Min(a, b) => replace_load(a, target, name).min(replace_load(b, target, name)),
        ExprKind::Max(a, b) => replace_load(a, target, name).max(replace_load(b, target, name)),
        ExprKind::Select(c, a, b) => Expr::select(
            replace_load_cond(c, target, name),
            replace_load(a, target, name),
            replace_load(b, target, name),
        ),
        ExprKind::Uf(f, args) => Expr::uf(
            f.clone(),
            args.iter().map(|a| replace_load(a, target, name)).collect(),
        ),
        ExprKind::Load(buf, idx) => Expr::load(buf.clone(), replace_load(idx, target, name)),
    }
}

fn replace_load_cond(c: &Cond, target: &(String, Expr), name: &str) -> Cond {
    match c.kind() {
        CondKind::Const(_) => c.clone(),
        CondKind::Lt(a, b) => replace_load(a, target, name).lt(replace_load(b, target, name)),
        CondKind::Le(a, b) => replace_load(a, target, name).le(replace_load(b, target, name)),
        CondKind::Eq(a, b) => replace_load(a, target, name).eq_expr(replace_load(b, target, name)),
        CondKind::Ne(a, b) => replace_load(a, target, name).ne_expr(replace_load(b, target, name)),
        CondKind::And(a, b) => {
            replace_load_cond(a, target, name).and(replace_load_cond(b, target, name))
        }
        CondKind::Or(a, b) => {
            replace_load_cond(a, target, name).or(replace_load_cond(b, target, name))
        }
        CondKind::Not(a) => replace_load_cond(a, target, name).not(),
    }
}

fn replace_load_fexpr(e: &FExpr, target: &(String, Expr), name: &str) -> FExpr {
    match e.kind() {
        FExprKind::Const(_) => e.clone(),
        FExprKind::Load(buf, idx) => FExpr::load(buf.clone(), replace_load(idx, target, name)),
        FExprKind::Cast(i) => FExpr::cast(replace_load(i, target, name)),
        FExprKind::Add(a, b) => {
            replace_load_fexpr(a, target, name) + replace_load_fexpr(b, target, name)
        }
        FExprKind::Sub(a, b) => {
            replace_load_fexpr(a, target, name) - replace_load_fexpr(b, target, name)
        }
        FExprKind::Mul(a, b) => {
            replace_load_fexpr(a, target, name) * replace_load_fexpr(b, target, name)
        }
        FExprKind::Div(a, b) => {
            replace_load_fexpr(a, target, name) / replace_load_fexpr(b, target, name)
        }
        FExprKind::Max(a, b) => {
            replace_load_fexpr(a, target, name).max(replace_load_fexpr(b, target, name))
        }
        FExprKind::Unary(op, a) => replace_load_fexpr(a, target, name).unary(*op),
        FExprKind::Select(c, a, b) => FExpr::select(
            replace_load_cond(c, target, name),
            replace_load_fexpr(a, target, name),
            replace_load_fexpr(b, target, name),
        ),
    }
}

/// Hoists loop-invariant auxiliary-array loads out of loops (§D.7).
///
/// For each loop, any `Load` whose index does not mention the loop variable
/// (or any variable bound inside the loop) is bound once in a `LetInt`
/// immediately outside the loop body. This mirrors the paper's fix for the
/// QKT operator slowdown: "hoisting data structure accesses outside loops
/// when possible helps recover the lost performance".
pub fn hoist_loads(s: &Stmt) -> Stmt {
    hoist_rec(s, &mut 0)
}

fn hoist_rec(s: &Stmt, counter: &mut usize) -> Stmt {
    match s {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            let body = hoist_rec(body, counter);
            // Find loads in the body whose indices don't depend on `var` or
            // anything bound deeper in the body.
            let bound = bound_vars(&body, var);
            let mut loads = Vec::new();
            collect_stmt_loads(&body, &mut loads);
            let mut hoistable: Vec<(String, Expr)> = Vec::new();
            for l in loads {
                let mut fv = BTreeSet::new();
                free_vars(&l.1, &mut fv);
                if fv.iter().all(|v| !bound.contains(v)) && !hoistable.contains(&l) {
                    hoistable.push(l);
                }
            }
            let mut new_body = body;
            let mut wrapped = Stmt::For {
                var: var.clone(),
                min: min.clone(),
                extent: extent.clone(),
                kind: *kind,
                body: Box::new(Stmt::Nop), // placeholder, fixed below
            };
            let mut lets: Vec<(String, Expr)> = Vec::new();
            for target in hoistable {
                let name = format!("hoist_{}", *counter);
                *counter += 1;
                new_body = replace_load_stmt(&new_body, &target, &name);
                lets.push((name, Expr::load(target.0.clone(), target.1.clone())));
                // The hoisted value itself may mention earlier hoists; fine.
            }
            if let Stmt::For { body, .. } = &mut wrapped {
                **body = new_body;
            }
            // Wrap LetInt bindings outside the loop, innermost last.
            for (name, value) in lets.into_iter().rev() {
                wrapped = Stmt::LetInt {
                    var: name,
                    value,
                    body: Box::new(wrapped),
                };
            }
            wrapped
        }
        Stmt::LetInt { var, value, body } => Stmt::LetInt {
            var: var.clone(),
            value: value.clone(),
            body: Box::new(hoist_rec(body, counter)),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(hoist_rec(then_, counter)),
            else_: else_.as_ref().map(|e| Box::new(hoist_rec(e, counter))),
        },
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|i| hoist_rec(i, counter)).collect()),
        Stmt::Alloc { buffer, size, body } => Stmt::Alloc {
            buffer: buffer.clone(),
            size: size.clone(),
            body: Box::new(hoist_rec(body, counter)),
        },
        Stmt::Store { .. } | Stmt::Nop => s.clone(),
    }
}

/// All variables bound inside `s`, plus `extra`.
fn bound_vars(s: &Stmt, extra: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    out.insert(extra.to_string());
    collect_bound(s, &mut out);
    out
}

fn collect_bound(s: &Stmt, out: &mut BTreeSet<String>) {
    match s {
        Stmt::For { var, body, .. } | Stmt::LetInt { var, body, .. } => {
            out.insert(var.clone());
            collect_bound(body, out);
        }
        Stmt::If { then_, else_, .. } => {
            collect_bound(then_, out);
            if let Some(e) = else_ {
                collect_bound(e, out);
            }
        }
        Stmt::Seq(items) => {
            for i in items {
                collect_bound(i, out);
            }
        }
        Stmt::Alloc { body, .. } => collect_bound(body, out),
        Stmt::Store { .. } | Stmt::Nop => {}
    }
}

fn collect_stmt_loads(s: &Stmt, out: &mut Vec<(String, Expr)>) {
    match s {
        Stmt::For {
            min, extent, body, ..
        } => {
            collect_loads(min, out);
            collect_loads(extent, out);
            collect_stmt_loads(body, out);
        }
        Stmt::LetInt { value, body, .. } => {
            collect_loads(value, out);
            collect_stmt_loads(body, out);
        }
        Stmt::Store { index, value, .. } => {
            collect_loads(index, out);
            collect_fexpr_loads(value, out);
        }
        Stmt::If { cond, then_, else_ } => {
            collect_cond_loads(cond, out);
            collect_stmt_loads(then_, out);
            if let Some(e) = else_ {
                collect_stmt_loads(e, out);
            }
        }
        Stmt::Seq(items) => {
            for i in items {
                collect_stmt_loads(i, out);
            }
        }
        Stmt::Alloc { size, body, .. } => {
            collect_loads(size, out);
            collect_stmt_loads(body, out);
        }
        Stmt::Nop => {}
    }
}

fn collect_fexpr_loads(e: &FExpr, out: &mut Vec<(String, Expr)>) {
    match e.kind() {
        FExprKind::Const(_) => {}
        FExprKind::Load(_, idx) | FExprKind::Cast(idx) => collect_loads(idx, out),
        FExprKind::Add(a, b)
        | FExprKind::Sub(a, b)
        | FExprKind::Mul(a, b)
        | FExprKind::Div(a, b)
        | FExprKind::Max(a, b) => {
            collect_fexpr_loads(a, out);
            collect_fexpr_loads(b, out);
        }
        FExprKind::Unary(_, a) => collect_fexpr_loads(a, out),
        FExprKind::Select(c, a, b) => {
            collect_cond_loads(c, out);
            collect_fexpr_loads(a, out);
            collect_fexpr_loads(b, out);
        }
    }
}

fn collect_cond_loads(c: &Cond, out: &mut Vec<(String, Expr)>) {
    match c.kind() {
        CondKind::Const(_) => {}
        CondKind::Lt(a, b) | CondKind::Le(a, b) | CondKind::Eq(a, b) | CondKind::Ne(a, b) => {
            collect_loads(a, out);
            collect_loads(b, out);
        }
        CondKind::And(a, b) | CondKind::Or(a, b) => {
            collect_cond_loads(a, out);
            collect_cond_loads(b, out);
        }
        CondKind::Not(a) => collect_cond_loads(a, out),
    }
}

fn replace_load_stmt(s: &Stmt, target: &(String, Expr), name: &str) -> Stmt {
    match s {
        Stmt::For {
            var,
            min,
            extent,
            kind,
            body,
        } => Stmt::For {
            var: var.clone(),
            min: replace_load(min, target, name),
            extent: replace_load(extent, target, name),
            kind: *kind,
            body: Box::new(replace_load_stmt(body, target, name)),
        },
        Stmt::LetInt { var, value, body } => Stmt::LetInt {
            var: var.clone(),
            value: replace_load(value, target, name),
            body: Box::new(replace_load_stmt(body, target, name)),
        },
        Stmt::Store {
            buffer,
            index,
            value,
            kind,
        } => Stmt::Store {
            buffer: buffer.clone(),
            index: replace_load(index, target, name),
            value: replace_load_fexpr(value, target, name),
            kind: *kind,
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: replace_load_cond(cond, target, name),
            then_: Box::new(replace_load_stmt(then_, target, name)),
            else_: else_
                .as_ref()
                .map(|e| Box::new(replace_load_stmt(e, target, name))),
        },
        Stmt::Seq(items) => Stmt::Seq(
            items
                .iter()
                .map(|i| replace_load_stmt(i, target, name))
                .collect(),
        ),
        Stmt::Alloc { buffer, size, body } => Stmt::Alloc {
            buffer: buffer.clone(),
            size: replace_load(size, target, name),
            body: Box::new(replace_load_stmt(body, target, name)),
        },
        Stmt::Nop => Stmt::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fexpr::FExpr;

    #[test]
    fn subst_replaces_only_free_occurrences() {
        let mut map = HashMap::new();
        map.insert("i".to_string(), Expr::var("io") * 4 + Expr::var("ii"));
        let e = Expr::var("i") + Expr::var("j");
        assert_eq!(format!("{}", subst(&e, &map)), "(((io*4) + ii) + j)");
    }

    #[test]
    fn subst_stmt_respects_shadowing() {
        let mut map = HashMap::new();
        map.insert("i".to_string(), Expr::int(7));
        let s = Stmt::loop_(
            "i",
            Expr::int(3),
            Stmt::store("B", Expr::var("i"), FExpr::constant(0.0)),
        );
        let out = subst_stmt(&s, &map);
        // The loop rebinds i; the body index must stay `i`, not 7.
        if let Stmt::For { body, .. } = out {
            if let Stmt::Store { index, .. } = *body {
                assert_eq!(index.as_var(), Some("i"));
                return;
            }
        }
        panic!("unexpected shape");
    }

    #[test]
    fn count_loads_matches_collect_convention() {
        // Nested loads count transitively; Select counts both branches but
        // not the condition — the exact convention `collect_loads` uses.
        let e = Expr::load("a", Expr::load("b", Expr::var("i")))
            + Expr::select(
                Expr::load("c", Expr::int(0)).lt(Expr::int(1)),
                Expr::load("d", Expr::int(2)),
                Expr::int(0),
            );
        let mut v = Vec::new();
        collect_loads(&e, &mut v);
        assert_eq!(count_loads(&e), v.len() as u64);
        assert_eq!(count_loads(&e), 3);
        let c = Expr::load("x", Expr::int(0)).lt(Expr::load("y", Expr::int(1)));
        assert_eq!(count_cond_loads(&c.clone().and(!c)), 4);
    }

    #[test]
    fn free_vars_collects() {
        let e = Expr::var("a") + Expr::load("buf", Expr::var("b"));
        let mut fv = BTreeSet::new();
        free_vars(&e, &mut fv);
        assert!(fv.contains("a") && fv.contains("b"));
    }

    #[test]
    fn hoisting_pulls_invariant_load_out() {
        // for o { for i { B[row[o] + i] = A[row[o] + i] } }
        // row[o] is invariant in the inner loop and must be hoisted.
        let idx = Expr::load("row", Expr::var("o")) + Expr::var("i");
        let inner = Stmt::loop_(
            "i",
            Expr::int(8),
            Stmt::store("B", idx.clone(), FExpr::load("A", idx)),
        );
        let nest = Stmt::loop_("o", Expr::int(4), inner);
        let hoisted = hoist_loads(&nest);
        let txt = crate::printer::print_c(&hoisted);
        assert!(txt.contains("int hoist_"), "no hoist binding in:\n{txt}");
        // The inner store must no longer contain `row[o]` directly.
        let inner_part = txt.split("for (int i").nth(1).unwrap();
        assert!(
            !inner_part.contains("row[o]"),
            "load not replaced in body:\n{txt}"
        );
    }

    #[test]
    fn hoisting_keeps_variant_loads() {
        // ffo[f] depends on the loop variable f and must not be hoisted out
        // of the f loop.
        let idx = Expr::load("ffo", Expr::var("f"));
        let nest = Stmt::loop_(
            "f",
            Expr::int(8),
            Stmt::store("B", idx.clone(), FExpr::constant(1.0)),
        );
        let hoisted = hoist_loads(&nest);
        let txt = crate::printer::print_c(&hoisted);
        assert!(txt.contains("ffo[f]"));
    }
}
