//! Interval (value-range) analysis over index expressions.
//!
//! Used for bounds inference and for proving conditional checks redundant
//! (so padded loop bodies can elide them, §4.1). Ranges of uninterpreted
//! functions come from their registered [`UfProperties`]; variables get
//! ranges from the loop nest enclosing the expression.
//!
//! [`UfProperties`]: crate::ufunc::UfProperties

use std::collections::HashMap;

use crate::expr::{floor_div_i64, Cond, CondKind, Expr, ExprKind};
use crate::ufunc::UfRegistry;

/// A (possibly half-open) inclusive integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interval {
    /// Greatest known lower bound.
    pub min: Option<i64>,
    /// Least known upper bound.
    pub max: Option<i64>,
}

impl Interval {
    /// The unbounded interval.
    pub fn unknown() -> Self {
        Interval::default()
    }

    /// A single point.
    pub fn point(v: i64) -> Self {
        Interval {
            min: Some(v),
            max: Some(v),
        }
    }

    /// A fully known interval `[lo, hi]`.
    pub fn bounded(lo: i64, hi: i64) -> Self {
        Interval {
            min: Some(lo),
            max: Some(hi),
        }
    }

    /// True if both endpoints are known.
    pub fn is_bounded(&self) -> bool {
        self.min.is_some() && self.max.is_some()
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.min, i64::checked_add),
            max: opt2(self.max, o.max, i64::checked_add),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.max, i64::checked_sub),
            max: opt2(self.max, o.min, i64::checked_sub),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        // Sound only with all four corner products; any unknown endpoint
        // poisons the result.
        match (self.min, self.max, o.min, o.max) {
            (Some(a), Some(b), Some(c), Some(d)) => {
                let cands = [
                    a.checked_mul(c),
                    a.checked_mul(d),
                    b.checked_mul(c),
                    b.checked_mul(d),
                ];
                if cands.iter().any(|c| c.is_none()) {
                    Interval::unknown()
                } else {
                    let vals: Vec<i64> = cands.into_iter().map(Option::unwrap).collect();
                    Interval::bounded(*vals.iter().min().unwrap(), *vals.iter().max().unwrap())
                }
            }
            _ => Interval::unknown(),
        }
    }

    fn floor_div(self, o: Interval) -> Interval {
        match (self.min, self.max, o.min, o.max) {
            // Only the common, well-behaved case: positive constant-range divisor.
            (Some(a), Some(b), Some(c), Some(d)) if c > 0 => {
                let vals = [
                    floor_div_i64(a, c),
                    floor_div_i64(a, d),
                    floor_div_i64(b, c),
                    floor_div_i64(b, d),
                ];
                Interval::bounded(*vals.iter().min().unwrap(), *vals.iter().max().unwrap())
            }
            _ => Interval::unknown(),
        }
    }

    fn floor_mod(self, o: Interval) -> Interval {
        match (o.min, o.max) {
            (Some(c), Some(d)) if c > 0 => Interval::bounded(0, d - 1),
            _ => Interval::unknown(),
        }
    }

    fn min_i(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.min, |a, b| Some(a.min(b))),
            max: match (self.max, o.max) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
        }
    }

    fn max_i(self, o: Interval) -> Interval {
        Interval {
            min: match (self.min, o.min) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
            max: opt2(self.max, o.max, |a, b| Some(a.max(b))),
        }
    }

    fn union(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.min, |a, b| Some(a.min(b))),
            max: opt2(self.max, o.max, |a, b| Some(a.max(b))),
        }
    }
}

fn opt2(a: Option<i64>, b: Option<i64>, f: impl Fn(i64, i64) -> Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    }
}

/// Variable-range context for interval analysis.
#[derive(Debug, Default, Clone)]
pub struct RangeMap {
    ranges: HashMap<String, Interval>,
}

impl RangeMap {
    /// Creates an empty range map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `var` ranges over `interval`.
    pub fn set(&mut self, var: impl Into<String>, interval: Interval) {
        self.ranges.insert(var.into(), interval);
    }

    /// Declares the half-open loop range `var in [0, extent)`.
    pub fn set_loop(&mut self, var: impl Into<String>, extent_hi: i64) {
        self.set(var, Interval::bounded(0, extent_hi - 1));
    }

    /// Range of `var`, unbounded if undeclared.
    pub fn get(&self, var: &str) -> Interval {
        self.ranges.get(var).copied().unwrap_or_default()
    }
}

/// Computes a sound interval for `e`.
pub fn infer(e: &Expr, ranges: &RangeMap, reg: &UfRegistry) -> Interval {
    match e.kind() {
        ExprKind::Int(v) => Interval::point(*v),
        ExprKind::Var(n) => ranges.get(n),
        ExprKind::Add(a, b) => infer(a, ranges, reg).add(infer(b, ranges, reg)),
        ExprKind::Sub(a, b) => infer(a, ranges, reg).sub(infer(b, ranges, reg)),
        ExprKind::Mul(a, b) => infer(a, ranges, reg).mul(infer(b, ranges, reg)),
        ExprKind::FloorDiv(a, b) => infer(a, ranges, reg).floor_div(infer(b, ranges, reg)),
        ExprKind::FloorMod(a, b) => infer(a, ranges, reg).floor_mod(infer(b, ranges, reg)),
        ExprKind::Min(a, b) => infer(a, ranges, reg).min_i(infer(b, ranges, reg)),
        ExprKind::Max(a, b) => infer(a, ranges, reg).max_i(infer(b, ranges, reg)),
        ExprKind::Select(_, a, b) => infer(a, ranges, reg).union(infer(b, ranges, reg)),
        ExprKind::Uf(f, _) => match reg.properties(f.name()) {
            Some(p) => Interval {
                min: p.min_value,
                max: p.max_value,
            },
            None => Interval::unknown(),
        },
        ExprKind::Load(_, _) => Interval::unknown(),
    }
}

/// Tries to prove `c` always true (`Some(true)`), always false
/// (`Some(false)`), or gives up (`None`).
pub fn prove(c: &Cond, ranges: &RangeMap, reg: &UfRegistry) -> Option<bool> {
    match c.kind() {
        CondKind::Const(b) => Some(*b),
        CondKind::Lt(a, b) => prove_lt(a, b, ranges, reg),
        CondKind::Le(a, b) => {
            // a <= b  <=>  a < b + 1
            prove_lt(&(a.clone() + 1), &(b.clone() + 1 - 0), ranges, reg)
                .or_else(|| prove_lt(a, &(b.clone() + 1), ranges, reg))
        }
        CondKind::Eq(a, b) => {
            let ia = infer(a, ranges, reg);
            let ib = infer(b, ranges, reg);
            if let (Some(x), Some(y)) = (ia.min, ia.max) {
                if x == y {
                    if let (Some(u), Some(v)) = (ib.min, ib.max) {
                        if u == v {
                            return Some(x == u);
                        }
                    }
                }
            }
            // Disjoint ranges prove inequality.
            if disjoint(ia, ib) {
                return Some(false);
            }
            None
        }
        CondKind::Ne(a, b) => prove(&a.clone().eq_expr(b.clone()), ranges, reg).map(|v| !v),
        CondKind::And(a, b) => match (prove(a, ranges, reg), prove(b, ranges, reg)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        CondKind::Or(a, b) => match (prove(a, ranges, reg), prove(b, ranges, reg)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        CondKind::Not(a) => prove(a, ranges, reg).map(|v| !v),
    }
}

fn prove_lt(a: &Expr, b: &Expr, ranges: &RangeMap, reg: &UfRegistry) -> Option<bool> {
    let ia = infer(a, ranges, reg);
    let ib = infer(b, ranges, reg);
    if let (Some(amax), Some(bmin)) = (ia.max, ib.min) {
        if amax < bmin {
            return Some(true);
        }
    }
    if let (Some(amin), Some(bmax)) = (ia.min, ib.max) {
        if amin >= bmax {
            return Some(false);
        }
    }
    None
}

fn disjoint(a: Interval, b: Interval) -> bool {
    matches!((a.max, b.min), (Some(x), Some(y)) if x < y)
        || matches!((b.max, a.min), (Some(x), Some(y)) if x < y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ufunc::{UfProperties, UfRef, UfRegistry};

    #[test]
    fn arithmetic_ranges() {
        let mut rm = RangeMap::new();
        rm.set_loop("i", 8);
        let reg = UfRegistry::new();
        let e = Expr::var("i") * 4 + 3;
        assert_eq!(infer(&e, &rm, &reg), Interval::bounded(3, 31));
    }

    #[test]
    fn division_and_modulo_ranges() {
        let mut rm = RangeMap::new();
        rm.set_loop("i", 10);
        let reg = UfRegistry::new();
        assert_eq!(
            infer(&Expr::var("i").floor_div(Expr::int(3)), &rm, &reg),
            Interval::bounded(0, 3)
        );
        assert_eq!(
            infer(&Expr::var("i").floor_mod(Expr::int(4)), &rm, &reg),
            Interval::bounded(0, 3)
        );
    }

    #[test]
    fn uf_ranges_from_registry() {
        let mut reg = UfRegistry::new();
        let s = UfRef::new("s", 1);
        reg.register(
            &s,
            UfProperties {
                min_value: Some(1),
                max_value: Some(128),
                ..Default::default()
            },
        );
        let rm = RangeMap::new();
        let e = Expr::uf(s, vec![Expr::var("o")]);
        assert_eq!(infer(&e, &rm, &reg), Interval::bounded(1, 128));
    }

    #[test]
    fn proves_redundant_bound_check() {
        // i in [0, 32), tile j in [0, 4): i*4 + j < 128 always holds...
        let mut rm = RangeMap::new();
        rm.set_loop("i", 32);
        rm.set_loop("j", 4);
        let reg = UfRegistry::new();
        let c = (Expr::var("i") * 4 + Expr::var("j")).lt(Expr::int(128));
        assert_eq!(prove(&c, &rm, &reg), Some(true));
        // ...but i*4 + j < 100 does not.
        let c2 = (Expr::var("i") * 4 + Expr::var("j")).lt(Expr::int(100));
        assert_eq!(prove(&c2, &rm, &reg), None);
    }

    #[test]
    fn proves_false_and_disjoint_eq() {
        let mut rm = RangeMap::new();
        rm.set("x", Interval::bounded(10, 20));
        rm.set("y", Interval::bounded(0, 5));
        let reg = UfRegistry::new();
        assert_eq!(
            prove(&Expr::var("x").lt(Expr::var("y")), &rm, &reg),
            Some(false)
        );
        assert_eq!(
            prove(&Expr::var("x").eq_expr(Expr::var("y")), &rm, &reg),
            Some(false)
        );
    }

    #[test]
    fn le_via_lt_rewrite() {
        let mut rm = RangeMap::new();
        rm.set_loop("i", 4);
        let reg = UfRegistry::new();
        assert_eq!(
            prove(&Expr::var("i").le(Expr::int(3)), &rm, &reg),
            Some(true)
        );
    }
}
