//! Interval (value-range) analysis over index expressions.
//!
//! Used for bounds inference and for proving conditional checks redundant
//! (so padded loop bodies can elide them, §4.1). Ranges of uninterpreted
//! functions come from their registered [`UfProperties`]; variables get
//! ranges from the loop nest enclosing the expression.
//!
//! [`UfProperties`]: crate::ufunc::UfProperties

use std::collections::HashMap;

use crate::expr::{floor_div_i64, Cond, CondKind, Expr, ExprKind};
use crate::ufunc::UfRegistry;

/// A (possibly half-open) inclusive integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interval {
    /// Greatest known lower bound.
    pub min: Option<i64>,
    /// Least known upper bound.
    pub max: Option<i64>,
}

impl Interval {
    /// The unbounded interval.
    pub fn unknown() -> Self {
        Interval::default()
    }

    /// A single point.
    pub fn point(v: i64) -> Self {
        Interval {
            min: Some(v),
            max: Some(v),
        }
    }

    /// A fully known interval `[lo, hi]`.
    pub fn bounded(lo: i64, hi: i64) -> Self {
        Interval {
            min: Some(lo),
            max: Some(hi),
        }
    }

    /// True if both endpoints are known.
    pub fn is_bounded(&self) -> bool {
        self.min.is_some() && self.max.is_some()
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.min, i64::checked_add),
            max: opt2(self.max, o.max, i64::checked_add),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.max, i64::checked_sub),
            max: opt2(self.max, o.min, i64::checked_sub),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        // Sound only with all four corner products; any unknown endpoint
        // poisons the result.
        match (self.min, self.max, o.min, o.max) {
            (Some(a), Some(b), Some(c), Some(d)) => {
                let cands = [
                    a.checked_mul(c),
                    a.checked_mul(d),
                    b.checked_mul(c),
                    b.checked_mul(d),
                ];
                if cands.iter().any(|c| c.is_none()) {
                    Interval::unknown()
                } else {
                    let vals: Vec<i64> = cands.into_iter().map(Option::unwrap).collect();
                    Interval::bounded(*vals.iter().min().unwrap(), *vals.iter().max().unwrap())
                }
            }
            _ => Interval::unknown(),
        }
    }

    fn floor_div(self, o: Interval) -> Interval {
        match (self.min, self.max, o.min, o.max) {
            // Only the common, well-behaved case: positive constant-range divisor.
            (Some(a), Some(b), Some(c), Some(d)) if c > 0 => {
                let vals = [
                    floor_div_i64(a, c),
                    floor_div_i64(a, d),
                    floor_div_i64(b, c),
                    floor_div_i64(b, d),
                ];
                Interval::bounded(*vals.iter().min().unwrap(), *vals.iter().max().unwrap())
            }
            _ => Interval::unknown(),
        }
    }

    fn floor_mod(self, o: Interval) -> Interval {
        match (o.min, o.max) {
            (Some(c), Some(d)) if c > 0 => Interval::bounded(0, d - 1),
            _ => Interval::unknown(),
        }
    }

    fn min_i(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.min, |a, b| Some(a.min(b))),
            max: match (self.max, o.max) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
        }
    }

    fn max_i(self, o: Interval) -> Interval {
        Interval {
            min: match (self.min, o.min) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
            max: opt2(self.max, o.max, |a, b| Some(a.max(b))),
        }
    }

    fn union(self, o: Interval) -> Interval {
        Interval {
            min: opt2(self.min, o.min, |a, b| Some(a.min(b))),
            max: opt2(self.max, o.max, |a, b| Some(a.max(b))),
        }
    }
}

fn opt2(a: Option<i64>, b: Option<i64>, f: impl Fn(i64, i64) -> Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A *strided interval*: the abstract value used by the safety verifier's
/// concrete (per-block) pass. `Set { lo, hi, stride }` denotes
/// `{ x : lo ≤ x ≤ hi, x ≡ lo (mod stride) }`; `Top` is "any integer"
/// (unknown), `Empty` the empty set. The stride is what lets two blocks'
/// interleaved store sets (`b + j·N` for distinct `b`) be proven disjoint
/// even though their interval hulls overlap — the congruence half of the
/// disjoint-store theorem.
///
/// Invariants of `Set`: `stride ≥ 1`, `lo ≤ hi`, `hi ≡ lo (mod stride)`,
/// and a singleton (`lo == hi`) always has `stride == 1` so equal sets
/// compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SInt {
    /// The empty set (e.g. the index set of a zero-trip loop body).
    Empty,
    /// Any integer: nothing is known.
    Top,
    /// `{ lo + k·stride : k ≥ 0 } ∩ [lo, hi]`.
    Set {
        /// Least element.
        lo: i64,
        /// Greatest element (congruent to `lo` modulo `stride`).
        hi: i64,
        /// Common difference of consecutive elements.
        stride: i64,
    },
}

impl std::fmt::Display for SInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SInt::Empty => write!(f, "∅"),
            SInt::Top => write!(f, "⊤"),
            SInt::Set { lo, hi, stride: _ } if lo == hi => write!(f, "{{{lo}}}"),
            SInt::Set { lo, hi, stride: 1 } => write!(f, "[{lo}, {hi}]"),
            SInt::Set { lo, hi, stride } => write!(f, "[{lo}, {hi}] step {stride}"),
        }
    }
}

impl SInt {
    /// The singleton `{ v }`.
    pub fn point(v: i64) -> SInt {
        SInt::Set {
            lo: v,
            hi: v,
            stride: 1,
        }
    }

    /// The dense range `[lo, hi]` (empty when `lo > hi`).
    pub fn range(lo: i64, hi: i64) -> SInt {
        SInt::make(lo, hi, 1)
    }

    /// Normalizing constructor: clamps `hi` down to the greatest element
    /// congruent to `lo`, canonicalizes singleton strides.
    pub fn make(lo: i64, hi: i64, stride: i64) -> SInt {
        debug_assert!(stride >= 1);
        if lo > hi {
            return SInt::Empty;
        }
        let span = hi - lo;
        let hi = lo + span - span.rem_euclid(stride);
        if lo == hi {
            SInt::point(lo)
        } else {
            SInt::Set { lo, hi, stride }
        }
    }

    /// The single value, if this is a singleton.
    pub fn as_point(&self) -> Option<i64> {
        match *self {
            SInt::Set { lo, hi, .. } if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// Interval hull `[lo, hi]`, when bounded and non-empty.
    pub fn hull(&self) -> Option<(i64, i64)> {
        match *self {
            SInt::Set { lo, hi, .. } => Some((lo, hi)),
            _ => None,
        }
    }

    /// True if `v` is a member.
    pub fn contains(&self, v: i64) -> bool {
        match *self {
            SInt::Empty => false,
            SInt::Top => true,
            SInt::Set { lo, hi, stride } => lo <= v && v <= hi && (v - lo).rem_euclid(stride) == 0,
        }
    }

    /// True if the whole dense run `[lo, lo + n)` is a subset. Used to
    /// admit contiguous chunk stores with one check instead of `n`.
    pub fn contains_run(&self, run_lo: i64, n: i64) -> bool {
        if n <= 0 {
            return true;
        }
        if n == 1 {
            return self.contains(run_lo);
        }
        match *self {
            SInt::Empty => false,
            SInt::Top => true,
            SInt::Set { lo, hi, stride } => stride == 1 && lo <= run_lo && run_lo + n - 1 <= hi,
        }
    }

    fn bin(self, o: SInt, f: impl FnOnce(i64, i64, i64, i64, i64, i64) -> SInt) -> SInt {
        match (self, o) {
            (SInt::Empty, _) | (_, SInt::Empty) => SInt::Empty,
            (SInt::Top, _) | (_, SInt::Top) => SInt::Top,
            (
                SInt::Set {
                    lo: a,
                    hi: b,
                    stride: s,
                },
                SInt::Set {
                    lo: c,
                    hi: d,
                    stride: t,
                },
            ) => f(a, b, s, c, d, t),
        }
    }

    /// Element-wise sum. Overflow degrades to [`SInt::Top`].
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not std::ops
    pub fn add(self, o: SInt) -> SInt {
        self.bin(o, |a, b, s, c, d, t| {
            match (a.checked_add(c), b.checked_add(d)) {
                (Some(lo), Some(hi)) => {
                    // A point shifts the other set exactly; otherwise the
                    // sum lands on gcd-of-strides lattice points.
                    let stride = if a == b {
                        t
                    } else if c == d {
                        s
                    } else {
                        gcd(s, t)
                    };
                    SInt::make(lo, hi, stride.max(1))
                }
                _ => SInt::Top,
            }
        })
    }

    /// Element-wise difference.
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not std::ops
    pub fn sub(self, o: SInt) -> SInt {
        self.add(o.neg())
    }

    /// Element-wise negation.
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not std::ops
    pub fn neg(self) -> SInt {
        match self {
            SInt::Set { lo, hi, stride } => match (lo.checked_neg(), hi.checked_neg()) {
                (Some(nl), Some(nh)) => SInt::make(nh, nl, stride),
                _ => SInt::Top,
            },
            other => other,
        }
    }

    /// Scale by a constant.
    pub fn mul_const(self, c: i64) -> SInt {
        if c == 0 {
            return match self {
                SInt::Empty => SInt::Empty,
                _ => SInt::point(0),
            };
        }
        match self {
            SInt::Set { lo, hi, stride } => {
                let (a, b) = (lo.checked_mul(c), hi.checked_mul(c));
                let s = stride.checked_mul(c.abs());
                match (a, b, s) {
                    (Some(a), Some(b), Some(s)) => SInt::make(a.min(b), a.max(b), s),
                    _ => SInt::Top,
                }
            }
            other => other,
        }
    }

    /// Element-wise product (precise when either side is a point).
    #[allow(clippy::should_implement_trait)] // abstract-domain op, not std::ops
    pub fn mul(self, o: SInt) -> SInt {
        if let Some(c) = o.as_point() {
            return self.mul_const(c);
        }
        if let Some(c) = self.as_point() {
            return o.mul_const(c);
        }
        self.bin(o, |a, b, _, c, d, _| {
            let cands = [
                a.checked_mul(c),
                a.checked_mul(d),
                b.checked_mul(c),
                b.checked_mul(d),
            ];
            if cands.iter().any(Option::is_none) {
                return SInt::Top;
            }
            let vals: Vec<i64> = cands.into_iter().flatten().collect();
            SInt::make(*vals.iter().min().unwrap(), *vals.iter().max().unwrap(), 1)
        })
    }

    /// Floor division by a positive constant. Exact stride transfer when
    /// the divisor divides the stride *and* the phase (then every element
    /// maps by `x ↦ x/c` bijectively onto the lattice `stride/c`).
    pub fn floor_div_const(self, c: i64) -> SInt {
        if c <= 0 {
            return SInt::Top;
        }
        match self {
            SInt::Set { lo, hi, stride } => {
                let (dl, dh) = (lo.div_euclid(c), hi.div_euclid(c));
                if stride % c == 0 {
                    SInt::make(dl, dh, (stride / c).max(1))
                } else {
                    SInt::make(dl, dh, 1)
                }
            }
            other => other,
        }
    }

    /// Floor modulo by a positive constant.
    pub fn floor_mod_const(self, c: i64) -> SInt {
        if c <= 0 {
            return SInt::Top;
        }
        match self {
            SInt::Set { lo, hi, stride } => {
                // Whole set in one congruence class of c?
                if stride % c == 0 {
                    return SInt::point(lo.rem_euclid(c));
                }
                // Span fits inside one period without wrapping?
                let base = lo.rem_euclid(c);
                if hi - lo < c && base + (hi - lo) < c {
                    return SInt::make(base, base + (hi - lo), stride);
                }
                // General: residues lie on the gcd lattice within [0, c).
                let g = gcd(stride, c);
                let first = lo.rem_euclid(g);
                SInt::make(first, c - 1, g.max(1))
            }
            other => other,
        }
    }

    /// Element-wise binary minimum.
    pub fn min_s(self, o: SInt) -> SInt {
        self.bin(o, |a, b, s, c, d, t| {
            SInt::make(a.min(c), b.min(d), gcd(gcd(s, t), (a - c).abs()).max(1))
        })
    }

    /// Element-wise binary maximum.
    pub fn max_s(self, o: SInt) -> SInt {
        self.bin(o, |a, b, s, c, d, t| {
            SInt::make(a.max(c), b.max(d), gcd(gcd(s, t), (a - c).abs()).max(1))
        })
    }

    /// Set union (over-approximated on the stride lattice).
    pub fn union(self, o: SInt) -> SInt {
        match (self, o) {
            (SInt::Empty, x) | (x, SInt::Empty) => x,
            (SInt::Top, _) | (_, SInt::Top) => SInt::Top,
            (
                SInt::Set {
                    lo: a,
                    hi: b,
                    stride: s,
                },
                SInt::Set {
                    lo: c,
                    hi: d,
                    stride: t,
                },
            ) => SInt::make(a.min(c), b.max(d), gcd(gcd(s, t), (a - c).abs()).max(1)),
        }
    }

    /// True if the two sets are *provably* disjoint: separated interval
    /// hulls, or incompatible congruence classes (`lo₁ ≢ lo₂` modulo the
    /// gcd of the strides). Returns `false` whenever disjointness cannot
    /// be established — the caller must treat that as a potential overlap.
    pub fn disjoint(self, o: SInt) -> bool {
        match (self, o) {
            (SInt::Empty, _) | (_, SInt::Empty) => true,
            (SInt::Top, _) | (_, SInt::Top) => false,
            (
                SInt::Set {
                    lo: a,
                    hi: b,
                    stride: s,
                },
                SInt::Set {
                    lo: c,
                    hi: d,
                    stride: t,
                },
            ) => {
                if b < c || d < a {
                    return true;
                }
                (a - c).rem_euclid(gcd(s, t).max(1)) != 0
            }
        }
    }
}

/// Variable-range context for interval analysis.
#[derive(Debug, Default, Clone)]
pub struct RangeMap {
    ranges: HashMap<String, Interval>,
}

impl RangeMap {
    /// Creates an empty range map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `var` ranges over `interval`.
    pub fn set(&mut self, var: impl Into<String>, interval: Interval) {
        self.ranges.insert(var.into(), interval);
    }

    /// Declares the half-open loop range `var in [0, extent)`.
    pub fn set_loop(&mut self, var: impl Into<String>, extent_hi: i64) {
        self.set(var, Interval::bounded(0, extent_hi - 1));
    }

    /// Range of `var`, unbounded if undeclared.
    pub fn get(&self, var: &str) -> Interval {
        self.ranges.get(var).copied().unwrap_or_default()
    }
}

/// Computes a sound interval for `e`.
pub fn infer(e: &Expr, ranges: &RangeMap, reg: &UfRegistry) -> Interval {
    match e.kind() {
        ExprKind::Int(v) => Interval::point(*v),
        ExprKind::Var(n) => ranges.get(n),
        ExprKind::Add(a, b) => infer(a, ranges, reg).add(infer(b, ranges, reg)),
        ExprKind::Sub(a, b) => infer(a, ranges, reg).sub(infer(b, ranges, reg)),
        ExprKind::Mul(a, b) => infer(a, ranges, reg).mul(infer(b, ranges, reg)),
        ExprKind::FloorDiv(a, b) => infer(a, ranges, reg).floor_div(infer(b, ranges, reg)),
        ExprKind::FloorMod(a, b) => infer(a, ranges, reg).floor_mod(infer(b, ranges, reg)),
        ExprKind::Min(a, b) => infer(a, ranges, reg).min_i(infer(b, ranges, reg)),
        ExprKind::Max(a, b) => infer(a, ranges, reg).max_i(infer(b, ranges, reg)),
        ExprKind::Select(_, a, b) => infer(a, ranges, reg).union(infer(b, ranges, reg)),
        ExprKind::Uf(f, _) => match reg.properties(f.name()) {
            Some(p) => Interval {
                min: p.min_value,
                max: p.max_value,
            },
            None => Interval::unknown(),
        },
        ExprKind::Load(_, _) => Interval::unknown(),
    }
}

/// Tries to prove `c` always true (`Some(true)`), always false
/// (`Some(false)`), or gives up (`None`).
pub fn prove(c: &Cond, ranges: &RangeMap, reg: &UfRegistry) -> Option<bool> {
    match c.kind() {
        CondKind::Const(b) => Some(*b),
        CondKind::Lt(a, b) => prove_lt(a, b, ranges, reg),
        CondKind::Le(a, b) => {
            // a <= b  <=>  a < b + 1
            prove_lt(&(a.clone() + 1), &(b.clone() + 1 - 0), ranges, reg)
                .or_else(|| prove_lt(a, &(b.clone() + 1), ranges, reg))
        }
        CondKind::Eq(a, b) => {
            let ia = infer(a, ranges, reg);
            let ib = infer(b, ranges, reg);
            if let (Some(x), Some(y)) = (ia.min, ia.max) {
                if x == y {
                    if let (Some(u), Some(v)) = (ib.min, ib.max) {
                        if u == v {
                            return Some(x == u);
                        }
                    }
                }
            }
            // Disjoint ranges prove inequality.
            if disjoint(ia, ib) {
                return Some(false);
            }
            None
        }
        CondKind::Ne(a, b) => prove(&a.clone().eq_expr(b.clone()), ranges, reg).map(|v| !v),
        CondKind::And(a, b) => match (prove(a, ranges, reg), prove(b, ranges, reg)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        CondKind::Or(a, b) => match (prove(a, ranges, reg), prove(b, ranges, reg)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        CondKind::Not(a) => prove(a, ranges, reg).map(|v| !v),
    }
}

fn prove_lt(a: &Expr, b: &Expr, ranges: &RangeMap, reg: &UfRegistry) -> Option<bool> {
    let ia = infer(a, ranges, reg);
    let ib = infer(b, ranges, reg);
    if let (Some(amax), Some(bmin)) = (ia.max, ib.min) {
        if amax < bmin {
            return Some(true);
        }
    }
    if let (Some(amin), Some(bmax)) = (ia.min, ib.max) {
        if amin >= bmax {
            return Some(false);
        }
    }
    None
}

fn disjoint(a: Interval, b: Interval) -> bool {
    matches!((a.max, b.min), (Some(x), Some(y)) if x < y)
        || matches!((b.max, a.min), (Some(x), Some(y)) if x < y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ufunc::{UfProperties, UfRef, UfRegistry};

    #[test]
    fn arithmetic_ranges() {
        let mut rm = RangeMap::new();
        rm.set_loop("i", 8);
        let reg = UfRegistry::new();
        let e = Expr::var("i") * 4 + 3;
        assert_eq!(infer(&e, &rm, &reg), Interval::bounded(3, 31));
    }

    #[test]
    fn division_and_modulo_ranges() {
        let mut rm = RangeMap::new();
        rm.set_loop("i", 10);
        let reg = UfRegistry::new();
        assert_eq!(
            infer(&Expr::var("i").floor_div(Expr::int(3)), &rm, &reg),
            Interval::bounded(0, 3)
        );
        assert_eq!(
            infer(&Expr::var("i").floor_mod(Expr::int(4)), &rm, &reg),
            Interval::bounded(0, 3)
        );
    }

    #[test]
    fn uf_ranges_from_registry() {
        let mut reg = UfRegistry::new();
        let s = UfRef::new("s", 1);
        reg.register(
            &s,
            UfProperties {
                min_value: Some(1),
                max_value: Some(128),
                ..Default::default()
            },
        );
        let rm = RangeMap::new();
        let e = Expr::uf(s, vec![Expr::var("o")]);
        assert_eq!(infer(&e, &rm, &reg), Interval::bounded(1, 128));
    }

    #[test]
    fn proves_redundant_bound_check() {
        // i in [0, 32), tile j in [0, 4): i*4 + j < 128 always holds...
        let mut rm = RangeMap::new();
        rm.set_loop("i", 32);
        rm.set_loop("j", 4);
        let reg = UfRegistry::new();
        let c = (Expr::var("i") * 4 + Expr::var("j")).lt(Expr::int(128));
        assert_eq!(prove(&c, &rm, &reg), Some(true));
        // ...but i*4 + j < 100 does not.
        let c2 = (Expr::var("i") * 4 + Expr::var("j")).lt(Expr::int(100));
        assert_eq!(prove(&c2, &rm, &reg), None);
    }

    #[test]
    fn proves_false_and_disjoint_eq() {
        let mut rm = RangeMap::new();
        rm.set("x", Interval::bounded(10, 20));
        rm.set("y", Interval::bounded(0, 5));
        let reg = UfRegistry::new();
        assert_eq!(
            prove(&Expr::var("x").lt(Expr::var("y")), &rm, &reg),
            Some(false)
        );
        assert_eq!(
            prove(&Expr::var("x").eq_expr(Expr::var("y")), &rm, &reg),
            Some(false)
        );
    }

    #[test]
    fn strided_interval_arithmetic() {
        // i in [0, 4): 8*i + 3 = {3, 11, 19, 27}.
        let i = SInt::range(0, 3);
        let e = i.mul_const(8).add(SInt::point(3));
        assert_eq!(
            e,
            SInt::Set {
                lo: 3,
                hi: 27,
                stride: 8
            }
        );
        assert!(e.contains(11) && !e.contains(12));
        assert!(!e.contains_run(3, 2) && e.contains_run(19, 1));
        // Dividing by the stride's divisor collapses it exactly.
        assert_eq!(e.floor_div_const(8), SInt::range(0, 3));
        assert_eq!(e.floor_mod_const(8), SInt::point(3));
        assert_eq!(SInt::range(0, 7).floor_mod_const(4), SInt::range(0, 3));
    }

    #[test]
    fn strided_disjointness_by_interval_and_congruence() {
        // Interval separation.
        assert!(SInt::range(0, 9).disjoint(SInt::range(10, 19)));
        // Congruence separation: {0,4,8,...} vs {1,5,9,...} overlap as
        // intervals but never as sets.
        let even4 = SInt::make(0, 100, 4);
        let odd4 = SInt::make(1, 101, 4);
        assert!(even4.disjoint(odd4));
        assert!(!even4.disjoint(SInt::make(2, 102, 2)));
        // Top is never provably disjoint from anything non-empty.
        assert!(!SInt::Top.disjoint(SInt::point(0)));
        assert!(SInt::Empty.disjoint(SInt::Top));
    }

    #[test]
    fn strided_union_and_minmax_keep_congruence() {
        let a = SInt::make(0, 8, 4);
        let b = SInt::make(2, 10, 4);
        // Union: both lie on the even lattice.
        assert_eq!(
            a.union(b),
            SInt::Set {
                lo: 0,
                hi: 10,
                stride: 2
            }
        );
        assert_eq!(a.min_s(b).hull(), Some((0, 8)));
        assert_eq!(a.max_s(b).hull(), Some((2, 10)));
        assert_eq!(SInt::point(5).sub(SInt::point(2)), SInt::point(3));
    }

    #[test]
    fn le_via_lt_rewrite() {
        let mut rm = RangeMap::new();
        rm.set_loop("i", 4);
        let reg = UfRegistry::new();
        assert_eq!(
            prove(&Expr::var("i").le(Expr::int(3)), &rm, &reg),
            Some(true)
        );
    }
}
