//! The full ragged encoder layer on the compiled tier: every stage of
//! Fig. 3's pipeline expressed as a CoRa operator, lowered, compiled to
//! the bytecode VM, and chained through a buffer-planned
//! [`CompiledPipeline`] — the paper's end-to-end artifact (§7, Figs.
//! 17–20) rather than a per-operator demonstration.
//!
//! After PR 4 only the two masked-SDPA kernels ran on the compiled
//! tier; here the *whole* layer does:
//!
//! 1. ragged projection GEMMs (QKV, attention output, FF1, FF2) with the
//!    reduction loop **reordered** between the row and column loops
//!    (`r, d, c`) — the i-k-j order the hand-written `sgemm` uses, which
//!    both matches its float-add order bit-for-bit and gives the VM's
//!    fused multiply-accumulate instruction a unit-stride (vectorizable)
//!    inner loop;
//! 2. bias / bias+residual adds and the tanh-GELU activation;
//! 3. bidirectional attention over the flattened `(head, row)` axis:
//!    score GEMM, `1/√d` scaling, and a four-operator row softmax
//!    (max-reduction — [`Operator::reduce_max`] — stored exponentials,
//!    row sums, normalise) matching the reference `softmax_row`
//!    operation-for-operation, each exponential computed exactly once;
//! 4. three-pass row layernorm (sum, variance, normalise) matching the
//!    reference `layernorm_row`.
//!
//! Attention flattens `(head, row)` into one `hr` axis, the same trick
//! the PR 4 kernels use for `(sequence, position)` ([`crate::compiled`]):
//! prelude-built tables map `hr` to the packed QKV offsets of its head's
//! Q/K/V panels, so heads need no host-side extraction at all — the only
//! data movement between operators is through the pipeline's arena.
//!
//! Because every operator replays the reference kernels' loop orders and
//! float operations, [`CompiledEncoderLayer::forward`] tracks
//! [`encoder_layer_ragged`](crate::encoder::encoder_layer_ragged) to within a few ULPs; the differential
//! proptest suite (`tests/encoder_compiled_props.rs`) locks serial,
//! parallel and reference paths together.

use cora_core::pipeline::{CompiledPipeline, PipelineBuilder, PipelineRun, PipelineSession};
use cora_core::prelude::*;
use cora_exec::CpuPool;
use cora_ragged::RaggedLayout;

use crate::compiled::{row_ragged_layout, seq_row0_table};
use crate::config::EncoderConfig;
use crate::encoder::RaggedBatch;
use crate::weights::EncoderWeights;

use std::rc::Rc;

/// Layer-norm stabiliser, matching [`crate::encoder`]'s calls.
const LN_EPS: f32 = 1e-5;

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

/// Dense projection GEMM `Out[r, c] = Σ_d In[r, d] · W[d, c]`, with the
/// loop nest reordered to `r, d, c` (i-k-j) and the row loop bound to
/// `blockIdx.x`. The innermost `c` loop is the VM's fused saxpy shape,
/// and the float-add order equals the hand-written `sgemm`'s.
pub fn proj_operator(name: &str, rows: usize, k: usize, n: usize) -> Operator {
    let input = TensorRef::new("In", RaggedLayout::dense(&[rows, k]));
    let w = TensorRef::new("W", RaggedLayout::dense(&[k, n]));
    let out = TensorRef::new("Out", RaggedLayout::dense(&[rows, n]));
    let (it, wt) = (input.clone(), w.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (r, c, d) = (args[0].clone(), args[1].clone(), args[2].clone());
        it.at(&[r, d.clone()]) * wt.at(&[d, c])
    });
    let mut op = Operator::new(
        name,
        vec![LoopSpec::fixed("r", rows), LoopSpec::fixed("c", n)],
        vec![LoopSpec::fixed("d", k)],
        out,
        vec![input, w],
        body,
    );
    op.schedule_mut()
        .reorder(&["r", "d", "c"])
        .bind("r", ForKind::GpuBlockX);
    op
}

/// Row-wise bias add, optionally with a residual:
/// `Out[r, c] = In[r, c] + B[c] (+ R[r, c])`.
pub fn bias_operator(name: &str, rows: usize, n: usize, residual: bool) -> Operator {
    let input = TensorRef::new("In", RaggedLayout::dense(&[rows, n]));
    let b = TensorRef::new("B", RaggedLayout::dense(&[n]));
    let r_in = TensorRef::new("R", RaggedLayout::dense(&[rows, n]));
    let out = TensorRef::new("Out", RaggedLayout::dense(&[rows, n]));
    let (it, bt, rt) = (input.clone(), b.clone(), r_in.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (r, c) = (args[0].clone(), args[1].clone());
        let v = it.at(&[r.clone(), c.clone()]) + bt.at(std::slice::from_ref(&c));
        if residual {
            v + rt.at(&[r, c])
        } else {
            v
        }
    });
    let mut inputs = vec![input, b];
    if residual {
        inputs.push(r_in);
    }
    let mut op = Operator::new(
        name,
        vec![LoopSpec::fixed("r", rows), LoopSpec::fixed("c", n)],
        vec![],
        out,
        inputs,
        body,
    );
    op.schedule_mut().bind("r", ForKind::GpuBlockX);
    op
}

/// Fused bias + tanh-GELU: `Out[r, c] = gelu(In[r, c] + B[c])`, with the
/// activation replicating [`cora_kernels::elementwise::gelu`]'s exact
/// operation order.
pub fn bias_gelu_operator(name: &str, rows: usize, n: usize) -> Operator {
    const C: f32 = 0.797_884_6; // sqrt(2/pi), as in the kernel
    let input = TensorRef::new("In", RaggedLayout::dense(&[rows, n]));
    let b = TensorRef::new("B", RaggedLayout::dense(&[n]));
    let out = TensorRef::new("Out", RaggedLayout::dense(&[rows, n]));
    let (it, bt) = (input.clone(), b.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (r, c) = (args[0].clone(), args[1].clone());
        let x = it.at(&[r, c.clone()]) + bt.at(&[c]);
        let cube = FExpr::constant(0.044715) * x.clone() * x.clone() * x.clone();
        let t = (FExpr::constant(C) * (x.clone() + cube)).unary(FUnaryOp::Tanh);
        FExpr::constant(0.5) * x * (FExpr::constant(1.0) + t)
    });
    let mut op = Operator::new(
        name,
        vec![LoopSpec::fixed("r", rows), LoopSpec::fixed("c", n)],
        vec![],
        out,
        vec![input, b],
        body,
    );
    op.schedule_mut().bind("r", ForKind::GpuBlockX);
    op
}

/// Layer-norm pass 1: `S[r] = Σ_d In[r, d]` (the row sum the reference
/// divides once).
pub fn ln_sum_operator(name: &str, rows: usize, n: usize) -> Operator {
    let input = TensorRef::new("In", RaggedLayout::dense(&[rows, n]));
    let out = TensorRef::new("S", RaggedLayout::dense(&[rows]));
    let it = input.clone();
    let body: BodyFn = Rc::new(move |args| it.at(&[args[0].clone(), args[1].clone()]));
    let mut op = Operator::new(
        name,
        vec![LoopSpec::fixed("r", rows)],
        vec![LoopSpec::fixed("d", n)],
        out,
        vec![input],
        body,
    );
    op.schedule_mut().bind("r", ForKind::GpuBlockX);
    op
}

/// Layer-norm pass 2: `V[r] = Σ_d (In[r, d] − S[r]/n)²` — the
/// reference's centred squared deviations (divided by `n` in pass 3).
pub fn ln_var_operator(name: &str, rows: usize, n: usize) -> Operator {
    let input = TensorRef::new("In", RaggedLayout::dense(&[rows, n]));
    let sum = TensorRef::new("S", RaggedLayout::dense(&[rows]));
    let out = TensorRef::new("V", RaggedLayout::dense(&[rows]));
    let (it, st) = (input.clone(), sum.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (r, d) = (args[0].clone(), args[1].clone());
        let mean = st.at(std::slice::from_ref(&r)) / n as f32;
        let dv = it.at(&[r, d]) - mean;
        dv.clone() * dv
    });
    let mut op = Operator::new(
        name,
        vec![LoopSpec::fixed("r", rows)],
        vec![LoopSpec::fixed("d", n)],
        out,
        vec![input, sum],
        body,
    );
    op.schedule_mut().bind("r", ForKind::GpuBlockX);
    op
}

/// Layer-norm pass 3:
/// `Out[r, d] = (In[r, d] − S[r]/n) · rsqrt(V[r]/n + ε) · G[d] + B[d]`,
/// operation-for-operation the reference `layernorm_row`.
pub fn ln_norm_operator(name: &str, rows: usize, n: usize) -> Operator {
    let input = TensorRef::new("In", RaggedLayout::dense(&[rows, n]));
    let sum = TensorRef::new("S", RaggedLayout::dense(&[rows]));
    let var = TensorRef::new("V", RaggedLayout::dense(&[rows]));
    let g = TensorRef::new("G", RaggedLayout::dense(&[n]));
    let beta = TensorRef::new("Bt", RaggedLayout::dense(&[n]));
    let out = TensorRef::new("Out", RaggedLayout::dense(&[rows, n]));
    let (it, st, vt, gt, bt) = (
        input.clone(),
        sum.clone(),
        var.clone(),
        g.clone(),
        beta.clone(),
    );
    let body: BodyFn = Rc::new(move |args| {
        let (r, d) = (args[0].clone(), args[1].clone());
        let mean = st.at(std::slice::from_ref(&r)) / n as f32;
        let inv = (vt.at(std::slice::from_ref(&r)) / n as f32 + LN_EPS)
            .sqrt()
            .unary(FUnaryOp::Recip);
        (it.at(&[r, d.clone()]) - mean) * inv * gt.at(std::slice::from_ref(&d)) + bt.at(&[d])
    });
    let mut op = Operator::new(
        name,
        vec![LoopSpec::fixed("r", rows), LoopSpec::fixed("d", n)],
        vec![],
        out,
        vec![input, sum, var, g, beta],
        body,
    );
    op.schedule_mut().bind("r", ForKind::GpuBlockX);
    op
}

/// Per-`(head, row)` attention geometry over the flattened `hr` axis.
struct HeadRows {
    /// `hr` count: `heads · Σ lens`.
    total: usize,
    /// Keys attended by each `hr` (the row's sequence length).
    attend: Vec<usize>,
    /// Packed-QKV offset of `hr`'s Q panel: `r·3h + head·hd`.
    q0: Vec<usize>,
    /// Packed-QKV offset of `hr`'s K panel: `row0(r)·3h + h + head·hd`.
    k0: Vec<usize>,
    /// Packed-QKV offset of `hr`'s V panel: `row0(r)·3h + 2h + head·hd`.
    v0: Vec<usize>,
}

fn head_rows(cfg: &EncoderConfig, lens: &[usize]) -> HeadRows {
    let rows: usize = lens.iter().sum();
    let (h, hd) = (cfg.hidden, cfg.head_dim);
    let row0 = seq_row0_table(lens);
    let seq_len: Vec<usize> = lens
        .iter()
        .flat_map(|&l| std::iter::repeat(l).take(l))
        .collect();
    let mut g = HeadRows {
        total: cfg.heads * rows,
        attend: Vec::with_capacity(cfg.heads * rows),
        q0: Vec::with_capacity(cfg.heads * rows),
        k0: Vec::with_capacity(cfg.heads * rows),
        v0: Vec::with_capacity(cfg.heads * rows),
    };
    for head in 0..cfg.heads {
        for r in 0..rows {
            g.attend.push(seq_len[r]);
            g.q0.push(r * 3 * h + head * hd);
            g.k0.push(row0[r] * 3 * h + h + head * hd);
            g.v0.push(row0[r] * 3 * h + 2 * h + head * hd);
        }
    }
    g
}

/// Bidirectional score GEMM over the flattened `(head, row)` axis:
/// `S[hr, j] = Σ_d QKV[q0[hr] + d] · QKV[k0[hr] + j·3h + d]`, `j` over
/// the row's whole sequence. Unscaled — the `1/√d` factor is a separate
/// stage, as in the reference (GEMM, then row scaling, then softmax).
pub fn enc_scores_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let rows: usize = lens.iter().sum();
    let ld = 3 * cfg.hidden as i64;
    let qkv = TensorRef::new("QKV", RaggedLayout::dense(&[rows * 3 * cfg.hidden]));
    let s = TensorRef::new("S", row_ragged_layout(&g.attend, g.total));
    let qt = qkv.clone();
    let body: BodyFn = Rc::new(move |args| {
        let (hr, j, d) = (args[0].clone(), args[1].clone(), args[2].clone());
        let q_idx = Expr::load("hr_q0", hr.clone()) + d.clone();
        let k_idx = Expr::load("hr_k0", hr) + j * ld + d;
        FExpr::load(qt.name().to_string(), q_idx) * FExpr::load(qt.name().to_string(), k_idx)
    });
    let mut op = Operator::new(
        "enc_scores",
        vec![
            LoopSpec::fixed("hr", g.total),
            LoopSpec::variable("j", 0, g.attend.clone()),
        ],
        vec![LoopSpec::fixed("d", cfg.head_dim)],
        s,
        vec![qkv],
        body,
    );
    op.add_aux_table("hr_q0", g.q0);
    op.add_aux_table("hr_k0", g.k0);
    op.schedule_mut()
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Score scaling: `Out[hr, j] = S[hr, j] · 1/√d` (the reference scales
/// score rows after the GEMM, before softmax).
pub fn score_scale_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let scale = 1.0 / (cfg.head_dim as f32).sqrt();
    let s = TensorRef::new("S", row_ragged_layout(&g.attend, g.total));
    let out = TensorRef::new("Out", row_ragged_layout(&g.attend, g.total));
    let st = s.clone();
    let body: BodyFn = Rc::new(move |args| st.at(args) * scale);
    let mut op = Operator::new(
        "score_scale",
        vec![
            LoopSpec::fixed("hr", g.total),
            LoopSpec::variable("j", 0, g.attend.clone()),
        ],
        vec![],
        out,
        vec![s],
        body,
    );
    op.schedule_mut()
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Softmax pass 1, a max-reduction: `M[hr] = max_j S[hr, j]` (init
/// `-∞`, combined with `max=` — [`Operator::reduce_max`]).
pub fn row_max_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let s = TensorRef::new("S", row_ragged_layout(&g.attend, g.total));
    let out = TensorRef::new("M", RaggedLayout::dense(&[g.total]));
    let st = s.clone();
    let body: BodyFn = Rc::new(move |args| st.at(args));
    let mut op = Operator::new(
        "row_max",
        vec![LoopSpec::fixed("hr", g.total)],
        vec![LoopSpec::variable("j", 0, g.attend.clone())],
        out,
        vec![s],
        body,
    );
    op.reduce_max();
    op.schedule_mut()
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Softmax pass 2, the stored exponentials:
/// `Ex[hr, j] = exp(S[hr, j] − M[hr])` — materialised once (the
/// reference also computes each exponential exactly once).
pub fn row_exp_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let s = TensorRef::new("S", row_ragged_layout(&g.attend, g.total));
    let m = TensorRef::new("M", RaggedLayout::dense(&[g.total]));
    let out = TensorRef::new("Ex", row_ragged_layout(&g.attend, g.total));
    let (st, mt) = (s.clone(), m.clone());
    let body: BodyFn = Rc::new(move |args| {
        let hr = args[0].clone();
        (st.at(args) - mt.at(std::slice::from_ref(&hr))).exp()
    });
    let mut op = Operator::new(
        "row_exp",
        vec![
            LoopSpec::fixed("hr", g.total),
            LoopSpec::variable("j", 0, g.attend.clone()),
        ],
        vec![],
        out,
        vec![s, m],
        body,
    );
    op.schedule_mut()
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Softmax pass 3, the row sums of the stored exponentials:
/// `E[hr] = Σ_j Ex[hr, j]` — summed in ascending `j`, like the
/// reference's accumulation.
pub fn row_sum_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let ex = TensorRef::new("Ex", row_ragged_layout(&g.attend, g.total));
    let out = TensorRef::new("E", RaggedLayout::dense(&[g.total]));
    let xt = ex.clone();
    let body: BodyFn = Rc::new(move |args| xt.at(args));
    let mut op = Operator::new(
        "row_sum",
        vec![LoopSpec::fixed("hr", g.total)],
        vec![LoopSpec::variable("j", 0, g.attend.clone())],
        out,
        vec![ex],
        body,
    );
    op.schedule_mut()
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Softmax pass 4: `P[hr, j] = Ex[hr, j] · (1/E[hr])` — the reference
/// multiplies the stored exponentials by the reciprocal sum.
pub fn row_softmax_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let ex = TensorRef::new("Ex", row_ragged_layout(&g.attend, g.total));
    let e = TensorRef::new("E", RaggedLayout::dense(&[g.total]));
    let out = TensorRef::new("P", row_ragged_layout(&g.attend, g.total));
    let (xt, et) = (ex.clone(), e.clone());
    let body: BodyFn = Rc::new(move |args| {
        let hr = args[0].clone();
        xt.at(args) * et.at(std::slice::from_ref(&hr)).unary(FUnaryOp::Recip)
    });
    let mut op = Operator::new(
        "row_softmax",
        vec![
            LoopSpec::fixed("hr", g.total),
            LoopSpec::variable("j", 0, g.attend.clone()),
        ],
        vec![],
        out,
        vec![ex, e],
        body,
    );
    op.schedule_mut()
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Attention-times-values over the flattened `(head, row)` axis:
/// `O[hr, e] = Σ_j P[hr, j] · QKV[v0[hr] + j·3h + e]`, reordered to
/// `hr, j, e` so the innermost loop is the fused saxpy shape (the
/// reference `sgemm_ld`'s i-k-j order).
pub fn enc_attnv_operator(cfg: &EncoderConfig, lens: &[usize]) -> Operator {
    let g = head_rows(cfg, lens);
    let rows: usize = lens.iter().sum();
    let ld = 3 * cfg.hidden as i64;
    let p = TensorRef::new("P", row_ragged_layout(&g.attend, g.total));
    let qkv = TensorRef::new("QKV", RaggedLayout::dense(&[rows * 3 * cfg.hidden]));
    let o = TensorRef::new("O", RaggedLayout::dense(&[g.total, cfg.head_dim]));
    let (pt, vt) = (p.clone(), qkv.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (hr, e, j) = (args[0].clone(), args[1].clone(), args[2].clone());
        let v_idx = Expr::load("hr_v0", hr.clone()) + j.clone() * ld + e;
        pt.at(&[hr, j]) * FExpr::load(vt.name().to_string(), v_idx)
    });
    let mut op = Operator::new(
        "enc_attnv",
        vec![
            LoopSpec::fixed("hr", g.total),
            LoopSpec::fixed("e", cfg.head_dim),
        ],
        vec![LoopSpec::variable("j", 0, g.attend.clone())],
        o,
        vec![p, qkv],
        body,
    );
    op.add_aux_table("hr_v0", g.v0);
    op.schedule_mut()
        .reorder(&["hr", "j", "e"])
        .bind("hr", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Head-merging output projection: reads the per-`(head, row)` attention
/// output `O` directly —
/// `Out[r, c] = Σ_head Σ_e O[(head·rows + r)·hd + e] · W[(head·hd + e)·h + c]`
/// — so no separate concat/merge stage exists. Reordered to
/// `r, head, e, c`: the reduction enumerates `k = head·hd + e` in
/// exactly the i-k-j order the reference `attn · Wo` GEMM uses.
pub fn merge_proj_operator(cfg: &EncoderConfig, rows: usize) -> Operator {
    let (h, hd, heads) = (cfg.hidden, cfg.head_dim, cfg.heads);
    let o_in = TensorRef::new("O", RaggedLayout::dense(&[heads * rows * hd]));
    let w = TensorRef::new("W", RaggedLayout::dense(&[h * h]));
    let out = TensorRef::new("Out", RaggedLayout::dense(&[rows, h]));
    let (ot, wt) = (o_in.clone(), w.clone());
    let (rows_i, hd_i, h_i) = (rows as i64, hd as i64, h as i64);
    let body: BodyFn = Rc::new(move |args| {
        let (r, c, head, e) = (
            args[0].clone(),
            args[1].clone(),
            args[2].clone(),
            args[3].clone(),
        );
        let o_idx = (head.clone() * rows_i + r) * hd_i + e.clone();
        let w_idx = (head * hd_i + e) * h_i + c;
        FExpr::load(ot.name().to_string(), o_idx) * FExpr::load(wt.name().to_string(), w_idx)
    });
    let mut op = Operator::new(
        "merge_proj",
        vec![LoopSpec::fixed("r", rows), LoopSpec::fixed("c", h)],
        vec![LoopSpec::fixed("head", heads), LoopSpec::fixed("e", hd)],
        out,
        vec![o_in, w],
        body,
    );
    op.schedule_mut()
        .reorder(&["r", "head", "e", "c"])
        .bind("r", ForKind::GpuBlockX);
    op
}

// ---------------------------------------------------------------------
// The layer
// ---------------------------------------------------------------------

/// The full encoder layer compiled for one batch shape: 21 stages wired
/// through a buffer-planned [`CompiledPipeline`]. Shape-keyed — build
/// once per `(cfg, lens)`, then create a session and run any number of
/// layers/batches of that shape through it (weights and activations are
/// per-call inputs; nothing is re-compiled or re-planned).
#[derive(Debug)]
pub struct CompiledEncoderLayer {
    /// `None` for an empty batch (zero total rows): forward returns an
    /// empty output without executing anything.
    pipeline: Option<CompiledPipeline>,
    cfg: EncoderConfig,
    lens: Vec<usize>,
    rows: usize,
    math: MathMode,
}

impl CompiledEncoderLayer {
    /// Lowers, compiles and wires every stage for the batch shape under
    /// [`MathMode::Strict`] semantics (bit-identical to the interpreter
    /// and, to within a few ULPs, the reference kernels).
    ///
    /// # Errors
    ///
    /// Returns the schedule error if lowering rejects a built-in
    /// schedule — a compiler regression by definition.
    pub fn build(
        cfg: &EncoderConfig,
        lens: &[usize],
    ) -> Result<CompiledEncoderLayer, ScheduleError> {
        Self::build_with_math(cfg, lens, MathMode::Strict)
    }

    /// [`CompiledEncoderLayer::build`] with an explicit [`MathMode`].
    ///
    /// The mode is threaded per stage: the reduction- and
    /// transcendental-heavy stages (projection/score/attention GEMMs,
    /// softmax max/exp/sum, GELU, layer-norm sums and variances) opt
    /// into the requested mode, while purely elementwise stages (bias
    /// adds, scaling, softmax normalise, layer-norm apply) always run
    /// Strict — Fast semantics change nothing for per-element maps, so
    /// opting them in would only blur the contract. Under
    /// [`MathMode::Fast`] the layer output drifts from the Strict run by
    /// at most the per-op tolerances documented in
    /// `cora_exec::microkernel`, compounded across stages; the
    /// differential suite bounds the end-to-end error.
    ///
    /// # Errors
    ///
    /// Returns the schedule error if lowering rejects a built-in
    /// schedule — a compiler regression by definition.
    pub fn build_with_math(
        cfg: &EncoderConfig,
        lens: &[usize],
        math: MathMode,
    ) -> Result<CompiledEncoderLayer, ScheduleError> {
        Self::build_with_choices(cfg, lens, math, &Default::default())
    }

    /// [`CompiledEncoderLayer::build_with_math`] with per-stage schedule
    /// overrides from the autotuner: each stage label present in
    /// `choices` has its [`StageChoice`] applied on top of the
    /// hand-picked schedule (a choice's `reorder` *replaces* the
    /// default order; its `split`/`remap` are layered after it). An
    /// empty map reproduces the default build exactly. Every choice the
    /// stage spaces in [`crate::autotune`] emit is value-preserving, so
    /// tuned layers stay bit-identical to default ones under
    /// [`MathMode::Strict`].
    ///
    /// # Errors
    ///
    /// Returns the schedule error if lowering rejects a directive — for
    /// cached choices this means the cache is stale and the caller
    /// should re-tune.
    pub fn build_with_choices(
        cfg: &EncoderConfig,
        lens: &[usize],
        math: MathMode,
        choices: &std::collections::BTreeMap<String, cora_core::autotune::StageChoice>,
    ) -> Result<CompiledEncoderLayer, ScheduleError> {
        cfg.validate().expect("consistent encoder config");
        let rows: usize = lens.iter().sum();
        if rows == 0 {
            return Ok(CompiledEncoderLayer {
                pipeline: None,
                cfg: *cfg,
                lens: lens.to_vec(),
                rows,
                math,
            });
        }
        let (h, ff) = (cfg.hidden, cfg.ff);
        // `c` compiles a stage that always runs Strict (elementwise
        // maps); `cf` compiles one that opts into the requested mode.
        // `tune` layers the autotuner's per-stage choice (if any) on the
        // hand-picked schedule before lowering.
        let tune = |mut op: Operator, label: &str| -> Operator {
            if let Some(choice) = choices.get(label) {
                crate::autotune::apply_choice(&mut op, choice);
            }
            op
        };
        let c = |label: &str, op: Operator| -> Result<CompiledProgram, ScheduleError> {
            Ok(lower(&tune(op, label))?.compile())
        };
        let cf = |label: &str, op: Operator| -> Result<CompiledProgram, ScheduleError> {
            Ok(lower(&tune(op, label))?.compile().with_math_mode(math))
        };
        let mut b = PipelineBuilder::new("encoder_layer");
        let ext = [
            ("X", rows * h),
            ("Wqkv", h * 3 * h),
            ("Bqkv", 3 * h),
            ("Wo", h * h),
            ("Bo", h),
            ("W1", h * ff),
            ("B1", ff),
            ("W2", ff * h),
            ("B2", h),
            ("Ln1G", h),
            ("Ln1B", h),
            ("Ln2G", h),
            ("Ln2B", h),
        ];
        for (name, size) in ext {
            b.input(name, size).expect("unique external names");
        }
        let wire = |b: &mut PipelineBuilder,
                    label: &str,
                    prog: CompiledProgram,
                    wires: &[(&str, &str)],
                    out: &str| {
            b.stage(label, prog, wires, out)
                .expect("encoder pipeline wiring is static");
        };
        // Attention block.
        wire(
            &mut b,
            "qkv_proj",
            cf("qkv_proj", proj_operator("qkv_proj", rows, h, 3 * h))?,
            &[("In", "X"), ("W", "Wqkv")],
            "QKV0",
        );
        wire(
            &mut b,
            "qkv_bias",
            c("qkv_bias", bias_operator("qkv_bias", rows, 3 * h, false))?,
            &[("In", "QKV0"), ("B", "Bqkv")],
            "QKV",
        );
        wire(
            &mut b,
            "scores",
            cf("scores", enc_scores_operator(cfg, lens))?,
            &[("QKV", "QKV")],
            "S0",
        );
        wire(
            &mut b,
            "scale",
            c("scale", score_scale_operator(cfg, lens))?,
            &[("S", "S0")],
            "S",
        );
        wire(
            &mut b,
            "row_max",
            cf("row_max", row_max_operator(cfg, lens))?,
            &[("S", "S")],
            "M",
        );
        wire(
            &mut b,
            "row_exp",
            cf("row_exp", row_exp_operator(cfg, lens))?,
            &[("S", "S"), ("M", "M")],
            "EX",
        );
        wire(
            &mut b,
            "row_sum",
            cf("row_sum", row_sum_operator(cfg, lens))?,
            &[("Ex", "EX")],
            "E",
        );
        wire(
            &mut b,
            "row_softmax",
            c("row_softmax", row_softmax_operator(cfg, lens))?,
            &[("Ex", "EX"), ("E", "E")],
            "P",
        );
        wire(
            &mut b,
            "attnv",
            cf("attnv", enc_attnv_operator(cfg, lens))?,
            &[("P", "P"), ("QKV", "QKV")],
            "O",
        );
        wire(
            &mut b,
            "out_proj",
            cf("out_proj", merge_proj_operator(cfg, rows))?,
            &[("O", "O"), ("W", "Wo")],
            "AO",
        );
        wire(
            &mut b,
            "attn_bias_residual",
            c(
                "attn_bias_residual",
                bias_operator("attn_bias_residual", rows, h, true),
            )?,
            &[("In", "AO"), ("B", "Bo"), ("R", "X")],
            "Y1",
        );
        // First layer norm.
        wire(
            &mut b,
            "ln1_sum",
            cf("ln1_sum", ln_sum_operator("ln1_sum", rows, h))?,
            &[("In", "Y1")],
            "S1",
        );
        wire(
            &mut b,
            "ln1_var",
            cf("ln1_var", ln_var_operator("ln1_var", rows, h))?,
            &[("In", "Y1"), ("S", "S1")],
            "V1",
        );
        wire(
            &mut b,
            "ln1_norm",
            c("ln1_norm", ln_norm_operator("ln1_norm", rows, h))?,
            &[
                ("In", "Y1"),
                ("S", "S1"),
                ("V", "V1"),
                ("G", "Ln1G"),
                ("Bt", "Ln1B"),
            ],
            "Z1",
        );
        // Feed-forward block.
        wire(
            &mut b,
            "ff1",
            cf("ff1", proj_operator("ff1", rows, h, ff))?,
            &[("In", "Z1"), ("W", "W1")],
            "F0",
        );
        wire(
            &mut b,
            "ff1_bias_gelu",
            cf(
                "ff1_bias_gelu",
                bias_gelu_operator("ff1_bias_gelu", rows, ff),
            )?,
            &[("In", "F0"), ("B", "B1")],
            "F",
        );
        wire(
            &mut b,
            "ff2",
            cf("ff2", proj_operator("ff2", rows, ff, h))?,
            &[("In", "F"), ("W", "W2")],
            "G0",
        );
        wire(
            &mut b,
            "ff_bias_residual",
            c(
                "ff_bias_residual",
                bias_operator("ff_bias_residual", rows, h, true),
            )?,
            &[("In", "G0"), ("B", "B2"), ("R", "Z1")],
            "Y2",
        );
        // Second layer norm.
        wire(
            &mut b,
            "ln2_sum",
            cf("ln2_sum", ln_sum_operator("ln2_sum", rows, h))?,
            &[("In", "Y2")],
            "S2",
        );
        wire(
            &mut b,
            "ln2_var",
            cf("ln2_var", ln_var_operator("ln2_var", rows, h))?,
            &[("In", "Y2"), ("S", "S2")],
            "V2",
        );
        wire(
            &mut b,
            "ln2_norm",
            c("ln2_norm", ln_norm_operator("ln2_norm", rows, h))?,
            &[
                ("In", "Y2"),
                ("S", "S2"),
                ("V", "V2"),
                ("G", "Ln2G"),
                ("Bt", "Ln2B"),
            ],
            "OUT",
        );
        let pipeline = b.build("OUT").expect("OUT is produced by ln2_norm");
        Ok(CompiledEncoderLayer {
            pipeline: Some(pipeline),
            cfg: *cfg,
            lens: lens.to_vec(),
            rows,
            math,
        })
    }

    /// The wired pipeline (buffer plan, stage labels), when the batch is
    /// non-empty.
    pub fn pipeline(&self) -> Option<&CompiledPipeline> {
        self.pipeline.as_ref()
    }

    /// The [`MathMode`] the compute-heavy stages were compiled under.
    pub fn math_mode(&self) -> MathMode {
        self.math
    }

    /// Total flattened rows of the batch shape.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Prepares a reusable session: per stage, prelude built and bound,
    /// dispatch order resolved, arena allocated — once per shape. Reuse
    /// the session across layers and repeated calls.
    ///
    /// # Errors
    ///
    /// Returns the outline error if a stage's block axis cannot be
    /// hoisted — a compiler regression by definition.
    pub fn session(&self) -> Result<EncoderSession<'_>, ScheduleError> {
        let inner = match &self.pipeline {
            Some(p) => Some(p.session()?),
            None => None,
        };
        Ok(EncoderSession { layer: self, inner })
    }

    /// Computes the owned prep work of a session — per-stage preludes,
    /// safety proofs, dispatch orders and the arena — without borrowing
    /// the layer. Store the [`EncoderPrep`] beside the layer (e.g. in a
    /// serving session pool) and mint sessions per request with
    /// [`CompiledEncoderLayer::session_with`]: arena and preludes are
    /// then literally reused across requests and nothing expensive is
    /// recomputed.
    ///
    /// # Errors
    ///
    /// As for [`CompiledEncoderLayer::session`].
    pub fn prepare(&self) -> Result<EncoderPrep, ScheduleError> {
        Ok(EncoderPrep {
            inner: match &self.pipeline {
                Some(p) => Some(p.prepare()?),
                None => None,
            },
        })
    }

    /// Mints a session from a previously computed [`EncoderPrep`]
    /// (which **must** come from this layer's own
    /// [`CompiledEncoderLayer::prepare`]): no proofs re-run, no arena
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the prep was built for a layer of a different stage
    /// structure.
    pub fn session_with<'p>(&'p self, prep: &'p mut EncoderPrep) -> EncoderSession<'p> {
        let inner = match (&self.pipeline, &mut prep.inner) {
            (Some(p), Some(pr)) => Some(p.session_with(pr)),
            (None, _) => None,
            (Some(_), None) => panic!("prep was built for an empty batch; layer is not"),
        };
        EncoderSession { layer: self, inner }
    }

    /// One-shot convenience: build a session and run once on `pool`.
    /// Multi-layer callers should hold a session instead.
    ///
    /// # Panics
    ///
    /// Panics if the built-in schedules fail to lower or outline, or if
    /// `x` does not match the layer's batch shape.
    pub fn forward(&self, pool: &CpuPool, w: &EncoderWeights, x: &RaggedBatch) -> Vec<f32> {
        self.session()
            .expect("built-in schedules outline")
            .forward(pool, w, x)
    }
}

/// The owned prep work of one [`CompiledEncoderLayer`] session:
/// everything [`CompiledEncoderLayer::prepare`] resolves, borrowing
/// nothing from the layer — storable beside it in caches and pools.
/// `None` inner prep corresponds to an empty batch (no pipeline).
#[derive(Debug, Clone)]
pub struct EncoderPrep {
    inner: Option<cora_core::pipeline::PipelinePrep>,
}

/// A prepared execution of one [`CompiledEncoderLayer`]: everything
/// shape-dependent resolved once; each call binds only the weights and
/// activations. One session serves every layer of a model (same shape,
/// different weights) with zero per-call compilation and zero per-op
/// intermediate allocation.
#[derive(Debug)]
pub struct EncoderSession<'p> {
    layer: &'p CompiledEncoderLayer,
    inner: Option<PipelineSession<'p>>,
}

impl EncoderSession<'_> {
    fn inputs<'a>(
        &self,
        w: &'a EncoderWeights,
        x: &'a RaggedBatch,
    ) -> Vec<(&'static str, &'a [f32])> {
        assert_eq!(
            x.lens, self.layer.lens,
            "batch shape differs from the compiled shape"
        );
        assert_eq!(x.hidden, self.layer.cfg.hidden, "hidden size mismatch");
        vec![
            ("X", &x.data[..]),
            ("Wqkv", &w.wqkv[..]),
            ("Bqkv", &w.bqkv[..]),
            ("Wo", &w.wo[..]),
            ("Bo", &w.bo[..]),
            ("W1", &w.w1[..]),
            ("B1", &w.b1[..]),
            ("W2", &w.w2[..]),
            ("B2", &w.b2[..]),
            ("Ln1G", &w.ln1_g[..]),
            ("Ln1B", &w.ln1_b[..]),
            ("Ln2G", &w.ln2_g[..]),
            ("Ln2B", &w.ln2_b[..]),
        ]
    }

    /// Runs the layer with every stage's block axis dispatched across
    /// `pool`; returns the `Σ lens × hidden` output rows. Bit-identical
    /// to [`EncoderSession::forward_serial`].
    ///
    /// # Panics
    ///
    /// Panics if `w`/`x` do not match the compiled shape.
    pub fn forward(&mut self, pool: &CpuPool, w: &EncoderWeights, x: &RaggedBatch) -> Vec<f32> {
        self.run(Some(pool), w, x).output
    }

    /// Runs the layer on the calling thread; returns the output rows.
    ///
    /// # Panics
    ///
    /// Panics if `w`/`x` do not match the compiled shape.
    pub fn forward_serial(&mut self, w: &EncoderWeights, x: &RaggedBatch) -> Vec<f32> {
        self.run(None, w, x).output
    }

    /// Full run with per-stage statistics (`pool = None` runs serially).
    ///
    /// # Panics
    ///
    /// Panics if `w`/`x` do not match the compiled shape.
    pub fn run(
        &mut self,
        pool: Option<&CpuPool>,
        w: &EncoderWeights,
        x: &RaggedBatch,
    ) -> PipelineRun {
        let inputs = self.inputs(w, x);
        match (&mut self.inner, pool) {
            (None, _) => PipelineRun {
                output: Vec::new(),
                stages: Vec::new(),
            },
            (Some(s), Some(pool)) => s.run(pool, &inputs),
            (Some(s), None) => s.run_serial(&inputs),
        }
    }

    /// Per-stage safety proofs, in stage order: each parallel stage's
    /// [`cora_core::verify::VerifyOutcome`] (in-bounds and
    /// disjoint-store, verified at this layer's shape), `None` for
    /// serial stages. Empty for an empty batch (no pipeline is built).
    pub fn verify_outcomes(&self) -> Vec<(&str, Option<&cora_core::verify::VerifyOutcome>)> {
        self.inner
            .as_ref()
            .map(|s| s.verify_outcomes())
            .unwrap_or_default()
    }
}

/// One-shot convenience mirroring [`crate::encoder::encoder_layer_ragged`]:
/// compiles the layer for `x`'s shape and runs it once on `pool`.
/// Repeated / multi-layer callers should [`CompiledEncoderLayer::build`]
/// once per shape and reuse a session.
///
/// # Panics
///
/// Panics if lowering or outlining rejects a built-in schedule — a
/// compiler regression by definition.
pub fn encoder_layer_compiled(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
) -> RaggedBatch {
    let layer = CompiledEncoderLayer::build(cfg, &x.lens).expect("built-in schedules are legal");
    RaggedBatch {
        lens: x.lens.clone(),
        data: layer.forward(pool, w, x),
        hidden: cfg.hidden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encoder_layer_ragged;

    #[test]
    fn compiled_layer_matches_reference_kernels() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 7);
        let lens = vec![5usize, 0, 3, 1];
        let x = RaggedBatch::random(&lens, cfg.hidden, 8);
        let pool = CpuPool::new(4);
        let reference = encoder_layer_ragged(&pool, &cfg, &w, &x);
        let layer = CompiledEncoderLayer::build(&cfg, &lens).unwrap();
        let mut session = layer.session().unwrap();
        let compiled = session.forward(&pool, &w, &x);
        assert_eq!(reference.data.len(), compiled.len());
        let worst = reference
            .data
            .iter()
            .zip(&compiled)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-4, "compiled encoder layer diverges by {worst}");
        // Session reuse across "layers": same shape, same result.
        let again = session.forward(&pool, &w, &x);
        assert_eq!(again, compiled);
        // Serial pipeline is bit-identical to the parallel one.
        let serial = session.forward_serial(&w, &x);
        assert_eq!(serial, compiled);
    }

    #[test]
    fn empty_batch_returns_empty_output() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 1);
        let lens = vec![0usize, 0];
        let x = RaggedBatch::random(&lens, cfg.hidden, 2);
        let layer = CompiledEncoderLayer::build(&cfg, &lens).unwrap();
        assert!(layer.pipeline().is_none());
        let out = layer.forward(&CpuPool::new(2), &w, &x);
        assert!(out.is_empty());
    }

    #[test]
    fn buffer_plan_reuses_slots() {
        let cfg = EncoderConfig::scaled(8);
        let lens = vec![4usize, 2];
        let layer = CompiledEncoderLayer::build(&cfg, &lens).unwrap();
        let plan = layer.pipeline().unwrap().plan();
        assert!(
            plan.slot_count() < plan.entries().len(),
            "21 stages must share fewer arena slots ({} slots for {} buffers)",
            plan.slot_count(),
            plan.entries().len()
        );
        assert!(plan.arena_elems() < plan.unshared_elems());
    }
}
