//! Shape-bucketed autotuning for the compiled encoder layer: the
//! concrete schedule spaces for every tunable pipeline stage, the
//! stage-level micro-benchmark measurers, and [`EncoderAutotuner`] —
//! the session-facing driver that self-tunes on first contact with a
//! shape bucket and reuses the cached winner thereafter.
//!
//! The generic machinery (bucket keys, candidate enumeration, the
//! seeded search driver, the versioned cache) lives in
//! [`cora_core::autotune`]; this module binds it to the encoder:
//!
//! * [`encoder_stage_spaces`] declares, per stage, the candidate
//!   [`StageChoice`]s — loop reorders, divisible tiling splits, and
//!   block-axis remap policies. Every candidate is **value-preserving**:
//!   each output element's reduction still accumulates in ascending
//!   reduction-index order, so tuned layers are bit-identical to the
//!   default under [`MathMode::Strict`] (locked by
//!   `tests/autotune_props.rs`).
//! * [`EncoderAutotuner::tuned_layer`] runs the search: per-stage
//!   micro-benchmarks of the compiled VM (wall-clock by default, or a
//!   deterministic [`proxy_score`] of the interpreter-identical run
//!   statistics in `deterministic` mode), then an end-to-end
//!   tuned-vs-default comparison that **falls back to the hand-picked
//!   schedule** whenever the assembled winner does not beat it — tuning
//!   can never ship a slower-than-default program.
//!
//! Environment knobs (read by [`EncoderAutotuner::from_env`]):
//!
//! | Variable | Effect |
//! |---|---|
//! | `CORA_TUNE_CACHE` | Path of the persistent JSON tuning cache. |
//! | `CORA_TUNE_SEED` | Search seed (default 42). |
//! | `CORA_TUNE_TRIALS` | Total measured candidates per tuning run. |
//! | `CORA_TUNE_MAX_MS` | Wall-clock cap (ignored in deterministic mode). |
//! | `CORA_TUNE_DETERMINISTIC` | `1`/`true`: proxy-score measurement, byte-reproducible cache files. |
//! | `CORA_TUNE_DISABLE` | `1`/`true`: always use the hand-picked schedules. |

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use cora_core::autotune::{
    synthetic_data, Autotuner, BucketKey, CacheEntry, CacheLoad, StageChoice, StageSpace,
    TuneBudget, TuningCache,
};
use cora_core::prelude::*;
use cora_exec::{proxy_score, KernelTraits};

use crate::config::EncoderConfig;
use crate::encoder::RaggedBatch;
use crate::encoder_compiled::{
    bias_gelu_operator, enc_attnv_operator, enc_scores_operator, merge_proj_operator,
    proj_operator, row_exp_operator, row_max_operator, row_softmax_operator, row_sum_operator,
    score_scale_operator, CompiledEncoderLayer,
};
use crate::weights::EncoderWeights;

/// Applies one autotuner choice on top of an operator's hand-picked
/// schedule: the `reorder` (if any) replaces the default loop order
/// (a later full-permutation reorder overrides an earlier one), then
/// the `split` and `remap` are layered after it.
pub fn apply_choice(op: &mut Operator, choice: &StageChoice) {
    if let Some(order) = &choice.reorder {
        let names: Vec<&str> = order.iter().map(String::as_str).collect();
        op.schedule_mut().reorder(&names);
    }
    if let Some((name, factor)) = &choice.split {
        op.schedule_mut().split(name.clone(), *factor);
    }
    if let Some(remap) = choice.remap {
        op.schedule_mut().thread_remap(remap);
    }
}

/// The encoder's shape-bucket key: the model/math descriptor plus the
/// batch's length-histogram class (see
/// [`cora_core::autotune::length_class`]).
pub fn bucket_key(cfg: &EncoderConfig, math: MathMode, lens: &[usize]) -> BucketKey {
    let mode = match math {
        MathMode::Strict => "strict",
        MathMode::Fast => "fast",
    };
    BucketKey::new(
        format!("enc_h{}_hd{}_ff{}_{mode}", cfg.hidden, cfg.head_dim, cfg.ff),
        lens,
    )
}

/// Largest of {8, 4} dividing `n`, if any — candidate tiling factors
/// are restricted to divisors so splits never introduce tail guards
/// (and stay value-preserving for reduction loops).
fn tile_factor(n: usize) -> Option<usize> {
    [8usize, 4].into_iter().find(|f| n % f == 0)
}

/// The per-stage schedule spaces of the compiled encoder layer.
/// Candidate 0 of every space is the hand-picked default. All
/// candidates preserve each output element's reduction accumulation
/// order, so every schedule this enumerator can emit is bit-identical
/// to the default under [`MathMode::Strict`].
pub fn encoder_stage_spaces(cfg: &EncoderConfig) -> Vec<StageSpace> {
    let (h, ff) = (cfg.hidden, cfg.ff);
    let d = StageChoice::default_choice;
    let mut spaces = Vec::new();

    // Projection GEMMs (default i-k-j): alternate i-j-k order, column
    // tiling, and reduction tiling. Splitting `d` into `d_o, d_i` still
    // enumerates the reduction in ascending `d` per output element.
    for (stage, k, n) in [("qkv_proj", h, 3 * h), ("ff1", h, ff), ("ff2", ff, h)] {
        let mut c = vec![d(), d().with_reorder(&["r", "c", "d"])];
        if let Some(f) = tile_factor(n) {
            c.push(d().with_split("c", f));
        }
        if let Some(f) = tile_factor(k) {
            c.push(d().with_reorder(&["r", "c", "d"]).with_split("d", f));
        }
        spaces.push(StageSpace::new(stage, c));
    }

    // Head-merging output projection (default r, head, e, c): any order
    // keeping (head, e) lexicographically ascending per element is
    // bit-identical.
    let mut c = vec![
        d(),
        d().with_reorder(&["r", "c", "head", "e"]),
        d().with_reorder(&["r", "head", "c", "e"]),
    ];
    if let Some(f) = tile_factor(h) {
        c.push(d().with_split("c", f));
    }
    spaces.push(StageSpace::new("out_proj", c));

    // Attention score GEMM: the `d` reduction can move inside-out, and
    // the ragged block axis can dispatch under any remap policy.
    spaces.push(StageSpace::new(
        "scores",
        vec![
            d(),
            d().with_reorder(&["hr", "d", "j"]),
            d().with_remap(RemapPolicy::Identity),
            d().with_remap(RemapPolicy::Reversed),
        ],
    ));

    // Attention × values (default hr, j, e): saxpy vs dot inner shape.
    spaces.push(StageSpace::new(
        "attnv",
        vec![
            d(),
            d().with_reorder(&["hr", "e", "j"]),
            d().with_remap(RemapPolicy::Identity),
            d().with_remap(RemapPolicy::Reversed),
        ],
    ));

    // Ragged row sweeps: dispatch-order-only spaces (numerically the
    // remap changes nothing; it only reorders block execution).
    for stage in ["scale", "row_max", "row_exp", "row_sum", "row_softmax"] {
        spaces.push(StageSpace::new(
            stage,
            vec![
                d(),
                d().with_remap(RemapPolicy::Identity),
                d().with_remap(RemapPolicy::Reversed),
            ],
        ));
    }

    // Dense GELU sweep: remap-only (rows are uniform, so this probes
    // dispatch overhead, not balance).
    spaces.push(StageSpace::new(
        "ff1_bias_gelu",
        vec![
            d(),
            d().with_remap(RemapPolicy::LongestFirst),
            d().with_remap(RemapPolicy::Reversed),
        ],
    ));

    spaces
}

/// Builds the standalone operator of a tunable stage for one batch
/// shape — the unit the per-stage micro-benchmarks compile and run.
/// Returns `None` for stage labels this enumerator does not tune.
pub fn stage_operator(stage: &str, cfg: &EncoderConfig, lens: &[usize]) -> Option<Operator> {
    let rows: usize = lens.iter().sum();
    let (h, ff) = (cfg.hidden, cfg.ff);
    Some(match stage {
        "qkv_proj" => proj_operator("qkv_proj", rows, h, 3 * h),
        "ff1" => proj_operator("ff1", rows, h, ff),
        "ff2" => proj_operator("ff2", rows, ff, h),
        "out_proj" => merge_proj_operator(cfg, rows),
        "scores" => enc_scores_operator(cfg, lens),
        "scale" => score_scale_operator(cfg, lens),
        "row_max" => row_max_operator(cfg, lens),
        "row_exp" => row_exp_operator(cfg, lens),
        "row_sum" => row_sum_operator(cfg, lens),
        "row_softmax" => row_softmax_operator(cfg, lens),
        "attnv" => enc_attnv_operator(cfg, lens),
        "ff1_bias_gelu" => bias_gelu_operator("ff1_bias_gelu", rows, ff),
        _ => return None,
    })
}

/// Analytic pruning estimate for one candidate (arbitrary units,
/// deterministic): the operator's iteration count priced by
/// [`KernelTraits`] — indirect-access cost for aux-table operators, a
/// small loop-overhead charge for tiling splits.
fn estimate_choice(op: &Operator, choice: &StageChoice) -> f64 {
    let mut traits = KernelTraits::generated();
    if !op.aux_tables.is_empty() {
        traits = traits.with_hoisted_indirect();
    }
    let mut mult = traits.cost_multiplier();
    if choice.split.is_some() {
        mult *= 1.05;
    }
    op.iteration_count() as f64 * mult
}

/// What one [`EncoderAutotuner::tuned_layer`] call did.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The batch's shape bucket.
    pub bucket: BucketKey,
    /// True when the bucket was served from the cache (zero trials).
    pub cache_hit: bool,
    /// Candidates measured (search trials) this call.
    pub trials: usize,
    /// Candidates skipped by cost-model pruning.
    pub pruned: usize,
    /// Wall-clock spent in this call, milliseconds.
    pub tuning_ms: f64,
    /// Non-default winning choices per stage (empty = pure default).
    pub chosen: BTreeMap<String, StageChoice>,
    /// True when the end-to-end comparison rejected the assembled
    /// winner and the hand-picked default shipped instead.
    pub fell_back: bool,
    /// End-to-end score of the default schedule (lower is better; ns in
    /// wall-clock mode, proxy units in deterministic mode). Zero for
    /// cache hits and disabled runs, which measure nothing.
    pub default_score: f64,
    /// End-to-end score of the shipped schedule.
    pub tuned_score: f64,
    /// Log-and-retune diagnostics (stale/corrupt cache), if any.
    pub cache_note: Option<String>,
}

/// The session-facing autotuner: owns the [`TuningCache`], keys batches
/// into shape buckets, searches on first contact and reuses winners
/// thereafter.
///
/// ```no_run
/// use cora_transformer::autotune::EncoderAutotuner;
/// use cora_transformer::EncoderConfig;
/// use cora_exec::MathMode;
///
/// let cfg = EncoderConfig::scaled(64);
/// let mut tuner = EncoderAutotuner::from_env();
/// // First contact with this length histogram: searches, caches.
/// let (layer, out) = tuner.tuned_layer(&cfg, &[18, 5, 33], MathMode::Strict).unwrap();
/// assert!(!out.cache_hit);
/// let mut session = layer.session().unwrap();
/// // Same bucket, different exact lengths: served from the cache.
/// let (_, again) = tuner.tuned_layer(&cfg, &[17, 5, 40], MathMode::Strict).unwrap();
/// assert!(again.cache_hit && again.trials == 0);
/// # let _ = &mut session;
/// ```
#[derive(Debug)]
pub struct EncoderAutotuner {
    /// Trial/time caps for one tuning run (the trial cap is shared
    /// across all stages of the layer).
    pub budget: TuneBudget,
    /// Seed for the candidate visit order and the synthetic
    /// measurement data.
    pub seed: u64,
    /// Measure with the deterministic proxy score instead of
    /// wall-clock: same seed ⇒ byte-identical cache files. Implies the
    /// time cap is ignored (it could truncate two identical runs
    /// differently).
    pub deterministic: bool,
    /// Skip search entirely and always build the hand-picked default.
    pub disabled: bool,
    cache: TuningCache,
    cache_path: Option<PathBuf>,
    load_note: Option<String>,
}

impl EncoderAutotuner {
    /// A tuner with no cache file (in-memory only).
    pub fn new(budget: TuneBudget, seed: u64) -> EncoderAutotuner {
        EncoderAutotuner {
            budget,
            seed,
            deterministic: false,
            disabled: false,
            cache: TuningCache::new(),
            cache_path: None,
            load_note: None,
        }
    }

    /// Switches to deterministic proxy-score measurement.
    pub fn deterministic(mut self, on: bool) -> EncoderAutotuner {
        self.deterministic = on;
        self
    }

    /// Attaches a persistent cache file, loading it robustly: a missing
    /// file starts empty; an unknown schema version or malformed
    /// contents also start empty, with the reason recorded (surfaced in
    /// the next [`TuneOutcome::cache_note`]) — never a panic, never a
    /// silently applied stale schedule.
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> EncoderAutotuner {
        let path = path.into();
        let (cache, status) = TuningCache::load(&path);
        self.load_note = match &status {
            CacheLoad::Loaded(_) | CacheLoad::Missing => None,
            CacheLoad::UnknownVersion(v) => Some(format!("ignoring tuning cache: {v}; re-tuning")),
            CacheLoad::Malformed(m) => Some(format!("ignoring tuning cache: {m}; re-tuning")),
        };
        self.cache = cache;
        self.cache_path = Some(path);
        self
    }

    /// Builds a tuner from the `CORA_TUNE_*` environment knobs (see the
    /// module docs for the table).
    pub fn from_env() -> EncoderAutotuner {
        let flag = |name: &str| {
            std::env::var(name)
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false)
        };
        let mut t = EncoderAutotuner::new(TuneBudget::default(), 42);
        if let Some(seed) = std::env::var("CORA_TUNE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            t.seed = seed;
        }
        if let Some(trials) = std::env::var("CORA_TUNE_TRIALS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            t.budget.max_trials = trials;
        }
        if let Some(ms) = std::env::var("CORA_TUNE_MAX_MS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            t.budget.max_ms = Some(ms);
        }
        t.deterministic = flag("CORA_TUNE_DETERMINISTIC");
        t.disabled = flag("CORA_TUNE_DISABLE");
        if let Ok(path) = std::env::var("CORA_TUNE_CACHE") {
            t = t.with_cache_path(path);
        }
        t
    }

    /// The in-memory cache (loaded + tuned entries).
    pub fn cache(&self) -> &TuningCache {
        &self.cache
    }

    /// Builds a compiled layer for the batch shape, self-tuning on
    /// first contact with its shape bucket:
    ///
    /// 1. cache hit → rebuild from the cached choices, zero trials
    ///    (a stale entry that no longer builds is discarded and
    ///    re-tuned, with the reason in [`TuneOutcome::cache_note`]);
    /// 2. otherwise search every stage space under the budget, assemble
    ///    the per-stage winners, and compare end-to-end against the
    ///    hand-picked default — **falling back to the default if the
    ///    assembled winner is not at least as good** — then persist the
    ///    bucket's entry.
    ///
    /// # Errors
    ///
    /// Returns the schedule error only if the *default* schedule fails
    /// to build — a compiler regression by definition. Candidate or
    /// cached-choice failures are handled by disqualification/re-tune.
    pub fn tuned_layer(
        &mut self,
        cfg: &EncoderConfig,
        lens: &[usize],
        math: MathMode,
    ) -> Result<(CompiledEncoderLayer, TuneOutcome), ScheduleError> {
        let t0 = Instant::now();
        let bucket = bucket_key(cfg, math, lens);
        let mut outcome = TuneOutcome {
            bucket: bucket.clone(),
            cache_hit: false,
            trials: 0,
            pruned: 0,
            tuning_ms: 0.0,
            chosen: BTreeMap::new(),
            fell_back: false,
            default_score: 0.0,
            tuned_score: 0.0,
            cache_note: self.load_note.take(),
        };
        let rows: usize = lens.iter().sum();

        if self.disabled || rows == 0 {
            let layer = CompiledEncoderLayer::build_with_math(cfg, lens, math)?;
            outcome.tuning_ms = t0.elapsed().as_secs_f64() * 1e3;
            return Ok((layer, outcome));
        }

        // Cache hit: rebuild the cached winner; a stale entry (e.g.
        // stage spaces changed since it was written) is discarded.
        if let Some(entry) = self.cache.get(&bucket) {
            match CompiledEncoderLayer::build_with_choices(cfg, lens, math, &entry.stages) {
                Ok(layer) => {
                    outcome.cache_hit = true;
                    outcome.chosen = entry.stages.clone();
                    outcome.tuning_ms = t0.elapsed().as_secs_f64() * 1e3;
                    return Ok((layer, outcome));
                }
                Err(e) => {
                    outcome.cache_note = Some(format!("stale cache entry ({e}); re-tuning"));
                }
            }
        }

        // Search. The trial budget is shared across stages; the time
        // cap (wall-clock mode only) counts from this call's start.
        let deadline = (!self.deterministic)
            .then_some(self.budget.max_ms)
            .flatten();
        for space in encoder_stage_spaces(cfg) {
            if outcome.trials >= self.budget.max_trials {
                break;
            }
            if let Some(max_ms) = deadline {
                if t0.elapsed().as_secs_f64() * 1e3 > max_ms {
                    break;
                }
            }
            let Some(op0) = stage_operator(space.stage(), cfg, lens) else {
                continue;
            };
            let stage_budget = TuneBudget {
                max_trials: self.budget.max_trials - outcome.trials,
                max_ms: deadline.map(|ms| ms - t0.elapsed().as_secs_f64() * 1e3),
            };
            let tuner = Autotuner::new(stage_budget, self.seed);
            let result = tuner.tune_stage(
                &space,
                |choice| estimate_choice(&op0, choice),
                |_idx, choice| self.measure_stage(space.stage(), cfg, lens, math, choice),
            );
            outcome.trials += result.measured;
            outcome.pruned += result.pruned;
            if result.best != 0 {
                outcome.chosen.insert(
                    space.stage().to_string(),
                    space.choices()[result.best].clone(),
                );
            }
        }

        // Fallback guarantee: the assembled winner must beat the
        // hand-picked default end-to-end, or the default ships.
        let (default_score, tuned_score) = self.end_to_end(cfg, lens, math, &outcome.chosen)?;
        outcome.default_score = default_score;
        outcome.tuned_score = tuned_score;
        if tuned_score > default_score {
            outcome.chosen.clear();
            outcome.fell_back = true;
            outcome.tuned_score = default_score;
        }

        let layer = CompiledEncoderLayer::build_with_choices(cfg, lens, math, &outcome.chosen)?;
        self.cache.insert(
            &bucket,
            CacheEntry {
                stages: outcome.chosen.clone(),
                measurer: if self.deterministic {
                    "deterministic".to_string()
                } else {
                    "wallclock".to_string()
                },
                trials: outcome.trials,
            },
        );
        if let Some(path) = &self.cache_path {
            if let Err(e) = self.cache.save(path) {
                outcome.cache_note = Some(format!("failed to write tuning cache: {e}"));
            }
        }
        outcome.tuning_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok((layer, outcome))
    }

    /// Micro-benchmarks one candidate: compile the stage operator with
    /// the choice applied, run it serially on seeded synthetic inputs,
    /// and score it (lower is better). `None` disqualifies a candidate
    /// whose directives fail to lower.
    fn measure_stage(
        &self,
        stage: &str,
        cfg: &EncoderConfig,
        lens: &[usize],
        math: MathMode,
        choice: &StageChoice,
    ) -> Option<f64> {
        let mut op = stage_operator(stage, cfg, lens)?;
        apply_choice(&mut op, choice);
        let prog = lower(&op).ok()?.compile().with_math_mode(math);
        let inputs: Vec<(String, Vec<f32>)> = op
            .inputs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let size = t.layout().size();
                (
                    t.name().to_string(),
                    synthetic_data(size, self.seed ^ (i as u64 + 1)),
                )
            })
            .collect();
        let bound: Vec<(&str, Vec<f32>)> = inputs
            .iter()
            .map(|(n, d)| (n.as_str(), d.clone()))
            .collect();
        if self.deterministic {
            let run = prog.run(&bound);
            let s = run.stats;
            Some(proxy_score(
                s.flops,
                s.guards,
                s.aux_loads,
                s.stores,
                prog.vm().fused_counts(),
            ))
        } else {
            // One warmup, then best-of-3 wall clock.
            prog.run(&bound);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                prog.run(&bound);
                best = best.min(t.elapsed().as_secs_f64() * 1e9);
            }
            Some(best)
        }
    }

    /// End-to-end scores `(default, tuned)` of the full layer on seeded
    /// synthetic weights/activations (serial runs — dispatch-order
    /// candidates are judged by their serial cost here; the parallel
    /// tier's balance gains ride along for free).
    fn end_to_end(
        &self,
        cfg: &EncoderConfig,
        lens: &[usize],
        math: MathMode,
        chosen: &BTreeMap<String, StageChoice>,
    ) -> Result<(f64, f64), ScheduleError> {
        let default = CompiledEncoderLayer::build_with_math(cfg, lens, math)?;
        let tuned = CompiledEncoderLayer::build_with_choices(cfg, lens, math, chosen)?;
        let w = EncoderWeights::random(cfg, self.seed ^ 0x5EED);
        let x = RaggedBatch::random(lens, cfg.hidden, self.seed ^ 0xBA7C);
        Ok((
            self.score_layer(&default, &w, &x)?,
            self.score_layer(&tuned, &w, &x)?,
        ))
    }

    fn score_layer(
        &self,
        layer: &CompiledEncoderLayer,
        w: &EncoderWeights,
        x: &RaggedBatch,
    ) -> Result<f64, ScheduleError> {
        let mut session = layer.session()?;
        if self.deterministic {
            let run = session.run(None, w, x);
            let fused: BTreeMap<String, (usize, usize, usize)> = layer
                .pipeline()
                .map(|p| {
                    p.stage_programs()
                        .map(|(label, prog)| (label.to_string(), prog.vm().fused_counts()))
                        .collect()
                })
                .unwrap_or_default();
            Ok(run
                .stages
                .iter()
                .map(|s| {
                    proxy_score(
                        s.stats.flops,
                        s.stats.guards,
                        s.stats.aux_loads,
                        s.stats.stores,
                        fused.get(&s.label).copied().unwrap_or((0, 0, 0)),
                    )
                })
                .sum())
        } else {
            session.forward_serial(w, x);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                session.forward_serial(w, x);
                best = best.min(t.elapsed().as_secs_f64() * 1e9);
            }
            Ok(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_have_defaults_first_and_divisible_splits() {
        let cfg = EncoderConfig::scaled(8);
        let spaces = encoder_stage_spaces(&cfg);
        assert!(spaces.len() >= 8);
        for space in &spaces {
            assert!(space.choices()[0].is_default(), "{}", space.stage());
            assert!(
                stage_operator(space.stage(), &cfg, &[3, 1]).is_some(),
                "space {} has no operator builder",
                space.stage()
            );
        }
    }

    #[test]
    fn bucket_key_separates_math_modes_and_models() {
        let a = EncoderConfig::scaled(8);
        let b = EncoderConfig::scaled(16);
        let lens = [4usize, 9];
        assert_ne!(
            bucket_key(&a, MathMode::Strict, &lens),
            bucket_key(&a, MathMode::Fast, &lens)
        );
        assert_ne!(
            bucket_key(&a, MathMode::Strict, &lens),
            bucket_key(&b, MathMode::Strict, &lens)
        );
    }

    #[test]
    fn deterministic_tuning_caches_and_hits() {
        let cfg = EncoderConfig::scaled(8);
        let lens = [5usize, 2, 0, 7];
        let mut tuner = EncoderAutotuner::new(TuneBudget::trials(64), 42).deterministic(true);
        let (_, first) = tuner.tuned_layer(&cfg, &lens, MathMode::Strict).unwrap();
        assert!(!first.cache_hit);
        assert!(first.trials > 0);
        // Same bucket, resampled lengths within the same histogram
        // classes: zero-trial cache hit with the same choices.
        let resampled = [4usize, 3, 0, 6];
        let (_, second) = tuner
            .tuned_layer(&cfg, &resampled, MathMode::Strict)
            .unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.trials, 0);
        assert_eq!(second.chosen, first.chosen);
    }

    #[test]
    fn disabled_tuner_ships_defaults() {
        let cfg = EncoderConfig::scaled(8);
        let mut tuner = EncoderAutotuner::new(TuneBudget::trials(64), 42);
        tuner.disabled = true;
        let (_, out) = tuner.tuned_layer(&cfg, &[3, 2], MathMode::Strict).unwrap();
        assert!(out.chosen.is_empty());
        assert_eq!(out.trials, 0);
    }

    #[test]
    fn corrupt_cache_file_is_reported_and_retuned() {
        let dir = std::env::temp_dir().join(format!("cora_enc_tune_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, r#"{"schema": 99, "entries": {}}"#).unwrap();
        let mut tuner = EncoderAutotuner::new(TuneBudget::trials(8), 42)
            .deterministic(true)
            .with_cache_path(&path);
        let cfg = EncoderConfig::scaled(8);
        let (_, out) = tuner.tuned_layer(&cfg, &[2, 1], MathMode::Strict).unwrap();
        let note = out.cache_note.expect("corrupt cache must be reported");
        assert!(note.contains("re-tuning"), "{note}");
        assert!(!out.cache_hit);
        // The rewritten cache is valid and schema-current again.
        let (reloaded, status) = TuningCache::load(&path);
        assert!(status.is_usable(), "{status:?}");
        assert_eq!(reloaded.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
