//! Encoder-layer weights and deterministic initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::EncoderConfig;

/// All learned parameters of one encoder layer.
#[derive(Debug, Clone)]
pub struct EncoderWeights {
    /// QKV projection `[hidden, 3·hidden]`.
    pub wqkv: Vec<f32>,
    /// QKV bias `[3·hidden]`.
    pub bqkv: Vec<f32>,
    /// Output projection `[hidden, hidden]`.
    pub wo: Vec<f32>,
    /// Output projection bias `[hidden]`.
    pub bo: Vec<f32>,
    /// FF1 `[hidden, ff]`.
    pub w1: Vec<f32>,
    /// FF1 bias `[ff]`.
    pub b1: Vec<f32>,
    /// FF2 `[ff, hidden]`.
    pub w2: Vec<f32>,
    /// FF2 bias `[hidden]`.
    pub b2: Vec<f32>,
    /// First layer-norm gamma `[hidden]`.
    pub ln1_g: Vec<f32>,
    /// First layer-norm beta `[hidden]`.
    pub ln1_b: Vec<f32>,
    /// Second layer-norm gamma `[hidden]`.
    pub ln2_g: Vec<f32>,
    /// Second layer-norm beta `[hidden]`.
    pub ln2_b: Vec<f32>,
}

impl EncoderWeights {
    /// Deterministic random initialisation (small values keep softmax and
    /// layer norm numerically tame in tests).
    pub fn random(cfg: &EncoderConfig, seed: u64) -> EncoderWeights {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = |n: usize, scale: f32| -> Vec<f32> {
            (0..n).map(|_| (rng.gen::<f32>() - 0.5) * scale).collect()
        };
        let h = cfg.hidden;
        let ff = cfg.ff;
        EncoderWeights {
            wqkv: gen(h * 3 * h, 0.05),
            bqkv: gen(3 * h, 0.02),
            wo: gen(h * h, 0.05),
            bo: gen(h, 0.02),
            w1: gen(h * ff, 0.05),
            b1: gen(ff, 0.02),
            w2: gen(ff * h, 0.05),
            b2: gen(h, 0.02),
            ln1_g: vec![1.0; h],
            ln1_b: vec![0.0; h],
            ln2_g: vec![1.0; h],
            ln2_b: vec![0.0; h],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = EncoderConfig::scaled(8);
        let a = EncoderWeights::random(&cfg, 1);
        let b = EncoderWeights::random(&cfg, 1);
        assert_eq!(a.wqkv, b.wqkv);
        assert_eq!(a.wqkv.len(), cfg.hidden * 3 * cfg.hidden);
        assert_eq!(a.w1.len(), cfg.hidden * cfg.ff);
    }
}
