//! Masked multi-head attention through the *compiler*: the ragged
//! triangular kernels of §D.3 expressed as CoRa operators, lowered, and
//! executed on the parallel compiled tier.
//!
//! The hand-written path ([`crate::masked_mha`]) is the library
//! baseline; this module routes the two ragged stages of masked SDPA —
//! the triangular score computation `S[r, j] = Σ_d Q[r, d]·K[r0(r)+j, d]`
//! and the triangular value reduction `O[r, e] = Σ_j P[r, j]·V[r0(r)+j, e]`
//! — through [`cora_core::lower()`], binds each kernel's flattened row
//! loop to `blockIdx.x` with longest-first thread remapping (§4.1), and
//! dispatches the blocks across the work-stealing CPU runtime via
//! [`CompiledProgram::run_parallel`]. Row `r` of a causally masked
//! sequence attends to keys `0..=pos(r)`, so both kernels are vloops
//! whose extents grow linearly within each sequence — exactly the
//! minimal-padding raggedness the paper's Fig. 18 measures.
//!
//! Both operators flatten `(sequence, position)` pairs into one row
//! axis; a prelude-built `seq_row0` table ([`Operator::aux_tables`])
//! maps each row back to its sequence's first row so key/value accesses
//! stay O(1) (Algorithm 1 handles the triangular score offsets through
//! the output layout itself).

use cora_core::prelude::*;
use cora_exec::CpuPool;
use cora_kernels::elementwise::bias_add_rows;
use cora_kernels::softmax::softmax_row;
use cora_ragged::{Dim, RaggedLayout};

use crate::config::EncoderConfig;
use crate::encoder::{parallel_sgemm, RaggedBatch};
use crate::weights::EncoderWeights;

use std::rc::Rc;

/// Per-row triangular extents: row `r` at position `p` of its sequence
/// attends to `p + 1` keys.
fn triangular_lens(lens: &[usize]) -> Vec<usize> {
    lens.iter().flat_map(|&l| 1..=l).collect()
}

/// Per-row sequence-start table: `seq_row0[r]` is the flattened index of
/// the first row of `r`'s sequence. Shared with the fully compiled
/// encoder layer ([`crate::encoder_compiled`]).
pub(crate) fn seq_row0_table(lens: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(lens.iter().sum());
    let mut start = 0usize;
    for &l in lens {
        out.extend(std::iter::repeat(start).take(l));
        start += l;
    }
    out
}

/// The ragged layout of a flattened score/probability tensor: row `r`
/// stores `per_row[r]` entries. Triangular (`pos + 1`) for the causal
/// kernels here; rectangular-per-sequence for the fully compiled
/// encoder's bidirectional attention ([`crate::encoder_compiled`]).
pub(crate) fn row_ragged_layout(per_row: &[usize], total_rows: usize) -> RaggedLayout {
    let r = Dim::new("row");
    let j = Dim::new("key");
    RaggedLayout::builder()
        .cdim(r.clone(), total_rows)
        .vdim(j, &r, per_row.to_vec())
        .build()
        .expect("per-row ragged layout validates")
}

/// The masked score operator for one head:
/// `S[r, j] = Σ_d Q[r, d] · K[seq_row0[r] + j, d]` with `j` ranging over
/// the causal prefix. `Q` is expected pre-scaled by `1/sqrt(head_dim)`.
///
/// Schedule: the flattened row loop binds to `blockIdx.x` (one block per
/// query row, cost `(pos+1)·head_dim`), dispatched longest-first.
pub fn masked_scores_operator(lens: &[usize], head_dim: usize) -> Operator {
    let total_rows: usize = lens.iter().sum();
    let tri = triangular_lens(lens);
    let q = TensorRef::new("Q", RaggedLayout::dense(&[total_rows, head_dim]));
    let k = TensorRef::new("K", RaggedLayout::dense(&[total_rows, head_dim]));
    let s = TensorRef::new("S", row_ragged_layout(&tri, total_rows));
    let (qt, kt) = (q.clone(), k.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (r, j, d) = (args[0].clone(), args[1].clone(), args[2].clone());
        let row0 = Expr::load("seq_row0", r.clone());
        qt.at(&[r, d.clone()]) * kt.at(&[row0 + j, d])
    });
    let mut op = Operator::new(
        "masked_scores",
        vec![
            LoopSpec::fixed("r", total_rows),
            LoopSpec::variable("j", 0, tri),
        ],
        vec![LoopSpec::fixed("d", head_dim)],
        s,
        vec![q, k],
        body,
    );
    op.add_aux_table("seq_row0", seq_row0_table(lens));
    op.schedule_mut()
        .bind("r", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// The masked attention-times-values operator for one head:
/// `O[r, e] = Σ_j P[r, j] · V[seq_row0[r] + j, e]`, `j` over the causal
/// prefix (`P` is the softmaxed triangular score tensor).
pub fn masked_attnv_operator(lens: &[usize], head_dim: usize) -> Operator {
    let total_rows: usize = lens.iter().sum();
    let tri = triangular_lens(lens);
    let p = TensorRef::new("P", row_ragged_layout(&tri, total_rows));
    let v = TensorRef::new("V", RaggedLayout::dense(&[total_rows, head_dim]));
    let o = TensorRef::new("O", RaggedLayout::dense(&[total_rows, head_dim]));
    let (pt, vt) = (p.clone(), v.clone());
    let body: BodyFn = Rc::new(move |args| {
        let (r, e, j) = (args[0].clone(), args[1].clone(), args[2].clone());
        let row0 = Expr::load("seq_row0", r.clone());
        pt.at(&[r, j.clone()]) * vt.at(&[row0 + j, e])
    });
    let mut op = Operator::new(
        "masked_attnv",
        vec![
            LoopSpec::fixed("r", total_rows),
            LoopSpec::fixed("e", head_dim),
        ],
        vec![LoopSpec::variable("j", 0, tri)],
        o,
        vec![p, v],
        body,
    );
    op.add_aux_table("seq_row0", seq_row0_table(lens));
    op.schedule_mut()
        .bind("r", ForKind::GpuBlockX)
        .thread_remap(RemapPolicy::LongestFirst);
    op
}

/// Both masked-SDPA stages compiled for one batch shape — compile once,
/// run once per head per layer. The kernels are shape-dependent only
/// (lens + head_dim), so a batch shares them across heads and layers.
#[derive(Debug)]
pub struct CompiledMaskedSdpa {
    scores: CompiledProgram,
    attnv: CompiledProgram,
    tri: Vec<usize>,
    total_rows: usize,
    head_dim: usize,
}

impl CompiledMaskedSdpa {
    /// Lowers and compiles both stages for a batch shape.
    ///
    /// # Errors
    ///
    /// Returns the lowering error if a schedule is rejected (the
    /// built-in schedules are always legal; this surfaces regressions).
    pub fn build(lens: &[usize], head_dim: usize) -> Result<CompiledMaskedSdpa, ScheduleError> {
        let scores = lower(&masked_scores_operator(lens, head_dim))?.compile();
        let attnv = lower(&masked_attnv_operator(lens, head_dim))?.compile();
        debug_assert!(scores.has_parallel_tier() && attnv.has_parallel_tier());
        Ok(CompiledMaskedSdpa {
            scores,
            attnv,
            tri: triangular_lens(lens),
            total_rows: lens.iter().sum(),
            head_dim,
        })
    }

    /// The compiled triangular score program (`Q`, `K` → `S`).
    pub fn scores_program(&self) -> &CompiledProgram {
        &self.scores
    }

    /// The compiled triangular value-reduction program (`P`, `V` → `O`).
    pub fn attnv_program(&self) -> &CompiledProgram {
        &self.attnv
    }

    /// Number of flattened query rows.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Per-head dimension the kernels were compiled for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Prepares reusable parallel sessions for both stages (prelude,
    /// aux tables and dispatch order resolved once); the returned
    /// session serves any number of heads/layers of this batch shape.
    ///
    /// # Panics
    ///
    /// Panics if the built-in schedules fail to outline — a compiler
    /// regression by definition.
    pub fn session(&self) -> MaskedSdpaSession<'_> {
        let scores = self
            .scores
            .parallel_session()
            .expect("built-in schedules outline")
            .expect("score kernel has a block axis");
        let attnv = self
            .attnv
            .parallel_session()
            .expect("built-in schedules outline")
            .expect("attnv kernel has a block axis");
        MaskedSdpaSession {
            scores,
            attnv,
            tri: &self.tri,
        }
    }

    /// Masked SDPA for one head over the parallel compiled tier —
    /// one-shot convenience over [`CompiledMaskedSdpa::session`] (which
    /// amortizes the prelude/bindings across heads and layers).
    /// Triangular scores, per-row softmax, triangular AttnV. `q` must be
    /// pre-scaled; returns the `total_rows × head_dim` head output.
    ///
    /// # Panics
    ///
    /// Panics if the built-in schedules fail to outline or an input has
    /// the wrong size — compiler regressions by definition.
    pub fn forward_head(&self, pool: &CpuPool, q: Vec<f32>, k: Vec<f32>, v: Vec<f32>) -> Vec<f32> {
        self.session().forward_head(pool, q, k, v)
    }

    /// Serial-VM reference for [`CompiledMaskedSdpa::forward_head`]
    /// (identical math on one thread; used by benches and differential
    /// tests).
    pub fn forward_head_serial(&self, q: Vec<f32>, k: Vec<f32>, v: Vec<f32>) -> Vec<f32> {
        let mut probs = self.scores.run(&[("Q", q), ("K", k)]).output;
        let mut at = 0usize;
        for &l in &self.tri {
            softmax_row(&mut probs[at..at + l], l);
            at += l;
        }
        self.attnv.run(&[("P", probs), ("V", v)]).output
    }
}

/// Prepared parallel sessions for both masked-SDPA stages: create once
/// per batch ([`CompiledMaskedSdpa::session`]), run once per head per
/// layer — only the head's float inputs are bound per call.
#[derive(Debug)]
pub struct MaskedSdpaSession<'p> {
    scores: ParallelSession<'p>,
    attnv: ParallelSession<'p>,
    tri: &'p [usize],
}

impl MaskedSdpaSession<'_> {
    /// Masked SDPA for one head: triangular scores on the parallel
    /// tier, per-row softmax, triangular AttnV on the parallel tier.
    /// `q` must be pre-scaled by `1/sqrt(head_dim)`.
    ///
    /// # Panics
    ///
    /// Panics if an input has the wrong size for the session's batch
    /// shape.
    pub fn forward_head(
        &mut self,
        pool: &CpuPool,
        q: Vec<f32>,
        k: Vec<f32>,
        v: Vec<f32>,
    ) -> Vec<f32> {
        let mut probs = self.scores.run(pool, vec![("Q", q), ("K", k)]).output;
        pool.parallel_rows(&mut probs, self.tri, |_, row| {
            let n = row.len();
            softmax_row(row, n);
        });
        self.attnv.run(pool, vec![("P", probs), ("V", v)]).output
    }
}

/// Extracts one head's `Q` (scaled), `K` and `V` from the packed
/// `rows × 3·hidden` QKV buffer.
fn extract_head(
    cfg: &EncoderConfig,
    qkv: &[f32],
    rows: usize,
    head: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let h = cfg.hidden;
    let hd = cfg.head_dim;
    let ld = 3 * h;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut q = Vec::with_capacity(rows * hd);
    let mut k = Vec::with_capacity(rows * hd);
    let mut v = Vec::with_capacity(rows * hd);
    for r in 0..rows {
        let base = r * ld + head * hd;
        q.extend(qkv[base..base + hd].iter().map(|x| x * scale));
        k.extend_from_slice(&qkv[base + h..base + h + hd]);
        v.extend_from_slice(&qkv[base + 2 * h..base + 2 * h + hd]);
    }
    (q, k, v)
}

/// Masked MHA forward over ragged storage with the attention core
/// executed by the *compiler's* parallel tier — one-shot convenience
/// that lowers and compiles the SDPA kernels for this batch shape and
/// delegates to [`masked_mha_compiled_with`]. Multi-layer (or repeated)
/// callers should [`CompiledMaskedSdpa::build`] + `.session()` once per
/// batch shape and call [`masked_mha_compiled_with`] per layer, so
/// neither compilation nor the prelude is re-done on the hot path.
///
/// # Panics
///
/// Panics if lowering or the parallel tier rejects the built-in
/// schedules — a compiler regression by definition.
pub fn masked_mha_compiled(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
) -> Vec<f32> {
    let sdpa =
        CompiledMaskedSdpa::build(&x.lens, cfg.head_dim).expect("built-in schedules are legal");
    let mut session = sdpa.session();
    masked_mha_compiled_with(pool, cfg, w, x, &mut session)
}

/// Masked MHA forward with prebuilt compiled SDPA kernels (compile and
/// prepare once — [`CompiledMaskedSdpa::session`] — then run per
/// layer): QKV/output projections use the dense library kernels (as
/// every variant does), while the ragged triangular scores and AttnV
/// run as compiled programs with their row loops dispatched across
/// `pool`. Returns `Σ lens × hidden` rows, numerically equivalent to
/// [`crate::masked_mha::masked_mha_ragged`].
///
/// # Panics
///
/// Panics if `session` was built for a different batch shape / head
/// dimension than `cfg`/`x` describe.
pub fn masked_mha_compiled_with(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
    session: &mut MaskedSdpaSession<'_>,
) -> Vec<f32> {
    let h = cfg.hidden;
    let hd = cfg.head_dim;
    let rows = x.rows();
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, &x.data, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);

    let mut attn = vec![0.0f32; rows * h];
    for head in 0..cfg.heads {
        let (q, k, v) = extract_head(cfg, &qkv, rows, head);
        let head_out = session.forward_head(pool, q, k, v);
        for r in 0..rows {
            attn[r * h + head * hd..r * h + (head + 1) * hd]
                .copy_from_slice(&head_out[r * hd..(r + 1) * hd]);
        }
    }

    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut out);
    bias_add_rows(&mut out, h, &w.bo);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masked_mha::masked_mha_ragged;

    #[test]
    fn compiled_masked_mha_matches_handwritten() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 23);
        let lens = vec![9usize, 5, 0, 2];
        let x = RaggedBatch::random(&lens, cfg.hidden, 24);
        let pool = CpuPool::new(4);
        let reference = masked_mha_ragged(&pool, &cfg, &w, &x);
        let compiled = masked_mha_compiled(&pool, &cfg, &w, &x);
        assert_eq!(reference.len(), compiled.len());
        let worst = reference
            .iter()
            .zip(&compiled)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-3, "compiled masked MHA diverges by {worst}");
        // Prebuilt-kernel path (the multi-layer hot path): same result,
        // kernels compiled and prepared once, session reused per layer.
        let sdpa = CompiledMaskedSdpa::build(&x.lens, cfg.head_dim).unwrap();
        let mut session = sdpa.session();
        for _layer in 0..2 {
            let again = masked_mha_compiled_with(&pool, &cfg, &w, &x, &mut session);
            assert_eq!(again, compiled, "prebuilt kernels must match");
        }
    }

    #[test]
    fn parallel_head_matches_serial_head_bitwise() {
        let lens = vec![6usize, 3, 1];
        let hd = 8usize;
        let rows: usize = lens.iter().sum();
        let sdpa = CompiledMaskedSdpa::build(&lens, hd).unwrap();
        let q: Vec<f32> = (0..rows * hd).map(|i| (i as f32 * 0.37).sin()).collect();
        let k: Vec<f32> = (0..rows * hd).map(|i| (i as f32 * 0.11).cos()).collect();
        let v: Vec<f32> = (0..rows * hd).map(|i| i as f32 * 0.01 - 1.0).collect();
        let serial = sdpa.forward_head_serial(q.clone(), k.clone(), v.clone());
        // A single session reused across pools and repeats, like the
        // multi-head hot path does.
        let mut session = sdpa.session();
        for pool in [
            CpuPool::new(1),
            CpuPool::new(8),
            CpuPool::new(8).with_backend(cora_exec::Backend::Spawn),
        ] {
            let par = session.forward_head(&pool, q.clone(), k.clone(), v.clone());
            let sb: Vec<u32> = serial.iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u32> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(sb, pb, "parallel head output must be bit-identical");
        }
        // The one-shot convenience agrees too.
        let one_shot = sdpa.forward_head(&CpuPool::new(2), q, k, v);
        assert_eq!(one_shot, serial);
    }

    #[test]
    fn score_operator_is_triangular_and_block_bound() {
        let lens = vec![3usize, 2];
        let p = lower(&masked_scores_operator(&lens, 4)).unwrap();
        // Triangular output: 1+2+3 + 1+2 = 9 scores.
        assert_eq!(p.output_size(), 9);
        // One block per flattened row, ragged costs.
        assert_eq!(p.block_costs().len(), 5);
        let compiled = p.compile();
        assert!(compiled.has_parallel_tier());
        // CUDA rendering binds the row loop to the grid.
        assert!(p.cuda_source().contains("blockIdx.x"));
    }

    #[test]
    fn causality_holds_through_the_compiled_path() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 31);
        let lens = vec![5usize];
        let pool = CpuPool::new(2);
        let x1 = RaggedBatch::random(&lens, cfg.hidden, 32);
        let mut x2 = x1.clone();
        let h = cfg.hidden;
        for d in 0..h {
            x2.data[4 * h + d] += 1.0;
        }
        let y1 = masked_mha_compiled(&pool, &cfg, &w, &x1);
        let y2 = masked_mha_compiled(&pool, &cfg, &w, &x2);
        assert_eq!(&y1[..4 * h], &y2[..4 * h], "future tokens must not leak");
        assert_ne!(&y1[4 * h..], &y2[4 * h..], "last row must change");
    }
}
