//! Numeric encoder-layer implementations: CoRa-style ragged and fully
//! padded reference.
//!
//! The ragged implementation mirrors Fig. 3's CoRa pipeline: hidden-vector
//! operators run over the *fused* row space (`Σ lens` rows, no per-sequence
//! padding), and the SDPA operators run per sequence on exactly `l×l`
//! attention matrices. The padded reference computes every operator on
//! `batch × max_len` rows with masked softmax — what PyTorch/TF do.
//!
//! Equivalence of the two on the valid region is the core correctness
//! test of the whole stack.

use cora_exec::CpuPool;
use cora_kernels::elementwise::{bias_add_rows, gelu, residual_add};
use cora_kernels::layernorm::parallel_layernorm_rows;
use cora_kernels::softmax::softmax_row;
use cora_kernels::{sgemm_ld, sgemm_nt_ld};

/// Multithreaded gemm over the persistent runtime (re-exported from
/// `cora-kernels`, where the parallel kernels live).
pub use cora_kernels::parallel_sgemm;

use crate::config::EncoderConfig;
use crate::weights::EncoderWeights;

/// A ragged mini-batch of hidden vectors: `Σ lens` rows of `hidden`
/// floats, sequences stored back-to-back (sorted or not).
#[derive(Debug, Clone)]
pub struct RaggedBatch {
    /// Per-sequence lengths.
    pub lens: Vec<usize>,
    /// Row data, `sum(lens) × hidden`.
    pub data: Vec<f32>,
    /// Hidden dimension.
    pub hidden: usize,
}

impl RaggedBatch {
    /// Builds a deterministic random batch.
    pub fn random(lens: &[usize], hidden: usize, seed: u64) -> RaggedBatch {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: usize = lens.iter().sum();
        RaggedBatch {
            lens: lens.to_vec(),
            data: (0..rows * hidden).map(|_| rng.gen::<f32>() - 0.5).collect(),
            hidden,
        }
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Start row of sequence `s`.
    pub fn row_offset(&self, s: usize) -> usize {
        self.lens[..s].iter().sum()
    }

    /// Converts to a fully padded `[batch, max_len, hidden]` buffer.
    pub fn to_padded(&self, max_len: usize) -> Vec<f32> {
        let h = self.hidden;
        let mut out = vec![0.0; self.lens.len() * max_len * h];
        let mut row = 0usize;
        for (s, &l) in self.lens.iter().enumerate() {
            for i in 0..l {
                let src = (row + i) * h;
                let dst = (s * max_len + i) * h;
                out[dst..dst + h].copy_from_slice(&self.data[src..src + h]);
            }
            row += l;
        }
        out
    }
}

/// Scaled dot-product attention for one sequence (all heads), reading
/// interleaved QKV rows and writing `out` (`l × hidden`).
///
/// `qkv` holds `l` rows of `3·hidden` starting at `qkv_row0`; `valid`
/// limits softmax mass (for padded execution `l ≥ valid`).
#[allow(clippy::too_many_arguments)]
pub fn sdpa_sequence(
    cfg: &EncoderConfig,
    l: usize,
    valid: usize,
    qkv: &[f32],
    qkv_row0: usize,
    out: &mut [f32],
    scores: &mut Vec<f32>,
) {
    let h = cfg.hidden;
    let hd = cfg.head_dim;
    let ld = 3 * h;
    let scale = 1.0 / (hd as f32).sqrt();
    if l == 0 {
        // An empty sequence has no rows to attend or write.
        return;
    }
    scores.clear();
    scores.resize(l * l, 0.0);
    for head in 0..cfg.heads {
        let q0 = qkv_row0 * ld + head * hd;
        let k0 = qkv_row0 * ld + h + head * hd;
        let v0 = qkv_row0 * ld + 2 * h + head * hd;
        scores.iter_mut().for_each(|v| *v = 0.0);
        // scores[l,l] = Q · K^T over head_dim.
        sgemm_nt_ld(l, hd, l, &qkv[q0..], ld, &qkv[k0..], ld, scores, l);
        for row in scores.chunks_mut(l) {
            for v in row.iter_mut() {
                *v *= scale;
            }
            softmax_row(row, valid);
        }
        // out[l, hd] (strided into the full hidden row) = scores · V.
        sgemm_ld(
            l,
            l,
            hd,
            scores,
            l,
            &qkv[v0..],
            ld,
            &mut out[head * hd..],
            h,
        );
    }
}

/// One CoRa-style (ragged) encoder layer forward pass.
pub fn encoder_layer_ragged(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
) -> RaggedBatch {
    let h = cfg.hidden;
    let rows = x.rows();
    // QKV projection over the fused row space (Proj1 of Fig. 3).
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, &x.data, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);

    // SDPA per sequence: exactly l×l attention, no padding.
    let mut attn = vec![0.0f32; rows * h];
    let row_lens: Vec<usize> = x.lens.iter().map(|&l| l * h).collect();
    pool.parallel_rows(&mut attn, &row_lens, |s, out| {
        let l = x.lens[s];
        let row0 = x.row_offset(s);
        let mut scores = Vec::new();
        sdpa_sequence(cfg, l, l, &qkv, row0, out, &mut scores);
    });

    // Output projection + bias + residual + LN (fused in CoRa's pipeline).
    let mut y = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut y);
    bias_add_rows(&mut y, h, &w.bo);
    residual_add(&mut y, &x.data);
    parallel_layernorm_rows(pool, &mut y, h, &w.ln1_g, &w.ln1_b, 1e-5);

    // Feed-forward.
    let mut f1 = vec![0.0f32; rows * cfg.ff];
    parallel_sgemm(pool, rows, h, cfg.ff, &y, &w.w1, &mut f1);
    bias_add_rows(&mut f1, cfg.ff, &w.b1);
    gelu(&mut f1);
    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, cfg.ff, h, &f1, &w.w2, &mut out);
    bias_add_rows(&mut out, h, &w.b2);
    residual_add(&mut out, &y);
    parallel_layernorm_rows(pool, &mut out, h, &w.ln2_g, &w.ln2_b, 1e-5);

    RaggedBatch {
        lens: x.lens.clone(),
        data: out,
        hidden: h,
    }
}

/// One fully padded encoder layer forward pass (the PyTorch/TF baseline):
/// all operators run over `batch × max_len` rows; softmax masks invalid
/// columns. Returns the padded `[batch, max_len, hidden]` output.
pub fn encoder_layer_padded(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    lens: &[usize],
    max_len: usize,
    x_padded: &[f32],
) -> Vec<f32> {
    let h = cfg.hidden;
    let rows = lens.len() * max_len;
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, x_padded, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);

    let mut attn = vec![0.0f32; rows * h];
    let row_lens: Vec<usize> = vec![max_len * h; lens.len()];
    pool.parallel_rows(&mut attn, &row_lens, |s, out| {
        let mut scores = Vec::new();
        // Full max_len×max_len attention with masked softmax: the padded
        // baseline's wasted computation.
        sdpa_sequence(cfg, max_len, lens[s], &qkv, s * max_len, out, &mut scores);
    });

    let mut y = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut y);
    bias_add_rows(&mut y, h, &w.bo);
    residual_add(&mut y, x_padded);
    parallel_layernorm_rows(pool, &mut y, h, &w.ln1_g, &w.ln1_b, 1e-5);

    let mut f1 = vec![0.0f32; rows * cfg.ff];
    parallel_sgemm(pool, rows, h, cfg.ff, &y, &w.w1, &mut f1);
    bias_add_rows(&mut f1, cfg.ff, &w.b1);
    gelu(&mut f1);
    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, cfg.ff, h, &f1, &w.w2, &mut out);
    bias_add_rows(&mut out, h, &w.b2);
    residual_add(&mut out, &y);
    parallel_layernorm_rows(pool, &mut out, h, &w.ln2_g, &w.ln2_b, 1e-5);
    out
}

/// Maximum absolute difference between a ragged output and the valid
/// region of a padded output.
pub fn max_divergence(ragged: &RaggedBatch, padded: &[f32], max_len: usize) -> f32 {
    let h = ragged.hidden;
    let mut worst = 0.0f32;
    let mut row = 0usize;
    for (s, &l) in ragged.lens.iter().enumerate() {
        for i in 0..l {
            for d in 0..h {
                let a = ragged.data[(row + i) * h + d];
                let b = padded[(s * max_len + i) * h + d];
                worst = worst.max((a - b).abs());
            }
        }
        row += l;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_kernels::sgemm;

    #[test]
    fn ragged_matches_padded_reference() {
        let cfg = EncoderConfig::scaled(8); // hidden 64, ff 256
        let w = EncoderWeights::random(&cfg, 3);
        let lens = vec![7usize, 3, 12, 1];
        let x = RaggedBatch::random(&lens, cfg.hidden, 4);
        let pool = CpuPool::new(4);
        let ragged = encoder_layer_ragged(&pool, &cfg, &w, &x);
        let max_len = 16;
        let padded_in = x.to_padded(max_len);
        let padded = encoder_layer_padded(&pool, &cfg, &w, &lens, max_len, &padded_in);
        let d = max_divergence(&ragged, &padded, max_len);
        assert!(d < 1e-4, "ragged and padded diverge by {d}");
    }

    #[test]
    fn single_sequence_no_padding_identical() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 5);
        let lens = vec![9usize];
        let x = RaggedBatch::random(&lens, cfg.hidden, 6);
        let pool = CpuPool::new(1);
        let ragged = encoder_layer_ragged(&pool, &cfg, &w, &x);
        let padded = encoder_layer_padded(&pool, &cfg, &w, &lens, 9, &x.to_padded(9));
        assert!(max_divergence(&ragged, &padded, 9) < 1e-5);
    }

    #[test]
    fn parallel_gemm_matches_serial() {
        let (m, k, n) = (100, 33, 17);
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32) - 3.0).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c1);
        parallel_sgemm(&CpuPool::new(4), m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn padded_batch_round_trip() {
        let lens = vec![2usize, 4];
        let x = RaggedBatch::random(&lens, 8, 1);
        let p = x.to_padded(4);
        assert_eq!(p.len(), 2 * 4 * 8);
        // Row 0 of seq 1 lands at padded row 4.
        let src = x.row_offset(1) * 8;
        assert_eq!(&p[4 * 8..4 * 8 + 8], &x.data[src..src + 8]);
        // Padding rows are zero.
        assert!(p[2 * 8..4 * 8].iter().all(|&v| v == 0.0));
    }
}
