//! CPU multi-head attention: the Table 5 / Table 9 / Fig. 27 workloads.
//!
//! Three execution modes, all computing the same MHA module (Proj1 → SDPA
//! → Proj2) for real on the host:
//!
//! * [`mha_ragged`] — CoRa: fused-row projections, per-sequence exact
//!   SDPA, sequences sorted so heavy work schedules first.
//! * [`mha_padded`] — TF/PT: every sequence padded to the batch maximum.
//! * [`mha_micro_batched`] — TF-UB/PT-UB: the sorted batch runs as a
//!   series of micro-batches, each padded only to its own maximum
//!   (Fig. 26), trading batch parallelism for less padding.
//!
//! [`search_micro_batch`] reproduces the paper's search over power-of-two
//! micro-batch sizes.

use std::time::Instant;

use cora_exec::CpuPool;
use cora_kernels::elementwise::bias_add_rows;

use crate::config::EncoderConfig;
use crate::encoder::{parallel_sgemm, sdpa_sequence, RaggedBatch};
use crate::weights::EncoderWeights;

/// MHA forward over ragged storage (CoRa). Returns `Σ lens × hidden`.
pub fn mha_ragged(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
) -> Vec<f32> {
    let h = cfg.hidden;
    let rows = x.rows();
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, &x.data, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);

    let mut attn = vec![0.0f32; rows * h];
    let row_lens: Vec<usize> = x.lens.iter().map(|&l| l * h).collect();
    pool.parallel_rows(&mut attn, &row_lens, |s, out| {
        let l = x.lens[s];
        let mut scores = Vec::new();
        sdpa_sequence(cfg, l, l, &qkv, x.row_offset(s), out, &mut scores);
    });

    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut out);
    bias_add_rows(&mut out, h, &w.bo);
    out
}

/// MHA forward over fully padded storage (`batch × max_len` rows).
/// Returns the padded output.
pub fn mha_padded(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    lens: &[usize],
    max_len: usize,
    x_padded: &[f32],
) -> Vec<f32> {
    let h = cfg.hidden;
    let rows = lens.len() * max_len;
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, x_padded, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);

    let mut attn = vec![0.0f32; rows * h];
    let row_lens: Vec<usize> = vec![max_len * h; lens.len()];
    pool.parallel_rows(&mut attn, &row_lens, |s, out| {
        let mut scores = Vec::new();
        sdpa_sequence(cfg, max_len, lens[s], &qkv, s * max_len, out, &mut scores);
    });

    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut out);
    bias_add_rows(&mut out, h, &w.bo);
    out
}

/// MHA in micro-batches: the (sorted) batch is chunked; each chunk pads
/// only to its own longest sequence. Returns per-chunk padded outputs.
pub fn mha_micro_batched(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
    micro: usize,
) -> Vec<Vec<f32>> {
    let h = cfg.hidden;
    let mut outs = Vec::new();
    let mut start_seq = 0usize;
    while start_seq < x.lens.len() {
        let end_seq = (start_seq + micro).min(x.lens.len());
        let chunk_lens = &x.lens[start_seq..end_seq];
        let chunk_max = chunk_lens.iter().copied().max().unwrap_or(0);
        // Pad just this chunk.
        let mut padded = vec![0.0f32; chunk_lens.len() * chunk_max * h];
        for (s, &l) in chunk_lens.iter().enumerate() {
            let src0 = x.row_offset(start_seq + s) * h;
            for i in 0..l {
                let dst = (s * chunk_max + i) * h;
                padded[dst..dst + h].copy_from_slice(&x.data[src0 + i * h..src0 + (i + 1) * h]);
            }
        }
        outs.push(mha_padded(pool, cfg, w, chunk_lens, chunk_max, &padded));
        start_seq = end_seq;
    }
    outs
}

/// Wall-clock timing of one callable, best of `reps` runs, milliseconds.
pub fn time_best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Searches power-of-two micro-batch sizes (from 2 up to the batch size)
/// for the fastest execution; returns `(best_ms, best_micro_batch)`.
pub fn search_micro_batch(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
    reps: usize,
) -> (f64, usize) {
    let mut best = (f64::INFINITY, x.lens.len());
    let mut micro = 2usize;
    while micro <= x.lens.len() {
        let ms = time_best_ms(reps, || {
            let _ = mha_micro_batched(pool, cfg, w, x, micro);
        });
        if ms < best.0 {
            best = (ms, micro);
        }
        micro *= 2;
    }
    // Also consider the full batch (micro == batch).
    let full_max = x.lens.iter().copied().max().unwrap_or(0);
    let padded = x.to_padded(full_max);
    let ms = time_best_ms(reps, || {
        let _ = mha_padded(pool, cfg, w, &x.lens, full_max, &padded);
    });
    if ms < best.0 {
        best = (ms, x.lens.len());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpad(out: &[f32], lens: &[usize], max_len: usize, h: usize) -> Vec<f32> {
        let mut v = Vec::new();
        for (s, &l) in lens.iter().enumerate() {
            let base = s * max_len * h;
            v.extend_from_slice(&out[base..base + l * h]);
        }
        v
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn ragged_and_padded_agree() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 7);
        let lens = vec![9usize, 6, 4, 2];
        let x = RaggedBatch::random(&lens, cfg.hidden, 8);
        let pool = CpuPool::new(2);
        let r = mha_ragged(&pool, &cfg, &w, &x);
        let max_len = 9;
        let p = mha_padded(&pool, &cfg, &w, &lens, max_len, &x.to_padded(max_len));
        let p_valid = unpad(&p, &lens, max_len, cfg.hidden);
        assert!(max_abs_diff(&r, &p_valid) < 1e-4);
    }

    #[test]
    fn micro_batched_agrees_with_ragged() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 9);
        let lens = vec![12usize, 9, 5, 3, 2]; // sorted descending
        let x = RaggedBatch::random(&lens, cfg.hidden, 10);
        let pool = CpuPool::new(2);
        let r = mha_ragged(&pool, &cfg, &w, &x);
        let chunks = mha_micro_batched(&pool, &cfg, &w, &x, 2);
        let mut collected = Vec::new();
        let mut s = 0usize;
        for c in &chunks {
            let chunk_lens = &lens[s..(s + 2).min(lens.len())];
            let cmax = chunk_lens.iter().copied().max().unwrap();
            collected.extend(unpad(c, chunk_lens, cmax, cfg.hidden));
            s += 2;
        }
        assert!(max_abs_diff(&r, &collected) < 1e-4);
    }

    #[test]
    fn micro_batch_search_returns_power_of_two_or_batch() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 1);
        let lens = vec![8usize, 8, 4, 4, 2, 2, 2, 2];
        let x = RaggedBatch::random(&lens, cfg.hidden, 2);
        let pool = CpuPool::new(2);
        let (ms, micro) = search_micro_batch(&pool, &cfg, &w, &x, 1);
        assert!(ms.is_finite());
        assert!(micro == lens.len() || micro.is_power_of_two());
    }
}
