//! Simulated-GPU implementations of the encoder layer (Fig. 3) and its
//! ablations.
//!
//! Each implementation is expressed as the kernel list it launches, with
//! per-thread-block costs from the shared cost model:
//!
//! * **PyTorch** — fully padded, eager: vendor MMs plus many unfused
//!   elementwise kernels (each a full memory pass).
//! * **FT** — FasterTransformer: fully padded, vendor MMs + fused
//!   hand-written kernels (12 launches, Fig. 3 left).
//! * **FT-Eff** — FT with the EffectiveTransformer optimisation: linear
//!   operators run on the packed `Σ lens` rows; SDPA stays fully padded;
//!   explicit AddPad/RemovePad kernels convert between the two.
//! * **CoRa** — 9 compiler-generated kernels: fused-row linear operators
//!   (bulk-padded to 64), SDPA partially padded to 32, padding-change
//!   operators fused away, sequences sorted so heavy blocks schedule
//!   first.
//!
//! Memory-bound kernels are priced by bytes moved (converted to
//! FLOP-equivalents), compute-bound kernels by FLOPs — both through the
//! same [`GpuModel`].

use cora_exec::cost::{GpuModel, KernelTraits};
use cora_exec::gpu::{GpuSim, SimKernel};
use cora_ragged::FusedLoopMaps;

use crate::config::EncoderConfig;

/// Bytes-per-element conventions for the memory-bound kernels.
mod bytes {
    /// Plain copy (read + write).
    pub const COPY: f64 = 8.0;
    /// Bias add / residual / activation (read ×1.5 + write).
    pub const BIAS: f64 = 12.0;
    /// Layer norm (two passes + write).
    pub const LAYERNORM: f64 = 12.0;
    /// CoRa's softmax: warp-level reductions, no bound checks (§D.8).
    pub const SOFTMAX_CORA: f64 = 12.0;
    /// FT's softmax: block-level reductions with barriers and masking
    /// checks (§D.8 explains why it is slower).
    pub const SOFTMAX_FT: f64 = 14.0;
    /// Eager-mode softmax with separate max/exp/sum/div passes.
    pub const SOFTMAX_EAGER: f64 = 18.0;
}

/// Converts a byte count per element to FLOP-equivalents under `model`
/// (compute-throughput / memory-bandwidth balance).
fn membound_ops(model: &GpuModel, bytes_per_elem: f64) -> f64 {
    let peak_flops_per_us = model.flops_per_sm_per_us * model.sm_count as f64;
    // V100-like: ~900 GB/s = 900e3 bytes/us.
    let bandwidth_bytes_per_us = 900_000.0;
    bytes_per_elem * peak_flops_per_us / bandwidth_bytes_per_us
}

/// The four encoder implementations of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderImpl {
    /// Fully padded eager framework.
    PyTorch,
    /// FasterTransformer, fully padded.
    Ft,
    /// FasterTransformer with packed linear operators.
    FtEff,
    /// CoRa compiler-generated.
    Cora,
}

impl EncoderImpl {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EncoderImpl::PyTorch => "PyTorch",
            EncoderImpl::Ft => "FT",
            EncoderImpl::FtEff => "FT-Eff",
            EncoderImpl::Cora => "CoRa",
        }
    }
}

/// Simulated encoder-layer builder.
#[derive(Debug, Clone)]
pub struct EncoderSim {
    /// Model hyperparameters.
    pub cfg: EncoderConfig,
    /// Device model.
    pub model: GpuModel,
    /// SDPA per-sequence padding multiple for CoRa (Fig. 3: 32).
    pub seq_pad: usize,
    /// Bulk padding multiple for CoRa's fused linear rows (Fig. 3: 64).
    pub bulk_pad: usize,
    /// Whether CoRa fuses the padding-change operators (Fig. 12 ablation).
    pub fuse_pad_change: bool,
    /// Whether CoRa hoists auxiliary loads in QKT (Fig. 23 ablation).
    pub hoist_loads: bool,
}

impl EncoderSim {
    /// Default simulator for a config.
    pub fn new(cfg: EncoderConfig) -> EncoderSim {
        EncoderSim {
            cfg,
            model: GpuModel::default(),
            seq_pad: 32,
            bulk_pad: 64,
            fuse_pad_change: true,
            hoist_loads: true,
        }
    }

    fn pad_to(&self, l: usize, m: usize) -> usize {
        l.div_ceil(m) * m
    }

    /// Tiled gemm blocks for one matrix of `rows×cols` with reduction
    /// depth `k`, tile `t`, appended per head/sequence.
    fn gemm_blocks(
        &self,
        blocks: &mut Vec<f64>,
        traits: KernelTraits,
        rows: usize,
        k: usize,
        cols: usize,
        t: usize,
    ) {
        for bi in 0..rows.div_ceil(t).max(1) {
            let r = (rows - bi * t).min(t);
            for bj in 0..cols.div_ceil(t).max(1) {
                let c = (cols - bj * t).min(t);
                blocks.push(
                    self.model
                        .block_time_us(2.0 * r as f64 * k as f64 * c as f64, traits),
                );
            }
        }
    }

    fn elementwise(&self, name: &str, traits: KernelTraits, elems: usize, bpe: f64) -> SimKernel {
        cora_kernels::vendor::elementwise_kernel(
            name,
            &self.model,
            traits,
            elems,
            membound_ops(&self.model, bpe),
            32 * 1024,
        )
    }

    fn mm(&self, name: &str, traits: KernelTraits, m: usize, k: usize, n: usize) -> SimKernel {
        cora_kernels::vendor::gemm_kernel(
            name,
            &self.model,
            traits,
            cora_kernels::vendor::GemmTiling::default(),
            m,
            k,
            n,
        )
    }

    /// The kernel list one layer launches under `imp` for batch `lens`.
    pub fn kernels(&self, imp: EncoderImpl, lens: &[usize]) -> Vec<SimKernel> {
        let h = self.cfg.hidden;
        let ff = self.cfg.ff;
        let heads = self.cfg.heads;
        let hd = self.cfg.head_dim;
        let b = lens.len();
        let maxlen = lens.iter().copied().max().unwrap_or(0);
        let s_rows: usize = lens.iter().sum();
        let rows_full = b * maxlen;
        let vendor = KernelTraits::vendor();
        let gener = KernelTraits::generated();
        match imp {
            EncoderImpl::PyTorch => {
                // Eager fully padded: vendor MMs, every elementwise its
                // own kernel (and an explicit mask-apply in SDPA).
                let mut ks = vec![
                    self.mm("qkv_mm", vendor, rows_full, h, 3 * h),
                    self.elementwise("qkv_bias", gener, rows_full * 3 * h, bytes::BIAS),
                ];
                let mut qkt = Vec::new();
                let mut attnv = Vec::new();
                for _ in 0..b {
                    for _ in 0..heads {
                        self.gemm_blocks(&mut qkt, vendor, maxlen, hd, maxlen, 32);
                        self.gemm_blocks(&mut attnv, vendor, maxlen, maxlen, hd, 32);
                    }
                }
                ks.push(SimKernel::new("qkt", qkt));
                ks.push(self.elementwise(
                    "mask_add",
                    gener,
                    b * heads * maxlen * maxlen,
                    bytes::BIAS,
                ));
                ks.push(self.elementwise(
                    "softmax",
                    gener,
                    b * heads * maxlen * maxlen,
                    bytes::SOFTMAX_EAGER,
                ));
                ks.push(SimKernel::new("attnv", attnv));
                ks.push(self.elementwise("transpose", gener, rows_full * h, bytes::COPY));
                ks.push(self.mm("proj2_mm", vendor, rows_full, h, h));
                ks.push(self.elementwise("proj2_bias", gener, rows_full * h, bytes::BIAS));
                ks.push(self.elementwise("residual1", gener, rows_full * h, bytes::BIAS));
                ks.push(self.elementwise("layernorm1", gener, rows_full * h, bytes::LAYERNORM));
                ks.push(self.mm("ff1_mm", vendor, rows_full, h, ff));
                ks.push(self.elementwise("ff1_bias_act", gener, rows_full * ff, bytes::BIAS));
                ks.push(self.mm("ff2_mm", vendor, rows_full, ff, h));
                ks.push(self.elementwise("ff2_bias", gener, rows_full * h, bytes::BIAS));
                ks.push(self.elementwise("residual2", gener, rows_full * h, bytes::BIAS));
                ks.push(self.elementwise("layernorm2", gener, rows_full * h, bytes::LAYERNORM));
                ks
            }
            EncoderImpl::Ft => {
                // Fig. 3 left, with full padding everywhere: 12 kernels.
                let mut qkt = Vec::new();
                let mut attnv = Vec::new();
                for _ in 0..b {
                    for _ in 0..heads {
                        self.gemm_blocks(&mut qkt, vendor, maxlen, hd, maxlen, 32);
                        self.gemm_blocks(&mut attnv, vendor, maxlen, maxlen, hd, 32);
                    }
                }
                vec![
                    self.mm("qkv_proj_mm", vendor, rows_full, h, 3 * h),
                    self.elementwise("qkv_bias_addpad", vendor, rows_full * 3 * h, bytes::BIAS),
                    SimKernel::new("qkt", qkt),
                    self.elementwise(
                        "softmax",
                        vendor,
                        b * heads * maxlen * maxlen,
                        bytes::SOFTMAX_FT,
                    ),
                    SimKernel::new("attnv", attnv),
                    self.elementwise("transpose_removepad", vendor, rows_full * h, bytes::COPY),
                    self.mm("linproj_mm", vendor, rows_full, h, h),
                    self.elementwise(
                        "bias_residual_layernorm1",
                        vendor,
                        rows_full * h,
                        bytes::BIAS + bytes::LAYERNORM,
                    ),
                    self.mm("ff1_mm", vendor, rows_full, h, ff),
                    self.elementwise("ff1_bias_act", vendor, rows_full * ff, bytes::BIAS),
                    self.mm("ff2_mm", vendor, rows_full, ff, h),
                    self.elementwise(
                        "ff2_bias_residual_layernorm2",
                        vendor,
                        rows_full * h,
                        bytes::BIAS + bytes::LAYERNORM,
                    ),
                ]
            }
            EncoderImpl::FtEff => {
                // Linear ops on packed rows; SDPA fully padded; explicit
                // padding-change kernels (Fig. 3's AddPad/RemovePad).
                let mut qkt = Vec::new();
                let mut attnv = Vec::new();
                for _ in 0..b {
                    for _ in 0..heads {
                        self.gemm_blocks(&mut qkt, vendor, maxlen, hd, maxlen, 32);
                        self.gemm_blocks(&mut attnv, vendor, maxlen, maxlen, hd, 32);
                    }
                }
                vec![
                    self.mm("qkv_proj_mm", vendor, s_rows, h, 3 * h),
                    self.elementwise("qkv_bias_addpad", vendor, rows_full * 3 * h, bytes::BIAS),
                    SimKernel::new("qkt", qkt),
                    self.elementwise(
                        "softmax",
                        vendor,
                        b * heads * maxlen * maxlen,
                        bytes::SOFTMAX_FT,
                    ),
                    SimKernel::new("attnv", attnv),
                    self.elementwise("transpose_removepad", vendor, rows_full * h, bytes::COPY),
                    self.mm("linproj_mm", vendor, s_rows, h, h),
                    self.elementwise(
                        "bias_residual_layernorm1",
                        vendor,
                        s_rows * h,
                        bytes::BIAS + bytes::LAYERNORM,
                    ),
                    self.mm("ff1_mm", vendor, s_rows, h, ff),
                    self.elementwise("ff1_bias_act", vendor, s_rows * ff, bytes::BIAS),
                    self.mm("ff2_mm", vendor, s_rows, ff, h),
                    self.elementwise(
                        "ff2_bias_residual_layernorm2",
                        vendor,
                        s_rows * h,
                        bytes::BIAS + bytes::LAYERNORM,
                    ),
                ]
            }
            EncoderImpl::Cora => self.cora_kernels(lens),
        }
    }

    fn cora_kernels(&self, lens: &[usize]) -> Vec<SimKernel> {
        let h = self.cfg.hidden;
        let ff = self.cfg.ff;
        let heads = self.cfg.heads;
        let hd = self.cfg.head_dim;
        let s_rows: usize = lens.iter().sum();
        let s_bulk = self.pad_to(s_rows, self.bulk_pad);
        let gener = KernelTraits::generated();
        let qkt_traits = if self.hoist_loads {
            KernelTraits::generated().with_hoisted_indirect()
        } else {
            KernelTraits::generated().with_indirect()
        };
        // Sorted descending = the longest-first block schedule of §D.2.
        let mut sorted: Vec<usize> = lens.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));

        let mut qkt = Vec::new();
        let mut softmax_elems = 0usize;
        let mut attnv = Vec::new();
        for &l in &sorted {
            let lp = self.pad_to(l, self.seq_pad);
            for _ in 0..heads {
                // QKT on the partially padded lp×lp matrix.
                self.gemm_blocks(&mut qkt, qkt_traits, lp, hd, lp, 32);
                // AttnV via op-split + hfusion: exact rows, tile 64 plus
                // ragged tail in the same launch (§7.3).
                let full_tiles = l / 64;
                for _ in 0..full_tiles {
                    attnv.push(
                        self.model
                            .block_time_us(2.0 * 64.0 * l as f64 * hd as f64, gener),
                    );
                }
                let tail = l % 64;
                if tail > 0 {
                    attnv.push(
                        self.model
                            .block_time_us(2.0 * tail as f64 * l as f64 * hd as f64, gener),
                    );
                }
            }
            softmax_elems += heads * lp * lp;
        }
        let mut ks = vec![
            // 1: fused QKV projection + bias over bulk-padded rows.
            self.mm("qkv_proj_bias", gener, s_bulk, h, 3 * h),
            // 2-4: SDPA.
            SimKernel::new("qkt", qkt),
            self.elementwise("softmax", gener, softmax_elems, bytes::SOFTMAX_CORA),
            SimKernel::new("attnv", attnv),
            // 5: output projection + bias + residual (+ fused pad change).
            self.mm("proj2_bias_residual", gener, s_bulk, h, h),
            // 6: layer norm.
            self.elementwise("layernorm1", gener, s_rows * h, bytes::LAYERNORM),
            // 7-8: feed-forward.
            self.mm("ff1_bias_act", gener, s_bulk, h, ff),
            self.mm("ff2_bias_residual", gener, s_bulk, ff, h),
            // 9: layer norm.
            self.elementwise("layernorm2", gener, s_rows * h, bytes::LAYERNORM),
        ];
        if !self.fuse_pad_change {
            // Fig. 12 ablation: unfused padding-change operators become
            // standalone memory passes around the SDPA ops.
            let attn_elems: usize = sorted
                .iter()
                .map(|&l| heads * self.pad_to(l, self.seq_pad) * self.pad_to(l, self.seq_pad))
                .sum();
            ks.insert(
                1,
                self.elementwise("change_pad_q", gener, s_rows * h, bytes::COPY),
            );
            ks.insert(
                3,
                self.elementwise("change_pad_s", gener, attn_elems, bytes::COPY),
            );
            ks.insert(
                6,
                self.elementwise("remove_pad", gener, s_rows * h, bytes::COPY),
            );
        }
        ks
    }

    /// CoRa's prelude cost for one mini-batch: auxiliary bytes (fusion
    /// maps + row offsets), host build time, and the copy.
    ///
    /// Returns `(bytes, build_us)`.
    pub fn cora_prelude(&self, lens: &[usize]) -> (usize, f64) {
        let t0 = std::time::Instant::now();
        let maps = FusedLoopMaps::build(lens);
        let bytes = maps.memory_bytes()
            // Row-offset arrays (A_d) for the ragged tensors of the layer:
            // qkv/attn/hidden rows + per-(seq) attention offsets.
            + 4 * (lens.len() + 1) * 8
            // Per-dimension padded length tables.
            + 2 * lens.len() * 8;
        let build_us = t0.elapsed().as_secs_f64() * 1e6;
        (bytes, build_us)
    }

    /// End-to-end per-layer latency in milliseconds, charging CoRa its
    /// per-layer share of the prelude (built once per mini-batch, shared
    /// across [`EncoderConfig::layers`] layers, as in Table 4).
    pub fn layer_latency_ms(&self, imp: EncoderImpl, lens: &[usize]) -> f64 {
        let sim = GpuSim::with_model(self.model);
        let ks = self.kernels(imp, lens);
        let mut total_us = sim.run(&ks, 0).total_us;
        if imp == EncoderImpl::Cora {
            let (bytes, build_us) = self.cora_prelude(lens);
            let copy_us = self.model.copy_time_us(bytes);
            total_us += (build_us + copy_us) / self.cfg.layers as f64;
        }
        total_us / 1e3
    }

    /// Per-kernel breakdown (name, milliseconds) including launch
    /// overheads — the Fig. 13 view.
    pub fn breakdown_ms(&self, imp: EncoderImpl, lens: &[usize]) -> Vec<(String, f64)> {
        let sim = GpuSim::with_model(self.model);
        self.kernels(imp, lens)
            .iter()
            .map(|k| {
                let r = sim.run_kernel(k);
                (k.name.clone(), (r.makespan_us + r.launch_us) / 1e3)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_datasets::Dataset;

    fn sim() -> EncoderSim {
        EncoderSim::new(EncoderConfig::base())
    }

    #[test]
    fn cora_launches_nine_kernels_ft_twelve() {
        let s = sim();
        let lens = Dataset::Race.sample_batch_sorted(32, 1);
        assert_eq!(s.kernels(EncoderImpl::Cora, &lens).len(), 9);
        assert_eq!(s.kernels(EncoderImpl::Ft, &lens).len(), 12);
        assert_eq!(s.kernels(EncoderImpl::FtEff, &lens).len(), 12);
        assert!(s.kernels(EncoderImpl::PyTorch, &lens).len() > 12);
    }

    #[test]
    fn cora_beats_fully_padded_on_skewed_batches() {
        let s = sim();
        for ds in [Dataset::Mnli, Dataset::Squad, Dataset::Race] {
            let lens = ds.sample_batch_sorted(128, 2);
            let cora = s.layer_latency_ms(EncoderImpl::Cora, &lens);
            let pt = s.layer_latency_ms(EncoderImpl::PyTorch, &lens);
            let ft = s.layer_latency_ms(EncoderImpl::Ft, &lens);
            assert!(cora < pt, "{ds:?}: CoRa {cora:.2} vs PyTorch {pt:.2}");
            assert!(cora < ft, "{ds:?}: CoRa {cora:.2} vs FT {ft:.2}");
        }
    }

    #[test]
    fn ft_eff_between_ft_and_cora_for_long_sequences() {
        let s = sim();
        let lens = Dataset::Race.sample_batch_sorted(128, 3);
        let ft = s.layer_latency_ms(EncoderImpl::Ft, &lens);
        let eff = s.layer_latency_ms(EncoderImpl::FtEff, &lens);
        assert!(eff < ft, "FT-Eff {eff:.2} should beat FT {ft:.2}");
    }

    #[test]
    fn pad_change_fusion_helps() {
        let mut s = sim();
        let lens = Dataset::Race.sample_batch_sorted(64, 4);
        let fused = s.layer_latency_ms(EncoderImpl::Cora, &lens);
        s.fuse_pad_change = false;
        let unfused = s.layer_latency_ms(EncoderImpl::Cora, &lens);
        assert!(fused < unfused, "fused {fused:.3} vs unfused {unfused:.3}");
    }

    #[test]
    fn prelude_cost_is_small_fraction() {
        let s = sim();
        let lens = Dataset::Race.sample_batch_sorted(128, 5);
        let (bytes, _) = s.cora_prelude(&lens);
        let copy_ms = s.model.copy_time_us(bytes) / 1e3;
        let layer_ms = s.layer_latency_ms(EncoderImpl::Cora, &lens);
        assert!(
            copy_ms / s.cfg.layers as f64 / layer_ms < 0.1,
            "prelude share too large: {copy_ms} vs {layer_ms}"
        );
    }
}
