//! Batched masked multi-head attention — the decoder-side workload of
//! §D.3, executed numerically on the CPU.
//!
//! Under causal masking, every sequence's attention matrix is lower
//! triangular, so masked SDPA is a batch of triangular ragged operations:
//! the CoRa implementation computes row `i` against keys `0..=i` only,
//! while the padded baseline computes the full `max_len × max_len` score
//! matrix and masks afterwards. Both paths share `Proj1`/`Proj2` with the
//! unmasked module.

use cora_exec::CpuPool;
use cora_kernels::elementwise::bias_add_rows;
use cora_kernels::softmax::softmax_row;

use crate::config::EncoderConfig;
use crate::encoder::{parallel_sgemm, RaggedBatch};
use crate::weights::EncoderWeights;

/// Masked SDPA over one sequence (all heads), ragged (triangular) form:
/// row `i` attends to keys `0..=i`.
fn masked_sdpa_seq_ragged(
    cfg: &EncoderConfig,
    l: usize,
    qkv: &[f32],
    qkv_row0: usize,
    out: &mut [f32],
) {
    let h = cfg.hidden;
    let hd = cfg.head_dim;
    let ld = 3 * h;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut row = vec![0.0f32; l];
    for head in 0..cfg.heads {
        let q0 = qkv_row0 * ld + head * hd;
        let k0 = qkv_row0 * ld + h + head * hd;
        let v0 = qkv_row0 * ld + 2 * h + head * hd;
        for i in 0..l {
            let valid = i + 1;
            // Triangular QKᵀ row: only `valid` dot products.
            for (j, r) in row.iter_mut().enumerate().take(valid) {
                let mut acc = 0.0f32;
                for d in 0..hd {
                    acc += qkv[q0 + i * ld + d] * qkv[k0 + j * ld + d];
                }
                *r = acc * scale;
            }
            softmax_row(&mut row[..valid], valid);
            // Triangular AttnV row.
            let o = i * h + head * hd;
            for d in 0..hd {
                out[o + d] = 0.0;
            }
            for (j, &p) in row.iter().enumerate().take(valid) {
                for d in 0..hd {
                    out[o + d] += p * qkv[v0 + j * ld + d];
                }
            }
        }
    }
}

/// Masked SDPA over one sequence, fully padded form: full `lp × lp`
/// scores with an additive causal mask — the wasted computation the
/// paper's PyTorch baseline performs.
fn masked_sdpa_seq_padded(
    cfg: &EncoderConfig,
    lp: usize,
    valid_len: usize,
    qkv: &[f32],
    qkv_row0: usize,
    out: &mut [f32],
) {
    let h = cfg.hidden;
    let hd = cfg.head_dim;
    let ld = 3 * h;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut row = vec![0.0f32; lp];
    for head in 0..cfg.heads {
        let q0 = qkv_row0 * ld + head * hd;
        let k0 = qkv_row0 * ld + h + head * hd;
        let v0 = qkv_row0 * ld + 2 * h + head * hd;
        for i in 0..lp {
            // Full-width dot products (the padding waste), then mask.
            for (j, r) in row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for d in 0..hd {
                    acc += qkv[q0 + i * ld + d] * qkv[k0 + j * ld + d];
                }
                *r = if j <= i && j < valid_len {
                    acc * scale
                } else {
                    f32::NEG_INFINITY
                };
            }
            // valid_len == 0 (an empty sequence in the batch) makes every
            // score -inf; softmax_row zeroes fully-masked rows.
            let valid = (i + 1).min(valid_len);
            softmax_row(&mut row, valid.min(lp));
            let o = i * h + head * hd;
            for d in 0..hd {
                out[o + d] = 0.0;
            }
            for (j, &p) in row.iter().enumerate().take(valid) {
                for d in 0..hd {
                    out[o + d] += p * qkv[v0 + j * ld + d];
                }
            }
        }
    }
}

/// Masked MHA forward over ragged storage (CoRa-NoPad). Returns
/// `Σ lens × hidden`.
pub fn masked_mha_ragged(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    x: &RaggedBatch,
) -> Vec<f32> {
    let h = cfg.hidden;
    let rows = x.rows();
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, &x.data, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);
    let mut attn = vec![0.0f32; rows * h];
    let row_lens: Vec<usize> = x.lens.iter().map(|&l| l * h).collect();
    pool.parallel_rows(&mut attn, &row_lens, |s, out| {
        masked_sdpa_seq_ragged(cfg, x.lens[s], &qkv, x.row_offset(s), out);
    });
    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut out);
    bias_add_rows(&mut out, h, &w.bo);
    out
}

/// Masked MHA over fully padded storage (`batch × max_len` rows).
pub fn masked_mha_padded(
    pool: &CpuPool,
    cfg: &EncoderConfig,
    w: &EncoderWeights,
    lens: &[usize],
    max_len: usize,
    x_padded: &[f32],
) -> Vec<f32> {
    let h = cfg.hidden;
    let rows = lens.len() * max_len;
    let mut qkv = vec![0.0f32; rows * 3 * h];
    parallel_sgemm(pool, rows, h, 3 * h, x_padded, &w.wqkv, &mut qkv);
    bias_add_rows(&mut qkv, 3 * h, &w.bqkv);
    let mut attn = vec![0.0f32; rows * h];
    let row_lens: Vec<usize> = vec![max_len * h; lens.len()];
    pool.parallel_rows(&mut attn, &row_lens, |s, out| {
        masked_sdpa_seq_padded(cfg, max_len, lens[s], &qkv, s * max_len, out);
    });
    let mut out = vec![0.0f32; rows * h];
    parallel_sgemm(pool, rows, h, h, &attn, &w.wo, &mut out);
    bias_add_rows(&mut out, h, &w.bo);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpad(out: &[f32], lens: &[usize], max_len: usize, h: usize) -> Vec<f32> {
        let mut v = Vec::new();
        for (s, &l) in lens.iter().enumerate() {
            let base = s * max_len * h;
            v.extend_from_slice(&out[base..base + l * h]);
        }
        v
    }

    #[test]
    fn ragged_masked_mha_matches_padded() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 13);
        let lens = vec![9usize, 5, 2];
        let x = RaggedBatch::random(&lens, cfg.hidden, 14);
        let pool = CpuPool::new(2);
        let r = masked_mha_ragged(&pool, &cfg, &w, &x);
        let max_len = 9;
        let p = masked_mha_padded(&pool, &cfg, &w, &lens, max_len, &x.to_padded(max_len));
        let pv = unpad(&p, &lens, max_len, cfg.hidden);
        let worst = r
            .iter()
            .zip(&pv)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-3, "masked MHA divergence {worst}");
    }

    #[test]
    fn empty_sequence_in_batch_is_nan_free_and_matches_ragged() {
        // A zero-length sequence makes every padded attention score -inf;
        // the old softmax produced all-NaN rows for it. Fixed: fully
        // masked rows carry no probability mass, outputs stay finite, and
        // the ragged/padded paths still agree on valid rows.
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 19);
        let lens = vec![4usize, 0, 3];
        let max_len = 4;
        let pool = CpuPool::new(2);
        let x = RaggedBatch::random(&lens, cfg.hidden, 20);
        let p = masked_mha_padded(&pool, &cfg, &w, &lens, max_len, &x.to_padded(max_len));
        assert!(
            p.iter().all(|v| v.is_finite()),
            "padded masked MHA output must be NaN-free with an empty sequence"
        );
        let r = masked_mha_ragged(&pool, &cfg, &w, &x);
        let pv = unpad(&p, &lens, max_len, cfg.hidden);
        let worst = r
            .iter()
            .zip(&pv)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-3, "masked MHA divergence {worst} with len-0 seq");
    }

    #[test]
    fn causality_holds() {
        // Changing a later token must not affect earlier outputs.
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 15);
        let lens = vec![6usize];
        let pool = CpuPool::new(1);
        let x1 = RaggedBatch::random(&lens, cfg.hidden, 16);
        let mut x2 = x1.clone();
        // Perturb the last token's hidden vector.
        let h = cfg.hidden;
        for d in 0..h {
            x2.data[5 * h + d] += 1.0;
        }
        let y1 = masked_mha_ragged(&pool, &cfg, &w, &x1);
        let y2 = masked_mha_ragged(&pool, &cfg, &w, &x2);
        // Rows 0..5 identical; row 5 differs.
        assert_eq!(
            &y1[..5 * h],
            &y2[..5 * h],
            "earlier rows must not see the future"
        );
        assert_ne!(&y1[5 * h..], &y2[5 * h..], "last row must change");
    }

    #[test]
    fn first_row_attends_only_to_itself() {
        let cfg = EncoderConfig::scaled(8);
        let w = EncoderWeights::random(&cfg, 17);
        let pool = CpuPool::new(1);
        let a = RaggedBatch::random(&[4], cfg.hidden, 18);
        // A second batch sharing only token 0.
        let mut b = a.clone();
        let h = cfg.hidden;
        for v in b.data[h..].iter_mut() {
            *v += 0.5;
        }
        let ya = masked_mha_ragged(&pool, &cfg, &w, &a);
        let yb = masked_mha_ragged(&pool, &cfg, &w, &b);
        assert_eq!(&ya[..h], &yb[..h], "row 0 depends only on token 0");
    }
}
