//! Analytic FLOP and memory accounting for the encoder layer.
//!
//! Powers Fig. 2 (wasted computation vs batch size), Fig. 19 (activation
//! memory), and Fig. 22 (partial-padding overhead). The paper computes
//! these quantities "analytically"; we count multiply-adds as 2 FLOPs.

use crate::config::EncoderConfig;

/// How sequence lengths are padded before counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// No padding at all (the ideal).
    None,
    /// CoRa's partial padding: per-sequence lengths rounded up to
    /// `seq_multiple` for the SDPA operators, and the *sum* of lengths
    /// rounded up to `bulk_multiple` for the fused linear operators.
    Partial {
        /// Per-sequence padding multiple (SDPA ops).
        seq_multiple: usize,
        /// Bulk padding multiple (fused linear ops).
        bulk_multiple: usize,
    },
    /// Full padding to the longest sequence in the batch.
    Full,
}

fn padded_lens(lens: &[usize], padding: Padding) -> (Vec<usize>, usize) {
    match padding {
        Padding::None => (lens.to_vec(), lens.iter().sum()),
        Padding::Partial {
            seq_multiple,
            bulk_multiple,
        } => {
            let per: Vec<usize> = lens
                .iter()
                .map(|&l| l.div_ceil(seq_multiple) * seq_multiple)
                .collect();
            let total: usize = lens.iter().sum();
            (per, total.div_ceil(bulk_multiple) * bulk_multiple)
        }
        Padding::Full => {
            let max = lens.iter().copied().max().unwrap_or(0);
            (vec![max; lens.len()], max * lens.len())
        }
    }
}

/// FLOPs of one encoder-layer forward pass over a batch of sequences.
pub fn encoder_flops(cfg: &EncoderConfig, lens: &[usize], padding: Padding) -> f64 {
    let (per_seq, linear_rows) = padded_lens(lens, padding);
    let h = cfg.hidden as f64;
    let ff = cfg.ff as f64;
    let rows = linear_rows as f64;
    // Linear (per-token) operators: QKV projection (h -> 3h), output
    // projection (h -> h), FF1 (h -> ff), FF2 (ff -> h), plus biases,
    // residuals and layer norms.
    let linear = rows * (2.0 * h * 3.0 * h)   // QKV proj
        + rows * (2.0 * h * h)                // Proj2
        + rows * (2.0 * h * ff)               // FF1
        + rows * (2.0 * ff * h)               // FF2
        + rows * (3.0 * h + ff)               // biases
        + rows * (2.0 * h)                    // residual adds
        + rows * (2.0 * 8.0 * h); // two layer norms

    // SDPA (per-sequence, quadratic) operators.
    let mut sdpa = 0.0;
    for &l in &per_seq {
        let lf = l as f64;
        sdpa += 2.0 * lf * lf * h; // QK^T across all heads
        sdpa += 4.0 * lf * lf * cfg.heads as f64; // softmax
        sdpa += 2.0 * lf * lf * h; // AttnV
    }
    linear + sdpa
}

/// Bytes of forward activations of one encoder layer (f32), the quantity
/// Fig. 19 compares between dense and ragged storage.
pub fn encoder_activation_bytes(cfg: &EncoderConfig, lens: &[usize], padding: Padding) -> f64 {
    let (per_seq, linear_rows) = padded_lens(lens, padding);
    let h = cfg.hidden as f64;
    let ff = cfg.ff as f64;
    let rows = linear_rows as f64;
    // Row-shaped activations: QKV (3h), attention output (h), proj2 out
    // (h), LN out (h), FF1 out (ff), FF2 out (h), LN out (h).
    let linear = rows * (3.0 * h + h + h + h + ff + h + h);
    // Attention matrices: heads × l × l, twice (scores + probabilities).
    let mut attn = 0.0;
    for &l in &per_seq {
        attn += 2.0 * cfg.heads as f64 * (l * l) as f64;
    }
    4.0 * (linear + attn)
}

/// The relative wasted computation of Fig. 2: FLOPs with full padding
/// divided by FLOPs without padding.
pub fn wasted_computation_ratio(cfg: &EncoderConfig, lens: &[usize]) -> f64 {
    encoder_flops(cfg, lens, Padding::Full) / encoder_flops(cfg, lens, Padding::None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_datasets::Dataset;

    #[test]
    fn full_padding_never_cheaper() {
        let cfg = EncoderConfig::base();
        for ds in cora_datasets::ALL_DATASETS {
            let lens = ds.sample_lengths(32, 11);
            let ideal = encoder_flops(&cfg, &lens, Padding::None);
            let partial = encoder_flops(
                &cfg,
                &lens,
                Padding::Partial {
                    seq_multiple: 32,
                    bulk_multiple: 64,
                },
            );
            let full = encoder_flops(&cfg, &lens, Padding::Full);
            assert!(ideal <= partial && partial <= full, "{ds:?}");
        }
    }

    #[test]
    fn uniform_lengths_waste_nothing() {
        let cfg = EncoderConfig::base();
        let lens = vec![128; 32];
        assert!((wasted_computation_ratio(&cfg, &lens) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waste_grows_with_batch_size() {
        // Fig. 2's core observation: larger batches waste more.
        let cfg = EncoderConfig::base();
        let small = Dataset::Mnli.sample_lengths(2, 5);
        let large = Dataset::Mnli.sample_lengths(128, 5);
        assert!(
            wasted_computation_ratio(&cfg, &large) > wasted_computation_ratio(&cfg, &small),
            "batch 128 should waste more than batch 2"
        );
    }

    #[test]
    fn partial_padding_overhead_is_small() {
        // §7.4: ~3.5% at batch 32, ~2.3% at batch 128 across datasets.
        let cfg = EncoderConfig::base();
        let mut total_overhead = 0.0;
        let mut n = 0;
        for ds in cora_datasets::ALL_DATASETS {
            let lens = ds.sample_batch_sorted(128, 9);
            let ideal = encoder_flops(&cfg, &lens, Padding::None);
            let partial = encoder_flops(
                &cfg,
                &lens,
                Padding::Partial {
                    seq_multiple: 32,
                    bulk_multiple: 64,
                },
            );
            total_overhead += partial / ideal - 1.0;
            n += 1;
        }
        let avg = total_overhead / n as f64;
        assert!(avg < 0.15, "avg partial-padding overhead {avg} too large");
        assert!(avg > 0.0, "partial padding must cost something");
    }

    #[test]
    fn ragged_memory_smaller_for_skewed_datasets() {
        let cfg = EncoderConfig::base();
        let lens = Dataset::Cola.sample_lengths(64, 3);
        let dense = encoder_activation_bytes(&cfg, &lens, Padding::Full);
        let ragged = encoder_activation_bytes(
            &cfg,
            &lens,
            Padding::Partial {
                seq_multiple: 32,
                bulk_multiple: 64,
            },
        );
        assert!(ragged < dense);
    }
}
