//! Operation-splitting and horizontal-fusion ablations on the AttnV and
//! QKT operators (§7.3, §D.6; Figs. 14, 20, 21).
//!
//! All variants compute the same useful work; they differ in padding,
//! launch count and code complexity:
//!
//! * **NoSplit** — the non-reduction vloop is padded up to the tile size
//!   (64), wasting FLOPs but using one launch.
//! * **Split** — operation splitting removes the padding (full tiles
//!   guard-free, exact tail) but launches *two* kernels, halving the work
//!   available per launch.
//! * **Split-HFused** — the two kernels share one launch; the tail blocks
//!   fill the scheduling bubbles of the main kernel.
//! * **Split2-HFused** (QKT only) — both vloops split; the extra index
//!   arithmetic shows up as an indirect-access penalty the CUDA compiler
//!   cannot hoist (§D.6's observed instruction growth).

use cora_exec::cost::{GpuModel, KernelTraits};
use cora_exec::gpu::{GpuSim, SimKernel};

use crate::config::EncoderConfig;

/// Ablation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitVariant {
    /// Pad the vloop to the tile size; single kernel.
    NoSplit,
    /// Operation splitting; two kernels.
    Split,
    /// Operation splitting + horizontal fusion; one kernel.
    SplitHFused,
    /// Both vloops split + hfused (QKT only).
    Split2HFused,
}

impl SplitVariant {
    /// Display name matching the figures.
    pub fn name(self) -> &'static str {
        match self {
            SplitVariant::NoSplit => "NoSplit",
            SplitVariant::Split => "Split",
            SplitVariant::SplitHFused => "Split-HFused",
            SplitVariant::Split2HFused => "Split2-HFused",
        }
    }
}

const TILE: usize = 64;

fn pad_to(l: usize, m: usize) -> usize {
    l.div_ceil(m) * m
}

/// AttnV kernels for one variant: per (sequence, head), `out[l, hd] =
/// scores[l, l] · V[l, hd]` where the non-reduction row vloop is the
/// transform target.
pub fn attnv_kernels(
    cfg: &EncoderConfig,
    model: &GpuModel,
    variant: SplitVariant,
    lens: &[usize],
) -> Vec<SimKernel> {
    let hd = cfg.head_dim;
    let traits = KernelTraits::generated();
    let mut main = Vec::new();
    let mut tail = Vec::new();
    for &l in lens {
        for _ in 0..cfg.heads {
            match variant {
                SplitVariant::NoSplit => {
                    // Rows padded to the tile: ceil(l/64) full 64-row
                    // blocks, every block doing full-tile work.
                    let lp = pad_to(l, TILE);
                    for _ in 0..lp / TILE {
                        main.push(
                            model.block_time_us(2.0 * TILE as f64 * l as f64 * hd as f64, traits),
                        );
                    }
                }
                _ => {
                    // Split: full tiles guard-free + exact ragged tail.
                    for _ in 0..l / TILE {
                        main.push(
                            model.block_time_us(2.0 * TILE as f64 * l as f64 * hd as f64, traits),
                        );
                    }
                    let t = l % TILE;
                    if t > 0 {
                        tail.push(
                            model.block_time_us(2.0 * t as f64 * l as f64 * hd as f64, traits),
                        );
                    }
                }
            }
        }
    }
    match variant {
        SplitVariant::NoSplit => vec![SimKernel::new("attnv", main)],
        SplitVariant::Split => vec![
            SimKernel::new("attnv_main", main),
            SimKernel::new("attnv_tail", tail),
        ],
        SplitVariant::SplitHFused | SplitVariant::Split2HFused => {
            vec![SimKernel::new("attnv_main", main).hfuse(SimKernel::new("attnv_tail", tail))]
        }
    }
}

/// QKT kernels for one variant: per (sequence, head), `scores[l, l] =
/// Q[l, hd] · K[l, hd]ᵀ` — two non-reduction vloops.
pub fn qkt_kernels(
    cfg: &EncoderConfig,
    model: &GpuModel,
    variant: SplitVariant,
    lens: &[usize],
) -> Vec<SimKernel> {
    let hd = cfg.head_dim;
    // QKT fuses vloops with the batch loop, so its accesses go through
    // the fusion maps: hoisted-indirect traits for the 1-vloop cases, the
    // full (unhoistable) penalty for the 2-vloop case (§D.6).
    // §D.6: splitting both vloops grows the executed instruction count —
    // the fused offset chains stop being hoistable and the tile tails
    // need guards, so the double-split variant pays both penalties.
    let traits = match variant {
        SplitVariant::Split2HFused => KernelTraits::generated().with_indirect().with_guards(),
        _ => KernelTraits::generated().with_hoisted_indirect(),
    };
    let mut main = Vec::new();
    let mut tail = Vec::new();
    for &l in lens {
        for _ in 0..cfg.heads {
            match variant {
                SplitVariant::NoSplit => {
                    let lp = pad_to(l, TILE);
                    for _ in 0..(lp / TILE) * (lp / TILE) {
                        main.push(
                            model
                                .block_time_us(2.0 * TILE as f64 * hd as f64 * TILE as f64, traits),
                        );
                    }
                }
                SplitVariant::Split | SplitVariant::SplitHFused => {
                    // Outer vloop split: full row tiles × padded cols,
                    // plus a ragged row tail.
                    let lp = pad_to(l, TILE);
                    for _ in 0..(l / TILE) * (lp / TILE) {
                        main.push(
                            model
                                .block_time_us(2.0 * TILE as f64 * hd as f64 * TILE as f64, traits),
                        );
                    }
                    let t = l % TILE;
                    if t > 0 {
                        for _ in 0..lp / TILE {
                            tail.push(
                                model.block_time_us(
                                    2.0 * t as f64 * hd as f64 * TILE as f64,
                                    traits,
                                ),
                            );
                        }
                    }
                }
                SplitVariant::Split2HFused => {
                    // Both vloops split: exact tiles everywhere.
                    let full = l / TILE;
                    let t = l % TILE;
                    for _ in 0..full * full {
                        main.push(
                            model
                                .block_time_us(2.0 * TILE as f64 * hd as f64 * TILE as f64, traits),
                        );
                    }
                    for _ in 0..2 * full {
                        tail.push(
                            model.block_time_us(2.0 * t as f64 * hd as f64 * TILE as f64, traits),
                        );
                    }
                    if t > 0 {
                        tail.push(
                            model.block_time_us(2.0 * t as f64 * hd as f64 * t as f64, traits),
                        );
                    }
                }
            }
        }
    }
    match variant {
        SplitVariant::NoSplit => vec![SimKernel::new("qkt", main)],
        SplitVariant::Split => vec![
            SimKernel::new("qkt_main", main),
            SimKernel::new("qkt_tail", tail),
        ],
        SplitVariant::SplitHFused | SplitVariant::Split2HFused => {
            vec![SimKernel::new("qkt_main", main).hfuse(SimKernel::new("qkt_tail", tail))]
        }
    }
}

/// Simulated latency (ms) of a variant on a device model.
pub fn variant_latency_ms(kernels: &[SimKernel], model: &GpuModel) -> f64 {
    GpuSim::with_model(*model).run(kernels, 0).total_us / 1e3
}

/// A CPU-like device model for the 64-core ARM comparison: few execution
/// units, cheap "launches" (fork/join).
pub fn cpu_device_model(cores: usize) -> GpuModel {
    GpuModel {
        sm_count: cores,
        flops_per_sm_per_us: 16_000.0,
        kernel_launch_us: 8.0,
        h2d_bytes_per_us: f64::INFINITY,
        h2d_latency_us: 0.0,
        min_block_us: 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_datasets::Dataset;

    #[test]
    fn gpu_shapes_match_fig14() {
        // MNLI (lengths comparable to the tile size) at moderate batch:
        // split alone hurts (parallelism), hfusion restores it and beats
        // NoSplit.
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let lens = Dataset::Mnli.sample_batch_sorted(64, 1);
        let t = |v| variant_latency_ms(&attnv_kernels(&cfg, &model, v, &lens), &model);
        let nosplit = t(SplitVariant::NoSplit);
        let split = t(SplitVariant::Split);
        let hfused = t(SplitVariant::SplitHFused);
        assert!(
            hfused < nosplit,
            "hfused {hfused:.3} vs nosplit {nosplit:.3}"
        );
        assert!(hfused <= split, "hfused {hfused:.3} vs split {split:.3}");
    }

    #[test]
    fn cpu_shapes_match_fig14() {
        // On the CPU, splitting helps (less waste) and hfusion adds
        // nothing significant (low parallelism).
        let cfg = EncoderConfig::base();
        let model = cpu_device_model(64);
        let lens = Dataset::Mnli.sample_batch_sorted(512, 2);
        let t = |v| variant_latency_ms(&attnv_kernels(&cfg, &model, v, &lens), &model);
        let nosplit = t(SplitVariant::NoSplit);
        let split = t(SplitVariant::Split);
        let hfused = t(SplitVariant::SplitHFused);
        assert!(split < nosplit, "split {split:.3} vs nosplit {nosplit:.3}");
        let gain = (split - hfused) / split;
        assert!(gain < 0.05, "hfusion gain on CPU should be small: {gain}");
    }

    #[test]
    fn qkt_double_split_not_better() {
        // §D.6: splitting both vloops is never better than one.
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let lens = Dataset::Mnli.sample_batch_sorted(256, 3);
        let one = variant_latency_ms(
            &qkt_kernels(&cfg, &model, SplitVariant::SplitHFused, &lens),
            &model,
        );
        let two = variant_latency_ms(
            &qkt_kernels(&cfg, &model, SplitVariant::Split2HFused, &lens),
            &model,
        );
        assert!(two >= one, "two-vloop split {two:.3} vs one {one:.3}");
    }

    #[test]
    fn split_conserves_useful_blocks() {
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let lens = vec![100usize, 64, 65];
        let split = attnv_kernels(&cfg, &model, SplitVariant::Split, &lens);
        let fused = attnv_kernels(&cfg, &model, SplitVariant::SplitHFused, &lens);
        let split_blocks: usize = split.iter().map(|k| k.block_costs_us.len()).sum();
        let fused_blocks: usize = fused.iter().map(|k| k.block_costs_us.len()).sum();
        assert_eq!(split_blocks, fused_blocks);
        // Work conserved between split and hfused forms.
        let w1: f64 = split.iter().map(|k| k.total_work_us()).sum();
        let w2: f64 = fused.iter().map(|k| k.total_work_us()).sum();
        assert!((w1 - w2).abs() < 1e-9);
    }
}
