//! Masked scaled dot-product attention (§D.3, Fig. 17/18).
//!
//! The decoder masks the upper triangle of every attention matrix, so
//! masked SDPA is a batch of *lower-triangular* ragged operations: row
//! `i` of a length-`l` sequence attends to `i+1` keys. Three
//! implementations:
//!
//! * **PyTorch** — both vloops fully padded: every sequence computes
//!   `max_len × max_len` scores, masking afterwards.
//! * **CoRa-Pad** — outer vloop partially padded, inner loop (the
//!   triangle) fully padded to the sequence length.
//! * **CoRa-NoPad** — both vloops partially padded: row `i` computes only
//!   `pad(i+1)` scores.
//!
//! Also provides a numeric CPU implementation pair for correctness tests.

use cora_exec::cost::{GpuModel, KernelTraits};
use cora_exec::gpu::{GpuSim, SimKernel};
use cora_kernels::softmax::softmax_row;

use crate::config::EncoderConfig;

/// The three masked-SDPA implementations of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskedImpl {
    /// Fully padded (both vloops).
    PyTorch,
    /// Outer vloop partially padded, triangle fully padded.
    CoraPad,
    /// Both vloops partially padded.
    CoraNoPad,
}

impl MaskedImpl {
    /// Display name matching the figure.
    pub fn name(self) -> &'static str {
        match self {
            MaskedImpl::PyTorch => "PyTorch",
            MaskedImpl::CoraPad => "CoRa-Pad",
            MaskedImpl::CoraNoPad => "CoRa-NoPad",
        }
    }
}

/// Simulated latency (ms) of masked SDPA (QKT + softmax + AttnV) for a
/// batch of sequence lengths.
pub fn masked_sdpa_latency_ms(
    cfg: &EncoderConfig,
    model: &GpuModel,
    imp: MaskedImpl,
    lens: &[usize],
    seq_pad: usize,
) -> f64 {
    let heads = cfg.heads;
    let hd = cfg.head_dim;
    let maxlen = lens.iter().copied().max().unwrap_or(0);
    let traits = match imp {
        MaskedImpl::PyTorch => KernelTraits::vendor(),
        _ => KernelTraits::generated(),
    };
    let pad = |l: usize| l.div_ceil(seq_pad) * seq_pad;
    let mut qkt = Vec::new();
    let mut attnv = Vec::new();
    let mut softmax_elems = 0usize;
    for &l in lens {
        let rows = match imp {
            MaskedImpl::PyTorch => maxlen,
            _ => pad(l),
        };
        for _ in 0..heads {
            // Row-tile granularity of 32 rows per block.
            for bi in 0..rows.div_ceil(32).max(1) {
                let r = (rows - bi * 32).min(32);
                let row_end = (bi * 32 + r).min(rows);
                let cols = match imp {
                    MaskedImpl::PyTorch => maxlen,
                    MaskedImpl::CoraPad => pad(l),
                    // Triangular: this row block needs only the first
                    // pad(row_end) columns.
                    MaskedImpl::CoraNoPad => pad(row_end),
                };
                qkt.push(model.block_time_us(2.0 * r as f64 * hd as f64 * cols as f64, traits));
                attnv.push(model.block_time_us(2.0 * r as f64 * cols as f64 * hd as f64, traits));
                softmax_elems += r * cols;
            }
        }
    }
    let softmax = cora_kernels::vendor::elementwise_kernel(
        "softmax",
        model,
        traits,
        softmax_elems * heads / heads, // elems already include head loop
        4.0 + 12.0 * model.flops_per_sm_per_us * model.sm_count as f64 / 900_000.0,
        32 * 1024,
    );
    let sim = GpuSim::with_model(*model);
    sim.run(
        &[
            SimKernel::new("qkt", qkt).remap_longest_first(),
            softmax,
            SimKernel::new("attnv", attnv).remap_longest_first(),
        ],
        0,
    )
    .total_us
        / 1e3
}

/// Numeric masked SDPA over one sequence's Q/K/V (each `l × hd`,
/// contiguous): row `i` attends to keys `0..=i`. Returns `l × hd`.
pub fn masked_sdpa_reference(l: usize, hd: usize, q: &[f32], k: &[f32], v: &[f32]) -> Vec<f32> {
    let scale = 1.0 / (hd as f32).sqrt();
    let mut out = vec![0.0f32; l * hd];
    let mut row = vec![0.0f32; l];
    for i in 0..l {
        let valid = i + 1;
        for (j, r) in row.iter_mut().enumerate().take(valid) {
            let mut acc = 0.0;
            for d in 0..hd {
                acc += q[i * hd + d] * k[j * hd + d];
            }
            *r = acc * scale;
        }
        softmax_row(&mut row[..valid], valid);
        for j in 0..valid {
            let p = row[j];
            for d in 0..hd {
                out[i * hd + d] += p * v[j * hd + d];
            }
        }
    }
    out
}

/// Numeric masked SDPA computed the *padded* way (full `l × l` scores
/// with an additive mask), for equivalence testing against the ragged
/// path.
pub fn masked_sdpa_padded(l: usize, hd: usize, q: &[f32], k: &[f32], v: &[f32]) -> Vec<f32> {
    let scale = 1.0 / (hd as f32).sqrt();
    let mut out = vec![0.0f32; l * hd];
    let mut scores = vec![0.0f32; l];
    for i in 0..l {
        for j in 0..l {
            let mut acc = 0.0;
            for d in 0..hd {
                acc += q[i * hd + d] * k[j * hd + d];
            }
            scores[j] = if j <= i {
                acc * scale
            } else {
                f32::NEG_INFINITY
            };
        }
        softmax_row(&mut scores, l);
        for j in 0..l {
            let p = scores[j];
            for d in 0..hd {
                out[i * hd + d] += p * v[j * hd + d];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_datasets::Dataset;

    #[test]
    fn nopad_fastest_pytorch_slowest() {
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let lens = Dataset::Race.sample_batch_sorted(128, 1);
        let pt = masked_sdpa_latency_ms(&cfg, &model, MaskedImpl::PyTorch, &lens, 32);
        let pad = masked_sdpa_latency_ms(&cfg, &model, MaskedImpl::CoraPad, &lens, 32);
        let nopad = masked_sdpa_latency_ms(&cfg, &model, MaskedImpl::CoraNoPad, &lens, 32);
        assert!(nopad < pad, "NoPad {nopad:.2} vs Pad {pad:.2}");
        assert!(pad < pt, "Pad {pad:.2} vs PyTorch {pt:.2}");
    }

    #[test]
    fn masking_benefit_smaller_for_short_sequences() {
        // §D.3: MNLI (short sequences) gains less from exploiting the
        // triangle than RACE because padding to 32 dominates.
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let race = Dataset::Race.sample_batch_sorted(128, 2);
        let mnli = Dataset::Mnli.sample_batch_sorted(128, 2);
        let gain = |lens: &[usize]| {
            masked_sdpa_latency_ms(&cfg, &model, MaskedImpl::CoraPad, lens, 32)
                / masked_sdpa_latency_ms(&cfg, &model, MaskedImpl::CoraNoPad, lens, 32)
        };
        assert!(gain(&race) > gain(&mnli));
    }

    #[test]
    fn ragged_reference_matches_padded_masking() {
        let (l, hd) = (13, 8);
        let q: Vec<f32> = (0..l * hd).map(|i| ((i % 11) as f32 - 5.0) * 0.1).collect();
        let k: Vec<f32> = (0..l * hd).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect();
        let v: Vec<f32> = (0..l * hd).map(|i| ((i % 5) as f32 - 2.0) * 0.1).collect();
        let a = masked_sdpa_reference(l, hd, &q, &k, &v);
        let b = masked_sdpa_padded(l, hd, &q, &k, &v);
        let worst = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-5, "divergence {worst}");
    }
}
