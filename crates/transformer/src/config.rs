//! Transformer encoder hyperparameters (§7.2).
//!
//! The paper's base model: 6 layers, hidden 512, 8 heads × 64, FF inner
//! 2048 — the hyperparameters of Vaswani et al.'s base transformer.

/// Encoder-layer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Feed-forward inner dimension.
    pub ff: usize,
    /// Number of encoder layers (prelude structures are shared across
    /// layers; Table 4 charges prelude cost assuming this many).
    pub layers: usize,
}

impl EncoderConfig {
    /// The paper's base configuration.
    pub fn base() -> Self {
        EncoderConfig {
            hidden: 512,
            heads: 8,
            head_dim: 64,
            ff: 2048,
            layers: 6,
        }
    }

    /// A proportionally scaled-down configuration for wall-clock CPU
    /// experiments (the *shape* of the padding-waste comparison depends on
    /// the length distribution, not the absolute model size).
    pub fn scaled(divisor: usize) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        let base = Self::base();
        EncoderConfig {
            hidden: (base.hidden / divisor).max(base.heads),
            heads: base.heads,
            head_dim: (base.hidden / divisor).max(base.heads) / base.heads,
            ff: (base.ff / divisor).max(4 * base.heads),
            layers: base.layers,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.heads * self.head_dim != self.hidden {
            return Err(format!(
                "heads ({}) × head_dim ({}) must equal hidden ({})",
                self.heads, self.head_dim, self.hidden
            ));
        }
        Ok(())
    }
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_consistent() {
        let c = EncoderConfig::base();
        assert!(c.validate().is_ok());
        assert_eq!(c.hidden, 512);
        assert_eq!(c.heads * c.head_dim, c.hidden);
    }

    #[test]
    fn scaled_stays_consistent() {
        for d in [1, 2, 4, 8] {
            let c = EncoderConfig::scaled(d);
            assert!(c.validate().is_ok(), "divisor {d}: {c:?}");
        }
    }

    #[test]
    fn invalid_config_detected() {
        let mut c = EncoderConfig::base();
        c.head_dim = 63;
        assert!(c.validate().is_err());
    }
}
