//! Prelude overhead accounting (§7.4 table, Tables 7/8).
//!
//! Builds — for a given dataset batch — the actual auxiliary structures
//! each scheme needs and reports construction time and memory:
//!
//! * **Sparse storage** — the CSF-style scheme of past work, one offset
//!   entry per slice of every variable dimension (built on the
//!   4-dimensional attention tensor).
//! * **CoRa storage** — the precise-dgraph prefix sums.
//! * **CoRa loop fusion** — the `ffo`/`ffi` maps of the fused linear
//!   operators.
//! * **Copy** — host-to-device transfer of whatever the scheme built.
//!
//! Tables 7/8's "redundant" vs "optimized" variants rebuild the
//! structures once per operator per tensor (the prototype's behaviour)
//! versus once per mini-batch with sharing.

use cora_exec::cost::GpuModel;
use cora_ragged::aux::{AuxOffsets, FusedLoopMaps};
use cora_ragged::csf::CsfStorage;
use cora_ragged::{Dim, RaggedLayout};

use crate::config::EncoderConfig;

/// One row of the §7.4 overhead table.
#[derive(Debug, Clone)]
pub struct PreludeCosts {
    /// CSF-style build time (ms).
    pub sparse_time_ms: f64,
    /// CSF-style memory (kB).
    pub sparse_mem_kb: f64,
    /// CoRa storage build time (ms).
    pub cora_storage_time_ms: f64,
    /// CoRa storage memory (kB).
    pub cora_storage_mem_kb: f64,
    /// CoRa loop-fusion build time (ms).
    pub cora_fusion_time_ms: f64,
    /// CoRa loop-fusion memory (kB).
    pub cora_fusion_mem_kb: f64,
    /// Host-to-device copy time for CoRa's structures (ms).
    pub cora_copy_ms: f64,
}

/// The attention-score layout `X[batch, len, heads, len]` of §5.3.
pub fn attention_layout(cfg: &EncoderConfig, lens: &[usize]) -> RaggedLayout {
    let batch = Dim::new("batch");
    let l1 = Dim::new("len1");
    let h = Dim::new("heads");
    let l2 = Dim::new("len2");
    RaggedLayout::builder()
        .cdim(batch.clone(), lens.len())
        .vdim(l1, &batch, lens.to_vec())
        .cdim(h, cfg.heads)
        .vdim(l2, &batch, lens.to_vec())
        .build()
        .expect("attention layout is valid")
}

/// Measures prelude costs for one mini-batch.
///
/// `redundancy` is how many times each structure is (re)built — the
/// prototype builds per operator (§D.7's CoRa-Redundant); `1` is the
/// optimized, fully shared build.
pub fn measure_prelude(
    cfg: &EncoderConfig,
    model: &GpuModel,
    lens: &[usize],
    redundancy: usize,
) -> PreludeCosts {
    assert!(redundancy >= 1, "redundancy counts builds, at least one");
    let layout = attention_layout(cfg, lens);

    let mut sparse_time = 0.0;
    let mut sparse_mem = 0usize;
    let mut storage_time = 0.0;
    let mut storage_mem = 0usize;
    let mut fusion_time = 0.0;
    let mut fusion_mem = 0usize;
    for _ in 0..redundancy {
        let csf = CsfStorage::build(&layout);
        sparse_time += csf.build_time.as_secs_f64() * 1e3;
        sparse_mem = csf.memory_bytes();

        let aux = AuxOffsets::build(&layout);
        storage_time += aux.build_time.as_secs_f64() * 1e3;
        storage_mem = aux.memory_bytes();

        let maps = FusedLoopMaps::build(lens);
        fusion_time += maps.build_time.as_secs_f64() * 1e3;
        fusion_mem = maps.memory_bytes();
    }
    // Copy cost: CoRa's structures, sized by what was (re)built.
    let copy_bytes = (storage_mem + fusion_mem) * redundancy;
    PreludeCosts {
        sparse_time_ms: sparse_time,
        sparse_mem_kb: (sparse_mem * redundancy) as f64 / 1024.0,
        cora_storage_time_ms: storage_time,
        cora_storage_mem_kb: (storage_mem * redundancy) as f64 / 1024.0,
        cora_fusion_time_ms: fusion_time,
        cora_fusion_mem_kb: (fusion_mem * redundancy) as f64 / 1024.0,
        cora_copy_ms: model.copy_time_us(copy_bytes) / 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_datasets::Dataset;

    #[test]
    fn cora_storage_much_cheaper_than_sparse() {
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let lens = Dataset::Race.sample_batch_sorted(128, 1);
        let c = measure_prelude(&cfg, &model, &lens, 1);
        // §7.4: CoRa's storage aux data is orders of magnitude smaller.
        assert!(
            c.sparse_mem_kb > 50.0 * c.cora_storage_mem_kb,
            "sparse {} kB vs cora {} kB",
            c.sparse_mem_kb,
            c.cora_storage_mem_kb
        );
        // Loop fusion dominates CoRa's own aux memory.
        assert!(c.cora_fusion_mem_kb > c.cora_storage_mem_kb);
    }

    #[test]
    fn redundancy_scales_costs() {
        let cfg = EncoderConfig::base();
        let model = GpuModel::default();
        let lens = Dataset::Cola.sample_batch_sorted(32, 2);
        let opt = measure_prelude(&cfg, &model, &lens, 1);
        let red = measure_prelude(&cfg, &model, &lens, 4);
        assert!(red.cora_fusion_mem_kb > 3.0 * opt.cora_fusion_mem_kb);
        assert!(red.cora_copy_ms > opt.cora_copy_ms);
    }
}
