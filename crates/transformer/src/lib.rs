//! # cora-transformer
//!
//! The transformer encoder application of the CoRa paper (§7.2–§7.3,
//! §D.3–§D.8): hyperparameters, analytic FLOP/memory accounting, numeric
//! ragged and padded encoder layers (real CPU execution), CPU MHA with
//! micro-batching baselines, simulated-GPU encoder implementations
//! (PyTorch / FT / FT-Eff / CoRa), masked SDPA, operation-splitting and
//! hfusion ablations, prelude-overhead measurement, and the
//! compiler-generated masked attention path ([`compiled`]) whose ragged
//! triangular kernels run on the parallel compiled tier.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod compiled;
pub mod config;
pub mod encoder;
pub mod encoder_compiled;
pub mod flops;
pub mod gpu;
pub mod masked;
pub mod masked_mha;
pub mod mha;
pub mod prelude_costs;
pub mod variants;
pub mod weights;

pub use autotune::{EncoderAutotuner, TuneOutcome};
pub use config::EncoderConfig;
pub use encoder::{encoder_layer_padded, encoder_layer_ragged, RaggedBatch};
pub use encoder_compiled::{
    encoder_layer_compiled, CompiledEncoderLayer, EncoderPrep, EncoderSession,
};
pub use gpu::{EncoderImpl, EncoderSim};
pub use weights::EncoderWeights;
