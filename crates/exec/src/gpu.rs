//! The simulated GPU: in-order block dispatch over streaming
//! multiprocessors.
//!
//! A kernel is a list of thread-block costs (microseconds). Blocks are
//! dispatched *in list order* to whichever SM frees up first — the same
//! greedy, in-order policy real GPUs use, which is why the paper's thread
//! remapping (§4.1, Fig. 15) matters: scheduling the heaviest blocks first
//! shortens the makespan under imbalance.
//!
//! Horizontal fusion (§4.1) concatenates two kernels' block lists into a
//! single launch: one launch overhead, and the small kernel's blocks fill
//! the tail bubbles of the big one — exactly the effect Fig. 14 measures.

use std::collections::BinaryHeap;

use crate::cost::GpuModel;

/// One kernel launch: named, with per-block execution times.
#[derive(Debug, Clone)]
pub struct SimKernel {
    /// Kernel name (appears in execution breakdowns).
    pub name: String,
    /// Per-thread-block execution time in microseconds, in dispatch order.
    pub block_costs_us: Vec<f64>,
}

impl SimKernel {
    /// Creates a kernel from block costs.
    pub fn new(name: impl Into<String>, block_costs_us: Vec<f64>) -> Self {
        SimKernel {
            name: name.into(),
            block_costs_us,
        }
    }

    /// Horizontally fuses two kernels: one grid containing both block
    /// lists (self's blocks first).
    pub fn hfuse(mut self, other: SimKernel) -> SimKernel {
        self.name = format!("{}+{}", self.name, other.name);
        self.block_costs_us.extend(other.block_costs_us);
        self
    }

    /// Reorders blocks by descending cost — the "schedule thread blocks
    /// with the most work first" remapping policy used for trmm (§7.1)
    /// and the transformer kernels (§D.2).
    pub fn remap_longest_first(mut self) -> SimKernel {
        self.block_costs_us
            .sort_by(|a, b| b.partial_cmp(a).expect("block costs are finite"));
        self
    }

    /// Applies an arbitrary thread-remapping policy: `remap(i)` gives the
    /// original block index scheduled at position `i`.
    pub fn remap_with(mut self, remap: impl Fn(usize) -> usize) -> SimKernel {
        let old = self.block_costs_us.clone();
        for (i, slot) in self.block_costs_us.iter_mut().enumerate() {
            *slot = old[remap(i)];
        }
        self
    }

    /// Total work across blocks, microseconds.
    pub fn total_work_us(&self) -> f64 {
        self.block_costs_us.iter().sum()
    }
}

/// Per-kernel result of a simulated execution.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Makespan of the block schedule (without launch overhead), us.
    pub makespan_us: f64,
    /// Launch overhead charged, us.
    pub launch_us: f64,
    /// Sum of block costs, us.
    pub total_work_us: f64,
    /// Number of blocks.
    pub blocks: usize,
    /// Load imbalance: makespan / (total work / SM count), ≥ 1 when the
    /// device is saturated.
    pub imbalance: f64,
}

/// Result of executing a sequence of kernels plus optional copies.
#[derive(Debug, Clone, Default)]
pub struct GpuRunReport {
    /// Per-kernel reports, in execution order.
    pub kernels: Vec<KernelReport>,
    /// Host-to-device copy time, us.
    pub copy_us: f64,
    /// End-to-end simulated latency, us.
    pub total_us: f64,
}

impl GpuRunReport {
    /// Latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_us / 1_000.0
    }
}

/// The simulated device.
#[derive(Debug, Clone, Default)]
pub struct GpuSim {
    /// Device constants.
    pub model: GpuModel,
}

impl GpuSim {
    /// Creates a simulator with the default (V100-like) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a simulator with a custom model.
    pub fn with_model(model: GpuModel) -> Self {
        GpuSim { model }
    }

    /// Simulates one kernel: greedy in-order dispatch onto SMs.
    pub fn run_kernel(&self, kernel: &SimKernel) -> KernelReport {
        let makespan = schedule_makespan(&kernel.block_costs_us, self.model.sm_count);
        let total: f64 = kernel.total_work_us();
        let lower_bound = total / self.model.sm_count as f64;
        KernelReport {
            name: kernel.name.clone(),
            makespan_us: makespan,
            launch_us: self.model.kernel_launch_us,
            total_work_us: total,
            blocks: kernel.block_costs_us.len(),
            imbalance: if lower_bound > 0.0 {
                makespan / lower_bound
            } else {
                1.0
            },
        }
    }

    /// Simulates a sequence of kernels executed back-to-back, plus an
    /// initial host-to-device copy of `copy_bytes` auxiliary data.
    pub fn run(&self, kernels: &[SimKernel], copy_bytes: usize) -> GpuRunReport {
        let copy_us = if copy_bytes > 0 {
            self.model.copy_time_us(copy_bytes)
        } else {
            0.0
        };
        let mut report = GpuRunReport {
            copy_us,
            ..Default::default()
        };
        let mut total = copy_us;
        for k in kernels {
            let kr = self.run_kernel(k);
            total += kr.makespan_us + kr.launch_us;
            report.kernels.push(kr);
        }
        report.total_us = total;
        report
    }
}

/// Greedy in-order list scheduling: block `i` starts on the SM with the
/// earliest free time. Returns the makespan.
fn schedule_makespan(blocks: &[f64], sm_count: usize) -> f64 {
    assert!(sm_count > 0, "device must have at least one SM");
    if blocks.is_empty() {
        return 0.0;
    }
    // Min-heap of SM free times (negated for BinaryHeap's max semantics).
    let mut heap: BinaryHeap<std::cmp::Reverse<OrderedF64>> = (0..sm_count)
        .map(|_| std::cmp::Reverse(OrderedF64(0.0)))
        .collect();
    let mut makespan = 0.0f64;
    for &b in blocks {
        let std::cmp::Reverse(OrderedF64(free)) = heap.pop().expect("non-empty heap");
        let end = free + b;
        makespan = makespan.max(end);
        heap.push(std::cmp::Reverse(OrderedF64(end)));
    }
    makespan
}

#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite block times")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(sms: usize) -> GpuSim {
        let model = GpuModel {
            sm_count: sms,
            ..Default::default()
        };
        GpuSim::with_model(model)
    }

    #[test]
    fn perfect_balance_is_work_over_sms() {
        let s = sim(4);
        let k = SimKernel::new("k", vec![1.0; 8]);
        let r = s.run_kernel(&k);
        assert!((r.makespan_us - 2.0).abs() < 1e-9);
        assert!((r.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn descending_order_beats_ascending_under_imbalance() {
        // One huge block and many small ones: scheduling the huge block
        // last wastes a whole wave (the thread-remapping motivation).
        let s = sim(4);
        let mut asc: Vec<f64> = vec![1.0; 12];
        asc.push(10.0);
        let k_asc = SimKernel::new("asc", asc.clone());
        let k_desc = SimKernel::new("desc", asc).remap_longest_first();
        let t_asc = s.run_kernel(&k_asc).makespan_us;
        let t_desc = s.run_kernel(&k_desc).makespan_us;
        assert!(
            t_desc < t_asc,
            "longest-first {t_desc} should beat in-order {t_asc}"
        );
    }

    #[test]
    fn hfusion_saves_a_launch_and_fills_bubbles() {
        let s = sim(4);
        // Kernel A: 4 blocks of 4us. Kernel B: 4 blocks of 1us.
        let a = SimKernel::new("a", vec![4.0; 4]);
        let b = SimKernel::new("b", vec![1.0; 4]);
        let separate = s.run(&[a.clone(), b.clone()], 0).total_us;
        let fused = s.run(&[a.hfuse(b)], 0).total_us;
        assert!(fused < separate, "fused {fused} vs separate {separate}");
    }

    #[test]
    fn copy_time_included_once() {
        let s = sim(2);
        let k = SimKernel::new("k", vec![1.0]);
        let with_copy = s.run(std::slice::from_ref(&k), 1 << 20).total_us;
        let without = s.run(std::slice::from_ref(&k), 0).total_us;
        assert!(with_copy > without);
    }

    #[test]
    fn remap_with_permutes() {
        let k = SimKernel::new("k", vec![1.0, 2.0, 3.0]).remap_with(|i| 2 - i);
        assert_eq!(k.block_costs_us, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_kernel_is_free_except_launch() {
        let s = sim(4);
        let r = s.run(&[SimKernel::new("empty", vec![])], 0);
        assert_eq!(r.total_us, s.model.kernel_launch_us);
    }
}
