//! A slot-resolved bytecode VM: the compiled execution tier for lowered
//! statements.
//!
//! The tree-walking interpreter ([`crate::interp::Machine`]) defines the
//! IR's semantics, but it pays a `HashMap<String, i64>` lookup for every
//! variable, auxiliary-buffer and uninterpreted-function access, recurses
//! through `Rc` expression trees, and allocates a fresh `Vec` per
//! expression just to count aux loads. [`compile`] removes all three
//! costs:
//!
//! * **Slot resolution** ([`cora_ir::slots`]): every name the statement
//!   references is interned to a dense index. Free variables, auxiliary
//!   buffers, float buffers and UF tables become positions in flat `Vec`s
//!   bound once before execution; each `For`/`LetInt` binding site and
//!   each `Alloc` site is alpha-renamed to its own fresh slot past the
//!   free range, so shadowing needs no save/restore at run time.
//! * **Flattening**: expressions become straight-line register
//!   instructions over `Vec<i64>`/`Vec<f32>` register files; loops and
//!   conditionals become explicit jumps. Conditions compile to
//!   short-circuit branch chains in the interpreter's evaluation order,
//!   so exactly the same sub-expressions execute (and can panic) in both
//!   tiers.
//! * **Static instruction-mix metadata**: the per-expression aux-load
//!   counts the interpreter derives by collecting loads into a `Vec` are
//!   computed once at compile time and attached to the instructions that
//!   charge them, so a [`VmMachine`] run produces *identical*
//!   [`InterpStats`] to the tree walker by construction. The interpreter
//!   stays as semantic ground truth; differential tests assert
//!   bit-identical outputs and stats between the two tiers.
//! * **Loop fusion** (`FusedMulAcc`/`FusedMulAcc2`/`FusedMap`): an
//!   innermost reduction of the
//!   shape `out[i(t)] += A[j(t)] · B[k(t)]` with indices provably affine
//!   in the loop variable — the inner loop of every GEMM-, score- and
//!   AttnV-style operator — compiles to a single instruction that runs
//!   the whole loop natively (vectorizable for the unit-stride shapes),
//!   with bit-identical results and statistics to the unfused form.
//!
//! Float buffers can be *owned* by the machine (the classic
//! [`VmMachine`] interface) or *borrowed* from the caller
//! ([`VmShared::run_borrowed`] serially, [`VmShared::run_blocks_borrowed`]
//! in parallel, both binding [`BoundBuf`] slices): multi-operator
//! pipelines keep their intermediates in one arena and hand each stage
//! views instead of moving vectors in and out per call.
//!
//! # Parallel execution
//!
//! A [`VmProgram`] is immutable after compilation and `Sync`
//! (compile-time asserted below), so one compiled artefact can back many
//! concurrent executions. The split mirrors that:
//!
//! * [`VmShared`] holds the *shared, immutable* per-run bindings — free
//!   variables, auxiliary buffers, read-only float inputs, UF tables —
//!   bound once on the calling thread;
//! * each worker carries only *cheap private* state (register files, loop
//!   variables, `Alloc` scratch, an [`InterpStats`] accumulator), created
//!   per batch by [`VmShared::run_blocks`];
//! * the single written buffer (the kernel output) is shared through
//!   `SharedOut`, whose soundness rests on the outliner's guarantee
//!   that different block indices store to disjoint output elements.
//!
//! Statistics are plain counters, so summing the per-worker accumulators
//! reproduces the serial run's numbers exactly, regardless of how blocks
//! were scheduled.
//!
//! The disassembler ([`VmProgram`]'s `Display` impl) prints one
//! instruction per line with every slot resolved back to its source name,
//! so golden tests can diff the compiled form of a kernel.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use cora_ir::fexpr::apply_unary;
use cora_ir::interval::SInt;
use cora_ir::slots::StmtSlots;
use cora_ir::visit::{count_cond_loads, count_loads};
use cora_ir::{
    Cond, CondKind, Env, Expr, ExprKind, FExpr, FExprKind, FUnaryOp, Stmt, StoreKind, UfHandle,
};

use crate::cpu::CpuPool;
use crate::interp::InterpStats;
use crate::microkernel::{self, AxpyKind, MathMode, PanelKind, PanelShape};

/// Integer ALU operations (mirror [`ExprKind`] binary nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum IBinOp {
    Add,
    Sub,
    Mul,
    FloorDiv,
    FloorMod,
    Min,
    Max,
}

/// Float ALU operations (mirror [`FExprKind`] binary nodes).
#[derive(Debug, Clone, Copy)]
enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Max,
}

/// Comparison operators for branch instructions.
#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Lt,
    Le,
    Eq,
    Ne,
}

/// One bytecode instruction. Jump targets are program counters after
/// [`Compiler::finish`] resolves labels.
#[derive(Debug, Clone)]
enum Instr {
    /// `ireg[dst] = v`.
    IConst { dst: u16, v: i64 },
    /// `ireg[dst] = vars[slot]`.
    IVar { dst: u16, slot: u32 },
    /// `ireg[dst] = ireg[src]`.
    ICopy { dst: u16, src: u16 },
    /// `ireg[dst] = op(ireg[a], ireg[b])`.
    IBin {
        op: IBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `ireg[dst] = ibufs[buf][ireg[idx]]` (no stat bump: aux loads are
    /// charged statically at each evaluation site).
    ILoad { dst: u16, buf: u32, idx: u16 },
    /// `ireg[dst] = ibufs[buf][vars[vslot]]` — fused load-by-variable,
    /// the hot shape of ragged offset/extent accesses.
    ILoadV { dst: u16, buf: u32, vslot: u32 },
    /// `ireg[dst] = op(ireg[a], c)` (immediate right operand).
    IBinC {
        op: IBinOp,
        dst: u16,
        a: u16,
        c: i64,
    },
    /// `ireg[dst] = op(ireg[a], vars[vslot])` (variable right operand).
    IBinV {
        op: IBinOp,
        dst: u16,
        a: u16,
        vslot: u32,
    },
    /// `ireg[dst] = ufs[uf](ireg[args..])`.
    IUf { dst: u16, uf: u32, args: Box<[u16]> },
    /// `vars[slot] = ireg[src]` (loop initialisation).
    SetVar { slot: u32, src: u16 },
    /// `vars[slot] = ireg[src]`, charging `aux` loads (`LetInt`).
    LetVar { slot: u32, src: u16, aux: u64 },
    /// Jump to `to` if `vars[slot] >= ireg[lim]` (loop zero-trip test).
    BrVarGe { slot: u32, lim: u16, to: u32 },
    /// `vars[slot] += 1; if vars[slot] < ireg[lim] jump back` — the fused
    /// loop back-edge (increment + test + jump in one dispatch).
    LoopNext { slot: u32, lim: u16, back: u32 },
    /// Jump to `on_true`/`on_false` after comparing two registers.
    BrCmp {
        op: CmpOp,
        a: u16,
        b: u16,
        on_true: u32,
        on_false: u32,
    },
    /// Unconditional jump.
    Jump { to: u32 },
    /// `guards += 1; aux_loads += aux` (guard evaluation site).
    Guard { aux: u64 },
    /// `aux_loads += n` (loop-bound evaluation site).
    BumpAux { n: u64 },
    /// `freg[dst] = v`.
    FConst { dst: u16, v: f32 },
    /// `freg[dst] = fbufs[buf][ireg[idx]]`, charging `aux` loads for the
    /// index expression.
    FLoad {
        dst: u16,
        buf: u32,
        idx: u16,
        aux: u64,
    },
    /// `freg[dst] = ireg[src] as f32`, charging `aux` loads.
    FCast { dst: u16, src: u16, aux: u64 },
    /// `freg[dst] = freg[src]`.
    FCopy { dst: u16, src: u16 },
    /// `freg[dst] = op(freg[a], freg[b])`; `flops += 1`.
    FBin {
        op: FBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `freg[dst] = op(freg[a], c)`; `flops += 1` (constant right
    /// operand; constants are side-effect free so fusing preserves both
    /// evaluation order and operand order).
    FBinC {
        op: FBinOp,
        dst: u16,
        a: u16,
        c: f32,
    },
    /// `freg[dst] = op(c, freg[b])`; `flops += 1` (constant left
    /// operand, operand order preserved).
    FBinCL {
        op: FBinOp,
        dst: u16,
        c: f32,
        b: u16,
    },
    /// `freg[dst] = op(freg[a])`; `flops += 1`.
    FUn { op: FUnaryOp, dst: u16, a: u16 },
    /// Store `freg[val]` into `fbufs[buf][ireg[idx]]` with the given
    /// combine rule; charges `aux` index loads, one store, and one flop
    /// for reducing kinds.
    FStore {
        buf: u32,
        idx: u16,
        val: u16,
        kind: StoreKind,
        aux: u64,
    },
    /// (Re)allocate `fbufs[slot]` as `ireg[size]` zeroes; charges `aux`.
    FAlloc { slot: u32, size: u16, aux: u64 },
    /// Fused multiply-accumulate loop (see [`FusedMulAcc`]): the whole
    /// innermost `for t { out[..] += a[..] * b[..] }` reduction in one
    /// dispatch, bit- and stats-identical to the unfused instruction
    /// sequence.
    FMulAcc(Box<FusedMulAcc>),
    /// Two-level fused multiply-accumulate (see [`FusedMulAcc2`]): a
    /// whole two-deep loop nest in one dispatch.
    FMulAcc2(Box<FusedMulAcc2>),
    /// Fused map/reduce loop (see [`FusedMap`]): a branch-free store
    /// loop executed as a float-op tape over element chunks.
    FMap(Box<FusedMap>),
}

/// One step of a [`FusedMap`] tape, producing SSA temp `t<index>`.
#[derive(Debug, Clone)]
enum MapOp {
    /// Broadcast constant.
    Const { v: f32 },
    /// Element load through an affine site.
    Load { site: u16 },
    /// `i64 → f32` cast of an affine index expression.
    Cast { site: u16 },
    /// Binary float op over two earlier temps.
    Bin { op: FBinOp, a: u16, b: u16 },
    /// Unary float op over an earlier temp.
    Un { op: FUnaryOp, a: u16 },
}

/// One affine index site of a [`FusedMap`]: `idx(t) = r0 + t·(r1 − r0)`.
/// `buf == u32::MAX` marks a pure-index [`MapOp::Cast`] site.
#[derive(Debug, Clone)]
struct MapSite {
    buf: u32,
    r0: u16,
    r1: u16,
}

/// The fused map/reduce loop: an innermost
/// `for t { out[o(t)] (=|+=|max=) f(loads at affine sites) }` where the
/// value expression is branch-free (no selects) and every integer index
/// is affine in the loop variable.
///
/// The value tree compiles to a flat SSA tape; execution processes the
/// iteration space in small chunks, applying each tape op across the
/// whole chunk (vectorizable slice loops) before the next — legal
/// because elements are independent (the per-element float op sequence
/// is unchanged) — then stores chunk results in ascending element
/// order, so reducing kinds accumulate in exactly the serial order.
/// Repeated loads of one `(buffer, index)` site are computed once but
/// still charge their aux loads per occurrence, matching the
/// interpreter. Statistics per element are static: `aux` auxiliary
/// loads, `flops` float ops (tape ops plus one for reducing stores) and
/// one store.
#[derive(Debug, Clone)]
struct FusedMap {
    out: u32,
    /// Output index probes at `t = min` / `t = min + 1`.
    o0: u16,
    o1: u16,
    kind: StoreKind,
    sites: Box<[MapSite]>,
    tape: Box<[MapOp]>,
    /// Register holding the trip count.
    n: u16,
    /// Static aux loads per element (every load/cast occurrence plus the
    /// store index). `u64`: deeply shared (`Rc`-DAG) index expressions
    /// have exponential static load counts, which the interpreter
    /// charges in full at run time — truncating here would break stats
    /// parity (and used to abort compilation outright).
    aux: u64,
    /// Float ops per element (tape `Bin`/`Un` plus reducing store).
    flops: u64,
}

/// Operands of the fused multiply-accumulate loop.
///
/// The compiler proves (syntactically) that all three index expressions
/// are *affine* in the loop variable — the variable appears only under
/// `+`/`-`/`×`-by-invariant, never inside a buffer load, uninterpreted
/// function, select, division or min/max — so each index is fully
/// described by its value at `i = min` (the `*0` registers) and at
/// `i = min + 1` (the `*1` registers): `idx(t) = idx0 + t·(idx1 - idx0)`.
/// Both probes are pure arithmetic over the loop variable (no memory
/// access depends on it), so evaluating them touches exactly the memory
/// a first iteration would.
///
/// Executing the instruction performs `n` iterations of
/// `out[o(t)] += a[a(t)] * b[b(t)]` in serial order and charges the same
/// statistics the unfused loop would: per iteration `aux` auxiliary
/// loads (the three indices' static load counts), two FLOPs (multiply +
/// add-assign) and one store. The zero-trip case is branched around
/// before the index probes, so an empty loop executes nothing — exactly
/// like the unfused back-edge.
#[derive(Debug, Clone)]
struct FusedMulAcc {
    /// Output buffer slot (proved distinct from `a` and `b`).
    out: u32,
    /// Left operand buffer slot.
    a: u32,
    /// Right operand buffer slot.
    b: u32,
    /// Registers holding each index at `i = min` / `i = min + 1`.
    o0: u16,
    o1: u16,
    a0: u16,
    a1: u16,
    b0: u16,
    b1: u16,
    /// Register holding the trip count (the loop extent).
    n: u16,
    /// Static aux loads charged per iteration (all three indices); `u64`
    /// because shared expression DAGs count exponentially (see
    /// [`FusedMap::aux`]).
    aux: u64,
}

/// Operands of the two-level fused multiply-accumulate loop: a whole
/// `for o { for i { out[..] += a[..] · b[..] } }` nest in one dispatch.
///
/// All three indices are proven *bilinear-free* 2-D affine in the two
/// loop variables (`idx = base + o·so + i·si` with constant strides), so
/// three probes fully describe each: at `(o₀, i₀)` (`*00`), at
/// `(o₀, i₀+1)` (`*0i`, inner stride) and at `(o₀+1, i₀)` (`*0o`, outer
/// stride). The inner bounds are outer-invariant and evaluated once; the
/// serial program charges their static loads per outer iteration, which
/// [`FusedMulAcc2::aux_inner_bounds`] reproduces.
///
/// The common stride shapes execute as native *panels* — the i-k-j GEMM
/// row (`out_row += a[t]·b_row(t)`, vectorizable) and the per-row dot
/// (`out[t] += a_row(t)·b_row(t)`) — with bit-identical results and
/// statistics to the unfused nest.
#[derive(Debug, Clone)]
struct FusedMulAcc2 {
    /// Output buffer slot (proved distinct from `a` and `b`).
    out: u32,
    /// Left operand buffer slot.
    a: u32,
    /// Right operand buffer slot.
    b: u32,
    /// Index probes (see type docs).
    o00: u16,
    o0i: u16,
    o0o: u16,
    a00: u16,
    a0i: u16,
    a0o: u16,
    b00: u16,
    b0i: u16,
    b0o: u16,
    /// Registers holding the outer / inner trip counts.
    n_outer: u16,
    n_inner: u16,
    /// Static aux loads charged per inner iteration (all three indices);
    /// `u64` because shared expression DAGs count exponentially (see
    /// [`FusedMap::aux`]).
    aux: u64,
    /// Static aux loads of the inner loop's bounds, charged once per
    /// outer iteration (the serial inner-loop header's `BumpAux`).
    aux_inner_bounds: u64,
}

/// A lowered statement compiled to slot-resolved bytecode.
///
/// Immutable after compilation and `Sync`: one program may back any
/// number of concurrent [`VmMachine`]s / parallel workers.
#[derive(Debug, Clone)]
pub struct VmProgram {
    code: Vec<Instr>,
    n_iregs: usize,
    n_fregs: usize,
    slots: StmtSlots,
    /// Float semantics the fused microkernels execute under. `Strict`
    /// (the compile-time default) is bit-identical to the interpreter;
    /// `Fast` permits the documented reassociations/approximations.
    /// Statistics are charged identically in both modes.
    math: MathMode,
    /// Source name of each alpha-renamed `For`/`LetInt` binding slot,
    /// indexed by `slot - slots.free_vars.len()` (disassembly only).
    var_slot_names: Vec<String>,
    /// Source name of each `Alloc` scratch slot, indexed by
    /// `slot - slots.free_fbufs.len()` (disassembly only).
    fbuf_slot_names: Vec<String>,
}

/// Compile-time proof that a compiled program (and the shared binding
/// state built on top of it) can be handed to worker threads by
/// reference.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<VmProgram>();
    assert_sync::<VmShared<'static>>();
};

/// Compiles a lowered statement to bytecode.
///
/// The result is immutable and reusable: create a fresh [`VmMachine`]
/// per execution (or reuse one across runs of the same bindings).
pub fn compile(stmt: &Stmt) -> VmProgram {
    let slots = StmtSlots::resolve(stmt);
    let mut c = Compiler {
        code: Vec::new(),
        labels: Vec::new(),
        iregs: RegAlloc::default(),
        fregs: RegAlloc::default(),
        var_scope: Vec::new(),
        fbuf_scope: Vec::new(),
        next_var_slot: u32::try_from(slots.free_vars.len()).expect("var census fits u32"),
        next_fbuf_slot: u32::try_from(slots.free_fbufs.len()).expect("fbuf census fits u32"),
        var_slot_names: Vec::new(),
        fbuf_slot_names: Vec::new(),
        slots,
    };
    c.stmt(stmt);
    c.finish()
}

impl VmProgram {
    /// Number of bytecode instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for an empty program (e.g. compiled from [`Stmt::Nop`]).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The name census the program was resolved against.
    pub fn slots(&self) -> &StmtSlots {
        &self.slots
    }

    /// Counts of the fused superinstructions in the stream, as
    /// `(fmulacc, fmulacc2, fmap)`. The autotuner's deterministic proxy
    /// measurer uses these to credit schedules whose loop nests the
    /// fusion pass could collapse into panel microkernels.
    pub fn fused_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for instr in &self.code {
            match instr {
                Instr::FMulAcc(_) => counts.0 += 1,
                Instr::FMulAcc2(_) => counts.1 += 1,
                Instr::FMap(_) => counts.2 += 1,
                _ => {}
            }
        }
        counts
    }

    /// Float semantics the fused microkernels execute under.
    pub fn math_mode(&self) -> MathMode {
        self.math
    }

    /// Sets the float semantics for subsequent executions. Compilation
    /// always produces [`MathMode::Strict`]; opting into
    /// [`MathMode::Fast`] never changes the instruction stream or the
    /// charged statistics, only which microkernel bodies run.
    pub fn set_math_mode(&mut self, math: MathMode) {
        self.math = math;
    }

    /// Creates a fresh machine with all external bindings unset.
    pub fn machine(&self) -> VmMachine<'_> {
        let s = &self.slots;
        VmMachine {
            prog: self,
            vars: vec![0; s.var_slot_count()],
            var_bound: vec![false; s.free_vars.len()],
            ibufs: vec![Vec::new(); s.ibufs.len()],
            ibuf_bound: vec![false; s.ibufs.len()],
            fbufs: vec![Vec::new(); s.fbuf_slot_count()],
            fbuf_bound: vec![false; s.free_fbufs.len()],
            ufs: vec![None; s.ufs.len()],
            iregs: vec![0; self.n_iregs],
            fregs: vec![0.0; self.n_fregs],
            uf_args: Vec::new(),
            stats: InterpStats::default(),
        }
    }

    /// Creates the shared, immutable binding table for parallel block
    /// execution ([`VmShared::run_blocks`]): bind everything once on the
    /// calling thread, then dispatch blocks across a [`CpuPool`].
    pub fn shared(&self) -> VmShared<'_> {
        let s = &self.slots;
        VmShared {
            prog: self,
            vars: vec![0; s.var_slot_count()],
            var_bound: vec![false; s.free_vars.len()],
            ibufs: vec![Vec::new(); s.ibufs.len()],
            ibuf_bound: vec![false; s.ibufs.len()],
            fbufs: vec![Vec::new(); s.free_fbufs.len()],
            fbuf_bound: vec![false; s.free_fbufs.len()],
            ufs: vec![None; s.ufs.len()],
        }
    }

    /// Resolves a variable slot back to a source name for diagnostics and
    /// disassembly: free variables print bare, alpha-renamed binding
    /// slots print as `name@slot`.
    fn var_name(&self, slot: u32) -> String {
        let free = self.slots.free_vars.len();
        match self.slots.free_vars.names().get(slot as usize) {
            Some(n) => n.clone(),
            None => format!("{}@{slot}", self.var_slot_names[slot as usize - free]),
        }
    }

    /// Validates the compiled stream against the program's own censuses
    /// and register files.
    ///
    /// Checks, in order: every jump target lands inside the program (or
    /// one past the end — the halt address); every variable / integer
    /// buffer / float buffer / UF slot is within its census and UF call
    /// arities match; every register index is within the allocated
    /// file; fused-superinstruction metadata is self-consistent (a
    /// `FusedMap`'s static flop count equals its tape, tape operands
    /// are in SSA order, `FMulAcc`/`FMulAcc2` outputs are distinct from
    /// their operands, `FAlloc` only targets scratch slots); and — via
    /// a forward dataflow pass with intersection merge over the
    /// instruction-level CFG — no integer or float register is read on
    /// *any* path before an instruction wrote it.
    ///
    /// This is the bytecode layer of the three-layer safety story (see
    /// the README's "Safety & verification"): a regression net under
    /// the compiler's CSE/DCE/register-renaming passes, run on every
    /// `CompiledProgram::compile`.
    pub fn validate(&self) -> Result<(), String> {
        let code = &self.code;
        let n = code.len();
        let s = &self.slots;
        let n_vars = s.var_slot_count();
        let n_ibufs = s.ibufs.len();
        let n_fbufs = s.fbuf_slot_count();
        let free_fbufs = s.free_fbufs.len();
        let n_ufs = s.ufs.len();

        /// Per-pc effect summary feeding the dataflow pass: integer /
        /// float register uses and defs, plus CFG successors.
        struct Fx {
            ui: Vec<u16>,
            uf: Vec<u16>,
            di: Vec<u16>,
            df: Vec<u16>,
            succ: Vec<usize>,
        }
        let mut fx: Vec<Fx> = Vec::with_capacity(n);

        for (pc, ins) in code.iter().enumerate() {
            let ck_var = |slot: u32| -> Result<(), String> {
                if (slot as usize) < n_vars {
                    Ok(())
                } else {
                    Err(format!(
                        "bytecode pc {pc} ({ins:?}): variable slot {slot} out of census ({n_vars} slots)"
                    ))
                }
            };
            let ck_ibuf = |buf: u32| -> Result<(), String> {
                if (buf as usize) < n_ibufs {
                    Ok(())
                } else {
                    Err(format!(
                        "bytecode pc {pc} ({ins:?}): integer buffer slot {buf} out of census ({n_ibufs} buffers)"
                    ))
                }
            };
            let ck_fbuf = |buf: u32| -> Result<(), String> {
                if (buf as usize) < n_fbufs {
                    Ok(())
                } else {
                    Err(format!(
                        "bytecode pc {pc} ({ins:?}): float buffer slot {buf} out of census ({n_fbufs} buffers)"
                    ))
                }
            };
            let mut e = Fx {
                ui: Vec::new(),
                uf: Vec::new(),
                di: Vec::new(),
                df: Vec::new(),
                succ: vec![pc + 1],
            };
            match ins {
                Instr::IConst { dst, .. } => e.di.push(*dst),
                Instr::IVar { dst, slot } => {
                    ck_var(*slot)?;
                    e.di.push(*dst);
                }
                Instr::ICopy { dst, src } => {
                    e.ui.push(*src);
                    e.di.push(*dst);
                }
                Instr::IBin { dst, a, b, .. } => {
                    e.ui.extend([*a, *b]);
                    e.di.push(*dst);
                }
                Instr::ILoad { dst, buf, idx } => {
                    ck_ibuf(*buf)?;
                    e.ui.push(*idx);
                    e.di.push(*dst);
                }
                Instr::ILoadV { dst, buf, vslot } => {
                    ck_ibuf(*buf)?;
                    ck_var(*vslot)?;
                    e.di.push(*dst);
                }
                Instr::IBinC { dst, a, .. } => {
                    e.ui.push(*a);
                    e.di.push(*dst);
                }
                Instr::IBinV { dst, a, vslot, .. } => {
                    ck_var(*vslot)?;
                    e.ui.push(*a);
                    e.di.push(*dst);
                }
                Instr::IUf { dst, uf, args } => {
                    if *uf as usize >= n_ufs {
                        return Err(format!(
                            "bytecode pc {pc} ({ins:?}): UF slot {uf} out of census ({n_ufs} UFs)"
                        ));
                    }
                    let arity = s.uf_arities[*uf as usize];
                    if args.len() != arity {
                        return Err(format!(
                            "bytecode pc {pc} ({ins:?}): UF call arity {} disagrees with census arity {arity}",
                            args.len()
                        ));
                    }
                    e.ui.extend(args.iter().copied());
                    e.di.push(*dst);
                }
                Instr::SetVar { slot, src } | Instr::LetVar { slot, src, .. } => {
                    ck_var(*slot)?;
                    e.ui.push(*src);
                }
                Instr::BrVarGe { slot, lim, to } => {
                    ck_var(*slot)?;
                    e.ui.push(*lim);
                    e.succ.push(*to as usize);
                }
                Instr::LoopNext { slot, lim, back } => {
                    ck_var(*slot)?;
                    e.ui.push(*lim);
                    e.succ.push(*back as usize);
                }
                Instr::BrCmp {
                    a,
                    b,
                    on_true,
                    on_false,
                    ..
                } => {
                    e.ui.extend([*a, *b]);
                    e.succ = vec![*on_true as usize, *on_false as usize];
                }
                Instr::Jump { to } => e.succ = vec![*to as usize],
                Instr::Guard { .. } | Instr::BumpAux { .. } => {}
                Instr::FConst { dst, .. } => e.df.push(*dst),
                Instr::FLoad { dst, buf, idx, .. } => {
                    ck_fbuf(*buf)?;
                    e.ui.push(*idx);
                    e.df.push(*dst);
                }
                Instr::FCast { dst, src, .. } => {
                    e.ui.push(*src);
                    e.df.push(*dst);
                }
                Instr::FCopy { dst, src } => {
                    e.uf.push(*src);
                    e.df.push(*dst);
                }
                Instr::FBin { dst, a, b, .. } => {
                    e.uf.extend([*a, *b]);
                    e.df.push(*dst);
                }
                Instr::FBinC { dst, a, .. } => {
                    e.uf.push(*a);
                    e.df.push(*dst);
                }
                Instr::FBinCL { dst, b, .. } => {
                    e.uf.push(*b);
                    e.df.push(*dst);
                }
                Instr::FUn { dst, a, .. } => {
                    e.uf.push(*a);
                    e.df.push(*dst);
                }
                Instr::FStore { buf, idx, val, .. } => {
                    ck_fbuf(*buf)?;
                    e.ui.push(*idx);
                    e.uf.push(*val);
                }
                Instr::FAlloc { slot, size, .. } => {
                    if (*slot as usize) < free_fbufs || (*slot as usize) >= n_fbufs {
                        return Err(format!(
                            "bytecode pc {pc} ({ins:?}): FAlloc targets non-scratch slot {slot} \
                             (scratch slots are {free_fbufs}..{n_fbufs})"
                        ));
                    }
                    e.ui.push(*size);
                }
                Instr::FMulAcc(m) => {
                    for b in [m.out, m.a, m.b] {
                        ck_fbuf(b)?;
                    }
                    if m.out == m.a || m.out == m.b {
                        return Err(format!(
                            "bytecode pc {pc} ({ins:?}): FMulAcc output buffer aliases an operand"
                        ));
                    }
                    e.ui.extend([m.o0, m.o1, m.a0, m.a1, m.b0, m.b1, m.n]);
                }
                Instr::FMulAcc2(m) => {
                    for b in [m.out, m.a, m.b] {
                        ck_fbuf(b)?;
                    }
                    if m.out == m.a || m.out == m.b {
                        return Err(format!(
                            "bytecode pc {pc} ({ins:?}): FMulAcc2 output buffer aliases an operand"
                        ));
                    }
                    e.ui.extend([
                        m.o00, m.o0i, m.o0o, m.a00, m.a0i, m.a0o, m.b00, m.b0i, m.b0o, m.n_outer,
                        m.n_inner,
                    ]);
                }
                Instr::FMap(m) => {
                    ck_fbuf(m.out)?;
                    e.ui.extend([m.o0, m.o1, m.n]);
                    for site in m.sites.iter() {
                        if site.buf != u32::MAX {
                            ck_fbuf(site.buf)?;
                        }
                        e.ui.extend([site.r0, site.r1]);
                    }
                    if m.tape.is_empty() {
                        return Err(format!("bytecode pc {pc}: FMap with an empty tape"));
                    }
                    let mut flops = 0u64;
                    for (ti, op) in m.tape.iter().enumerate() {
                        match op {
                            MapOp::Const { .. } => {}
                            MapOp::Load { site } => {
                                if *site as usize >= m.sites.len()
                                    || m.sites[*site as usize].buf == u32::MAX
                                {
                                    return Err(format!(
                                        "bytecode pc {pc}: FMap tape op {ti} loads through an \
                                         invalid site {site}"
                                    ));
                                }
                            }
                            MapOp::Cast { site } => {
                                if *site as usize >= m.sites.len()
                                    || m.sites[*site as usize].buf != u32::MAX
                                {
                                    return Err(format!(
                                        "bytecode pc {pc}: FMap tape op {ti} casts through a \
                                         non-index site {site}"
                                    ));
                                }
                            }
                            MapOp::Bin { a, b, .. } => {
                                if *a as usize >= ti || *b as usize >= ti {
                                    return Err(format!(
                                        "bytecode pc {pc}: FMap tape op {ti} reads a temp that \
                                         is not yet computed"
                                    ));
                                }
                                flops += 1;
                            }
                            MapOp::Un { a, .. } => {
                                if *a as usize >= ti {
                                    return Err(format!(
                                        "bytecode pc {pc}: FMap tape op {ti} reads a temp that \
                                         is not yet computed"
                                    ));
                                }
                                flops += 1;
                            }
                        }
                    }
                    if !matches!(m.kind, StoreKind::Assign) {
                        flops += 1;
                    }
                    if flops != m.flops {
                        return Err(format!(
                            "bytecode pc {pc}: FMap static flop metadata {} disagrees with its \
                             tape ({flops} per element)",
                            m.flops
                        ));
                    }
                }
            }
            for &r in e.ui.iter().chain(&e.di) {
                if r as usize >= self.n_iregs {
                    return Err(format!(
                        "bytecode pc {pc} ({ins:?}): integer register r{r} out of file \
                         ({} allocated)",
                        self.n_iregs
                    ));
                }
            }
            for &r in e.uf.iter().chain(&e.df) {
                if r as usize >= self.n_fregs {
                    return Err(format!(
                        "bytecode pc {pc} ({ins:?}): float register f{r} out of file \
                         ({} allocated)",
                        self.n_fregs
                    ));
                }
            }
            for &t in &e.succ {
                if t > n {
                    return Err(format!(
                        "bytecode pc {pc} ({ins:?}): jump target {t} beyond program end {n}"
                    ));
                }
            }
            fx.push(e);
        }

        // Def-before-use: forward dataflow over the instruction-level
        // CFG with *intersection* merge, so a register counts as
        // defined at a join only if every incoming path defined it.
        // Intersection over a finite bitset lattice is monotone
        // decreasing, so the worklist terminates.
        let wi = self.n_iregs.div_ceil(64).max(1);
        let wf = self.n_fregs.div_ceil(64).max(1);
        let has = |bits: &[u64], r: u16| bits[r as usize / 64] >> (r as usize % 64) & 1 == 1;
        let set = |bits: &mut [u64], r: u16| bits[r as usize / 64] |= 1 << (r as usize % 64);
        let mut states: Vec<Option<(Vec<u64>, Vec<u64>)>> = vec![None; n];
        let mut work = std::collections::VecDeque::new();
        if n > 0 {
            states[0] = Some((vec![0u64; wi], vec![0u64; wf]));
            work.push_back(0usize);
        }
        while let Some(pc) = work.pop_front() {
            let (mut bi, mut bf) = states[pc].clone().expect("queued pcs have a state");
            let e = &fx[pc];
            for &r in &e.ui {
                if !has(&bi, r) {
                    return Err(format!(
                        "bytecode pc {pc} ({:?}): integer register r{r} may be read before any \
                         write reaches it",
                        code[pc]
                    ));
                }
            }
            for &r in &e.uf {
                if !has(&bf, r) {
                    return Err(format!(
                        "bytecode pc {pc} ({:?}): float register f{r} may be read before any \
                         write reaches it",
                        code[pc]
                    ));
                }
            }
            for &r in &e.di {
                set(&mut bi, r);
            }
            for &r in &e.df {
                set(&mut bf, r);
            }
            for &t in &e.succ {
                if t == n {
                    continue;
                }
                match &mut states[t] {
                    st @ None => {
                        *st = Some((bi.clone(), bf.clone()));
                        work.push_back(t);
                    }
                    Some((si, sf)) => {
                        let mut changed = false;
                        for (w, v) in si.iter_mut().zip(&bi) {
                            let m = *w & *v;
                            if m != *w {
                                *w = m;
                                changed = true;
                            }
                        }
                        for (w, v) in sf.iter_mut().zip(&bf) {
                            let m = *w & *v;
                            if m != *w {
                                *w = m;
                                changed = true;
                            }
                        }
                        if changed {
                            work.push_back(t);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------

/// Disassembly: one instruction per line (`pc  mnemonic operands`), with
/// every variable, buffer and UF slot resolved back to its source name.
/// Alpha-renamed binding slots print as `name@slot` so shadowed loops
/// stay distinguishable. Golden tests diff this text to catch bytecode
/// and outlining regressions.
impl fmt::Display for VmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ibin = |op: IBinOp| match op {
            IBinOp::Add => "iadd",
            IBinOp::Sub => "isub",
            IBinOp::Mul => "imul",
            IBinOp::FloorDiv => "idiv",
            IBinOp::FloorMod => "imod",
            IBinOp::Min => "imin",
            IBinOp::Max => "imax",
        };
        let fbin = |op: FBinOp| match op {
            FBinOp::Add => "fadd",
            FBinOp::Sub => "fsub",
            FBinOp::Mul => "fmul",
            FBinOp::Div => "fdiv",
            FBinOp::Max => "fmax",
        };
        let cmp = |op: CmpOp| match op {
            CmpOp::Lt => "br.lt",
            CmpOp::Le => "br.le",
            CmpOp::Eq => "br.eq",
            CmpOp::Ne => "br.ne",
        };
        let var = |slot: u32| self.var_name(slot);
        let ibuf = |slot: u32| self.slots.ibufs.names()[slot as usize].clone();
        let fbuf = |slot: u32| fbuf_name(self, slot);
        for (pc, instr) in self.code.iter().enumerate() {
            let line = match instr {
                Instr::IConst { dst, v } => format!("iconst   r{dst}, {v}"),
                Instr::IVar { dst, slot } => format!("ivar     r{dst}, {}", var(*slot)),
                Instr::ICopy { dst, src } => format!("icopy    r{dst}, r{src}"),
                Instr::IBin { op, dst, a, b } => {
                    format!("{:<8} r{dst}, r{a}, r{b}", ibin(*op))
                }
                Instr::IBinC { op, dst, a, c } => {
                    format!("{:<8} r{dst}, r{a}, #{c}", format!("{}.c", ibin(*op)))
                }
                Instr::IBinV { op, dst, a, vslot } => {
                    format!(
                        "{:<8} r{dst}, r{a}, {}",
                        format!("{}.v", ibin(*op)),
                        var(*vslot)
                    )
                }
                Instr::ILoad { dst, buf, idx } => {
                    format!("iload    r{dst}, {}[r{idx}]", ibuf(*buf))
                }
                Instr::ILoadV { dst, buf, vslot } => {
                    format!("iload.v  r{dst}, {}[{}]", ibuf(*buf), var(*vslot))
                }
                Instr::IUf { dst, uf, args } => {
                    let args: Vec<String> = args.iter().map(|a| format!("r{a}")).collect();
                    format!(
                        "iuf      r{dst}, {}({})",
                        self.slots.ufs.names()[*uf as usize],
                        args.join(", ")
                    )
                }
                Instr::SetVar { slot, src } => format!("setvar   {}, r{src}", var(*slot)),
                Instr::LetVar { slot, src, aux } => {
                    format!("letvar   {}, r{src}, aux={aux}", var(*slot))
                }
                Instr::BrVarGe { slot, lim, to } => {
                    format!("br.ge    {}, r{lim} -> {to}", var(*slot))
                }
                Instr::LoopNext { slot, lim, back } => {
                    format!("loop     {}, r{lim} -> {back}", var(*slot))
                }
                Instr::BrCmp {
                    op,
                    a,
                    b,
                    on_true,
                    on_false,
                } => format!("{:<8} r{a}, r{b} -> {on_true}, {on_false}", cmp(*op)),
                Instr::Jump { to } => format!("jump     -> {to}"),
                Instr::Guard { aux } => format!("guard    aux={aux}"),
                Instr::BumpAux { n } => format!("bumpaux  n={n}"),
                Instr::FConst { dst, v } => format!("fconst   f{dst}, {v:?}"),
                Instr::FLoad { dst, buf, idx, aux } => {
                    format!("fload    f{dst}, {}[r{idx}], aux={aux}", fbuf(*buf))
                }
                Instr::FCast { dst, src, aux } => {
                    format!("fcast    f{dst}, r{src}, aux={aux}")
                }
                Instr::FCopy { dst, src } => format!("fcopy    f{dst}, f{src}"),
                Instr::FBin { op, dst, a, b } => {
                    format!("{:<8} f{dst}, f{a}, f{b}", fbin(*op))
                }
                Instr::FBinC { op, dst, a, c } => {
                    format!("{:<8} f{dst}, f{a}, #{c:?}", format!("{}.c", fbin(*op)))
                }
                Instr::FBinCL { op, dst, c, b } => {
                    format!("{:<8} f{dst}, #{c:?}, f{b}", format!("{}.cl", fbin(*op)))
                }
                Instr::FUn { op, dst, a } => {
                    let name = match op {
                        FUnaryOp::Neg => "f.neg",
                        FUnaryOp::Exp => "f.exp",
                        FUnaryOp::Sqrt => "f.sqrt",
                        FUnaryOp::Recip => "f.recip",
                        FUnaryOp::Tanh => "f.tanh",
                        FUnaryOp::Relu => "f.relu",
                    };
                    format!("{name:<8} f{dst}, f{a}")
                }
                Instr::FStore {
                    buf,
                    idx,
                    val,
                    kind,
                    aux,
                } => {
                    let k = match kind {
                        StoreKind::Assign => "assign",
                        StoreKind::AddAssign => "add",
                        StoreKind::MaxAssign => "max",
                    };
                    format!("fstore   {}[r{idx}], f{val}, {k}, aux={aux}", fbuf(*buf))
                }
                Instr::FAlloc { slot, size, aux } => {
                    format!("falloc   {}, r{size}, aux={aux}", fbuf(*slot))
                }
                Instr::FMulAcc(op) => {
                    format!(
                        "fmulacc  {}[r{}:r{}] += {}[r{}:r{}] * {}[r{}:r{}], n=r{}, aux={}",
                        fbuf(op.out),
                        op.o0,
                        op.o1,
                        fbuf(op.a),
                        op.a0,
                        op.a1,
                        fbuf(op.b),
                        op.b0,
                        op.b1,
                        op.n,
                        op.aux
                    )
                }
                Instr::FMap(op) => {
                    let sites: Vec<String> = op
                        .sites
                        .iter()
                        .map(|s| {
                            if s.buf == u32::MAX {
                                format!("<idx r{}:r{}>", s.r0, s.r1)
                            } else {
                                format!("{}[r{}:r{}]", fbuf(s.buf), s.r0, s.r1)
                            }
                        })
                        .collect();
                    let tape: Vec<String> = op
                        .tape
                        .iter()
                        .map(|o| match o {
                            MapOp::Const { v } => format!("#{v:?}"),
                            MapOp::Load { site } => format!("ld{site}"),
                            MapOp::Cast { site } => format!("cast{site}"),
                            MapOp::Bin { op, a, b } => format!("{} t{a} t{b}", fbin(*op)),
                            MapOp::Un { op, a } => {
                                let name = match op {
                                    FUnaryOp::Neg => "neg",
                                    FUnaryOp::Exp => "exp",
                                    FUnaryOp::Sqrt => "sqrt",
                                    FUnaryOp::Recip => "recip",
                                    FUnaryOp::Tanh => "tanh",
                                    FUnaryOp::Relu => "relu",
                                };
                                format!("{name} t{a}")
                            }
                        })
                        .collect();
                    let k = match op.kind {
                        StoreKind::Assign => "assign",
                        StoreKind::AddAssign => "add",
                        StoreKind::MaxAssign => "max",
                    };
                    format!(
                        "fmap     {}[r{}:r{}] {k} ({}), sites=[{}], n=r{}, aux={}, flops={}",
                        fbuf(op.out),
                        op.o0,
                        op.o1,
                        tape.join("; "),
                        sites.join(", "),
                        op.n,
                        op.aux,
                        op.flops
                    )
                }
                Instr::FMulAcc2(op) => {
                    format!(
                        "fmulacc2 {}[r{}:r{}:r{}] += {}[r{}:r{}:r{}] * {}[r{}:r{}:r{}], \
                         n=r{}xr{}, aux={}, baux={}",
                        fbuf(op.out),
                        op.o00,
                        op.o0i,
                        op.o0o,
                        fbuf(op.a),
                        op.a00,
                        op.a0i,
                        op.a0o,
                        fbuf(op.b),
                        op.b00,
                        op.b0i,
                        op.b0o,
                        op.n_outer,
                        op.n_inner,
                        op.aux,
                        op.aux_inner_bounds
                    )
                }
            };
            writeln!(f, "{pc:>4}  {line}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

/// Stack-disciplined scratch-register allocator: expression compilation
/// allocates upward and releases back to a mark; values that must survive
/// a sub-compilation (a loop limit across its body) simply keep their
/// mark held. `max` becomes the register-file size.
#[derive(Debug, Default)]
struct RegAlloc {
    next: u16,
    max: u16,
}

impl RegAlloc {
    fn alloc(&mut self) -> u16 {
        let r = self.next;
        self.next = self.next.checked_add(1).expect("register file overflow");
        self.max = self.max.max(self.next);
        r
    }

    fn mark(&self) -> u16 {
        self.next
    }

    fn release(&mut self, mark: u16) {
        self.next = mark;
    }
}

/// Builder state for one [`FusedMap`] tape.
#[derive(Default)]
struct MapBuild {
    /// `(buffer slot | u32::MAX for casts, index expr)` per site.
    sites: Vec<(u32, Expr)>,
    /// `(slot, rendered index)` → temp id, for site deduplication.
    memo: std::collections::HashMap<(u32, String), u16>,
    tape: Vec<MapOp>,
    /// Static aux loads per element (occurrence-counted).
    aux: u64,
    /// Float (tape) ops per element.
    flops: u64,
}

/// Pattern caps keeping the [`FusedMap`] executor's stack scratch small.
const MAX_MAP_SITES: usize = 12;
const MAX_MAP_TAPE: usize = 24;
/// Elements processed per tape sweep.
const MAP_CHUNK: usize = 64;

/// Reusable chunk scratch for [`run_fused_map`], owned by the dispatch
/// loop so the ~6 KiB zero-fill happens once per dispatch instead of
/// once per fused-map execution (which, in the outlined parallel tier,
/// would mean once per row). Every tape op fully overwrites its
/// `dst[..m]` slice before anything reads it, so stale chunk contents
/// are never observed.
struct MapScratch([[f32; MAP_CHUNK]; MAX_MAP_TAPE]);

impl Default for MapScratch {
    fn default() -> Self {
        MapScratch([[0f32; MAP_CHUNK]; MAX_MAP_TAPE])
    }
}

struct Compiler {
    code: Vec<Instr>,
    /// Label id -> program counter (`u32::MAX` until placed).
    labels: Vec<u32>,
    iregs: RegAlloc,
    fregs: RegAlloc,
    /// Active `For`/`LetInt` bindings (name -> alpha-renamed slot).
    var_scope: Vec<(String, u32)>,
    /// Active `Alloc` bindings (name -> alpha-renamed slot).
    fbuf_scope: Vec<(String, u32)>,
    next_var_slot: u32,
    next_fbuf_slot: u32,
    /// Source names of alpha-renamed binding slots, in slot order.
    var_slot_names: Vec<String>,
    /// Source names of `Alloc` scratch slots, in slot order.
    fbuf_slot_names: Vec<String>,
    slots: StmtSlots,
}

impl Compiler {
    fn new_label(&mut self) -> u32 {
        let id = u32::try_from(self.labels.len()).expect("label count fits u32");
        self.labels.push(u32::MAX);
        id
    }

    fn place(&mut self, label: u32) {
        self.labels[label as usize] = u32::try_from(self.code.len()).expect("code fits u32");
    }

    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    fn resolve_var(&self, name: &str) -> u32 {
        if let Some((_, slot)) = self.var_scope.iter().rev().find(|(n, _)| n == name) {
            return *slot;
        }
        self.slots
            .free_vars
            .get(name)
            .unwrap_or_else(|| panic!("unresolved variable `{name}`"))
    }

    fn resolve_fbuf(&self, name: &str) -> u32 {
        if let Some((_, slot)) = self.fbuf_scope.iter().rev().find(|(n, _)| n == name) {
            return *slot;
        }
        self.slots
            .free_fbufs
            .get(name)
            .unwrap_or_else(|| panic!("unresolved float buffer `{name}`"))
    }

    fn push_var(&mut self, name: &str) -> u32 {
        let slot = self.next_var_slot;
        self.next_var_slot += 1;
        self.var_scope.push((name.to_string(), slot));
        self.var_slot_names.push(name.to_string());
        slot
    }

    fn push_fbuf(&mut self, name: &str) -> u32 {
        let slot = self.next_fbuf_slot;
        self.next_fbuf_slot += 1;
        self.fbuf_scope.push((name.to_string(), slot));
        self.fbuf_slot_names.push(name.to_string());
        slot
    }

    /// Compiles `e` into a fresh register and returns it. Emits no stat
    /// bumps: integer-expression aux loads are charged statically at each
    /// statement-level evaluation site, exactly like the interpreter's
    /// `eval_counting` (which counts the whole tree, both `Select`
    /// branches included, regardless of what actually executes).
    fn expr(&mut self, e: &Expr) -> u16 {
        // Neutral-element peephole on the shapes Algorithm-1 offset
        // lowering produces (`0 + x`, `x*1`, ...). Only literal operands
        // are discarded, so evaluation order, panic behaviour and the
        // (separately pre-computed) load counts are all unchanged.
        match e.kind() {
            ExprKind::Add(a, b) if a.as_int() == Some(0) => return self.expr(b),
            ExprKind::Add(a, b) if b.as_int() == Some(0) => return self.expr(a),
            ExprKind::Sub(a, b) if b.as_int() == Some(0) => return self.expr(a),
            ExprKind::Mul(a, b) if b.as_int() == Some(1) => return self.expr(a),
            ExprKind::Mul(a, b) if a.as_int() == Some(1) => return self.expr(b),
            _ => {}
        }
        match e.kind() {
            ExprKind::Int(v) => {
                let dst = self.iregs.alloc();
                self.emit(Instr::IConst { dst, v: *v });
                dst
            }
            ExprKind::Var(n) => {
                let slot = self.resolve_var(n);
                let dst = self.iregs.alloc();
                self.emit(Instr::IVar { dst, slot });
                dst
            }
            ExprKind::Add(a, b) => self.ibin(IBinOp::Add, a, b),
            ExprKind::Sub(a, b) => self.ibin(IBinOp::Sub, a, b),
            ExprKind::Mul(a, b) => self.ibin(IBinOp::Mul, a, b),
            ExprKind::FloorDiv(a, b) => self.ibin(IBinOp::FloorDiv, a, b),
            ExprKind::FloorMod(a, b) => self.ibin(IBinOp::FloorMod, a, b),
            ExprKind::Min(a, b) => self.ibin(IBinOp::Min, a, b),
            ExprKind::Max(a, b) => self.ibin(IBinOp::Max, a, b),
            ExprKind::Select(c, a, b) => {
                // The interpreter's `Env::eval` evaluates only the taken
                // branch and counts no guard; mirror with a plain branch.
                let dst = self.iregs.alloc();
                let (l_then, l_else, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.cond(c, l_then, l_else);
                self.place(l_then);
                let m = self.iregs.mark();
                let r = self.expr(a);
                self.emit(Instr::ICopy { dst, src: r });
                self.iregs.release(m);
                self.emit(Instr::Jump { to: l_end });
                self.place(l_else);
                let r = self.expr(b);
                self.emit(Instr::ICopy { dst, src: r });
                self.iregs.release(m);
                self.place(l_end);
                dst
            }
            ExprKind::Uf(f, args) => {
                let m = self.iregs.mark();
                let regs: Box<[u16]> = args.iter().map(|a| self.expr(a)).collect();
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                let uf =
                    self.slots.ufs.get(f.name()).unwrap_or_else(|| {
                        panic!("unresolved uninterpreted function `{}`", f.name())
                    });
                self.emit(Instr::IUf {
                    dst,
                    uf,
                    args: regs,
                });
                dst
            }
            ExprKind::Load(buf, idx) => {
                let b = self
                    .slots
                    .ibufs
                    .get(buf)
                    .unwrap_or_else(|| panic!("unresolved auxiliary buffer `{buf}`"));
                // Peephole: `aux[var]` is the hot ragged-access shape.
                if let ExprKind::Var(n) = idx.kind() {
                    let vslot = self.resolve_var(n);
                    let dst = self.iregs.alloc();
                    self.emit(Instr::ILoadV { dst, buf: b, vslot });
                    return dst;
                }
                let m = self.iregs.mark();
                let r_idx = self.expr(idx);
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                self.emit(Instr::ILoad {
                    dst,
                    buf: b,
                    idx: r_idx,
                });
                dst
            }
        }
    }

    fn ibin(&mut self, op: IBinOp, a: &Expr, b: &Expr) -> u16 {
        // Peephole right-operand fusions. Constants and variables are
        // side-effect free, so evaluation order and stats are unchanged.
        match b.kind() {
            ExprKind::Int(c) => {
                let m = self.iregs.mark();
                let ra = self.expr(a);
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                self.emit(Instr::IBinC {
                    op,
                    dst,
                    a: ra,
                    c: *c,
                });
                return dst;
            }
            ExprKind::Var(n) => {
                let vslot = self.resolve_var(n);
                let m = self.iregs.mark();
                let ra = self.expr(a);
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                self.emit(Instr::IBinV {
                    op,
                    dst,
                    a: ra,
                    vslot,
                });
                return dst;
            }
            _ => {}
        }
        let m = self.iregs.mark();
        let ra = self.expr(a);
        let rb = self.expr(b);
        self.iregs.release(m);
        let dst = self.iregs.alloc();
        self.emit(Instr::IBin {
            op,
            dst,
            a: ra,
            b: rb,
        });
        dst
    }

    /// Compiles `c` as a short-circuit branch chain jumping to `on_true`
    /// or `on_false`. Evaluation order matches `Env::eval_cond`: `&&`
    /// evaluates its right side only when the left is true, `||` only
    /// when the left is false.
    fn cond(&mut self, c: &Cond, on_true: u32, on_false: u32) {
        match c.kind() {
            CondKind::Const(b) => {
                let to = if *b { on_true } else { on_false };
                self.emit(Instr::Jump { to });
            }
            CondKind::Lt(a, b) => self.cmp(CmpOp::Lt, a, b, on_true, on_false),
            CondKind::Le(a, b) => self.cmp(CmpOp::Le, a, b, on_true, on_false),
            CondKind::Eq(a, b) => self.cmp(CmpOp::Eq, a, b, on_true, on_false),
            CondKind::Ne(a, b) => self.cmp(CmpOp::Ne, a, b, on_true, on_false),
            CondKind::And(a, b) => {
                let mid = self.new_label();
                self.cond(a, mid, on_false);
                self.place(mid);
                self.cond(b, on_true, on_false);
            }
            CondKind::Or(a, b) => {
                let mid = self.new_label();
                self.cond(a, on_true, mid);
                self.place(mid);
                self.cond(b, on_true, on_false);
            }
            CondKind::Not(a) => self.cond(a, on_false, on_true),
        }
    }

    fn cmp(&mut self, op: CmpOp, a: &Expr, b: &Expr, on_true: u32, on_false: u32) {
        let m = self.iregs.mark();
        let ra = self.expr(a);
        let rb = self.expr(b);
        self.iregs.release(m);
        self.emit(Instr::BrCmp {
            op,
            a: ra,
            b: rb,
            on_true,
            on_false,
        });
    }

    /// Compiles a float expression into a fresh float register. Float
    /// arithmetic bumps `flops` per executed instruction; integer index
    /// sub-expressions charge their static aux-load counts when (and only
    /// when) their `FLoad`/`FCast` executes — the interpreter's dynamic
    /// behaviour for float `Select` branches.
    fn fexpr(&mut self, e: &FExpr) -> u16 {
        match e.kind() {
            FExprKind::Const(v) => {
                let dst = self.fregs.alloc();
                self.emit(Instr::FConst { dst, v: *v });
                dst
            }
            FExprKind::Load(buf, idx) => {
                let m = self.iregs.mark();
                let r_idx = self.expr(idx);
                self.iregs.release(m);
                let dst = self.fregs.alloc();
                let b = self.resolve_fbuf(buf);
                self.emit(Instr::FLoad {
                    dst,
                    buf: b,
                    idx: r_idx,
                    aux: count_loads(idx),
                });
                dst
            }
            FExprKind::Cast(i) => {
                let m = self.iregs.mark();
                let r = self.expr(i);
                self.iregs.release(m);
                let dst = self.fregs.alloc();
                self.emit(Instr::FCast {
                    dst,
                    src: r,
                    aux: count_loads(i),
                });
                dst
            }
            FExprKind::Add(a, b) => self.fbin(FBinOp::Add, a, b),
            FExprKind::Sub(a, b) => self.fbin(FBinOp::Sub, a, b),
            FExprKind::Mul(a, b) => self.fbin(FBinOp::Mul, a, b),
            FExprKind::Div(a, b) => self.fbin(FBinOp::Div, a, b),
            FExprKind::Max(a, b) => self.fbin(FBinOp::Max, a, b),
            FExprKind::Unary(op, a) => {
                let m = self.fregs.mark();
                let ra = self.fexpr(a);
                self.fregs.release(m);
                let dst = self.fregs.alloc();
                self.emit(Instr::FUn {
                    op: *op,
                    dst,
                    a: ra,
                });
                dst
            }
            FExprKind::Select(c, a, b) => {
                let dst = self.fregs.alloc();
                // Interpreter parity: a float select is a guard and (after
                // the stats-parity fix) charges its condition's aux loads,
                // exactly like `Stmt::If`.
                self.emit(Instr::Guard {
                    aux: count_cond_loads(c),
                });
                let (l_then, l_else, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.cond(c, l_then, l_else);
                self.place(l_then);
                let m = self.fregs.mark();
                let r = self.fexpr(a);
                self.emit(Instr::FCopy { dst, src: r });
                self.fregs.release(m);
                self.emit(Instr::Jump { to: l_end });
                self.place(l_else);
                let r = self.fexpr(b);
                self.emit(Instr::FCopy { dst, src: r });
                self.fregs.release(m);
                self.place(l_end);
                dst
            }
        }
    }

    fn fbin(&mut self, op: FBinOp, a: &FExpr, b: &FExpr) -> u16 {
        // Peephole constant-operand fusions; operand order is preserved
        // (no commutativity assumptions), so results stay bit-identical.
        if let FExprKind::Const(c) = b.kind() {
            let m = self.fregs.mark();
            let ra = self.fexpr(a);
            self.fregs.release(m);
            let dst = self.fregs.alloc();
            self.emit(Instr::FBinC {
                op,
                dst,
                a: ra,
                c: *c,
            });
            return dst;
        }
        if let FExprKind::Const(c) = a.kind() {
            let m = self.fregs.mark();
            let rb = self.fexpr(b);
            self.fregs.release(m);
            let dst = self.fregs.alloc();
            self.emit(Instr::FBinCL {
                op,
                dst,
                c: *c,
                b: rb,
            });
            return dst;
        }
        let m = self.fregs.mark();
        let ra = self.fexpr(a);
        let rb = self.fexpr(b);
        self.fregs.release(m);
        let dst = self.fregs.alloc();
        self.emit(Instr::FBin {
            op,
            dst,
            a: ra,
            b: rb,
        });
        dst
    }

    /// Attempts to compile `for var in min..min+extent { body }` as one
    /// [`FusedMulAcc`] instruction. Succeeds only for the canonical
    /// reduction shape `out[i(var)] += A[j(var)] * B[k(var)]` with all
    /// three indices affine in `var` and the output buffer distinct from
    /// both operands — the inner loop of every lowered GEMM-, score- and
    /// AttnV-style operator. Returns `false` (and emits nothing) when the
    /// pattern does not apply; the caller then compiles the loop normally.
    fn try_fused_mul_acc(&mut self, var: &str, min: &Expr, extent: &Expr, body: &Stmt) -> bool {
        // Prefer fusing a whole two-deep nest (this loop + the loop
        // directly inside it) when the body is itself a loop around the
        // canonical store — the GEMM/scores/AttnV shape.
        if let Stmt::For {
            var: ivar,
            min: imin,
            extent: iext,
            body: ibody,
            kind: _,
        } = body
        {
            if self.try_fused_mul_acc2(var, min, extent, ivar, imin, iext, ibody) {
                return true;
            }
        }
        let Some((buffer, index, abuf, aidx, bbuf, bidx)) = as_mul_acc_store(body) else {
            return false;
        };
        if !is_affine_in(index, var) || !is_affine_in(aidx, var) || !is_affine_in(bidx, var) {
            return false;
        }
        let out = self.resolve_fbuf(buffer);
        let a_slot = self.resolve_fbuf(abuf);
        let b_slot = self.resolve_fbuf(bbuf);
        // The fused form accumulates out-of-buffer (and `saxpy` splits
        // borrows), so the output must not alias either operand.
        if a_slot == out || b_slot == out {
            return false;
        }

        let im = self.iregs.mark();
        let r_min = self.expr(min);
        let r_ext = self.expr(extent);
        // Loop bounds charge their static load counts once, exactly like
        // the unfused loop header.
        self.emit(Instr::BumpAux {
            n: count_loads(min) + count_loads(extent),
        });
        let slot = self.push_var(var);
        self.emit(Instr::SetVar { slot, src: r_min });
        // Zero-trip guard *before* the index probes: an empty loop must
        // evaluate nothing, like the unfused `BrVarGe` would ensure.
        let rz = self.iregs.alloc();
        self.emit(Instr::IConst { dst: rz, v: 0 });
        let (l_run, l_end) = (self.new_label(), self.new_label());
        self.emit(Instr::BrCmp {
            op: CmpOp::Le,
            a: r_ext,
            b: rz,
            on_true: l_end,
            on_false: l_run,
        });
        self.place(l_run);
        // Probe each index at i = min and i = min + 1; affine-ness makes
        // the pair a full description (base + stride).
        let o0 = self.expr(index);
        let a0 = self.expr(aidx);
        let b0 = self.expr(bidx);
        let bump = self.iregs.alloc();
        self.emit(Instr::IVar { dst: bump, slot });
        self.emit(Instr::IBinC {
            op: IBinOp::Add,
            dst: bump,
            a: bump,
            c: 1,
        });
        self.emit(Instr::SetVar { slot, src: bump });
        let o1 = self.expr(index);
        let a1 = self.expr(aidx);
        let b1 = self.expr(bidx);
        self.emit(Instr::FMulAcc(Box::new(FusedMulAcc {
            out,
            a: a_slot,
            b: b_slot,
            o0,
            o1,
            a0,
            a1,
            b0,
            b1,
            n: r_ext,
            aux: count_loads(index) + count_loads(aidx) + count_loads(bidx),
        })));
        self.place(l_end);
        self.var_scope.pop();
        self.iregs.release(im);
        true
    }

    /// Attempts to compile the two-deep nest
    /// `for ovar { for ivar { out[..] += A[..] * B[..] } }` as one
    /// [`FusedMulAcc2`]. Requires all three indices bilinear-free 2-D
    /// affine in `(ivar, ovar)` and the inner bounds outer-invariant;
    /// returns `false` (emitting nothing) otherwise.
    #[allow(clippy::too_many_arguments)]
    fn try_fused_mul_acc2(
        &mut self,
        ovar: &str,
        omin: &Expr,
        oext: &Expr,
        ivar: &str,
        imin: &Expr,
        iext: &Expr,
        body: &Stmt,
    ) -> bool {
        if ovar == ivar {
            return false;
        }
        let Some((buffer, index, abuf, aidx, bbuf, bidx)) = as_mul_acc_store(body) else {
            return false;
        };
        // Inner bounds are hoisted out of the outer loop, so they must
        // not depend on it.
        if expr_mentions(imin, ovar) || expr_mentions(iext, ovar) {
            return false;
        }
        if !is_affine2(index, ivar, ovar)
            || !is_affine2(aidx, ivar, ovar)
            || !is_affine2(bidx, ivar, ovar)
        {
            return false;
        }
        let out = self.resolve_fbuf(buffer);
        let a_slot = self.resolve_fbuf(abuf);
        let b_slot = self.resolve_fbuf(bbuf);
        if a_slot == out || b_slot == out {
            return false;
        }

        let im = self.iregs.mark();
        let r_omin = self.expr(omin);
        let r_oext = self.expr(oext);
        self.emit(Instr::BumpAux {
            n: count_loads(omin) + count_loads(oext),
        });
        let oslot = self.push_var(ovar);
        self.emit(Instr::SetVar {
            slot: oslot,
            src: r_omin,
        });
        let rz = self.iregs.alloc();
        self.emit(Instr::IConst { dst: rz, v: 0 });
        let (l_run, l_end) = (self.new_label(), self.new_label());
        self.emit(Instr::BrCmp {
            op: CmpOp::Le,
            a: r_oext,
            b: rz,
            on_true: l_end,
            on_false: l_run,
        });
        self.place(l_run);
        // Inner bounds, evaluated once (outer-invariant); the serial
        // nest charges their loads per outer iteration — reproduced by
        // `aux_inner_bounds` at run time.
        let r_imin = self.expr(imin);
        let r_iext = self.expr(iext);
        let islot = self.push_var(ivar);
        self.emit(Instr::SetVar {
            slot: islot,
            src: r_imin,
        });
        // Probes at (o₀, i₀), (o₀, i₀+1) and (o₀+1, i₀).
        let o00 = self.expr(index);
        let a00 = self.expr(aidx);
        let b00 = self.expr(bidx);
        let bump_i = self.iregs.alloc();
        self.emit(Instr::IVar {
            dst: bump_i,
            slot: islot,
        });
        self.emit(Instr::IBinC {
            op: IBinOp::Add,
            dst: bump_i,
            a: bump_i,
            c: 1,
        });
        self.emit(Instr::SetVar {
            slot: islot,
            src: bump_i,
        });
        let o0i = self.expr(index);
        let a0i = self.expr(aidx);
        let b0i = self.expr(bidx);
        self.emit(Instr::SetVar {
            slot: islot,
            src: r_imin,
        });
        let bump_o = self.iregs.alloc();
        self.emit(Instr::IVar {
            dst: bump_o,
            slot: oslot,
        });
        self.emit(Instr::IBinC {
            op: IBinOp::Add,
            dst: bump_o,
            a: bump_o,
            c: 1,
        });
        self.emit(Instr::SetVar {
            slot: oslot,
            src: bump_o,
        });
        let o0o = self.expr(index);
        let a0o = self.expr(aidx);
        let b0o = self.expr(bidx);
        self.emit(Instr::FMulAcc2(Box::new(FusedMulAcc2 {
            out,
            a: a_slot,
            b: b_slot,
            o00,
            o0i,
            o0o,
            a00,
            a0i,
            a0o,
            b00,
            b0i,
            b0o,
            n_outer: r_oext,
            n_inner: r_iext,
            aux: count_loads(index) + count_loads(aidx) + count_loads(bidx),
            aux_inner_bounds: count_loads(imin) + count_loads(iext),
        })));
        self.place(l_end);
        self.var_scope.pop();
        self.var_scope.pop();
        self.iregs.release(im);
        true
    }

    /// Builds the [`FusedMap`] tape for `e`, returning the producing temp
    /// id, or `None` when `e` contains a select or a non-affine index.
    /// Repeated `(buffer, index)` sites are memoised into one temp but
    /// still charge their aux loads per occurrence.
    fn map_tape(&self, e: &FExpr, var: &str, mb: &mut MapBuild) -> Option<u16> {
        let t = match e.kind() {
            FExprKind::Const(v) => {
                mb.tape.push(MapOp::Const { v: *v });
                mb.tape.len() - 1
            }
            FExprKind::Load(buf, idx) => {
                if !is_affine_in(idx, var) {
                    return None;
                }
                let slot = self.resolve_fbuf(buf);
                mb.aux += count_loads(idx);
                let key = (slot, format!("{idx}"));
                if let Some(&t) = mb.memo.get(&key) {
                    return Some(t);
                }
                let site = u16::try_from(mb.sites.len()).ok()?;
                mb.sites.push((slot, idx.clone()));
                mb.tape.push(MapOp::Load { site });
                let t = (mb.tape.len() - 1) as u16;
                mb.memo.insert(key, t);
                return Some(t);
            }
            FExprKind::Cast(i) => {
                if !is_affine_in(i, var) {
                    return None;
                }
                mb.aux += count_loads(i);
                let key = (u32::MAX, format!("{i}"));
                if let Some(&t) = mb.memo.get(&key) {
                    return Some(t);
                }
                let site = u16::try_from(mb.sites.len()).ok()?;
                mb.sites.push((u32::MAX, i.clone()));
                mb.tape.push(MapOp::Cast { site });
                let t = (mb.tape.len() - 1) as u16;
                mb.memo.insert(key, t);
                return Some(t);
            }
            FExprKind::Add(a, b) => self.map_bin(FBinOp::Add, a, b, var, mb)?,
            FExprKind::Sub(a, b) => self.map_bin(FBinOp::Sub, a, b, var, mb)?,
            FExprKind::Mul(a, b) => self.map_bin(FBinOp::Mul, a, b, var, mb)?,
            FExprKind::Div(a, b) => self.map_bin(FBinOp::Div, a, b, var, mb)?,
            FExprKind::Max(a, b) => self.map_bin(FBinOp::Max, a, b, var, mb)?,
            FExprKind::Unary(op, a) => {
                let ta = self.map_tape(a, var, mb)?;
                mb.flops += 1;
                mb.tape.push(MapOp::Un { op: *op, a: ta });
                mb.tape.len() - 1
            }
            FExprKind::Select(_, _, _) => return None,
        };
        u16::try_from(t).ok()
    }

    fn map_bin(
        &self,
        op: FBinOp,
        a: &FExpr,
        b: &FExpr,
        var: &str,
        mb: &mut MapBuild,
    ) -> Option<usize> {
        let ta = self.map_tape(a, var, mb)?;
        let tb = self.map_tape(b, var, mb)?;
        mb.flops += 1;
        mb.tape.push(MapOp::Bin { op, a: ta, b: tb });
        Some(mb.tape.len() - 1)
    }

    /// Attempts to compile `for var { out[..] (=|+=|max=) f(..) }` as one
    /// [`FusedMap`]. Applies to branch-free bodies whose every integer
    /// index is affine in `var` (and that do not load the output buffer,
    /// which chunked evaluation could observe mid-store). Returns `false`
    /// (emitting nothing) when the pattern does not apply.
    fn try_fused_map(&mut self, var: &str, min: &Expr, extent: &Expr, body: &Stmt) -> bool {
        let Stmt::Store {
            buffer,
            index,
            value,
            kind,
        } = body
        else {
            return false;
        };
        if !is_affine_in(index, var) {
            return false;
        }
        let out = self.resolve_fbuf(buffer);
        let mut mb = MapBuild::default();
        if self.map_tape(value, var, &mut mb).is_none() {
            return false;
        }
        if mb.sites.len() > MAX_MAP_SITES || mb.tape.len() > MAX_MAP_TAPE {
            return false;
        }
        if mb.sites.iter().any(|(slot, _)| *slot == out) {
            return false;
        }
        let aux = mb.aux + count_loads(index);
        let flops = mb.flops + u64::from(!matches!(kind, StoreKind::Assign));

        let im = self.iregs.mark();
        let r_min = self.expr(min);
        let r_ext = self.expr(extent);
        self.emit(Instr::BumpAux {
            n: count_loads(min) + count_loads(extent),
        });
        let slot = self.push_var(var);
        self.emit(Instr::SetVar { slot, src: r_min });
        let rz = self.iregs.alloc();
        self.emit(Instr::IConst { dst: rz, v: 0 });
        let (l_run, l_end) = (self.new_label(), self.new_label());
        self.emit(Instr::BrCmp {
            op: CmpOp::Le,
            a: r_ext,
            b: rz,
            on_true: l_end,
            on_false: l_run,
        });
        self.place(l_run);
        let o0 = self.expr(index);
        let site_exprs: Vec<Expr> = mb.sites.iter().map(|(_, e)| e.clone()).collect();
        let r0s: Vec<u16> = site_exprs.iter().map(|e| self.expr(e)).collect();
        let bump = self.iregs.alloc();
        self.emit(Instr::IVar { dst: bump, slot });
        self.emit(Instr::IBinC {
            op: IBinOp::Add,
            dst: bump,
            a: bump,
            c: 1,
        });
        self.emit(Instr::SetVar { slot, src: bump });
        let o1 = self.expr(index);
        let r1s: Vec<u16> = site_exprs.iter().map(|e| self.expr(e)).collect();
        let sites: Box<[MapSite]> = mb
            .sites
            .iter()
            .zip(r0s.iter().zip(&r1s))
            .map(|((slot, _), (&r0, &r1))| MapSite { buf: *slot, r0, r1 })
            .collect();
        self.emit(Instr::FMap(Box::new(FusedMap {
            out,
            o0,
            o1,
            kind: *kind,
            sites,
            tape: mb.tape.into_boxed_slice(),
            n: r_ext,
            aux,
            flops,
        })));
        self.place(l_end);
        self.var_scope.pop();
        self.iregs.release(im);
        true
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                body,
                kind: _,
            } => {
                if self.try_fused_mul_acc(var, min, extent, body) {
                    return;
                }
                if self.try_fused_map(var, min, extent, body) {
                    return;
                }
                let im = self.iregs.mark();
                let r_min = self.expr(min);
                let r_ext = self.expr(extent);
                // Loop bounds are evaluated once per For execution; the
                // interpreter charges their static load counts there.
                self.emit(Instr::BumpAux {
                    n: count_loads(min) + count_loads(extent),
                });
                let slot = self.push_var(var);
                self.emit(Instr::SetVar { slot, src: r_min });
                // The limit register must survive the body: release the
                // operand marks, then hold one register for lo + n.
                self.iregs.release(im);
                let r_lim = self.iregs.alloc();
                self.emit(Instr::IBin {
                    op: IBinOp::Add,
                    dst: r_lim,
                    a: r_min,
                    b: r_ext,
                });
                let (l_body, l_exit) = (self.new_label(), self.new_label());
                // Zero-trip test once, then a fused increment+test+jump
                // back-edge: one dispatch of loop overhead per iteration.
                self.emit(Instr::BrVarGe {
                    slot,
                    lim: r_lim,
                    to: l_exit,
                });
                self.place(l_body);
                self.stmt(body);
                self.emit(Instr::LoopNext {
                    slot,
                    lim: r_lim,
                    back: l_body,
                });
                self.place(l_exit);
                self.var_scope.pop();
                self.iregs.release(im);
            }
            Stmt::LetInt { var, value, body } => {
                let m = self.iregs.mark();
                let r = self.expr(value);
                self.iregs.release(m);
                let slot = self.push_var(var);
                self.emit(Instr::LetVar {
                    slot,
                    src: r,
                    aux: count_loads(value),
                });
                self.stmt(body);
                self.var_scope.pop();
            }
            Stmt::Store {
                buffer,
                index,
                value,
                kind,
            } => {
                let im = self.iregs.mark();
                let fm = self.fregs.mark();
                let r_idx = self.expr(index);
                let r_val = self.fexpr(value);
                let buf = self.resolve_fbuf(buffer);
                self.emit(Instr::FStore {
                    buf,
                    idx: r_idx,
                    val: r_val,
                    kind: *kind,
                    aux: count_loads(index),
                });
                self.iregs.release(im);
                self.fregs.release(fm);
            }
            Stmt::If { cond, then_, else_ } => {
                self.emit(Instr::Guard {
                    aux: count_cond_loads(cond),
                });
                let (l_then, l_else, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.cond(cond, l_then, l_else);
                self.place(l_then);
                self.stmt(then_);
                self.emit(Instr::Jump { to: l_end });
                self.place(l_else);
                if let Some(e) = else_ {
                    self.stmt(e);
                }
                self.place(l_end);
            }
            Stmt::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            Stmt::Alloc { buffer, size, body } => {
                let m = self.iregs.mark();
                let r = self.expr(size);
                self.iregs.release(m);
                let slot = self.push_fbuf(buffer);
                self.emit(Instr::FAlloc {
                    slot,
                    size: r,
                    aux: count_loads(size),
                });
                self.stmt(body);
                self.fbuf_scope.pop();
            }
            Stmt::Nop => {}
        }
    }

    /// Resolves label ids in jump fields to program counters.
    fn finish(mut self) -> VmProgram {
        for instr in &mut self.code {
            match instr {
                Instr::Jump { to }
                | Instr::BrVarGe { to, .. }
                | Instr::LoopNext { back: to, .. } => *to = self.labels[*to as usize],
                Instr::BrCmp {
                    on_true, on_false, ..
                } => {
                    *on_true = self.labels[*on_true as usize];
                    *on_false = self.labels[*on_false as usize];
                }
                _ => {}
            }
        }
        let mut n_iregs = self.iregs.max as usize;
        let code = local_cse(self.code, &mut n_iregs);
        VmProgram {
            code,
            n_iregs,
            n_fregs: self.fregs.max as usize,
            slots: self.slots,
            var_slot_names: self.var_slot_names,
            fbuf_slot_names: self.fbuf_slot_names,
            math: MathMode::Strict,
        }
    }
}

// ---------------------------------------------------------------------
// Block-local common-subexpression elimination
// ---------------------------------------------------------------------

/// Symbolic value of one pure integer instruction, over value ids rather
/// than register names (so operand overwrites can never produce a stale
/// hit) with per-block-versioned variable reads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValKey {
    Const(i64),
    Var(u32, u32),
    Bin(IBinOp, u32, u32),
    BinC(IBinOp, u32, i64),
    BinV(IBinOp, u32, u32, u32),
    Load(u32, u32),
    LoadV(u32, u32, u32),
}

/// Calls `f` with every integer register the instruction *reads*.
fn ireg_reads_mut(ins: &mut Instr, f: &mut impl FnMut(&mut u16)) {
    match ins {
        Instr::ICopy { src, .. } => f(src),
        Instr::IBin { a, b, .. } => {
            f(a);
            f(b);
        }
        Instr::IBinC { a, .. } | Instr::IBinV { a, .. } => f(a),
        Instr::ILoad { idx, .. } => f(idx),
        Instr::IUf { args, .. } => {
            for a in args.iter_mut() {
                f(a);
            }
        }
        Instr::SetVar { src, .. } | Instr::LetVar { src, .. } | Instr::FCast { src, .. } => f(src),
        Instr::BrVarGe { lim, .. } | Instr::LoopNext { lim, .. } => f(lim),
        Instr::BrCmp { a, b, .. } => {
            f(a);
            f(b);
        }
        Instr::FLoad { idx, .. } | Instr::FStore { idx, .. } => f(idx),
        Instr::FAlloc { size, .. } => f(size),
        Instr::FMulAcc(op) => {
            for r in [
                &mut op.o0, &mut op.o1, &mut op.a0, &mut op.a1, &mut op.b0, &mut op.b1, &mut op.n,
            ] {
                f(r);
            }
        }
        Instr::FMulAcc2(op) => {
            for r in [
                &mut op.o00,
                &mut op.o0i,
                &mut op.o0o,
                &mut op.a00,
                &mut op.a0i,
                &mut op.a0o,
                &mut op.b00,
                &mut op.b0i,
                &mut op.b0o,
                &mut op.n_outer,
                &mut op.n_inner,
            ] {
                f(r);
            }
        }
        Instr::FMap(op) => {
            f(&mut op.o0);
            f(&mut op.o1);
            f(&mut op.n);
            for s in op.sites.iter_mut() {
                f(&mut s.r0);
                f(&mut s.r1);
            }
        }
        Instr::IConst { .. }
        | Instr::IVar { .. }
        | Instr::ILoadV { .. }
        | Instr::Jump { .. }
        | Instr::Guard { .. }
        | Instr::BumpAux { .. }
        | Instr::FConst { .. }
        | Instr::FCopy { .. }
        | Instr::FBin { .. }
        | Instr::FBinC { .. }
        | Instr::FBinCL { .. }
        | Instr::FUn { .. } => {}
    }
}

/// Redirects a pure integer instruction's destination register.
fn set_ireg_dst(ins: &mut Instr, d: u16) {
    match ins {
        Instr::IConst { dst, .. }
        | Instr::IVar { dst, .. }
        | Instr::ICopy { dst, .. }
        | Instr::IBin { dst, .. }
        | Instr::IBinC { dst, .. }
        | Instr::IBinV { dst, .. }
        | Instr::ILoad { dst, .. }
        | Instr::ILoadV { dst, .. } => *dst = d,
        _ => unreachable!("only pure integer instructions are renamed"),
    }
}

/// The integer register the instruction writes, if any.
fn ireg_write(ins: &Instr) -> Option<u16> {
    match ins {
        Instr::IConst { dst, .. }
        | Instr::IVar { dst, .. }
        | Instr::ICopy { dst, .. }
        | Instr::IBin { dst, .. }
        | Instr::IBinC { dst, .. }
        | Instr::IBinV { dst, .. }
        | Instr::ILoad { dst, .. }
        | Instr::ILoadV { dst, .. }
        | Instr::IUf { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Block-local value-numbering CSE over the resolved bytecode.
///
/// The compiler's fused-loop lowering evaluates each affine index
/// expression at two or three probe points, re-emitting whole
/// subexpressions (aux-table loads, invariant products) that only differ
/// in the probed loop variable — per *row* of a ragged operator this
/// redundant integer arithmetic dominates the scalar dispatch overhead.
/// This pass value-numbers pure integer instructions (`iconst`, `ivar`,
/// `icopy`, `ibin[.c|.v]`, `iload[.v]`) within each basic block and
/// deletes recomputations, rewriting later reads to the register that
/// already holds the value.
///
/// Soundness:
/// * keys are built over value ids, and variable reads carry a
///   per-block version bumped on every `setvar`/`letvar`, so any state
///   change produces a different key;
/// * integer buffers are bound before execution and never written by
///   the program, so `iload` is pure;
/// * a def of `D` is deleted only when every read of `D` in the whole
///   program sits in the same block at or after the def (reads in other
///   blocks, or upstream of the def on a back-edge re-entry, keep the
///   instruction); if the aliased source register is overwritten while
///   `D` still has later reads, an `icopy` rematerialises `D` first;
/// * statistics are charged by dedicated instructions (`bumpaux`,
///   `guard`, `letvar`, the `aux` fields of float ops), none of which
///   are touched, so interpreter-stats parity is preserved.
fn local_cse(code: Vec<Instr>, n_iregs: &mut usize) -> Vec<Instr> {
    let n = code.len();
    if n == 0 {
        return code;
    }
    // Basic-block starts: entry, every branch target, every fall-through
    // successor of a branch.
    let mut is_start = vec![false; n + 1];
    is_start[0] = true;
    for (pc, ins) in code.iter().enumerate() {
        match ins {
            Instr::Jump { to } => {
                is_start[*to as usize] = true;
                is_start[pc + 1] = true;
            }
            Instr::BrVarGe { to, .. } | Instr::LoopNext { back: to, .. } => {
                is_start[*to as usize] = true;
                is_start[pc + 1] = true;
            }
            Instr::BrCmp {
                on_true, on_false, ..
            } => {
                is_start[*on_true as usize] = true;
                is_start[*on_false as usize] = true;
                is_start[pc + 1] = true;
            }
            _ => {}
        }
    }
    let mut block_of = vec![0u32; n];
    let mut bid = 0u32;
    for pc in 0..n {
        if pc > 0 && is_start[pc] {
            bid += 1;
        }
        block_of[pc] = bid;
    }
    // Global read map: which block(s) read each register, and at which
    // positions (sorted by construction).
    const MULTI: u32 = u32::MAX;
    let mut read_in: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
    let mut read_pos: std::collections::HashMap<u16, Vec<usize>> = std::collections::HashMap::new();
    // Registers whose first access within a block is a read: on a
    // back-edge re-entry such a read observes the value a *later* def in
    // the block produced on the previous trip, so those defs must stay.
    let mut ue_read: std::collections::HashSet<(u32, u16)> = std::collections::HashSet::new();
    let mut written: std::collections::HashSet<u16> = std::collections::HashSet::new();
    for (pc, ins) in code.iter().enumerate() {
        if is_start[pc] {
            written.clear();
        }
        let mut probe = ins.clone();
        ireg_reads_mut(&mut probe, &mut |r| {
            let e = read_in.entry(*r).or_insert(block_of[pc]);
            if *e != block_of[pc] {
                *e = MULTI;
            }
            read_pos.entry(*r).or_default().push(pc);
            if !written.contains(r) {
                ue_read.insert((block_of[pc], *r));
            }
        });
        if let Some(d) = ireg_write(ins) {
            written.insert(d);
        }
    }
    let reads_in_range = |r: u16, lo: usize, hi: usize| -> bool {
        read_pos
            .get(&r)
            .is_some_and(|v| v.iter().any(|&p| p >= lo && p < hi))
    };

    let mut out: Vec<Instr> = Vec::with_capacity(n);
    let mut newpc = vec![0u32; n + 1];
    let mut next_val = 0u32;
    // Fresh registers for block-local renaming (SSA within a block, so
    // the compiler's in-place accumulations stop destroying values the
    // next probe could reuse).
    let mut next_reg = u16::try_from(*n_iregs).unwrap_or(u16::MAX);
    // Per-block state.
    let mut reg_val: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
    let mut key_id: std::collections::HashMap<ValKey, u32> = std::collections::HashMap::new();
    let mut avail: std::collections::HashMap<u32, u16> = std::collections::HashMap::new();
    let mut var_ver: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut alias: std::collections::HashMap<u16, u16> = std::collections::HashMap::new();
    let mut block_end_pc = n;

    for pc in 0..n {
        if is_start[pc] {
            reg_val.clear();
            key_id.clear();
            avail.clear();
            var_ver.clear();
            alias.clear();
            block_end_pc = (pc + 1..=n).find(|&q| q == n || is_start[q]).unwrap_or(n);
        }
        newpc[pc] = out.len() as u32;
        let mut ins = code[pc].clone();
        // Route reads through live aliases.
        ireg_reads_mut(&mut ins, &mut |r| {
            if let Some(s) = alias.get(r) {
                *r = *s;
            }
        });
        // Variable writes bump the version so later keys can't match
        // values computed from the old variable state.
        match &ins {
            Instr::SetVar { slot, .. }
            | Instr::LetVar { slot, .. }
            | Instr::LoopNext { slot, .. } => {
                *var_ver.entry(*slot).or_insert(0) += 1;
            }
            _ => {}
        }
        let dst = ireg_write(&ins);
        if let Some(d) = dst {
            // Overwriting an alias *source*: rematerialise still-needed
            // aliased registers from it first.
            let stale: Vec<u16> = alias
                .iter()
                .filter(|&(_, s)| *s == d)
                .map(|(x, _)| *x)
                .collect();
            for x in stale {
                alias.remove(&x);
                if reads_in_range(x, pc + 1, block_end_pc) {
                    out.push(Instr::ICopy { dst: x, src: d });
                }
            }
            // Overwriting an aliased register ends its alias.
            alias.remove(&d);
        }
        // Value id a register currently holds (fresh opaque id for
        // registers whose defining instruction precedes the block).
        fn val_of(
            reg_val: &mut std::collections::HashMap<u16, u32>,
            next: &mut u32,
            r: u16,
        ) -> u32 {
            *reg_val.entry(r).or_insert_with(|| {
                *next += 1;
                *next
            })
        }
        let ver = |var_ver: &std::collections::HashMap<u32, u32>, s: u32| -> u32 {
            var_ver.get(&s).copied().unwrap_or(0)
        };
        // Symbolic value of a pure instruction (`None` = impure/other).
        let key: Option<ValKey> = match &ins {
            Instr::IConst { v, .. } => Some(ValKey::Const(*v)),
            Instr::IVar { slot, .. } => Some(ValKey::Var(*slot, ver(&var_ver, *slot))),
            Instr::IBin { op, a, b, .. } => {
                let va = val_of(&mut reg_val, &mut next_val, *a);
                let vb = val_of(&mut reg_val, &mut next_val, *b);
                Some(ValKey::Bin(*op, va, vb))
            }
            Instr::IBinC { op, a, c, .. } => Some(ValKey::BinC(
                *op,
                val_of(&mut reg_val, &mut next_val, *a),
                *c,
            )),
            Instr::IBinV { op, a, vslot, .. } => {
                let va = val_of(&mut reg_val, &mut next_val, *a);
                Some(ValKey::BinV(*op, va, *vslot, ver(&var_ver, *vslot)))
            }
            Instr::ILoad { buf, idx, .. } => Some(ValKey::Load(
                *buf,
                val_of(&mut reg_val, &mut next_val, *idx),
            )),
            Instr::ILoadV { buf, vslot, .. } => {
                Some(ValKey::LoadV(*buf, *vslot, ver(&var_ver, *vslot)))
            }
            _ => None,
        };
        match (key, &ins) {
            (_, Instr::ICopy { dst: d, src }) => {
                // Copies just propagate the source's value id.
                let v = val_of(&mut reg_val, &mut next_val, *src);
                let (d, src) = (*d, *src);
                reg_val.insert(d, v);
                avail.entry(v).or_insert(src);
                out.push(ins);
            }
            (Some(k), _) => {
                let d = dst.expect("pure integer instructions write a register");
                let id = *key_id.entry(k).or_insert_with(|| {
                    next_val += 1;
                    next_val
                });
                // `d` can be retired (deleted or renamed) only when every
                // read of it sits in this block downstream of some def.
                let block_local = read_in.get(&d).map_or(true, |b| *b == block_of[pc])
                    && !ue_read.contains(&(block_of[pc], d));
                let hit = avail
                    .get(&id)
                    .copied()
                    .filter(|s| *s != d && reg_val.get(s) == Some(&id));
                match hit {
                    Some(s) if block_local => {
                        // Drop the recomputation, alias reads to `s`.
                        // `d` keeps its previous runtime value.
                        alias.insert(d, s);
                    }
                    Some(s) => {
                        // `d` may be read elsewhere: keep it live via a
                        // copy instead of recomputing.
                        out.push(Instr::ICopy { dst: d, src: s });
                        reg_val.insert(d, id);
                    }
                    None if block_local && next_reg < u16::MAX => {
                        // First computation: write it to a fresh register
                        // so a later in-place accumulation into `d` can't
                        // destroy the value before another probe needs it.
                        let nd = next_reg;
                        next_reg += 1;
                        set_ireg_dst(&mut ins, nd);
                        alias.insert(d, nd);
                        reg_val.insert(nd, id);
                        avail.insert(id, nd);
                        out.push(ins);
                    }
                    None => {
                        reg_val.insert(d, id);
                        avail.insert(id, d);
                        out.push(ins);
                    }
                }
            }
            (None, _) => {
                if let Some(d) = dst {
                    // Impure write (`iuf`): fresh opaque value.
                    next_val += 1;
                    reg_val.insert(d, next_val);
                }
                out.push(ins);
            }
        }
    }
    newpc[n] = out.len() as u32;
    remap_targets(&mut out, &newpc);
    *n_iregs = (*n_iregs).max(next_reg as usize);
    local_dce(out)
}

/// Rewrites every branch target through an old-pc → new-pc map.
fn remap_targets(code: &mut [Instr], newpc: &[u32]) {
    for ins in code {
        match ins {
            Instr::Jump { to } | Instr::BrVarGe { to, .. } | Instr::LoopNext { back: to, .. } => {
                *to = newpc[*to as usize]
            }
            Instr::BrCmp {
                on_true, on_false, ..
            } => {
                *on_true = newpc[*on_true as usize];
                *on_false = newpc[*on_false as usize];
            }
            _ => {}
        }
    }
}

/// Backward dead-code elimination over the pure integer instructions:
/// removes defs whose register is never read again, using the union of
/// every block's upward-exposed reads (reads before any write in that
/// block) as the conservative live-out set of *every* block — sound for
/// any control flow, and enough to sweep the operand chains stranded
/// when [`local_cse`] replaces a recomputation with a copy.
fn local_dce(code: Vec<Instr>) -> Vec<Instr> {
    let n = code.len();
    if n == 0 {
        return code;
    }
    let mut is_start = vec![false; n + 1];
    is_start[0] = true;
    for (pc, ins) in code.iter().enumerate() {
        match ins {
            Instr::Jump { to } => {
                is_start[*to as usize] = true;
                is_start[pc + 1] = true;
            }
            Instr::BrVarGe { to, .. } | Instr::LoopNext { back: to, .. } => {
                is_start[*to as usize] = true;
                is_start[pc + 1] = true;
            }
            Instr::BrCmp {
                on_true, on_false, ..
            } => {
                is_start[*on_true as usize] = true;
                is_start[*on_false as usize] = true;
                is_start[pc + 1] = true;
            }
            _ => {}
        }
    }
    // Upward-exposed reads across all blocks.
    let mut ue: std::collections::HashSet<u16> = std::collections::HashSet::new();
    let mut written: std::collections::HashSet<u16> = std::collections::HashSet::new();
    for (pc, ins) in code.iter().enumerate() {
        if is_start[pc] {
            written.clear();
        }
        let mut probe = ins.clone();
        ireg_reads_mut(&mut probe, &mut |r| {
            if !written.contains(r) {
                ue.insert(*r);
            }
        });
        if let Some(d) = ireg_write(ins) {
            written.insert(d);
        }
    }
    // Backward sweep, block by block.
    let mut keep = vec![true; n];
    let mut live: std::collections::HashSet<u16> = std::collections::HashSet::new();
    let mut block_ranges: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for (pc, st) in is_start.iter().enumerate().take(n).skip(1) {
        if *st {
            block_ranges.push((start, pc));
            start = pc;
        }
    }
    if n > 0 {
        block_ranges.push((start, n));
    }
    for &(lo, hi) in &block_ranges {
        live.clear();
        live.extend(ue.iter().copied());
        for pc in (lo..hi).rev() {
            let ins = &code[pc];
            let pure = matches!(
                ins,
                Instr::IConst { .. }
                    | Instr::IVar { .. }
                    | Instr::ICopy { .. }
                    | Instr::IBin { .. }
                    | Instr::IBinC { .. }
                    | Instr::IBinV { .. }
                    | Instr::ILoad { .. }
                    | Instr::ILoadV { .. }
            );
            if pure {
                if let Some(d) = ireg_write(ins) {
                    if !live.contains(&d) {
                        keep[pc] = false;
                        continue;
                    }
                }
            }
            if let Some(d) = ireg_write(ins) {
                live.remove(&d);
            }
            let mut probe = ins.clone();
            ireg_reads_mut(&mut probe, &mut |r| {
                live.insert(*r);
            });
        }
    }
    let mut newpc = vec![0u32; n + 1];
    let mut out = Vec::with_capacity(n);
    for (pc, ins) in code.into_iter().enumerate() {
        newpc[pc] = out.len() as u32;
        if keep[pc] {
            out.push(ins);
        }
    }
    newpc[n] = out.len() as u32;
    remap_targets(&mut out, &newpc);
    out
}

/// Matches the canonical fusable reduction store
/// `buffer[index] += A[aidx] * B[bidx]`.
fn as_mul_acc_store(body: &Stmt) -> Option<(&str, &Expr, &str, &Expr, &str, &Expr)> {
    let Stmt::Store {
        buffer,
        index,
        value,
        kind: StoreKind::AddAssign,
    } = body
    else {
        return None;
    };
    let FExprKind::Mul(a, b) = value.kind() else {
        return None;
    };
    let (FExprKind::Load(abuf, aidx), FExprKind::Load(bbuf, bidx)) = (a.kind(), b.kind()) else {
        return None;
    };
    Some((buffer, index, abuf, aidx, bbuf, bidx))
}

/// True when `e` is affine in `var` *and* no memory access, uninterpreted
/// function, select or non-linear operator involves `var`: `var` may
/// appear only under `+`/`-`, or under `×` with a `var`-free co-factor.
/// Such an expression is fully determined by its values at two
/// consecutive `var` points, and probing it at any in-range point
/// touches exactly the memory an ordinary evaluation would.
fn is_affine_in(e: &Expr, var: &str) -> bool {
    affine_degree(e, var).is_some()
}

/// True when `e` is `base + c_i·vi + c_o·vo` with constant coefficients:
/// affine in each variable, with no product of two variable-dependent
/// factors (which would make a stride depend on the other variable) and
/// no memory access through either variable.
fn is_affine2(e: &Expr, vi: &str, vo: &str) -> bool {
    affine2_degree(e, vi, vo).is_some()
}

/// `Some((mentions_vi, mentions_vo))` for bilinear-free 2-D affine
/// expressions, `None` otherwise.
fn affine2_degree(e: &Expr, vi: &str, vo: &str) -> Option<(bool, bool)> {
    match e.kind() {
        ExprKind::Int(_) => Some((false, false)),
        ExprKind::Var(n) => Some((n == vi, n == vo)),
        ExprKind::Add(a, b) | ExprKind::Sub(a, b) => {
            let (ai, ao) = affine2_degree(a, vi, vo)?;
            let (bi, bo) = affine2_degree(b, vi, vo)?;
            Some((ai || bi, ao || bo))
        }
        ExprKind::Mul(a, b) => {
            let (ai, ao) = affine2_degree(a, vi, vo)?;
            let (bi, bo) = affine2_degree(b, vi, vo)?;
            // A product of two variable-dependent factors is quadratic
            // or bilinear — its strides are not constant.
            if (ai || ao) && (bi || bo) {
                None
            } else {
                Some((ai || bi, ao || bo))
            }
        }
        ExprKind::FloorDiv(a, b)
        | ExprKind::FloorMod(a, b)
        | ExprKind::Min(a, b)
        | ExprKind::Max(a, b) => {
            let (ai, ao) = affine2_degree(a, vi, vo)?;
            let (bi, bo) = affine2_degree(b, vi, vo)?;
            if ai || ao || bi || bo {
                None
            } else {
                Some((false, false))
            }
        }
        ExprKind::Select(c, a, b) => {
            if cond_mentions(c, vi) || cond_mentions(c, vo) {
                return None;
            }
            let (ai, ao) = affine2_degree(a, vi, vo)?;
            let (bi, bo) = affine2_degree(b, vi, vo)?;
            if ai || ao || bi || bo {
                None
            } else {
                Some((false, false))
            }
        }
        ExprKind::Uf(_, args) => {
            for a in args {
                let (ai, ao) = affine2_degree(a, vi, vo)?;
                if ai || ao {
                    return None;
                }
            }
            Some((false, false))
        }
        ExprKind::Load(_, idx) => {
            let (ai, ao) = affine2_degree(idx, vi, vo)?;
            if ai || ao {
                None
            } else {
                Some((false, false))
            }
        }
    }
}

/// `Some(true)` if affine and mentioning `var`, `Some(false)` if `var`-free,
/// `None` if non-affine in `var`.
fn affine_degree(e: &Expr, var: &str) -> Option<bool> {
    match e.kind() {
        ExprKind::Int(_) => Some(false),
        ExprKind::Var(n) => Some(n == var),
        ExprKind::Add(a, b) | ExprKind::Sub(a, b) => {
            Some(affine_degree(a, var)? || affine_degree(b, var)?)
        }
        ExprKind::Mul(a, b) => {
            let (da, db) = (affine_degree(a, var)?, affine_degree(b, var)?);
            // Affine × var-free stays affine; var × var is quadratic.
            if da && db {
                None
            } else {
                Some(da || db)
            }
        }
        ExprKind::FloorDiv(a, b)
        | ExprKind::FloorMod(a, b)
        | ExprKind::Min(a, b)
        | ExprKind::Max(a, b) => {
            if affine_degree(a, var)? || affine_degree(b, var)? {
                None
            } else {
                Some(false)
            }
        }
        ExprKind::Select(c, a, b) => {
            if cond_mentions(c, var) || affine_degree(a, var)? || affine_degree(b, var)? {
                None
            } else {
                Some(false)
            }
        }
        ExprKind::Uf(_, args) => {
            for a in args {
                if affine_degree(a, var)? {
                    return None;
                }
            }
            Some(false)
        }
        ExprKind::Load(_, idx) => {
            // A table lookup indexed by the loop variable is not affine
            // (and probing it out of loop order would be unsound).
            if affine_degree(idx, var)? {
                None
            } else {
                Some(false)
            }
        }
    }
}

fn cond_mentions(c: &Cond, var: &str) -> bool {
    match c.kind() {
        CondKind::Const(_) => false,
        CondKind::Lt(a, b) | CondKind::Le(a, b) | CondKind::Eq(a, b) | CondKind::Ne(a, b) => {
            expr_mentions(a, var) || expr_mentions(b, var)
        }
        CondKind::And(a, b) | CondKind::Or(a, b) => cond_mentions(a, var) || cond_mentions(b, var),
        CondKind::Not(a) => cond_mentions(a, var),
    }
}

fn expr_mentions(e: &Expr, var: &str) -> bool {
    let mut vars = std::collections::BTreeSet::new();
    cora_ir::visit::free_vars(e, &mut vars);
    vars.contains(var)
}

// ---------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------

/// Run-state for one [`VmProgram`]: slot-indexed variable file, buffer
/// tables, register files, and execution statistics.
#[derive(Debug)]
pub struct VmMachine<'p> {
    prog: &'p VmProgram,
    vars: Vec<i64>,
    var_bound: Vec<bool>,
    ibufs: Vec<Vec<i64>>,
    ibuf_bound: Vec<bool>,
    fbufs: Vec<Vec<f32>>,
    fbuf_bound: Vec<bool>,
    ufs: Vec<Option<UfHandle>>,
    iregs: Vec<i64>,
    fregs: Vec<f32>,
    uf_args: Vec<i64>,
    /// Statistics accumulated by [`VmMachine::run`] (identical accounting
    /// to the tree-walking interpreter). For speed the dispatch loop
    /// batches counts in a local and publishes them on normal return, so
    /// unlike the interpreter this field is not updated if a run panics
    /// mid-kernel.
    pub stats: InterpStats,
}

impl VmMachine<'_> {
    /// Binds a free integer variable. Returns `false` if the program
    /// never references `name` (the binding is ignored).
    pub fn bind_var(&mut self, name: &str, v: i64) -> bool {
        match self.prog.slots.free_vars.get(name) {
            Some(slot) => {
                self.vars[slot as usize] = v;
                self.var_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an integer auxiliary buffer. Returns `false` if unused.
    pub fn set_ibuffer(&mut self, name: &str, data: Vec<i64>) -> bool {
        match self.prog.slots.ibufs.get(name) {
            Some(slot) => {
                self.ibufs[slot as usize] = data;
                self.ibuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs a float buffer. Returns `false` if unused.
    pub fn set_fbuffer(&mut self, name: &str, data: Vec<f32>) -> bool {
        match self.prog.slots.free_fbufs.get(name) {
            Some(slot) => {
                self.fbufs[slot as usize] = data;
                self.fbuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an uninterpreted-function table. Returns `false` if
    /// unused.
    pub fn set_uf(&mut self, name: &str, h: UfHandle) -> bool {
        match self.prog.slots.ufs.get(name) {
            Some(slot) => {
                self.ufs[slot as usize] = Some(h);
                true
            }
            None => false,
        }
    }

    /// Binds everything an interpreter [`Env`] holds: variables,
    /// auxiliary buffers, and uninterpreted-function tables the program
    /// references. Convenience for differential testing against the tree
    /// walker.
    pub fn bind_env(&mut self, env: &Env) {
        for (name, v) in env.vars() {
            self.bind_var(name, v);
        }
        for (name, buf) in env.buffers() {
            self.set_ibuffer(name, buf.to_vec());
        }
        let names: Vec<String> = self.prog.slots.ufs.names().to_vec();
        for name in names {
            if let Some(h) = env.uf_table().handle(&name) {
                self.set_uf(&name, h);
            }
        }
    }

    /// Reads a float buffer by its free name.
    pub fn fbuffer(&self, name: &str) -> Option<&[f32]> {
        self.prog
            .slots
            .free_fbufs
            .get(name)
            .map(|slot| self.fbufs[slot as usize].as_slice())
    }

    /// Takes a float buffer out of the machine by its free name.
    pub fn take_fbuffer(&mut self, name: &str) -> Option<Vec<f32>> {
        self.prog.slots.free_fbufs.get(name).map(|slot| {
            self.fbuf_bound[slot as usize] = false;
            std::mem::take(&mut self.fbufs[slot as usize])
        })
    }

    fn check_bound(&self) {
        let s = &self.prog.slots;
        for (i, bound) in self.var_bound.iter().enumerate() {
            assert!(*bound, "unbound variable `{}`", s.free_vars.names()[i]);
        }
        for (i, bound) in self.ibuf_bound.iter().enumerate() {
            assert!(*bound, "missing auxiliary buffer `{}`", s.ibufs.names()[i]);
        }
        for (i, bound) in self.fbuf_bound.iter().enumerate() {
            assert!(*bound, "missing float buffer `{}`", s.free_fbufs.names()[i]);
        }
        for (i, h) in self.ufs.iter().enumerate() {
            assert!(
                h.is_some(),
                "no runtime table for uninterpreted function `{}`",
                s.ufs.names()[i]
            );
        }
    }

    /// Executes the program.
    ///
    /// # Panics
    ///
    /// Panics on unbound inputs, out-of-bounds or negative accesses —
    /// lowering bugs by definition, matching interpreter behaviour.
    pub fn run(&mut self) {
        self.check_bound();
        let VmMachine {
            prog,
            vars,
            ibufs,
            fbufs,
            ufs,
            iregs,
            fregs,
            uf_args,
            stats,
            ..
        } = self;
        dispatch(
            prog,
            ibufs,
            ufs,
            &mut Regs {
                vars,
                iregs,
                fregs,
                uf_args,
            },
            &mut OwnedBufs(fbufs),
            stats,
            &mut MapScratch::default(),
        );
    }
}

// ---------------------------------------------------------------------
// Dispatch loop (shared by the serial machine and parallel workers)
// ---------------------------------------------------------------------

/// Float-buffer access abstraction for the dispatch loop. The serial
/// machine owns every buffer ([`OwnedBufs`]); a parallel worker layers
/// private `Alloc` scratch over shared read-only inputs and the shared
/// output ([`WorkerBufs`]). Both monomorphize to direct indexing.
trait FloatBufs {
    fn get(&self, slot: u32, idx: usize) -> f32;
    fn set(&mut self, slot: u32, idx: usize, v: f32);
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F);
    fn alloc(&mut self, slot: u32, n: usize);

    /// Contiguous read-only view of a slot, when one exists (used by the
    /// fused-loop fast paths; `None` falls back to per-element `get`).
    fn ro(&self, slot: u32) -> Option<&[f32]>;

    /// Stores a chunk of values into the contiguous range
    /// `out[o0 .. o0 + vals.len()]` under the given combine rule — the
    /// unit-stride store sweep of [`FusedMap`]. Element order and the
    /// per-element float op are those of the serial store loop, so the
    /// result is bit-identical in every mode. Returns `false` when this
    /// representation has no contiguous view of `out` (caller falls back
    /// to per-element stores).
    fn store_chunk(&mut self, _out: u32, _o0: usize, _kind: StoreKind, _vals: &[f32]) -> bool {
        false
    }

    /// `out[o0 + t] += s * b[b0 + t]` for `t in 0..n`, the vectorizable
    /// unit-stride shape of [`FusedMulAcc`]. Returns `false` when this
    /// buffer representation has no fast path (caller falls back to
    /// per-element read-modify-writes). Callers guarantee `out != b`
    /// (established at compile time) and in-range, non-negative bases.
    fn saxpy(&mut self, _out: u32, _o0: usize, _b: u32, _b0: usize, _s: f32, _n: usize) -> bool {
        false
    }

    /// The i-k-j GEMM row panel of [`FusedMulAcc2`]:
    /// `out[o0..o0+n_i] += a[a0 + t·sa_o] · b[b0 + t·sb_o ..][..n_i]`
    /// for `t in 0..n_o`, in that order. Returns `false` when
    /// unsupported. Callers guarantee `out ∉ {a, b}` and non-negative
    /// bases/strides; results must be bit-identical to the per-element
    /// nest.
    #[allow(clippy::too_many_arguments)]
    fn saxpy_panel(
        &mut self,
        _out: u32,
        _o0: usize,
        _n_i: usize,
        _a: u32,
        _a0: usize,
        _sa_o: usize,
        _b: u32,
        _b0: usize,
        _sb_o: usize,
        _n_o: usize,
    ) -> bool {
        false
    }

    /// The per-row dot panel of [`FusedMulAcc2`]:
    /// `out[o0 + t] += Σ_u a[a0 + t·sa_o + u] · b[b0 + t·sb_o + u]`
    /// (`u in 0..n_i`) for `t in 0..n_o`. Same contract as
    /// [`FloatBufs::saxpy_panel`], except that under [`MathMode::Fast`]
    /// each row's reduction may reassociate across lanes (still
    /// deterministic).
    #[allow(clippy::too_many_arguments)]
    fn dot_panel(
        &mut self,
        _out: u32,
        _o0: usize,
        _a: u32,
        _a0: usize,
        _sa_o: usize,
        _b: u32,
        _b0: usize,
        _sb_o: usize,
        _n_i: usize,
        _n_o: usize,
        _mode: MathMode,
    ) -> bool {
        false
    }
}

/// Applies one [`StoreKind`] combine across a contiguous output chunk,
/// in ascending element order — the single store-sweep implementation
/// every [`FloatBufs::store_chunk`] funnels into.
fn store_chunk_slice(out: &mut [f32], kind: StoreKind, vals: &[f32]) {
    match kind {
        StoreKind::Assign => out.copy_from_slice(vals),
        StoreKind::AddAssign => {
            for (o, v) in out.iter_mut().zip(vals) {
                *o += *v;
            }
        }
        StoreKind::MaxAssign => {
            for (o, v) in out.iter_mut().zip(vals) {
                *o = o.max(*v);
            }
        }
    }
}

/// Shared panel kernels over plain slices — the single implementation
/// every [`FloatBufs`] fast path funnels into, so all representations
/// compute identical float sequences. Thin adapters over the
/// [`crate::microkernel`] SIMD bodies.
mod panel {
    #![allow(clippy::too_many_arguments)]

    use crate::microkernel::{self, MathMode};

    /// `out_row += a[t·sa_o] · b_row(t)`, `t` ascending per element —
    /// the register-blocked microkernel is bit-identical to the scalar
    /// nest in both math modes.
    pub(super) fn saxpy(
        out: &mut [f32],
        o0: usize,
        n_i: usize,
        a: &[f32],
        a0: usize,
        sa_o: usize,
        b: &[f32],
        b0: usize,
        sb_o: usize,
        n_o: usize,
    ) {
        microkernel::saxpy_panel(&mut out[o0..o0 + n_i], a, a0, sa_o, b, b0, sb_o, n_o);
    }

    /// `out[t] += a_row(t) · b_row(t)`, `t` ascending; `Strict`
    /// accumulates each row in element order, `Fast` across lanes.
    pub(super) fn dot(
        out: &mut [f32],
        o0: usize,
        a: &[f32],
        a0: usize,
        sa_o: usize,
        b: &[f32],
        b0: usize,
        sb_o: usize,
        n_i: usize,
        n_o: usize,
        mode: MathMode,
    ) {
        microkernel::dot_panel(out, o0, a, a0, sa_o, b, b0, sb_o, n_i, n_o, mode);
    }
}

/// Splits two distinct indices of a `Vec`-of-buffers into one mutable and
/// one shared reference.
fn split_mut_ref<T>(v: &mut [T], m: usize, r: usize) -> (&mut T, &T) {
    assert_ne!(m, r, "aliasing fused-loop operands");
    if m < r {
        let (lo, hi) = v.split_at_mut(r);
        (&mut lo[m], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(m);
        (&mut hi[0], &lo[r])
    }
}

/// The serial machine's float buffers: one owned `Vec` per slot.
struct OwnedBufs<'a>(&'a mut Vec<Vec<f32>>);

impl FloatBufs for OwnedBufs<'_> {
    #[inline]
    fn get(&self, slot: u32, idx: usize) -> f32 {
        self.0[slot as usize][idx]
    }

    #[inline]
    fn set(&mut self, slot: u32, idx: usize, v: f32) {
        self.0[slot as usize][idx] = v;
    }

    #[inline]
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F) {
        let cell = &mut self.0[slot as usize][idx];
        *cell = f(*cell);
    }

    fn alloc(&mut self, slot: u32, n: usize) {
        let buf = &mut self.0[slot as usize];
        buf.clear();
        buf.resize(n, 0.0);
    }

    #[inline]
    fn ro(&self, slot: u32) -> Option<&[f32]> {
        Some(&self.0[slot as usize])
    }

    fn store_chunk(&mut self, out: u32, o0: usize, kind: StoreKind, vals: &[f32]) -> bool {
        store_chunk_slice(&mut self.0[out as usize][o0..o0 + vals.len()], kind, vals);
        true
    }

    fn saxpy(&mut self, out: u32, o0: usize, b: u32, b0: usize, s: f32, n: usize) -> bool {
        let (ov, bv) = split_mut_ref(self.0, out as usize, b as usize);
        for (o, x) in ov[o0..o0 + n].iter_mut().zip(&bv[b0..b0 + n]) {
            *o += s * *x;
        }
        true
    }

    fn saxpy_panel(
        &mut self,
        out: u32,
        o0: usize,
        n_i: usize,
        a: u32,
        a0: usize,
        sa_o: usize,
        b: u32,
        b0: usize,
        sb_o: usize,
        n_o: usize,
    ) -> bool {
        // `out ∉ {a, b}` by the caller's contract, so taking the output
        // vector leaves the operands readable in place.
        let mut ovec = std::mem::take(&mut self.0[out as usize]);
        panel::saxpy(
            &mut ovec,
            o0,
            n_i,
            &self.0[a as usize],
            a0,
            sa_o,
            &self.0[b as usize],
            b0,
            sb_o,
            n_o,
        );
        self.0[out as usize] = ovec;
        true
    }

    fn dot_panel(
        &mut self,
        out: u32,
        o0: usize,
        a: u32,
        a0: usize,
        sa_o: usize,
        b: u32,
        b0: usize,
        sb_o: usize,
        n_i: usize,
        n_o: usize,
        mode: MathMode,
    ) -> bool {
        let mut ovec = std::mem::take(&mut self.0[out as usize]);
        panel::dot(
            &mut ovec,
            o0,
            &self.0[a as usize],
            a0,
            sa_o,
            &self.0[b as usize],
            b0,
            sb_o,
            n_i,
            n_o,
            mode,
        );
        self.0[out as usize] = ovec;
        true
    }
}

/// One float-buffer binding for borrowed-buffer execution
/// ([`VmShared::run_borrowed`]): arena-backed pipelines hand the VM
/// views into caller-owned storage instead of moving `Vec`s in and out
/// per stage.
#[derive(Debug)]
pub enum BoundBuf<'a> {
    /// A read-only input slice.
    In(&'a [f32]),
    /// A written slice (the stage output), pre-initialised by the caller.
    Out(&'a mut [f32]),
}

/// Borrowed float buffers for one serial execution: free slots alias
/// caller storage, `Alloc` scratch stays private to the call.
struct BorrowedBufs<'a> {
    prog: &'a VmProgram,
    bufs: Vec<BoundBuf<'a>>,
    n_free: usize,
    scratch: Vec<Vec<f32>>,
}

impl FloatBufs for BorrowedBufs<'_> {
    #[inline]
    fn get(&self, slot: u32, idx: usize) -> f32 {
        if (slot as usize) < self.n_free {
            match &self.bufs[slot as usize] {
                BoundBuf::In(b) => b[idx],
                BoundBuf::Out(b) => b[idx],
            }
        } else {
            self.scratch[slot as usize - self.n_free][idx]
        }
    }

    #[inline]
    fn set(&mut self, slot: u32, idx: usize, v: f32) {
        if (slot as usize) < self.n_free {
            match &mut self.bufs[slot as usize] {
                BoundBuf::Out(b) => b[idx] = v,
                BoundBuf::In(_) => panic!(
                    "program stores to buffer `{}`, which was bound read-only",
                    fbuf_name(self.prog, slot)
                ),
            }
        } else {
            self.scratch[slot as usize - self.n_free][idx] = v;
        }
    }

    #[inline]
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F) {
        if (slot as usize) < self.n_free {
            match &mut self.bufs[slot as usize] {
                BoundBuf::Out(b) => {
                    let cell = &mut b[idx];
                    *cell = f(*cell);
                }
                BoundBuf::In(_) => panic!(
                    "program stores to buffer `{}`, which was bound read-only",
                    fbuf_name(self.prog, slot)
                ),
            }
        } else {
            let cell = &mut self.scratch[slot as usize - self.n_free][idx];
            *cell = f(*cell);
        }
    }

    fn alloc(&mut self, slot: u32, n: usize) {
        assert!(
            (slot as usize) >= self.n_free,
            "alloc of non-scratch slot `{}`",
            fbuf_name(self.prog, slot)
        );
        let buf = &mut self.scratch[slot as usize - self.n_free];
        buf.clear();
        buf.resize(n, 0.0);
    }

    #[inline]
    fn ro(&self, slot: u32) -> Option<&[f32]> {
        if (slot as usize) < self.n_free {
            Some(match &self.bufs[slot as usize] {
                BoundBuf::In(b) => b,
                BoundBuf::Out(b) => b,
            })
        } else {
            Some(&self.scratch[slot as usize - self.n_free])
        }
    }

    fn store_chunk(&mut self, out: u32, o0: usize, kind: StoreKind, vals: &[f32]) -> bool {
        // A read-only output binding returns `false`; the per-element
        // fallback then raises the canonical bound-read-only panic.
        self.with_out_taken(out, |ov, _| {
            store_chunk_slice(&mut ov[o0..o0 + vals.len()], kind, vals);
            true
        })
    }

    fn saxpy(&mut self, out: u32, o0: usize, b: u32, b0: usize, s: f32, n: usize) -> bool {
        fn run(ov: &mut [f32], o0: usize, bv: &[f32], b0: usize, s: f32, n: usize) {
            for (o, x) in ov[o0..o0 + n].iter_mut().zip(&bv[b0..b0 + n]) {
                *o += s * *x;
            }
        }
        let (on, bn) = (out as usize, b as usize);
        match (on < self.n_free, bn < self.n_free) {
            (true, true) => {
                let (ob, bb) = split_mut_ref(&mut self.bufs, on, bn);
                let BoundBuf::Out(ov) = ob else { return false };
                let bv: &[f32] = match bb {
                    BoundBuf::In(x) => x,
                    BoundBuf::Out(x) => x,
                };
                run(ov, o0, bv, b0, s, n);
            }
            (true, false) => {
                let bv = &self.scratch[bn - self.n_free];
                let BoundBuf::Out(ov) = &mut self.bufs[on] else {
                    return false;
                };
                run(ov, o0, bv, b0, s, n);
            }
            (false, true) => {
                let bv: &[f32] = match &self.bufs[bn] {
                    BoundBuf::In(x) => x,
                    BoundBuf::Out(x) => x,
                };
                let ov = &mut self.scratch[on - self.n_free];
                run(ov, o0, bv, b0, s, n);
            }
            (false, false) => {
                let (ov, bv) = split_mut_ref(&mut self.scratch, on - self.n_free, bn - self.n_free);
                run(ov, o0, bv, b0, s, n);
            }
        }
        true
    }

    fn saxpy_panel(
        &mut self,
        out: u32,
        o0: usize,
        n_i: usize,
        a: u32,
        a0: usize,
        sa_o: usize,
        b: u32,
        b0: usize,
        sb_o: usize,
        n_o: usize,
    ) -> bool {
        self.with_out_taken(out, |ov, me| {
            let (Some(av), Some(bv)) = (me.ro(a), me.ro(b)) else {
                return false;
            };
            panel::saxpy(ov, o0, n_i, av, a0, sa_o, bv, b0, sb_o, n_o);
            true
        })
    }

    fn dot_panel(
        &mut self,
        out: u32,
        o0: usize,
        a: u32,
        a0: usize,
        sa_o: usize,
        b: u32,
        b0: usize,
        sb_o: usize,
        n_i: usize,
        n_o: usize,
        mode: MathMode,
    ) -> bool {
        self.with_out_taken(out, |ov, me| {
            let (Some(av), Some(bv)) = (me.ro(a), me.ro(b)) else {
                return false;
            };
            panel::dot(ov, o0, av, a0, sa_o, bv, b0, sb_o, n_i, n_o, mode);
            true
        })
    }
}

impl<'a> BorrowedBufs<'a> {
    /// Runs `f` with the writable view of slot `out` temporarily moved
    /// out of the table (so the operand slots stay readable through
    /// `self`), restoring it afterwards. Returns `false` without calling
    /// `f` when `out` is bound read-only.
    fn with_out_taken(&mut self, out: u32, f: impl FnOnce(&mut [f32], &Self) -> bool) -> bool {
        if (out as usize) < self.n_free {
            let taken = std::mem::replace(&mut self.bufs[out as usize], BoundBuf::In(&[]));
            let BoundBuf::Out(ov) = taken else {
                self.bufs[out as usize] = taken;
                return false;
            };
            let done = f(ov, self);
            self.bufs[out as usize] = BoundBuf::Out(ov);
            done
        } else {
            let mut ovec = std::mem::take(&mut self.scratch[out as usize - self.n_free]);
            let done = f(&mut ovec, self);
            self.scratch[out as usize - self.n_free] = ovec;
            done
        }
    }
}

/// Mutable per-execution register state handed to the dispatch loop.
struct Regs<'a> {
    vars: &'a mut [i64],
    iregs: &'a mut [i64],
    fregs: &'a mut [f32],
    uf_args: &'a mut Vec<i64>,
}

/// Executes `prog` to completion over the given state. Statistics are
/// batched in a local and published on normal return, so `stats` is not
/// updated if execution panics mid-kernel.
fn dispatch<B: FloatBufs>(
    prog: &VmProgram,
    ibufs: &[Vec<i64>],
    ufs: &[Option<UfHandle>],
    regs: &mut Regs<'_>,
    fbufs: &mut B,
    stats: &mut InterpStats,
    map_scratch: &mut MapScratch,
) {
    let code = prog.code.as_slice();
    let Regs {
        vars,
        iregs,
        fregs,
        uf_args,
    } = regs;
    let mut st = *stats;
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Instr::IConst { dst, v } => iregs[*dst as usize] = *v,
            Instr::IVar { dst, slot } => {
                iregs[*dst as usize] = vars[*slot as usize];
            }
            Instr::ICopy { dst, src } => {
                iregs[*dst as usize] = iregs[*src as usize];
            }
            Instr::IBin { op, dst, a, b } => {
                let x = iregs[*a as usize];
                let y = iregs[*b as usize];
                iregs[*dst as usize] = ibin_apply(*op, x, y);
            }
            Instr::IBinC { op, dst, a, c } => {
                let x = iregs[*a as usize];
                iregs[*dst as usize] = ibin_apply(*op, x, *c);
            }
            Instr::IBinV { op, dst, a, vslot } => {
                let x = iregs[*a as usize];
                let y = vars[*vslot as usize];
                iregs[*dst as usize] = ibin_apply(*op, x, y);
            }
            Instr::ILoad { dst, buf, idx } => {
                let i = iregs[*idx as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!(
                        "negative index {i} into buffer `{}`",
                        prog.slots.ibufs.names()[*buf as usize]
                    )
                });
                iregs[*dst as usize] = ibufs[*buf as usize][iu];
            }
            Instr::ILoadV { dst, buf, vslot } => {
                let i = vars[*vslot as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!(
                        "negative index {i} into buffer `{}`",
                        prog.slots.ibufs.names()[*buf as usize]
                    )
                });
                iregs[*dst as usize] = ibufs[*buf as usize][iu];
            }
            Instr::IUf { dst, uf, args } => {
                uf_args.clear();
                for &a in args.iter() {
                    uf_args.push(iregs[a as usize]);
                }
                let h = ufs[*uf as usize].as_ref().expect("checked bound");
                iregs[*dst as usize] = h.call(uf_args);
            }
            Instr::SetVar { slot, src } => {
                vars[*slot as usize] = iregs[*src as usize];
            }
            Instr::LetVar { slot, src, aux } => {
                vars[*slot as usize] = iregs[*src as usize];
                st.aux_loads += *aux;
            }
            Instr::BrVarGe { slot, lim, to } => {
                if vars[*slot as usize] >= iregs[*lim as usize] {
                    pc = *to as usize;
                    continue;
                }
            }
            Instr::LoopNext { slot, lim, back } => {
                let v = vars[*slot as usize] + 1;
                vars[*slot as usize] = v;
                if v < iregs[*lim as usize] {
                    pc = *back as usize;
                    continue;
                }
            }
            Instr::BrCmp {
                op,
                a,
                b,
                on_true,
                on_false,
            } => {
                let x = iregs[*a as usize];
                let y = iregs[*b as usize];
                let t = match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                };
                pc = if t { *on_true } else { *on_false } as usize;
                continue;
            }
            Instr::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            Instr::Guard { aux } => {
                st.guards += 1;
                st.aux_loads += *aux;
            }
            Instr::BumpAux { n } => st.aux_loads += *n,
            Instr::FConst { dst, v } => fregs[*dst as usize] = *v,
            Instr::FLoad { dst, buf, idx, aux } => {
                st.aux_loads += *aux;
                let i = iregs[*idx as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!("negative load index {i} into `{}`", fbuf_name(prog, *buf))
                });
                fregs[*dst as usize] = fbufs.get(*buf, iu);
            }
            Instr::FCast { dst, src, aux } => {
                st.aux_loads += *aux;
                fregs[*dst as usize] = iregs[*src as usize] as f32;
            }
            Instr::FCopy { dst, src } => {
                fregs[*dst as usize] = fregs[*src as usize];
            }
            Instr::FBin { op, dst, a, b } => {
                let x = fregs[*a as usize];
                let y = fregs[*b as usize];
                fregs[*dst as usize] = fbin_apply(*op, x, y);
                st.flops += 1;
            }
            Instr::FBinC { op, dst, a, c } => {
                let x = fregs[*a as usize];
                fregs[*dst as usize] = fbin_apply(*op, x, *c);
                st.flops += 1;
            }
            Instr::FBinCL { op, dst, c, b } => {
                let y = fregs[*b as usize];
                fregs[*dst as usize] = fbin_apply(*op, *c, y);
                st.flops += 1;
            }
            Instr::FUn { op, dst, a } => {
                fregs[*dst as usize] = apply_unary(*op, fregs[*a as usize]);
                st.flops += 1;
            }
            Instr::FStore {
                buf,
                idx,
                val,
                kind,
                aux,
            } => {
                st.aux_loads += *aux;
                let i = iregs[*idx as usize];
                let v = fregs[*val as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!("negative store index {i} into `{}`", fbuf_name(prog, *buf))
                });
                match kind {
                    StoreKind::Assign => fbufs.set(*buf, iu, v),
                    StoreKind::AddAssign => {
                        fbufs.rmw(*buf, iu, |c| c + v);
                        st.flops += 1;
                    }
                    StoreKind::MaxAssign => {
                        fbufs.rmw(*buf, iu, |c| c.max(v));
                        st.flops += 1;
                    }
                }
                st.stores += 1;
            }
            Instr::FAlloc { slot, size, aux } => {
                st.aux_loads += *aux;
                let n = iregs[*size as usize];
                let nu = usize::try_from(n)
                    .unwrap_or_else(|_| panic!("negative alloc size {n} for scratch buffer"));
                fbufs.alloc(*slot, nu);
            }
            Instr::FMulAcc(op) => {
                let n = iregs[op.n as usize];
                debug_assert!(n > 0, "zero-trip fused loops are branched around");
                let o0 = iregs[op.o0 as usize];
                let so = iregs[op.o1 as usize] - o0;
                let a0 = iregs[op.a0 as usize];
                let sa = iregs[op.a1 as usize] - a0;
                let b0 = iregs[op.b0 as usize];
                let sb = iregs[op.b1 as usize] - b0;
                run_fused_mul_acc(prog, fbufs, op.out, op.a, op.b, n, o0, so, a0, sa, b0, sb);
                let iters = n as u64;
                st.aux_loads += iters * op.aux;
                st.flops += 2 * iters;
                st.stores += iters;
            }
            Instr::FMap(op) => {
                let n = iregs[op.n as usize];
                debug_assert!(n > 0, "zero-trip fused loops are branched around");
                let o0 = iregs[op.o0 as usize];
                let so = iregs[op.o1 as usize] - o0;
                run_fused_map(prog, fbufs, op, n, o0, so, iregs, map_scratch);
                let iters = n as u64;
                st.aux_loads += iters * op.aux;
                st.flops += iters * op.flops;
                st.stores += iters;
            }
            Instr::FMulAcc2(op) => {
                let n_o = iregs[op.n_outer as usize];
                debug_assert!(n_o > 0, "zero-trip fused loops are branched around");
                let n_i = iregs[op.n_inner as usize];
                // The serial nest charges the inner loop header's bound
                // loads once per outer iteration, body or not.
                st.aux_loads += (n_o as u64) * op.aux_inner_bounds;
                if n_i > 0 {
                    let o00 = iregs[op.o00 as usize];
                    let (so_i, so_o) = (iregs[op.o0i as usize] - o00, iregs[op.o0o as usize] - o00);
                    let a00 = iregs[op.a00 as usize];
                    let (sa_i, sa_o) = (iregs[op.a0i as usize] - a00, iregs[op.a0o as usize] - a00);
                    let b00 = iregs[op.b00 as usize];
                    let (sb_i, sb_o) = (iregs[op.b0i as usize] - b00, iregs[op.b0o as usize] - b00);
                    run_fused_mul_acc2(
                        prog,
                        fbufs,
                        op,
                        [n_o, n_i],
                        [o00, so_i, so_o],
                        [a00, sa_i, sa_o],
                        [b00, sb_i, sb_o],
                    );
                    let iters = (n_o as u64) * (n_i as u64);
                    st.aux_loads += iters * op.aux;
                    st.flops += 2 * iters;
                    st.stores += iters;
                }
            }
        }
        pc += 1;
    }
    *stats = st;
}

/// Executes one [`FusedMap`]: `n` elements of
/// `out[o0 + t·so] (=|+=|max=) tape(t)`, evaluated chunk-wise (each tape
/// op swept across a whole chunk before the next — element independence
/// keeps the per-element float sequence identical) and stored in
/// ascending element order, so reductions accumulate exactly as the
/// unfused loop would.
#[allow(clippy::too_many_arguments)]
fn run_fused_map<B: FloatBufs>(
    prog: &VmProgram,
    fbufs: &mut B,
    op: &FusedMap,
    n: i64,
    o0: i64,
    so: i64,
    iregs: &[i64],
    map_scratch: &mut MapScratch,
) {
    let nneg = |i: i64, slot: u32, what: &str| -> usize {
        usize::try_from(i).unwrap_or_else(|_| {
            panic!("negative {what} index {i} into `{}`", fbuf_name(prog, slot))
        })
    };
    let mut bases = [(0i64, 0i64); MAX_MAP_SITES];
    for (i, s) in op.sites.iter().enumerate() {
        let b = iregs[s.r0 as usize];
        bases[i] = (b, iregs[s.r1 as usize] - b);
    }
    // An entry is *uniform* when every element of its chunk holds the
    // same value — constants, stride-0 loads/casts, and any op whose
    // inputs are all uniform. Uniform entries are computed once per
    // chunk and broadcast: the same operation on the same input yields
    // the same bits, so this is legal even in Strict mode (it hoists
    // the per-element `1/rowsum`, `rsqrt(var)`-style scalars that
    // row-normalise and layer-norm tapes recompute per element).
    let mut uniform = [false; MAX_MAP_TAPE];
    for (ti, t) in op.tape.iter().enumerate() {
        uniform[ti] = match t {
            MapOp::Const { .. } => true,
            MapOp::Load { site } | MapOp::Cast { site } => bases[*site as usize].1 == 0,
            MapOp::Bin { a, b, .. } => uniform[*a as usize] && uniform[*b as usize],
            MapOp::Un { a, .. } => uniform[*a as usize],
        };
    }
    let scratch = &mut map_scratch.0;
    let mut start = 0i64;
    while start < n {
        let m = ((n - start) as usize).min(MAP_CHUNK);
        for ti in 0..op.tape.len() {
            let (prev, cur) = scratch.split_at_mut(ti);
            let dst = &mut cur[0][..m];
            match &op.tape[ti] {
                MapOp::Const { v } => dst.fill(*v),
                MapOp::Load { site } => {
                    let s = &op.sites[*site as usize];
                    let (base, stride) = bases[*site as usize];
                    let first = base + start * stride;
                    if stride == 0 {
                        dst.fill(fbufs.get(s.buf, nneg(first, s.buf, "load")));
                    } else if stride == 1 {
                        if let Some(bufv) = fbufs.ro(s.buf) {
                            let i0 = nneg(first, s.buf, "load");
                            dst.copy_from_slice(&bufv[i0..i0 + m]);
                        } else {
                            for (e, d) in dst.iter_mut().enumerate() {
                                *d = fbufs.get(s.buf, nneg(first + e as i64, s.buf, "load"));
                            }
                        }
                    } else {
                        for (e, d) in dst.iter_mut().enumerate() {
                            *d = fbufs.get(s.buf, nneg(first + e as i64 * stride, s.buf, "load"));
                        }
                    }
                }
                MapOp::Cast { site } => {
                    let (base, stride) = bases[*site as usize];
                    if stride == 0 {
                        dst.fill(base as f32);
                    } else {
                        for (e, d) in dst.iter_mut().enumerate() {
                            *d = (base + (start + e as i64) * stride) as f32;
                        }
                    }
                }
                MapOp::Bin { op: bop, a, b } => {
                    let (av, bv) = (&prev[*a as usize], &prev[*b as usize]);
                    let (ua, ub) = (uniform[*a as usize], uniform[*b as usize]);
                    if ua && ub {
                        dst.fill(fbin_apply(*bop, av[0], bv[0]));
                    } else if ua {
                        bin_chunk_sv(*bop, dst, av[0], &bv[..m]);
                    } else if ub {
                        bin_chunk_vs(*bop, dst, &av[..m], bv[0]);
                    } else {
                        bin_chunk(*bop, dst, &av[..m], &bv[..m]);
                    }
                }
                MapOp::Un { op: uop, a } => {
                    let av = &prev[*a as usize];
                    if uniform[*a as usize] {
                        let v = match (prog.math, uop) {
                            (MathMode::Fast, FUnaryOp::Exp) => microkernel::exp_fast(av[0]),
                            (MathMode::Fast, FUnaryOp::Tanh) => microkernel::tanh_fast(av[0]),
                            _ => apply_unary(*uop, av[0]),
                        };
                        dst.fill(v);
                    } else {
                        match (prog.math, uop) {
                            // Fast mode swaps the libm transcendentals
                            // for the branch-free polynomial chunk
                            // sweeps, under the microkernel module's
                            // documented tolerances.
                            (MathMode::Fast, FUnaryOp::Exp) => {
                                microkernel::exp_chunk(dst, &av[..m]);
                            }
                            (MathMode::Fast, FUnaryOp::Tanh) => {
                                microkernel::tanh_chunk(dst, &av[..m]);
                            }
                            _ => un_chunk(*uop, dst, &av[..m]),
                        }
                    }
                }
            }
        }
        let vals = &scratch[op.tape.len() - 1][..m];
        let first = o0 + start * so;
        if so == 1 {
            // Contiguous output: one bounds-checked chunk store instead
            // of a dispatch per element (bit-identical element order).
            let i0 = nneg(first, op.out, "store");
            if fbufs.store_chunk(op.out, i0, op.kind, vals) {
                start += m as i64;
                continue;
            }
        }
        if so == 0 {
            // Every element of the chunk lands on one output cell:
            // fold locally and touch memory once per chunk. Chunks are
            // combined in ascending order, so Strict folds reproduce
            // the serial store sequence exactly; Fast reassociates the
            // in-chunk reduction across lanes (still deterministic).
            let idx = nneg(first, op.out, "store");
            match op.kind {
                // Repeated plain stores: the last value wins.
                StoreKind::Assign => fbufs.set(op.out, idx, vals[m - 1]),
                StoreKind::AddAssign => {
                    let mut acc = fbufs.get(op.out, idx);
                    match prog.math {
                        MathMode::Strict => {
                            for v in vals {
                                acc += *v;
                            }
                        }
                        MathMode::Fast => acc += microkernel::sum_fast(vals),
                    }
                    fbufs.set(op.out, idx, acc);
                }
                StoreKind::MaxAssign => {
                    let acc = fbufs.get(op.out, idx);
                    let acc = match prog.math {
                        MathMode::Strict => vals.iter().fold(acc, |c, v| c.max(*v)),
                        MathMode::Fast => microkernel::max_fast(acc, vals),
                    };
                    fbufs.set(op.out, idx, acc);
                }
            }
            start += m as i64;
            continue;
        }
        match op.kind {
            StoreKind::Assign => {
                for (e, v) in vals.iter().enumerate() {
                    let idx = nneg(o0 + (start + e as i64) * so, op.out, "store");
                    fbufs.set(op.out, idx, *v);
                }
            }
            StoreKind::AddAssign => {
                for (e, v) in vals.iter().enumerate() {
                    let idx = nneg(o0 + (start + e as i64) * so, op.out, "store");
                    fbufs.rmw(op.out, idx, |c| c + *v);
                }
            }
            StoreKind::MaxAssign => {
                for (e, v) in vals.iter().enumerate() {
                    let idx = nneg(o0 + (start + e as i64) * so, op.out, "store");
                    fbufs.rmw(op.out, idx, |c| c.max(*v));
                }
            }
        }
        start += m as i64;
    }
}

/// Executes one [`FusedMulAcc2`]: the full `n_o × n_i` nest of
/// `out[o(t,u)] += a[a(t,u)] · b[b(t,u)]` with 2-D affine indices
/// (`[base, inner stride, outer stride]` triples), in serial nest order.
/// The two ubiquitous stride shapes run as native panels; anything else
/// falls back to one fused inner loop per outer iteration.
fn run_fused_mul_acc2<B: FloatBufs>(
    prog: &VmProgram,
    fbufs: &mut B,
    op: &FusedMulAcc2,
    n: [i64; 2],
    o: [i64; 3],
    a: [i64; 3],
    b: [i64; 3],
) {
    let [n_o, n_i] = n;
    let ([o00, so_i, so_o], [a00, sa_i, sa_o], [b00, sb_i, sb_o]) = (o, a, b);
    // The nest's runtime stride shape, pattern-matched against the
    // declarative microkernel ISA (`microkernel::PANEL_KERNELS`) instead
    // of hard-coded stride peepholes; negative outer strides never
    // classify (the kernels address `usize` ranges).
    let shape = PanelShape {
        out: (so_i, so_o),
        a: (sa_i, sa_o),
        b: (sb_i, sb_o),
    };
    let bases_ok = o00 >= 0 && a00 >= 0 && b00 >= 0;
    let kind = if bases_ok {
        microkernel::classify_panel(&shape)
    } else {
        None
    };
    match kind {
        // i-k-j GEMM row: out_row += a[t] · b_row(t).
        Some(PanelKind::Saxpy) => {
            let done = fbufs.saxpy_panel(
                op.out,
                o00 as usize,
                n_i as usize,
                op.a,
                a00 as usize,
                sa_o as usize,
                op.b,
                b00 as usize,
                sb_o as usize,
                n_o as usize,
            );
            if done {
                return;
            }
        }
        // Per-row dots: out[t] += a_row(t) · b_row(t).
        Some(PanelKind::Dot) => {
            let done = fbufs.dot_panel(
                op.out,
                o00 as usize,
                op.a,
                a00 as usize,
                sa_o as usize,
                op.b,
                b00 as usize,
                sb_o as usize,
                n_i as usize,
                n_o as usize,
                prog.math,
            );
            if done {
                return;
            }
        }
        None => {}
    }
    for t in 0..n_o {
        run_fused_mul_acc(
            prog,
            fbufs,
            op.out,
            op.a,
            op.b,
            n_i,
            o00 + t * so_o,
            so_i,
            a00 + t * sa_o,
            sa_i,
            b00 + t * sb_o,
            sb_i,
        );
    }
}

/// Executes one [`FusedMulAcc`]: `n` iterations of
/// `out[o0 + t·so] += a[a0 + t·sa] · b[b0 + t·sb]` in serial order, so the
/// result is bit-identical to the unfused loop's per-iteration stores.
#[allow(clippy::too_many_arguments)]
fn run_fused_mul_acc<B: FloatBufs>(
    prog: &VmProgram,
    fbufs: &mut B,
    out: u32,
    a: u32,
    b: u32,
    n: i64,
    o0: i64,
    so: i64,
    a0: i64,
    sa: i64,
    b0: i64,
    sb: i64,
) {
    let load_idx = |base: i64, stride: i64, t: i64, slot: u32| -> usize {
        let i = base + t * stride;
        usize::try_from(i)
            .unwrap_or_else(|_| panic!("negative load index {i} into `{}`", fbuf_name(prog, slot)))
    };
    let store_idx = |i: i64| -> usize {
        usize::try_from(i)
            .unwrap_or_else(|_| panic!("negative store index {i} into `{}`", fbuf_name(prog, out)))
    };
    let nu = n as usize;
    // Classify the stride triple against the one-deep microkernel ISA
    // (`microkernel::AXPY_KERNELS`) rather than matching strides inline.
    match microkernel::classify_axpy(so, sa, sb) {
        Some(AxpyKind::DotAcc) => {
            // A reduction into one element: accumulate locally and write
            // once. In Strict mode the float-add sequence
            // `((out + x₀y₀) + x₁y₁) + …` is exactly what per-iteration
            // read-modify-writes produce; Fast mode reassociates the
            // unit-stride shape across lanes.
            let o = store_idx(o0);
            let mut acc = fbufs.get(out, o);
            if sa == 1 && sb == 1 {
                if let (Some(av), Some(bv)) = (fbufs.ro(a), fbufs.ro(b)) {
                    let ab = load_idx(a0, 1, 0, a);
                    let bb = load_idx(b0, 1, 0, b);
                    let (ar, br) = (&av[ab..ab + nu], &bv[bb..bb + nu]);
                    match prog.math {
                        MathMode::Strict => {
                            for (x, y) in ar.iter().zip(br) {
                                acc += *x * *y;
                            }
                        }
                        MathMode::Fast => acc += microkernel::dot_fast(ar, br),
                    }
                    fbufs.set(out, o, acc);
                    return;
                }
            }
            for t in 0..n {
                let x = fbufs.get(a, load_idx(a0, sa, t, a));
                let y = fbufs.get(b, load_idx(b0, sb, t, b));
                acc += x * y;
            }
            fbufs.set(out, o, acc);
        }
        Some(AxpyKind::Saxpy) => {
            // The vectorizable saxpy shape: a scalar left operand
            // streaming over contiguous right/output rows.
            let s = fbufs.get(a, load_idx(a0, 0, 0, a));
            let ob = store_idx(o0);
            let bb = load_idx(b0, 1, 0, b);
            if !fbufs.saxpy(out, ob, b, bb, s, nu) {
                for t in 0..n {
                    let y = fbufs.get(b, load_idx(b0, 1, t, b));
                    fbufs.rmw(out, store_idx(o0 + t), |c| c + s * y);
                }
            }
        }
        None => {
            for t in 0..n {
                let x = fbufs.get(a, load_idx(a0, sa, t, a));
                let y = fbufs.get(b, load_idx(b0, sb, t, b));
                fbufs.rmw(out, store_idx(o0 + t * so), |c| c + x * y);
            }
        }
    }
}

#[inline]
fn ibin_apply(op: IBinOp, x: i64, y: i64) -> i64 {
    match op {
        IBinOp::Add => x + y,
        IBinOp::Sub => x - y,
        IBinOp::Mul => x * y,
        IBinOp::FloorDiv => cora_ir::expr::floor_div_i64(x, y),
        IBinOp::FloorMod => cora_ir::expr::floor_mod_i64(x, y),
        IBinOp::Min => x.min(y),
        IBinOp::Max => x.max(y),
    }
}

#[inline]
fn fbin_apply(op: FBinOp, x: f32, y: f32) -> f32 {
    match op {
        FBinOp::Add => x + y,
        FBinOp::Sub => x - y,
        FBinOp::Mul => x * y,
        FBinOp::Div => x / y,
        FBinOp::Max => x.max(y),
    }
}

/// Tape binary over a chunk, dispatching on the op *once* so each arm is
/// a tight loop the compiler vectorizes (per-element results identical
/// to `fbin_apply`, so both math modes use these).
fn bin_chunk(op: FBinOp, dst: &mut [f32], a: &[f32], b: &[f32]) {
    macro_rules! sweep {
        ($f:expr) => {
            for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
                *d = $f(*x, *y);
            }
        };
    }
    match op {
        FBinOp::Add => sweep!(|x: f32, y: f32| x + y),
        FBinOp::Sub => sweep!(|x: f32, y: f32| x - y),
        FBinOp::Mul => sweep!(|x: f32, y: f32| x * y),
        FBinOp::Div => sweep!(|x: f32, y: f32| x / y),
        FBinOp::Max => sweep!(|x: f32, y: f32| x.max(y)),
    }
}

/// [`bin_chunk`] with a uniform (broadcast-scalar) left operand.
fn bin_chunk_sv(op: FBinOp, dst: &mut [f32], x: f32, b: &[f32]) {
    macro_rules! sweep {
        ($f:expr) => {
            for (d, y) in dst.iter_mut().zip(b) {
                *d = $f(x, *y);
            }
        };
    }
    match op {
        FBinOp::Add => sweep!(|x: f32, y: f32| x + y),
        FBinOp::Sub => sweep!(|x: f32, y: f32| x - y),
        FBinOp::Mul => sweep!(|x: f32, y: f32| x * y),
        FBinOp::Div => sweep!(|x: f32, y: f32| x / y),
        FBinOp::Max => sweep!(|x: f32, y: f32| x.max(y)),
    }
}

/// [`bin_chunk`] with a uniform (broadcast-scalar) right operand.
fn bin_chunk_vs(op: FBinOp, dst: &mut [f32], a: &[f32], y: f32) {
    macro_rules! sweep {
        ($f:expr) => {
            for (d, x) in dst.iter_mut().zip(a) {
                *d = $f(*x, y);
            }
        };
    }
    match op {
        FBinOp::Add => sweep!(|x: f32, y: f32| x + y),
        FBinOp::Sub => sweep!(|x: f32, y: f32| x - y),
        FBinOp::Mul => sweep!(|x: f32, y: f32| x * y),
        FBinOp::Div => sweep!(|x: f32, y: f32| x / y),
        FBinOp::Max => sweep!(|x: f32, y: f32| x.max(y)),
    }
}

/// Tape unary over a chunk with the op dispatch hoisted out of the loop
/// (per-element results identical to `apply_unary`; `Fast` transcendental
/// sweeps are handled by the caller).
fn un_chunk(op: FUnaryOp, dst: &mut [f32], a: &[f32]) {
    macro_rules! sweep {
        ($f:expr) => {
            for (d, x) in dst.iter_mut().zip(a) {
                *d = $f(*x);
            }
        };
    }
    match op {
        FUnaryOp::Neg => sweep!(|x: f32| -x),
        FUnaryOp::Exp => sweep!(|x: f32| x.exp()),
        FUnaryOp::Sqrt => sweep!(|x: f32| x.sqrt()),
        FUnaryOp::Recip => sweep!(|x: f32| 1.0 / x),
        FUnaryOp::Tanh => sweep!(|x: f32| x.tanh()),
        FUnaryOp::Relu => sweep!(|x: f32| x.max(0.0)),
    }
}

/// Best-effort name for a float-buffer slot (free buffers have names;
/// `Alloc` scratch slots are past the free range).
fn fbuf_name(prog: &VmProgram, slot: u32) -> String {
    let free = prog.slots.free_fbufs.len();
    match prog.slots.free_fbufs.names().get(slot as usize) {
        Some(n) => n.clone(),
        None => match prog.fbuf_slot_names.get(slot as usize - free) {
            Some(n) => format!("{n}@{slot}"),
            None => format!("<scratch slot {slot}>"),
        },
    }
}

// ---------------------------------------------------------------------
// Parallel execution
// ---------------------------------------------------------------------

/// A machine-checked disjoint-store certificate: for every block value,
/// the strided-interval regions of the output its stores may touch.
///
/// Produced by the static verifier (`cora_core::verify`) from a
/// concrete abstract interpretation of the outlined body, and consumed
/// by [`VmShared::run_blocks_proven`] — the *safe* parallel entry
/// point. Soundness does not rest on trusting the verifier:
/// [`StoreCert::new`] re-validates that regions of distinct blocks are
/// pairwise disjoint (so the type cannot exist for a non-partitioned
/// store space), and the executor checks every output store against the
/// executing block's regions at run time. A verifier bug can therefore
/// produce a deterministic panic, never a data race.
#[derive(Debug, Clone, Default)]
pub struct StoreCert {
    regions: HashMap<i64, Vec<SInt>>,
}

impl StoreCert {
    /// Builds a certificate, re-validating pairwise disjointness across
    /// blocks (interval separation with stride/congruence fallback, via
    /// a sort-and-sweep over the bounded regions).
    ///
    /// Rejects unbounded ([`SInt::Top`]) regions and any cross-block
    /// overlap the congruence test cannot refute.
    pub fn new(regions: HashMap<i64, Vec<SInt>>) -> Result<StoreCert, String> {
        let mut spans: Vec<(i64, i64, i64, SInt)> = Vec::new();
        for (&block, rs) in &regions {
            for r in rs {
                match *r {
                    SInt::Empty => {}
                    SInt::Top => {
                        return Err(format!("block {block} has an unbounded store region"));
                    }
                    SInt::Set { lo, hi, .. } => spans.push((lo, hi, block, *r)),
                }
            }
        }
        spans.sort_by_key(|&(lo, hi, b, _)| (lo, hi, b));
        for i in 0..spans.len() {
            let (_, hi_i, block_i, r_i) = spans[i];
            for &(lo_j, _, block_j, r_j) in spans.iter().skip(i + 1) {
                if lo_j > hi_i {
                    break;
                }
                if block_i != block_j && !r_i.disjoint(r_j) {
                    return Err(format!(
                        "blocks {block_i} and {block_j} have overlapping store \
                         regions {r_i} and {r_j}"
                    ));
                }
            }
        }
        Ok(StoreCert { regions })
    }

    /// The certified store regions of one block value. Blocks absent
    /// from the certificate (e.g. zero-length rows) own no elements, so
    /// any store they attempt panics.
    pub fn regions_for(&self, block: i64) -> &[SInt] {
        self.regions.get(&block).map_or(&[], |v| v.as_slice())
    }

    /// Number of block values with at least one recorded region.
    pub fn block_count(&self) -> usize {
        self.regions.len()
    }
}

/// True when the per-element owning-block tracker should run: always in
/// debug builds, and in release builds when `CORA_CHECK_DISJOINT=1`
/// opts in — the verifier cross-check the `verify` CI job uses to run
/// a release-speed encoder batch under full dynamic enforcement.
fn dynamic_check_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        cfg!(debug_assertions) || std::env::var("CORA_CHECK_DISJOINT").is_ok_and(|v| v == "1")
    })
}

/// The kernel output buffer shared by every parallel worker.
///
/// Built safely from an exclusive `&mut [f32]` via
/// [`Cell::from_mut`]/[`Cell::as_slice_of_cells`]; the only `unsafe` is
/// the `Sync` impl and the raw-pointer cell accesses below.
///
/// # Safety
///
/// Unsynchronized writes through the cells are sound *given* the
/// disjoint-store contract of [`VmShared::run_blocks`]: every store
/// executed for block index `b` targets an output element owned by `b`,
/// distinct blocks own disjoint element sets, and reads through
/// `SharedOut::get` only observe elements owned by the reading block
/// (read-modify-write reductions) — so no location is ever accessed
/// from two threads without ordering. The exclusive borrow keeps all
/// other access paths frozen for the region's lifetime, and
/// [`CpuPool::parallel_for`] joins every worker before `run_blocks`
/// returns.
///
/// The contract itself is the *caller's* obligation, discharged at
/// three layers (the README's "Safety & verification" story). First,
/// statically: the outliner's taint screen is a fast necessary-filter,
/// and `cora_core::verify` then *proves* disjointness per block value
/// by abstract interpretation over strided intervals, recording the
/// proof as a [`StoreCert`] inside the session's `VerifyOutcome`; the
/// safe entry point [`VmShared::run_blocks_proven`] enforces cert
/// membership on every store, so even a verifier bug panics
/// deterministically instead of racing. Second, dynamically: debug
/// builds — and release builds under `CORA_CHECK_DISJOINT=1` — track a
/// per-element owning block ([`OutOwners`]) and panic on any
/// cross-block overlap. Third, `miri` runs the parallel suites against
/// the raw `unsafe` entry points.
struct SharedOut<'a>(&'a [Cell<f32>]);

// SAFETY: see the type-level contract above — concurrent access is
// restricted to disjoint cells by the outliner.
#[allow(unsafe_code)]
unsafe impl Sync for SharedOut<'_> {}

impl<'a> SharedOut<'a> {
    fn new(buf: &'a mut [f32]) -> SharedOut<'a> {
        SharedOut(Cell::from_mut(buf).as_slice_of_cells())
    }

    #[inline]
    #[allow(unsafe_code)]
    fn get(&self, idx: usize) -> f32 {
        // SAFETY: only the block owning this element accesses it (see the
        // type-level contract), so the read cannot race a write.
        unsafe { *self.0[idx].as_ptr() }
    }

    #[inline]
    #[allow(unsafe_code)]
    fn set(&self, idx: usize, v: f32) {
        // SAFETY: as for `get` — this thread is the element's only
        // accessor during the region.
        unsafe { *self.0[idx].as_ptr() = v }
    }

    /// Exclusive mutable view of `[start, start + n)`, for the fused
    /// panel kernels.
    ///
    /// # Safety
    ///
    /// The executing block must own every element of the range under the
    /// disjoint-store contract (its stores all land there and no other
    /// block touches it), making the access exclusive for the view's
    /// lifetime. Debug builds claim each element beforehand, so a
    /// violated contract panics instead of racing.
    #[inline]
    #[allow(unsafe_code)]
    #[allow(clippy::mut_from_ref)] // exclusivity is the method's safety contract
    unsafe fn slice_mut(&self, start: usize, n: usize) -> &mut [f32] {
        assert!(start + n <= self.0.len(), "panel range out of bounds");
        // SAFETY: cells are layout-identical to f32 and the caller
        // guarantees exclusive ownership of the range (see above).
        unsafe { std::slice::from_raw_parts_mut(self.0[start].as_ptr(), n) }
    }
}

/// Dynamic enforcement of the disjoint-store contract: one atomic
/// owner record per output element, claimed by the first block that
/// stores there. A second block claiming the same element means the
/// contract the `unsafe impl Sync` relies on is violated — panic
/// deterministically instead of racing. Active in every debug build
/// and, via `CORA_CHECK_DISJOINT=1` (see [`dynamic_check_enabled`]),
/// in release builds as the verifier's runtime cross-check.
struct OutOwners(Vec<std::sync::atomic::AtomicI64>);

impl OutOwners {
    const UNCLAIMED: i64 = i64::MIN;

    fn new(len: usize) -> OutOwners {
        OutOwners(
            (0..len)
                .map(|_| std::sync::atomic::AtomicI64::new(Self::UNCLAIMED))
                .collect(),
        )
    }

    fn claim(&self, idx: usize, block: i64) {
        use std::sync::atomic::Ordering;
        if let Err(owner) = self.0[idx].compare_exchange(
            Self::UNCLAIMED,
            block,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            assert!(
                owner == block,
                "disjoint-store contract violated: blocks {owner} and {block} \
                 both stored to output element {idx}"
            );
        }
    }
}

/// A parallel worker's float-buffer view: shared read-only inputs, the
/// shared output, and private `Alloc` scratch.
struct WorkerBufs<'a> {
    prog: &'a VmProgram,
    /// Free-slot inputs, shared read-only (the output slot's entry is
    /// unused). Slices rather than owned vectors, so inputs may live in
    /// the caller's buffers (e.g. a pipeline arena) as well as in a
    /// [`VmShared`].
    shared: &'a [&'a [f32]],
    out_slot: u32,
    out: &'a SharedOut<'a>,
    /// Number of free float-buffer slots; slots at or past this index are
    /// per-worker `Alloc` scratch.
    n_free: usize,
    scratch: Vec<Vec<f32>>,
    /// Per-element owner records, when the dynamic tracker is active
    /// (debug builds, or release under `CORA_CHECK_DISJOINT=1`).
    owners: Option<&'a OutOwners>,
    /// Block-variable value currently executing (owner records and
    /// certificate diagnostics).
    cur_block: i64,
    /// The certified store regions of `cur_block`, when running through
    /// the safe proven entry points. `None` means the caller vouched
    /// for the contract through the raw `unsafe` entry points.
    regions: Option<&'a [SInt]>,
}

impl WorkerBufs<'_> {
    #[inline]
    fn out_bounds_check(&self, idx: usize) {
        assert!(
            idx < self.out.0.len(),
            "index {idx} out of bounds for output `{}` (len {})",
            fbuf_name(self.prog, self.out_slot),
            self.out.0.len()
        );
    }

    #[inline]
    fn out_claim(&self, idx: usize) {
        self.out_bounds_check(idx);
        if let Some(regions) = self.regions {
            assert!(
                regions.iter().any(|r| r.contains(idx as i64)),
                "store to output element {idx} outside block {}'s certified regions",
                self.cur_block
            );
        }
        if let Some(owners) = self.owners {
            owners.claim(idx, self.cur_block);
        }
    }

    /// [`WorkerBufs::out_claim`] for a dense run `[o0, o0 + n)` — the
    /// chunked store paths. Certificate membership is checked once per
    /// run ([`SInt::contains_run`]); owner records still claim each
    /// element when the tracker is active.
    #[inline]
    fn out_claim_run(&self, o0: usize, n: usize) {
        if n == 0 {
            return;
        }
        self.out_bounds_check(o0 + n - 1);
        if let Some(regions) = self.regions {
            assert!(
                regions.iter().any(|r| r.contains_run(o0 as i64, n as i64)),
                "store run [{o0}, {}) outside block {}'s certified regions",
                o0 + n,
                self.cur_block
            );
        }
        if let Some(owners) = self.owners {
            for idx in o0..o0 + n {
                owners.claim(idx, self.cur_block);
            }
        }
    }
}

impl FloatBufs for WorkerBufs<'_> {
    #[inline]
    fn get(&self, slot: u32, idx: usize) -> f32 {
        if slot == self.out_slot {
            self.out_bounds_check(idx);
            self.out.get(idx)
        } else if (slot as usize) < self.n_free {
            self.shared[slot as usize][idx]
        } else {
            self.scratch[slot as usize - self.n_free][idx]
        }
    }

    #[inline]
    fn set(&mut self, slot: u32, idx: usize, v: f32) {
        if slot == self.out_slot {
            self.out_claim(idx);
            self.out.set(idx, v);
        } else if (slot as usize) >= self.n_free {
            self.scratch[slot as usize - self.n_free][idx] = v;
        } else {
            // The outliner rejects such programs statically; reaching this
            // arm means a compiler bug, not a user error.
            panic!(
                "parallel block stored to shared input buffer `{}`",
                fbuf_name(self.prog, slot)
            );
        }
    }

    #[inline]
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F) {
        if slot == self.out_slot {
            self.out_claim(idx);
            self.out.set(idx, f(self.out.get(idx)));
        } else if (slot as usize) >= self.n_free {
            let cell = &mut self.scratch[slot as usize - self.n_free][idx];
            *cell = f(*cell);
        } else {
            panic!(
                "parallel block stored to shared input buffer `{}`",
                fbuf_name(self.prog, slot)
            );
        }
    }

    fn alloc(&mut self, slot: u32, n: usize) {
        assert!(
            (slot as usize) >= self.n_free,
            "alloc of non-scratch slot `{}`",
            fbuf_name(self.prog, slot)
        );
        let buf = &mut self.scratch[slot as usize - self.n_free];
        buf.clear();
        buf.resize(n, 0.0);
    }

    #[inline]
    fn ro(&self, slot: u32) -> Option<&[f32]> {
        if slot == self.out_slot {
            None
        } else if (slot as usize) < self.n_free {
            Some(self.shared[slot as usize])
        } else {
            Some(&self.scratch[slot as usize - self.n_free])
        }
    }

    #[allow(unsafe_code)] // exclusive chunk view of the shared output; see SAFETY below
    fn store_chunk(&mut self, out: u32, o0: usize, kind: StoreKind, vals: &[f32]) -> bool {
        if out == self.out_slot {
            self.out_claim_run(o0, vals.len());
            // SAFETY: this block stores to exactly `[o0, o0 + len)` of
            // the output (checked against the certificate and claimed
            // above when the tracker is active); under the
            // disjoint-store contract the view is exclusive.
            let orow = unsafe { self.out.slice_mut(o0, vals.len()) };
            store_chunk_slice(orow, kind, vals);
            true
        } else if (out as usize) >= self.n_free {
            let ov = &mut self.scratch[out as usize - self.n_free];
            store_chunk_slice(&mut ov[o0..o0 + vals.len()], kind, vals);
            true
        } else {
            // Storing to a shared input: fall back so `set`/`rmw` raise
            // the canonical compiler-bug panic.
            false
        }
    }

    fn saxpy(&mut self, out: u32, o0: usize, b: u32, b0: usize, s: f32, n: usize) -> bool {
        if out == self.out_slot {
            // `b` is never the output (compile-time contract), so `ro`
            // always covers it here.
            let Some(bv) = self.ro(b) else { return false };
            self.out_claim_run(o0, n);
            for (t, x) in bv[b0..b0 + n].iter().enumerate() {
                let idx = o0 + t;
                self.out.set(idx, self.out.get(idx) + s * *x);
            }
            true
        } else if (out as usize) >= self.n_free {
            let oi = out as usize - self.n_free;
            if (b as usize) >= self.n_free {
                let (ov, bv) = split_mut_ref(&mut self.scratch, oi, b as usize - self.n_free);
                for (o, x) in ov[o0..o0 + n].iter_mut().zip(&bv[b0..b0 + n]) {
                    *o += s * *x;
                }
            } else {
                let bv: &[f32] = self.shared[b as usize];
                let ov = &mut self.scratch[oi];
                for (o, x) in ov[o0..o0 + n].iter_mut().zip(&bv[b0..b0 + n]) {
                    *o += s * *x;
                }
            }
            true
        } else {
            // Storing to a shared input: fall back so `set`/`rmw` raise
            // the canonical compiler-bug panic.
            false
        }
    }

    #[allow(unsafe_code)] // exclusive panel view of the shared output; see SAFETY below
    fn saxpy_panel(
        &mut self,
        out: u32,
        o0: usize,
        n_i: usize,
        a: u32,
        a0: usize,
        sa_o: usize,
        b: u32,
        b0: usize,
        sb_o: usize,
        n_o: usize,
    ) -> bool {
        if out == self.out_slot {
            self.out_claim_run(o0, n_i);
            // `a`/`b` are never the output (compile-time contract).
            let (Some(av), Some(bv)) = (self.ro(a), self.ro(b)) else {
                return false;
            };
            // SAFETY: this block stores to exactly `[o0, o0+n_i)` of the
            // output (checked against the certificate and claimed above
            // when the tracker is active); under the disjoint-store
            // contract no other block accesses those elements, so the
            // view is exclusive.
            let orow = unsafe { self.out.slice_mut(o0, n_i) };
            panel::saxpy(orow, 0, n_i, av, a0, sa_o, bv, b0, sb_o, n_o);
            true
        } else if (out as usize) >= self.n_free {
            let mut ovec = std::mem::take(&mut self.scratch[out as usize - self.n_free]);
            let (Some(av), Some(bv)) = (self.ro(a), self.ro(b)) else {
                self.scratch[out as usize - self.n_free] = ovec;
                return false;
            };
            panel::saxpy(&mut ovec, o0, n_i, av, a0, sa_o, bv, b0, sb_o, n_o);
            self.scratch[out as usize - self.n_free] = ovec;
            true
        } else {
            false
        }
    }

    #[allow(unsafe_code)] // exclusive panel view of the shared output; see SAFETY below
    fn dot_panel(
        &mut self,
        out: u32,
        o0: usize,
        a: u32,
        a0: usize,
        sa_o: usize,
        b: u32,
        b0: usize,
        sb_o: usize,
        n_i: usize,
        n_o: usize,
        mode: MathMode,
    ) -> bool {
        if out == self.out_slot {
            self.out_claim_run(o0, n_o);
            let (Some(av), Some(bv)) = (self.ro(a), self.ro(b)) else {
                return false;
            };
            // SAFETY: as in `saxpy_panel` — the block owns
            // `[o0, o0+n_o)` of the output, so the view is exclusive.
            let orow = unsafe { self.out.slice_mut(o0, n_o) };
            panel::dot(orow, 0, av, a0, sa_o, bv, b0, sb_o, n_i, n_o, mode);
            true
        } else if (out as usize) >= self.n_free {
            let mut ovec = std::mem::take(&mut self.scratch[out as usize - self.n_free]);
            let (Some(av), Some(bv)) = (self.ro(a), self.ro(b)) else {
                self.scratch[out as usize - self.n_free] = ovec;
                return false;
            };
            panel::dot(&mut ovec, o0, av, a0, sa_o, bv, b0, sb_o, n_i, n_o, mode);
            self.scratch[out as usize - self.n_free] = ovec;
            true
        } else {
            false
        }
    }
}

/// Shared, immutable per-run bindings for parallel block execution.
///
/// Created by [`VmProgram::shared`]; bind free variables, auxiliary
/// buffers, read-only float inputs and UF tables once, then execute the
/// program once per block index with [`VmShared::run_blocks`]. The block
/// variable and the output buffer stay unbound here — they are supplied
/// per block / per region.
#[derive(Debug)]
pub struct VmShared<'p> {
    prog: &'p VmProgram,
    /// Free-variable values (binding-site slots stay zero; each worker
    /// copies this file and writes its own loop variables).
    vars: Vec<i64>,
    var_bound: Vec<bool>,
    ibufs: Vec<Vec<i64>>,
    ibuf_bound: Vec<bool>,
    /// Free float buffers only (workers keep private `Alloc` scratch).
    fbufs: Vec<Vec<f32>>,
    fbuf_bound: Vec<bool>,
    ufs: Vec<Option<UfHandle>>,
}

impl VmShared<'_> {
    /// Binds a free integer variable. Returns `false` if the program
    /// never references `name` (the binding is ignored).
    pub fn bind_var(&mut self, name: &str, v: i64) -> bool {
        match self.prog.slots.free_vars.get(name) {
            Some(slot) => {
                self.vars[slot as usize] = v;
                self.var_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an integer auxiliary buffer. Returns `false` if unused.
    pub fn set_ibuffer(&mut self, name: &str, data: Vec<i64>) -> bool {
        match self.prog.slots.ibufs.get(name) {
            Some(slot) => {
                self.ibufs[slot as usize] = data;
                self.ibuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs a read-only float input buffer. Returns `false` if
    /// unused.
    pub fn set_fbuffer(&mut self, name: &str, data: Vec<f32>) -> bool {
        match self.prog.slots.free_fbufs.get(name) {
            Some(slot) => {
                self.fbufs[slot as usize] = data;
                self.fbuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an uninterpreted-function table. Returns `false` if
    /// unused.
    pub fn set_uf(&mut self, name: &str, h: UfHandle) -> bool {
        match self.prog.slots.ufs.get(name) {
            Some(slot) => {
                self.ufs[slot as usize] = Some(h);
                true
            }
            None => false,
        }
    }

    /// Verifies every external binding is present, except the block
    /// variable and the output buffer (supplied by `run_blocks` itself).
    /// `fbuf_bound` may extend [`Self::fbuf_bound`] with borrowed inputs.
    fn check_bound(&self, block_slot: Option<u32>, out_slot: u32, fbuf_bound: &[bool]) {
        let s = &self.prog.slots;
        for (i, bound) in self.var_bound.iter().enumerate() {
            assert!(
                *bound || Some(i) == block_slot.map(|b| b as usize),
                "unbound variable `{}`",
                s.free_vars.names()[i]
            );
        }
        for (i, bound) in self.ibuf_bound.iter().enumerate() {
            assert!(*bound, "missing auxiliary buffer `{}`", s.ibufs.names()[i]);
        }
        for (i, bound) in fbuf_bound.iter().enumerate() {
            assert!(
                *bound || i == out_slot as usize,
                "missing float buffer `{}`",
                s.free_fbufs.names()[i]
            );
        }
        for (i, h) in self.ufs.iter().enumerate() {
            assert!(
                h.is_some(),
                "no runtime table for uninterpreted function `{}`",
                s.ufs.names()[i]
            );
        }
    }

    /// Executes the whole program serially, with the float buffers
    /// supplied as *borrowed* slices instead of owned vectors — the entry
    /// point arena-backed pipelines use. Inputs bind as
    /// [`BoundBuf::In`]; written buffers bind as [`BoundBuf::Out`] and
    /// must be pre-initialised by the caller (the executor does not zero
    /// them). Buffers already installed with [`VmShared::set_fbuffer`]
    /// serve as read-only fallbacks; bindings for names the program never
    /// references are ignored.
    ///
    /// Loop variables, registers and `Alloc` scratch are private to the
    /// call, so `&self` executions are independent; outputs and
    /// statistics are bit-identical to an owned-buffer [`VmMachine::run`]
    /// with the same bindings.
    ///
    /// # Panics
    ///
    /// Panics on unbound inputs, stores to a buffer bound read-only, and
    /// out-of-bounds or negative accesses — matching the owned-buffer
    /// tiers.
    pub fn run_borrowed(&self, fbufs: Vec<(&str, BoundBuf<'_>)>) -> InterpStats {
        let s = &self.prog.slots;
        let mut table: Vec<Option<BoundBuf<'_>>> = (0..s.free_fbufs.len())
            .map(|i| {
                if self.fbuf_bound[i] {
                    Some(BoundBuf::In(&self.fbufs[i]))
                } else {
                    None
                }
            })
            .collect();
        for (name, buf) in fbufs {
            if let Some(slot) = s.free_fbufs.get(name) {
                table[slot as usize] = Some(buf);
            }
        }
        for (i, entry) in table.iter().enumerate() {
            assert!(
                entry.is_some(),
                "missing float buffer `{}`",
                s.free_fbufs.names()[i]
            );
        }
        // No block variable is exempt here: every free variable must be
        // bound for a full serial execution.
        let all_bound = vec![true; s.free_fbufs.len()];
        self.check_bound(None, u32::MAX, &all_bound);
        let mut bufs = BorrowedBufs {
            prog: self.prog,
            bufs: table.into_iter().map(Option::unwrap).collect(),
            n_free: s.free_fbufs.len(),
            scratch: vec![Vec::new(); s.alloc_sites],
        };
        let mut vars = self.vars.clone();
        let mut iregs = vec![0i64; self.prog.n_iregs];
        let mut fregs = vec![0.0f32; self.prog.n_fregs];
        let mut uf_args = Vec::new();
        let mut stats = InterpStats::default();
        dispatch(
            self.prog,
            &self.ibufs,
            &self.ufs,
            &mut Regs {
                vars: &mut vars,
                iregs: &mut iregs,
                fregs: &mut fregs,
                uf_args: &mut uf_args,
            },
            &mut bufs,
            &mut stats,
            &mut MapScratch::default(),
        );
        stats
    }

    /// Executes the program once per block index, in parallel.
    ///
    /// `batches` holds *values of the block variable* (`min + b`), packed
    /// into cost-balanced batches in dispatch order; each batch runs on
    /// one participant of `pool`, with its own registers, loop variables
    /// and `Alloc` scratch. All stores land in `out` (bound to the
    /// `output` buffer slot); per-worker [`InterpStats`] are summed, so
    /// the aggregate equals a serial run's statistics exactly (the
    /// counters are plain sums).
    ///
    /// # Safety
    ///
    /// The caller must guarantee the disjoint-store contract: across all
    /// of `batches`, distinct block-variable values store to disjoint
    /// elements of `out` and never load another block's elements (see
    /// `SharedOut`). Two helpers reduce the obligation but do not
    /// discharge it: in-place programs (output loaded *and* stored) are
    /// rejected up front, and the dynamic tracker (debug builds, or
    /// release under `CORA_CHECK_DISJOINT=1`) records each output
    /// element's owning block, panicking deterministically on any
    /// cross-block overlap — untracked release builds run unchecked, so
    /// a violated contract is a data race (undefined behaviour).
    ///
    /// Prefer [`VmShared::run_blocks_proven`]: it is *safe*, taking a
    /// [`StoreCert`] produced by the static verifier
    /// (`cora_core::verify`, recorded in a session's `VerifyOutcome`)
    /// and enforcing it per store. This raw entry point remains for
    /// callers with an external proof and for the miri suites.
    ///
    /// # Panics
    ///
    /// Panics if `block_var` or `output` are unknown to the program, if
    /// the program reads the output buffer back, if any other external
    /// binding is missing, or if the program itself panics
    /// (out-of-bounds access, negative index) — propagated after the
    /// region drains.
    #[allow(unsafe_code)] // the disjoint-store contract is the caller's proof here
    pub unsafe fn run_blocks(
        &self,
        pool: &CpuPool,
        block_var: &str,
        output: &str,
        out: &mut [f32],
        batches: &[Vec<i64>],
    ) -> InterpStats {
        let views: Vec<&[f32]> = self.fbufs.iter().map(|v| v.as_slice()).collect();
        self.run_blocks_views(
            pool,
            block_var,
            output,
            &views,
            &self.fbuf_bound,
            out,
            batches,
            None,
        )
    }

    /// The *safe* parallel entry point: [`VmShared::run_blocks`] under a
    /// machine-checked disjoint-store certificate.
    ///
    /// Soundness is enforced, not assumed: [`StoreCert::new`] has
    /// already re-validated that distinct blocks' certified regions are
    /// pairwise disjoint, and every output store is checked for
    /// membership in the executing block's regions before it lands. A
    /// store outside its certificate — i.e. any disagreement between
    /// the static verifier and the actual execution — panics
    /// deterministically before the write, so no interleaving can
    /// produce a data race. That is what makes this function safe to
    /// expose despite the internal `unsafe` dispatch.
    ///
    /// # Panics
    ///
    /// As for [`VmShared::run_blocks`], plus any store outside the
    /// executing block's certified regions.
    #[allow(unsafe_code)] // contains the one audited unsafe dispatch; see SAFETY below
    pub fn run_blocks_proven(
        &self,
        pool: &CpuPool,
        block_var: &str,
        output: &str,
        out: &mut [f32],
        batches: &[Vec<i64>],
        cert: &StoreCert,
    ) -> InterpStats {
        let views: Vec<&[f32]> = self.fbufs.iter().map(|v| v.as_slice()).collect();
        // SAFETY: every output store is checked against the executing
        // block's certified regions before it happens, and the regions
        // of distinct blocks are pairwise disjoint by `StoreCert`'s
        // construction-time validation — so two threads can never touch
        // the same output element (stores or read-modify-writes), which
        // is exactly the `run_blocks_views` contract.
        unsafe {
            self.run_blocks_views(
                pool,
                block_var,
                output,
                &views,
                &self.fbuf_bound,
                out,
                batches,
                Some(cert),
            )
        }
    }

    /// [`VmShared::run_blocks_proven`] with additional float inputs
    /// supplied as *borrowed* slices — the safe parallel entry point for
    /// arena-backed pipelines. Bindings for names the program never
    /// references are ignored.
    ///
    /// # Panics
    ///
    /// As for [`VmShared::run_blocks_proven`].
    #[allow(unsafe_code)] // contains the one audited unsafe dispatch; see SAFETY below
    #[allow(clippy::too_many_arguments)]
    pub fn run_blocks_proven_borrowed(
        &self,
        pool: &CpuPool,
        block_var: &str,
        output: &str,
        out: &mut [f32],
        inputs: &[(&str, &[f32])],
        batches: &[Vec<i64>],
        cert: &StoreCert,
    ) -> InterpStats {
        let s = &self.prog.slots;
        let mut views: Vec<&[f32]> = self.fbufs.iter().map(|v| v.as_slice()).collect();
        let mut bound = self.fbuf_bound.clone();
        for (name, buf) in inputs {
            if let Some(slot) = s.free_fbufs.get(name) {
                views[slot as usize] = buf;
                bound[slot as usize] = true;
            }
        }
        // SAFETY: as for `run_blocks_proven` — per-store certificate
        // enforcement plus the cert's pairwise disjointness.
        unsafe {
            self.run_blocks_views(
                pool,
                block_var,
                output,
                &views,
                &bound,
                out,
                batches,
                Some(cert),
            )
        }
    }

    /// [`VmShared::run_blocks`] with additional float inputs supplied as
    /// *borrowed* slices (overriding any same-named owned binding) — the
    /// parallel entry point for arena-backed pipelines, which cannot hand
    /// the shared state owned copies of every intermediate. Bindings for
    /// names the program never references are ignored.
    ///
    /// # Safety
    ///
    /// Identical contract to [`VmShared::run_blocks`].
    ///
    /// # Panics
    ///
    /// As for [`VmShared::run_blocks`].
    #[allow(unsafe_code)] // same contract as `run_blocks`
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn run_blocks_borrowed(
        &self,
        pool: &CpuPool,
        block_var: &str,
        output: &str,
        out: &mut [f32],
        inputs: &[(&str, &[f32])],
        batches: &[Vec<i64>],
    ) -> InterpStats {
        let s = &self.prog.slots;
        let mut views: Vec<&[f32]> = self.fbufs.iter().map(|v| v.as_slice()).collect();
        let mut bound = self.fbuf_bound.clone();
        for (name, buf) in inputs {
            if let Some(slot) = s.free_fbufs.get(name) {
                views[slot as usize] = buf;
                bound[slot as usize] = true;
            }
        }
        self.run_blocks_views(pool, block_var, output, &views, &bound, out, batches, None)
    }

    /// Shared core of [`VmShared::run_blocks`] /
    /// [`VmShared::run_blocks_borrowed`].
    ///
    /// # Safety
    ///
    /// As for [`VmShared::run_blocks`].
    #[allow(unsafe_code)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_blocks_views(
        &self,
        pool: &CpuPool,
        block_var: &str,
        output: &str,
        views: &[&[f32]],
        fbuf_bound: &[bool],
        out: &mut [f32],
        batches: &[Vec<i64>],
        cert: Option<&StoreCert>,
    ) -> InterpStats {
        let s = &self.prog.slots;
        let block_slot = s
            .free_vars
            .get(block_var)
            .unwrap_or_else(|| panic!("unknown block variable `{block_var}`"));
        let out_slot = s
            .free_fbufs
            .get(output)
            .unwrap_or_else(|| panic!("unknown output buffer `{output}`"));
        // An in-place program could read elements another block is
        // writing — reject it here (not just in the outliner) so the
        // race is unreachable through this public entry point.
        assert!(
            !s.fbuf_is_inplace(output),
            "program both loads and stores output `{output}`; \
             the parallel tier forbids in-place output access"
        );
        self.check_bound(Some(block_slot), out_slot, fbuf_bound);
        let owners = dynamic_check_enabled().then(|| OutOwners::new(out.len()));
        let shared_out = SharedOut::new(out);
        let total = Mutex::new(InterpStats::default());
        pool.parallel_for(batches.len(), |bi| {
            let prog = self.prog;
            let mut vars = self.vars.clone();
            let mut iregs = vec![0i64; prog.n_iregs];
            let mut fregs = vec![0.0f32; prog.n_fregs];
            let mut uf_args = Vec::new();
            let mut bufs = WorkerBufs {
                prog,
                shared: views,
                out_slot,
                out: &shared_out,
                n_free: s.free_fbufs.len(),
                scratch: vec![Vec::new(); s.alloc_sites],
                owners: owners.as_ref(),
                cur_block: 0,
                regions: None,
            };
            let mut stats = InterpStats::default();
            let mut map_scratch = MapScratch::default();
            for &bv in &batches[bi] {
                vars[block_slot as usize] = bv;
                bufs.cur_block = bv;
                bufs.regions = cert.map(|c| c.regions_for(bv));
                dispatch(
                    prog,
                    &self.ibufs,
                    &self.ufs,
                    &mut Regs {
                        vars: &mut vars,
                        iregs: &mut iregs,
                        fregs: &mut fregs,
                        uf_args: &mut uf_args,
                    },
                    &mut bufs,
                    &mut stats,
                    &mut map_scratch,
                );
            }
            let mut t = total.lock().unwrap_or_else(|e| e.into_inner());
            *t += stats;
        });
        total.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    // Tests exercise the unsafe `run_blocks` entry point directly; each
    // call either upholds the disjoint-store contract or deliberately
    // violates it to check the guards, which fire before any racing
    // write (in-place rejection up front; debug owner check before the
    // store).
    #![allow(unsafe_code)]

    use super::*;
    use crate::interp::Machine;
    use cora_ir::{Expr, ForKind, UfRef};

    /// Runs `s` through both tiers with the same bindings and asserts
    /// bit-identical buffers and identical statistics.
    fn differential(
        s: &Stmt,
        setup: impl Fn(&mut Machine),
        out_bufs: &[&str],
    ) -> (InterpStats, Vec<Vec<f32>>) {
        let mut m = Machine::new();
        setup(&mut m);
        let prog = compile(s);
        let mut vm = prog.machine();
        vm.bind_env(&m.env);
        for (name, buf) in m.fbuffers() {
            vm.set_fbuffer(name, buf.to_vec());
        }
        m.run(s);
        vm.run();
        assert_eq!(m.stats, vm.stats, "instruction-mix statistics diverge");
        let mut outs = Vec::new();
        for name in out_bufs {
            let a = m.fbuffer(name).expect("interp buffer");
            let b = vm.fbuffer(name).expect("vm buffer");
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "buffer `{name}` diverges");
            outs.push(b.to_vec());
        }
        (vm.stats, outs)
    }

    #[test]
    fn ragged_doubling_matches_interpreter() {
        let s_uf = UfRef::new("s", 1);
        let idx = Expr::load("row", Expr::var("o")) + Expr::var("i");
        let body = Stmt::store("B", idx.clone(), FExpr::load("A", idx) * 2.0);
        let nest = Stmt::loop_(
            "o",
            Expr::int(3),
            Stmt::loop_("i", Expr::uf(s_uf, vec![Expr::var("o")]), body),
        );
        let (stats, outs) = differential(
            &nest,
            |m| {
                m.env.uf_table_mut().insert_table1d("s", vec![5, 2, 3]);
                m.env.set_buffer("row", vec![0, 5, 7]);
                m.set_fbuffer("A", (0..10).map(|x| x as f32).collect());
                m.set_fbuffer("B", vec![0.0; 10]);
            },
            &["B"],
        );
        let expect: Vec<f32> = (0..10).map(|x| 2.0 * x as f32).collect();
        assert_eq!(outs[0], expect);
        assert_eq!(stats.stores, 10);
        assert_eq!(stats.flops, 10);
    }

    #[test]
    fn load_extent_loops_match_and_count() {
        // The satellite-bug shape: a ragged loop whose extent is an aux
        // load must charge aux_loads in both tiers.
        let body = Stmt::store("B", Expr::var("i"), FExpr::constant(1.0));
        let nest = Stmt::loop_(
            "o",
            Expr::int(2),
            Stmt::loop_("i", Expr::load("lens", Expr::var("o")), body),
        );
        let (stats, _) = differential(
            &nest,
            |m| {
                m.env.set_buffer("lens", vec![2, 3]);
                m.set_fbuffer("B", vec![0.0; 4]);
            },
            &["B"],
        );
        // Two inner-loop entries, each charging one extent load.
        assert_eq!(stats.aux_loads, 2);
        assert_eq!(stats.stores, 5);
    }

    #[test]
    fn aux_counts_survive_u32_overflow() {
        // Regression: aux metadata used to be `u32`, and Rc-shared
        // doubling expression DAGs produce per-site load counts past
        // 2^32, so `compile` panicked on the checked cast. The fields
        // are `u64` now. Building a real >2^32-load expression is
        // exponential-time, so inject a boundary-crossing count into
        // the compiled code directly and check each evaluation charges
        // the full 64-bit value.
        const BIG: u64 = u32::MAX as u64 + 7;
        let body = Stmt::store("B", Expr::var("i"), FExpr::load("A", Expr::var("i")));
        let nest = Stmt::loop_(
            "i",
            Expr::int(4),
            Stmt::if_then(Expr::var("i").lt(Expr::int(2)), body),
        );
        let mut prog = compile(&nest);
        let mut patched = 0u64;
        for ins in &mut prog.code {
            if let Instr::Guard { aux } = ins {
                *aux = BIG;
                patched += 1;
            }
        }
        assert_eq!(patched, 1, "expected exactly one guard in the loop body");
        let mut vm = prog.machine();
        vm.set_fbuffer("A", vec![1.0; 4]);
        vm.set_fbuffer("B", vec![0.0; 4]);
        vm.run();
        // One guard evaluation per iteration, each charging the full
        // (formerly truncated) count.
        assert_eq!(vm.stats.guards, 4);
        assert_eq!(vm.stats.aux_loads, 4 * BIG);
    }

    #[test]
    fn guards_selects_and_short_circuit_match() {
        // if (i < 2 && lens[i] != 0) B[i] = select(lens[i] < 2, A[i], -A[i])
        // Note: lens has only 2 entries, so the && must short-circuit for
        // i in 2..4 exactly as the interpreter does.
        let cond = Expr::var("i")
            .lt(Expr::int(2))
            .and(Expr::load("lens", Expr::var("i")).ne_expr(Expr::int(0)));
        let sel = FExpr::select(
            Expr::load("lens", Expr::var("i")).lt(Expr::int(2)),
            FExpr::load("A", Expr::var("i")),
            FExpr::load("A", Expr::var("i")).unary(FUnaryOp::Neg),
        );
        let body = Stmt::if_then(cond, Stmt::store("B", Expr::var("i"), sel));
        let nest = Stmt::loop_("i", Expr::int(4), body);
        let (stats, outs) = differential(
            &nest,
            |m| {
                m.env.set_buffer("lens", vec![1, 5]);
                m.set_fbuffer("A", vec![1.0, 2.0, 3.0, 4.0]);
                m.set_fbuffer("B", vec![0.0; 4]);
            },
            &["B"],
        );
        assert_eq!(outs[0], vec![1.0, -2.0, 0.0, 0.0]);
        // 4 If guards + 2 Select guards (taken branch only evaluated).
        assert_eq!(stats.guards, 6);
    }

    #[test]
    fn alloc_let_and_reductions_match() {
        // Alloc a scratch row, accumulate with AddAssign and MaxAssign,
        // and exercise LetInt hoist bindings + Cast.
        let idx = Expr::var("h") + Expr::var("i");
        let fill = Stmt::store("tile", idx.clone(), FExpr::cast(idx));
        let acc = Stmt::Store {
            buffer: "acc".into(),
            index: Expr::int(0),
            value: FExpr::load("tile", Expr::var("i")),
            kind: StoreKind::AddAssign,
        };
        let mx = Stmt::Store {
            buffer: "acc".into(),
            index: Expr::int(1),
            value: FExpr::load("tile", Expr::var("i")),
            kind: StoreKind::MaxAssign,
        };
        let inner = Stmt::loop_("i", Expr::int(4), fill.then(acc).then(mx));
        let alloc = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::load("sz", Expr::int(0)),
            body: Box::new(inner),
        };
        let s = Stmt::LetInt {
            var: "h".into(),
            value: Expr::load("off", Expr::int(0)),
            body: Box::new(alloc),
        };
        let (stats, outs) = differential(
            &s,
            |m| {
                m.env.set_buffer("sz", vec![8]);
                m.env.set_buffer("off", vec![2]);
                m.set_fbuffer("acc", vec![0.0, f32::NEG_INFINITY]);
            },
            &["acc"],
        );
        // tile[h+i] = h+i for i in 0..4 with h = 2; acc[0] sums tile[i]
        // (i < 4: values 0,0,2,3... tile[0..2] stay zero).
        assert_eq!(outs[0][0], 0.0 + 0.0 + 2.0 + 3.0);
        assert_eq!(outs[0][1], 3.0);
        // LetInt charges 1 (off), Alloc charges 1 (sz).
        assert!(stats.aux_loads >= 2);
    }

    #[test]
    fn gpu_axes_execute_sequentially() {
        let body = Stmt::loop_kind(
            "t",
            Expr::int(3),
            ForKind::GpuThreadX,
            Stmt::store(
                "B",
                Expr::var("b") * 3 + Expr::var("t"),
                FExpr::constant(1.0),
            ),
        );
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let (_, outs) = differential(
            &s,
            |m| {
                m.set_fbuffer("B", vec![0.0; 6]);
            },
            &["B"],
        );
        assert_eq!(outs[0], vec![1.0; 6]);
    }

    #[test]
    fn shadowed_loop_vars_are_alpha_renamed() {
        // for i in 0..2 { B[i] = 0; for i in 0..3 { C[i] = 1 } D[i] = 2 }
        // The inner `i` must not clobber the outer one.
        let inner = Stmt::loop_(
            "i",
            Expr::int(3),
            Stmt::store("C", Expr::var("i"), FExpr::constant(1.0)),
        );
        let body = Stmt::store("B", Expr::var("i"), FExpr::constant(0.0))
            .then(inner)
            .then(Stmt::store("D", Expr::var("i"), FExpr::constant(2.0)));
        let s = Stmt::loop_("i", Expr::int(2), body);
        differential(
            &s,
            |m| {
                m.set_fbuffer("B", vec![9.0; 2]);
                m.set_fbuffer("C", vec![9.0; 3]);
                m.set_fbuffer("D", vec![9.0; 2]);
            },
            &["B", "C", "D"],
        );
    }

    #[test]
    fn empty_and_negative_extents_run_zero_iterations() {
        let body = Stmt::store("B", Expr::int(0), FExpr::constant(1.0));
        let s = Stmt::loop_("i", Expr::int(0), body.clone()).then(Stmt::loop_(
            "j",
            Expr::int(-3),
            body,
        ));
        let (stats, outs) = differential(
            &s,
            |m| {
                m.set_fbuffer("B", vec![0.0]);
            },
            &["B"],
        );
        assert_eq!(outs[0], vec![0.0]);
        assert_eq!(stats.stores, 0);
    }

    #[test]
    #[should_panic(expected = "missing float buffer `A`")]
    fn unbound_input_panics() {
        let s = Stmt::store("B", Expr::int(0), FExpr::load("A", Expr::int(0)));
        let prog = compile(&s);
        let mut vm = prog.machine();
        vm.set_fbuffer("B", vec![0.0]);
        vm.run();
    }

    #[test]
    fn program_len_reports_flattened_size() {
        let s = Stmt::loop_(
            "i",
            Expr::int(4),
            Stmt::store("B", Expr::var("i"), FExpr::constant(1.0)),
        );
        let p = compile(&s);
        assert!(!p.is_empty());
        assert!(
            p.len() >= 6,
            "loop + store should flatten to several instrs"
        );
        assert!(compile(&Stmt::Nop).is_empty());
        assert_eq!(p.slots().free_fbufs.names(), &["B".to_string()]);
    }

    /// The block body of a ragged doubling kernel, outlined: `b` is the
    /// (free) block variable, `row` maps blocks to output rows.
    fn outlined_doubling_body() -> Stmt {
        let idx = Expr::load("row", Expr::var("b")) + Expr::var("i");
        let body = Stmt::store("B", idx.clone(), FExpr::load("A", idx) * 2.0);
        Stmt::loop_("i", Expr::load("lens", Expr::var("b")), body)
    }

    /// Runs `outlined_doubling_body` serially (block loop on one machine)
    /// and in parallel over `batches`, asserting identical outputs and
    /// stats.
    fn parallel_matches_serial(pool: &CpuPool, batches: &[Vec<i64>]) {
        let lens = vec![5i64, 0, 3, 2];
        let row = vec![0i64, 5, 5, 8];
        let n = 10usize;
        let input: Vec<f32> = (0..n).map(|x| x as f32 - 4.5).collect();

        // Serial reference: wrap the body in the block loop.
        let serial = Stmt::loop_kind(
            "b",
            Expr::int(4),
            ForKind::GpuBlockX,
            outlined_doubling_body(),
        );
        let sp = compile(&serial);
        let mut sm = sp.machine();
        sm.set_ibuffer("lens", lens.clone());
        sm.set_ibuffer("row", row.clone());
        sm.set_fbuffer("A", input.clone());
        sm.set_fbuffer("B", vec![0.0; n]);
        sm.run();

        // Parallel: compile only the body; `b` becomes a free variable.
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", lens);
        shared.set_ibuffer("row", row);
        shared.set_fbuffer("A", input);
        let mut out = vec![0.0f32; n];
        let stats = unsafe { shared.run_blocks(pool, "b", "B", &mut out, batches) };

        assert_eq!(sm.fbuffer("B").unwrap(), out.as_slice());
        // The serial program additionally charges the block loop's own
        // bound evaluation (a constant here: zero aux loads), so the sums
        // must line up exactly.
        assert_eq!(sm.stats, stats);
    }

    #[test]
    fn run_blocks_matches_serial_execution() {
        let pool = CpuPool::new(4);
        parallel_matches_serial(&pool, &[vec![0], vec![1], vec![2], vec![3]]);
        parallel_matches_serial(&pool, &[vec![3, 1], vec![0, 2]]);
        parallel_matches_serial(&pool, &[vec![0, 1, 2, 3]]);
        // The spawn backend exercises real OS-thread concurrency even on
        // single-core hosts.
        let spawn = CpuPool::new(4).with_backend(crate::cpu::Backend::Spawn);
        parallel_matches_serial(&spawn, &[vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn run_blocks_zero_batches_is_noop() {
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", vec![1]);
        shared.set_ibuffer("row", vec![0]);
        shared.set_fbuffer("A", vec![1.0]);
        let mut out = vec![7.0f32];
        let stats = unsafe { shared.run_blocks(&CpuPool::new(2), "b", "B", &mut out, &[]) };
        assert_eq!(stats, InterpStats::default());
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn validate_accepts_compiled_programs() {
        for s in [
            outlined_doubling_body(),
            Stmt::loop_(
                "i",
                Expr::int(4),
                Stmt::store("B", Expr::var("i"), FExpr::constant(1.0)),
            ),
            Stmt::Nop,
        ] {
            compile(&s)
                .validate()
                .unwrap_or_else(|e| panic!("fresh compile must validate: {e}"));
        }
    }

    #[test]
    fn validate_rejects_corrupted_streams() {
        let base = compile(&outlined_doubling_body());
        base.validate().expect("baseline validates");

        // A jump beyond the halt address.
        let mut p = base.clone();
        p.code.push(Instr::Jump {
            to: u32::try_from(p.code.len() + 5).unwrap(),
        });
        assert!(p.validate().unwrap_err().contains("beyond program end"));

        // A read of a register no path has written (appended at the
        // program end, which stays reachable by fallthrough).
        let mut p = base.clone();
        let fresh = u16::try_from(p.n_iregs).unwrap();
        p.n_iregs += 1;
        p.code.push(Instr::ICopy { dst: 0, src: fresh });
        assert!(p.validate().unwrap_err().contains("read before any write"));

        // A register index outside the allocated file.
        let mut p = base.clone();
        p.code.push(Instr::IConst {
            dst: u16::try_from(p.n_iregs).unwrap(),
            v: 0,
        });
        assert!(p.validate().unwrap_err().contains("out of file"));

        // A variable slot outside the census.
        let mut p = base;
        let slot = u32::try_from(p.slots.var_slot_count()).unwrap();
        p.code.push(Instr::IVar { dst: 0, slot });
        assert!(p.validate().unwrap_err().contains("out of census"));
    }

    #[test]
    fn store_cert_validates_pairwise_disjointness() {
        // Disjoint rows certify.
        let mut ok = HashMap::new();
        ok.insert(0i64, vec![SInt::range(0, 4)]);
        ok.insert(1, vec![SInt::range(5, 9)]);
        let cert = StoreCert::new(ok).expect("disjoint rows certify");
        assert_eq!(cert.block_count(), 2);
        assert!(cert.regions_for(2).is_empty());

        // Interleaved but congruence-disjoint strided lanes certify.
        let mut lace = HashMap::new();
        lace.insert(0i64, vec![SInt::make(0, 8, 2)]);
        lace.insert(1, vec![SInt::make(1, 9, 2)]);
        StoreCert::new(lace).expect("even/odd lanes certify");

        // A genuine overlap is rejected, naming both blocks.
        let mut bad = HashMap::new();
        bad.insert(0i64, vec![SInt::range(0, 5)]);
        bad.insert(1, vec![SInt::range(5, 9)]);
        let err = StoreCert::new(bad).unwrap_err();
        assert!(err.contains("overlapping store regions"), "{err}");

        // Unbounded regions can never certify.
        let mut top = HashMap::new();
        top.insert(0i64, vec![SInt::Top]);
        assert!(StoreCert::new(top).unwrap_err().contains("unbounded"));
    }

    /// The row partition of `outlined_doubling_body`: block `b` owns
    /// `[row[b], row[b] + lens[b])`.
    fn doubling_cert() -> StoreCert {
        let lens = [5i64, 0, 3, 2];
        let row = [0i64, 5, 5, 8];
        let mut regions = HashMap::new();
        for b in 0..4usize {
            regions.insert(b as i64, vec![SInt::range(row[b], row[b] + lens[b] - 1)]);
        }
        StoreCert::new(regions).expect("rows are disjoint")
    }

    #[test]
    fn run_blocks_proven_matches_unsafe_entry_point() {
        let bp = compile(&outlined_doubling_body());
        let input: Vec<f32> = (0..10).map(|x| x as f32 - 4.5).collect();
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", vec![5, 0, 3, 2]);
        shared.set_ibuffer("row", vec![0, 5, 5, 8]);
        shared.set_fbuffer("A", input);
        let pool = CpuPool::new(3);
        let batches = vec![vec![0, 2], vec![1, 3]];
        let mut reference = vec![0.0f32; 10];
        let ref_stats = unsafe { shared.run_blocks(&pool, "b", "B", &mut reference, &batches) };
        let mut proven = vec![0.0f32; 10];
        let stats =
            shared.run_blocks_proven(&pool, "b", "B", &mut proven, &batches, &doubling_cert());
        assert_eq!(proven, reference);
        assert_eq!(stats, ref_stats);
    }

    #[test]
    #[should_panic(expected = "outside block 3's certified regions")]
    fn run_blocks_proven_rejects_uncertified_stores() {
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", vec![5, 0, 3, 2]);
        shared.set_ibuffer("row", vec![0, 5, 5, 8]);
        shared.set_fbuffer("A", vec![1.0; 10]);
        // A certificate that certifies every block except 3: the store
        // must panic before it lands, not race.
        let mut regions = HashMap::new();
        regions.insert(0i64, vec![SInt::range(0, 4)]);
        regions.insert(2, vec![SInt::range(5, 7)]);
        let cert = StoreCert::new(regions).unwrap();
        let mut out = vec![0.0f32; 10];
        shared.run_blocks_proven(&CpuPool::new(2), "b", "B", &mut out, &[vec![3]], &cert);
    }

    #[test]
    fn run_blocks_gives_each_worker_private_scratch() {
        // Each block fills a scratch tile with its own block index and
        // reduces it into its private output cell; racing scratch would
        // corrupt the sums.
        let fill = Stmt::loop_(
            "i",
            Expr::int(8),
            Stmt::store("tile", Expr::var("i"), FExpr::cast(Expr::var("b"))),
        );
        let acc = Stmt::loop_(
            "i",
            Expr::int(8),
            Stmt::Store {
                buffer: "out".into(),
                index: Expr::var("b"),
                value: FExpr::load("tile", Expr::var("i")),
                kind: StoreKind::AddAssign,
            },
        );
        let body = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::int(8),
            body: Box::new(fill.then(acc)),
        };
        let bp = compile(&body);
        let shared = bp.shared();
        let mut out = vec![0.0f32; 16];
        let batches: Vec<Vec<i64>> = (0..16).map(|b| vec![b]).collect();
        let pool = CpuPool::new(4).with_backend(crate::cpu::Backend::Spawn);
        unsafe { shared.run_blocks(&pool, "b", "out", &mut out, &batches) };
        let want: Vec<f32> = (0..16).map(|b| 8.0 * b as f32).collect();
        assert_eq!(out, want);
    }

    #[test]
    #[should_panic(expected = "forbids in-place output access")]
    fn run_blocks_rejects_inplace_output_programs() {
        // out[b] = out[1 - b] * 2: block 0 would read the element block 1
        // writes — rejected up front, in release builds too.
        let body = Stmt::store(
            "out",
            Expr::var("b"),
            FExpr::load("out", Expr::int(1) - Expr::var("b")) * 2.0,
        );
        let bp = compile(&body);
        let shared = bp.shared();
        let mut out = vec![0.0f32; 2];
        unsafe { shared.run_blocks(&CpuPool::new(2), "b", "out", &mut out, &[vec![0], vec![1]]) };
    }

    #[test]
    #[cfg(debug_assertions)]
    fn cross_block_store_overlap_panics_in_debug() {
        // Both blocks store to out[0]: the disjoint-store contract is
        // violated, and debug builds must fail deterministically instead
        // of racing.
        let body = Stmt::store("out", Expr::int(0), FExpr::cast(Expr::var("b")));
        let bp = compile(&body);
        let shared = bp.shared();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 1];
            unsafe {
                shared.run_blocks(&CpuPool::new(2), "b", "out", &mut out, &[vec![0], vec![1]])
            };
        }));
        let payload = r.expect_err("overlapping stores must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("disjoint-store contract violated"),
            "unexpected panic payload: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "missing auxiliary buffer `lens`")]
    fn run_blocks_checks_bindings() {
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("row", vec![0]);
        shared.set_fbuffer("A", vec![1.0]);
        let mut out = vec![0.0f32];
        unsafe { shared.run_blocks(&CpuPool::new(1), "b", "B", &mut out, &[vec![0]]) };
    }

    #[test]
    #[should_panic(expected = "unknown block variable `nope`")]
    fn run_blocks_rejects_unknown_block_var() {
        let bp = compile(&outlined_doubling_body());
        let shared = bp.shared();
        let mut out = vec![0.0f32];
        unsafe { shared.run_blocks(&CpuPool::new(1), "nope", "B", &mut out, &[]) };
    }

    #[test]
    fn run_blocks_propagates_body_panics() {
        // Block 1 indexes `lens` out of bounds; the panic must reach the
        // caller instead of poisoning the pool.
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", vec![1]);
        shared.set_ibuffer("row", vec![0]);
        shared.set_fbuffer("A", vec![1.0, 2.0]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 2];
            unsafe { shared.run_blocks(&CpuPool::new(2), "b", "B", &mut out, &[vec![0], vec![1]]) };
        }));
        assert!(r.is_err(), "out-of-bounds block must panic the caller");
    }

    /// `C[i·n+j] += A[i·k+d] · B[d·n+j]` for the given loop order; the
    /// canonical fused-loop shapes (dot for `..d` innermost, saxpy for
    /// `..j` innermost).
    fn gemm_nest(m: i64, k: i64, n: i64, inner_j: bool) -> Stmt {
        let c_idx = Expr::var("i") * n + Expr::var("j");
        let a_idx = Expr::var("i") * k + Expr::var("d");
        let b_idx = Expr::var("d") * n + Expr::var("j");
        let store = Stmt::Store {
            buffer: "C".into(),
            index: c_idx,
            value: FExpr::load("A", a_idx) * FExpr::load("B", b_idx),
            kind: StoreKind::AddAssign,
        };
        if inner_j {
            Stmt::loop_(
                "i",
                Expr::int(m),
                Stmt::loop_("d", Expr::int(k), Stmt::loop_("j", Expr::int(n), store)),
            )
        } else {
            Stmt::loop_(
                "i",
                Expr::int(m),
                Stmt::loop_("j", Expr::int(n), Stmt::loop_("d", Expr::int(k), store)),
            )
        }
    }

    #[test]
    fn fused_mul_acc_matches_interpreter_bitwise() {
        let (m, k, n) = (3i64, 4, 5);
        for inner_j in [false, true] {
            let s = gemm_nest(m, k, n, inner_j);
            let p = compile(&s);
            assert!(
                p.to_string().contains("fmulacc"),
                "inner reduction must fuse (inner_j = {inner_j}):\n{p}"
            );
            let (stats, outs) = differential(
                &s,
                |mach| {
                    mach.set_fbuffer("A", (0..m * k).map(|x| (x as f32 * 0.7).sin()).collect());
                    mach.set_fbuffer("B", (0..k * n).map(|x| (x as f32 * 0.3).cos()).collect());
                    mach.set_fbuffer("C", vec![0.5; (m * n) as usize]);
                },
                &["C"],
            );
            // Both loop orders compute the same element count of work.
            assert_eq!(stats.stores, (m * k * n) as u64, "inner_j = {inner_j}");
            assert_eq!(stats.flops, (2 * m * k * n) as u64);
            assert_eq!(outs[0].len(), (m * n) as usize);
        }
    }

    #[test]
    fn fused_loop_with_ragged_extent_and_zero_trips() {
        // out[o] += A[row[o]+i] * B[row[o]+i], i over lens[o] (incl. 0).
        let idx = Expr::load("row", Expr::var("o")) + Expr::var("i");
        let store = Stmt::Store {
            buffer: "out".into(),
            index: Expr::var("o"),
            value: FExpr::load("A", idx.clone()) * FExpr::load("B", idx),
            kind: StoreKind::AddAssign,
        };
        let s = Stmt::loop_(
            "o",
            Expr::int(4),
            Stmt::loop_("i", Expr::load("lens", Expr::var("o")), store),
        );
        let p = compile(&s);
        assert!(p.to_string().contains("fmulacc"), "{p}");
        let (stats, _) = differential(
            &s,
            |m| {
                m.env.set_buffer("lens", vec![3, 0, 2, 0]);
                m.env.set_buffer("row", vec![0, 3, 3, 5]);
                m.set_fbuffer("A", (0..5).map(|x| x as f32).collect());
                m.set_fbuffer("B", (0..5).map(|x| 1.0 - x as f32).collect());
                m.set_fbuffer("out", vec![0.0; 4]);
            },
            &["out"],
        );
        // 5 fused iterations; each charges 1 store-index + 2 load-index
        // aux loads... the store index `o` has none, each load one.
        assert_eq!(stats.stores, 5);
        assert_eq!(stats.flops, 10);
    }

    #[test]
    fn aliasing_and_nonaffine_reductions_are_not_fused() {
        // Output aliases an operand: C[0] += C[i] * B[i] stays unfused
        // (and is also in-place, which only matters to the parallel tier).
        let alias = Stmt::loop_(
            "i",
            Expr::int(3),
            Stmt::Store {
                buffer: "C".into(),
                index: Expr::int(0),
                value: FExpr::load("C", Expr::var("i") + 1) * FExpr::load("B", Expr::var("i")),
                kind: StoreKind::AddAssign,
            },
        );
        let p = compile(&alias);
        assert!(!p.to_string().contains("fmulacc"), "{p}");
        differential(
            &alias,
            |m| {
                m.set_fbuffer("C", vec![1.0, 2.0, 3.0, 4.0]);
                m.set_fbuffer("B", vec![0.5, 0.25, 0.125]);
            },
            &["C"],
        );
        // A table lookup through the loop variable is not affine.
        let gather = Stmt::loop_(
            "i",
            Expr::int(3),
            Stmt::Store {
                buffer: "out".into(),
                index: Expr::int(0),
                value: FExpr::load("A", Expr::load("tbl", Expr::var("i")))
                    * FExpr::load("B", Expr::var("i")),
                kind: StoreKind::AddAssign,
            },
        );
        let p = compile(&gather);
        assert!(!p.to_string().contains("fmulacc"), "{p}");
        differential(
            &gather,
            |m| {
                m.env.set_buffer("tbl", vec![2, 0, 1]);
                m.set_fbuffer("A", vec![1.0, 2.0, 3.0]);
                m.set_fbuffer("B", vec![4.0, 5.0, 6.0]);
                m.set_fbuffer("out", vec![0.0]);
            },
            &["out"],
        );
    }

    #[test]
    fn run_borrowed_matches_owned_serial() {
        let s = gemm_nest(3, 4, 5, true);
        let prog = compile(&s);
        let a: Vec<f32> = (0..12).map(|x| x as f32 * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..20).map(|x| (x as f32 * 0.2).sin()).collect();
        let mut vm = prog.machine();
        vm.set_fbuffer("A", a.clone());
        vm.set_fbuffer("B", b.clone());
        vm.set_fbuffer("C", vec![0.0; 15]);
        vm.run();

        let shared = prog.shared();
        let mut out = vec![0.0f32; 15];
        let stats = shared.run_borrowed(vec![
            ("A", BoundBuf::In(&a)),
            ("B", BoundBuf::In(&b)),
            ("C", BoundBuf::Out(&mut out)),
        ]);
        assert_eq!(vm.fbuffer("C").unwrap(), out.as_slice());
        assert_eq!(vm.stats, stats);
        // A second execution over the same shared state is independent.
        let mut out2 = vec![0.0f32; 15];
        let stats2 = shared.run_borrowed(vec![
            ("A", BoundBuf::In(&a)),
            ("B", BoundBuf::In(&b)),
            ("C", BoundBuf::Out(&mut out2)),
        ]);
        assert_eq!(out, out2);
        assert_eq!(stats, stats2);
    }

    #[test]
    #[should_panic(expected = "bound read-only")]
    fn run_borrowed_rejects_stores_to_inputs() {
        let s = Stmt::store("B", Expr::int(0), FExpr::load("A", Expr::int(0)));
        let prog = compile(&s);
        let shared = prog.shared();
        let a = vec![1.0f32];
        let b = vec![0.0f32];
        shared.run_borrowed(vec![("A", BoundBuf::In(&a)), ("B", BoundBuf::In(&b))]);
    }

    #[test]
    fn run_blocks_borrowed_matches_owned() {
        let lens = vec![5i64, 0, 3, 2];
        let row = vec![0i64, 5, 5, 8];
        let input: Vec<f32> = (0..10).map(|x| x as f32 - 4.5).collect();
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", lens);
        shared.set_ibuffer("row", row);
        let pool = CpuPool::new(4);
        let batches: Vec<Vec<i64>> = (0..4).map(|b| vec![b]).collect();

        let mut owned_shared = bp.shared();
        owned_shared.set_ibuffer("lens", vec![5, 0, 3, 2]);
        owned_shared.set_ibuffer("row", vec![0, 5, 5, 8]);
        owned_shared.set_fbuffer("A", input.clone());
        let mut out_owned = vec![0.0f32; 10];
        let st_owned =
            unsafe { owned_shared.run_blocks(&pool, "b", "B", &mut out_owned, &batches) };

        // Borrowed: `A` supplied as a slice at run time.
        let mut out = vec![0.0f32; 10];
        let st = unsafe {
            shared.run_blocks_borrowed(&pool, "b", "B", &mut out, &[("A", &input)], &batches)
        };
        assert_eq!(out_owned, out);
        assert_eq!(st_owned, st);
    }

    #[test]
    fn disassembly_resolves_slot_names() {
        // The float select keeps the inner loop out of the fused-map
        // path, so the plain fload/fstore forms stay visible.
        let s = Stmt::loop_(
            "o",
            Expr::int(3),
            Stmt::loop_(
                "i",
                Expr::load("lens", Expr::var("o")),
                Stmt::store(
                    "B",
                    Expr::load("row", Expr::var("o")) + Expr::var("i"),
                    FExpr::select(
                        Expr::var("i").lt(Expr::int(1)),
                        FExpr::load("A", Expr::var("n_free")) * 2.0,
                        FExpr::constant(0.0),
                    ),
                ),
            ),
        );
        let p = compile(&s);
        let text = p.to_string();
        assert!(text.contains("o@"), "bound loop var with slot:\n{text}");
        assert!(text.contains("lens["), "aux buffer name:\n{text}");
        assert!(text.contains("fstore   B["), "output store:\n{text}");
        assert!(
            text.contains("ivar     r0, n_free") || text.contains("n_free"),
            "free var by name:\n{text}"
        );
        assert_eq!(
            text.lines().count(),
            p.len(),
            "one line per instruction:\n{text}"
        );
        // Every line is `pc  mnemonic ...` with aligned pcs.
        for (i, line) in text.lines().enumerate() {
            assert!(
                line.starts_with(&format!("{i:>4}  ")),
                "line {i} misformatted: {line:?}"
            );
        }
    }
}
