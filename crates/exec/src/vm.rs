//! A slot-resolved bytecode VM: the compiled execution tier for lowered
//! statements.
//!
//! The tree-walking interpreter ([`crate::interp::Machine`]) defines the
//! IR's semantics, but it pays a `HashMap<String, i64>` lookup for every
//! variable, auxiliary-buffer and uninterpreted-function access, recurses
//! through `Rc` expression trees, and allocates a fresh `Vec` per
//! expression just to count aux loads. [`compile`] removes all three
//! costs:
//!
//! * **Slot resolution** ([`cora_ir::slots`]): every name the statement
//!   references is interned to a dense index. Free variables, auxiliary
//!   buffers, float buffers and UF tables become positions in flat `Vec`s
//!   bound once before execution; each `For`/`LetInt` binding site and
//!   each `Alloc` site is alpha-renamed to its own fresh slot past the
//!   free range, so shadowing needs no save/restore at run time.
//! * **Flattening**: expressions become straight-line register
//!   instructions over `Vec<i64>`/`Vec<f32>` register files; loops and
//!   conditionals become explicit jumps. Conditions compile to
//!   short-circuit branch chains in the interpreter's evaluation order,
//!   so exactly the same sub-expressions execute (and can panic) in both
//!   tiers.
//! * **Static instruction-mix metadata**: the per-expression aux-load
//!   counts the interpreter derives by collecting loads into a `Vec` are
//!   computed once at compile time and attached to the instructions that
//!   charge them, so a [`VmMachine`] run produces *identical*
//!   [`InterpStats`] to the tree walker by construction. The interpreter
//!   stays as semantic ground truth; differential tests assert
//!   bit-identical outputs and stats between the two tiers.
//!
//! # Parallel execution
//!
//! A [`VmProgram`] is immutable after compilation and `Sync`
//! (compile-time asserted below), so one compiled artefact can back many
//! concurrent executions. The split mirrors that:
//!
//! * [`VmShared`] holds the *shared, immutable* per-run bindings — free
//!   variables, auxiliary buffers, read-only float inputs, UF tables —
//!   bound once on the calling thread;
//! * each worker carries only *cheap private* state (register files, loop
//!   variables, `Alloc` scratch, an [`InterpStats`] accumulator), created
//!   per batch by [`VmShared::run_blocks`];
//! * the single written buffer (the kernel output) is shared through
//!   `SharedOut`, whose soundness rests on the outliner's guarantee
//!   that different block indices store to disjoint output elements.
//!
//! Statistics are plain counters, so summing the per-worker accumulators
//! reproduces the serial run's numbers exactly, regardless of how blocks
//! were scheduled.
//!
//! The disassembler ([`VmProgram`]'s `Display` impl) prints one
//! instruction per line with every slot resolved back to its source name,
//! so golden tests can diff the compiled form of a kernel.

use std::cell::Cell;
use std::fmt;
use std::sync::Mutex;

use cora_ir::fexpr::apply_unary;
use cora_ir::slots::StmtSlots;
use cora_ir::visit::{count_cond_loads, count_loads};
use cora_ir::{
    Cond, CondKind, Env, Expr, ExprKind, FExpr, FExprKind, FUnaryOp, Stmt, StoreKind, UfHandle,
};

use crate::cpu::CpuPool;
use crate::interp::InterpStats;

/// Integer ALU operations (mirror [`ExprKind`] binary nodes).
#[derive(Debug, Clone, Copy)]
enum IBinOp {
    Add,
    Sub,
    Mul,
    FloorDiv,
    FloorMod,
    Min,
    Max,
}

/// Float ALU operations (mirror [`FExprKind`] binary nodes).
#[derive(Debug, Clone, Copy)]
enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Max,
}

/// Comparison operators for branch instructions.
#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Lt,
    Le,
    Eq,
    Ne,
}

/// One bytecode instruction. Jump targets are program counters after
/// [`Compiler::finish`] resolves labels.
#[derive(Debug, Clone)]
enum Instr {
    /// `ireg[dst] = v`.
    IConst { dst: u16, v: i64 },
    /// `ireg[dst] = vars[slot]`.
    IVar { dst: u16, slot: u32 },
    /// `ireg[dst] = ireg[src]`.
    ICopy { dst: u16, src: u16 },
    /// `ireg[dst] = op(ireg[a], ireg[b])`.
    IBin {
        op: IBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `ireg[dst] = ibufs[buf][ireg[idx]]` (no stat bump: aux loads are
    /// charged statically at each evaluation site).
    ILoad { dst: u16, buf: u32, idx: u16 },
    /// `ireg[dst] = ibufs[buf][vars[vslot]]` — fused load-by-variable,
    /// the hot shape of ragged offset/extent accesses.
    ILoadV { dst: u16, buf: u32, vslot: u32 },
    /// `ireg[dst] = op(ireg[a], c)` (immediate right operand).
    IBinC {
        op: IBinOp,
        dst: u16,
        a: u16,
        c: i64,
    },
    /// `ireg[dst] = op(ireg[a], vars[vslot])` (variable right operand).
    IBinV {
        op: IBinOp,
        dst: u16,
        a: u16,
        vslot: u32,
    },
    /// `ireg[dst] = ufs[uf](ireg[args..])`.
    IUf { dst: u16, uf: u32, args: Box<[u16]> },
    /// `vars[slot] = ireg[src]` (loop initialisation).
    SetVar { slot: u32, src: u16 },
    /// `vars[slot] = ireg[src]`, charging `aux` loads (`LetInt`).
    LetVar { slot: u32, src: u16, aux: u32 },
    /// Jump to `to` if `vars[slot] >= ireg[lim]` (loop zero-trip test).
    BrVarGe { slot: u32, lim: u16, to: u32 },
    /// `vars[slot] += 1; if vars[slot] < ireg[lim] jump back` — the fused
    /// loop back-edge (increment + test + jump in one dispatch).
    LoopNext { slot: u32, lim: u16, back: u32 },
    /// Jump to `on_true`/`on_false` after comparing two registers.
    BrCmp {
        op: CmpOp,
        a: u16,
        b: u16,
        on_true: u32,
        on_false: u32,
    },
    /// Unconditional jump.
    Jump { to: u32 },
    /// `guards += 1; aux_loads += aux` (guard evaluation site).
    Guard { aux: u32 },
    /// `aux_loads += n` (loop-bound evaluation site).
    BumpAux { n: u32 },
    /// `freg[dst] = v`.
    FConst { dst: u16, v: f32 },
    /// `freg[dst] = fbufs[buf][ireg[idx]]`, charging `aux` loads for the
    /// index expression.
    FLoad {
        dst: u16,
        buf: u32,
        idx: u16,
        aux: u32,
    },
    /// `freg[dst] = ireg[src] as f32`, charging `aux` loads.
    FCast { dst: u16, src: u16, aux: u32 },
    /// `freg[dst] = freg[src]`.
    FCopy { dst: u16, src: u16 },
    /// `freg[dst] = op(freg[a], freg[b])`; `flops += 1`.
    FBin {
        op: FBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `freg[dst] = op(freg[a], c)`; `flops += 1` (constant right
    /// operand; constants are side-effect free so fusing preserves both
    /// evaluation order and operand order).
    FBinC {
        op: FBinOp,
        dst: u16,
        a: u16,
        c: f32,
    },
    /// `freg[dst] = op(c, freg[b])`; `flops += 1` (constant left
    /// operand, operand order preserved).
    FBinCL {
        op: FBinOp,
        dst: u16,
        c: f32,
        b: u16,
    },
    /// `freg[dst] = op(freg[a])`; `flops += 1`.
    FUn { op: FUnaryOp, dst: u16, a: u16 },
    /// Store `freg[val]` into `fbufs[buf][ireg[idx]]` with the given
    /// combine rule; charges `aux` index loads, one store, and one flop
    /// for reducing kinds.
    FStore {
        buf: u32,
        idx: u16,
        val: u16,
        kind: StoreKind,
        aux: u32,
    },
    /// (Re)allocate `fbufs[slot]` as `ireg[size]` zeroes; charges `aux`.
    FAlloc { slot: u32, size: u16, aux: u32 },
}

/// A lowered statement compiled to slot-resolved bytecode.
///
/// Immutable after compilation and `Sync`: one program may back any
/// number of concurrent [`VmMachine`]s / parallel workers.
#[derive(Debug, Clone)]
pub struct VmProgram {
    code: Vec<Instr>,
    n_iregs: usize,
    n_fregs: usize,
    slots: StmtSlots,
    /// Source name of each alpha-renamed `For`/`LetInt` binding slot,
    /// indexed by `slot - slots.free_vars.len()` (disassembly only).
    var_slot_names: Vec<String>,
    /// Source name of each `Alloc` scratch slot, indexed by
    /// `slot - slots.free_fbufs.len()` (disassembly only).
    fbuf_slot_names: Vec<String>,
}

/// Compile-time proof that a compiled program (and the shared binding
/// state built on top of it) can be handed to worker threads by
/// reference.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<VmProgram>();
    assert_sync::<VmShared<'static>>();
};

/// Compiles a lowered statement to bytecode.
///
/// The result is immutable and reusable: create a fresh [`VmMachine`]
/// per execution (or reuse one across runs of the same bindings).
pub fn compile(stmt: &Stmt) -> VmProgram {
    let slots = StmtSlots::resolve(stmt);
    let mut c = Compiler {
        code: Vec::new(),
        labels: Vec::new(),
        iregs: RegAlloc::default(),
        fregs: RegAlloc::default(),
        var_scope: Vec::new(),
        fbuf_scope: Vec::new(),
        next_var_slot: u32::try_from(slots.free_vars.len()).expect("var census fits u32"),
        next_fbuf_slot: u32::try_from(slots.free_fbufs.len()).expect("fbuf census fits u32"),
        var_slot_names: Vec::new(),
        fbuf_slot_names: Vec::new(),
        slots,
    };
    c.stmt(stmt);
    c.finish()
}

impl VmProgram {
    /// Number of bytecode instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for an empty program (e.g. compiled from [`Stmt::Nop`]).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The name census the program was resolved against.
    pub fn slots(&self) -> &StmtSlots {
        &self.slots
    }

    /// Creates a fresh machine with all external bindings unset.
    pub fn machine(&self) -> VmMachine<'_> {
        let s = &self.slots;
        VmMachine {
            prog: self,
            vars: vec![0; s.var_slot_count()],
            var_bound: vec![false; s.free_vars.len()],
            ibufs: vec![Vec::new(); s.ibufs.len()],
            ibuf_bound: vec![false; s.ibufs.len()],
            fbufs: vec![Vec::new(); s.fbuf_slot_count()],
            fbuf_bound: vec![false; s.free_fbufs.len()],
            ufs: vec![None; s.ufs.len()],
            iregs: vec![0; self.n_iregs],
            fregs: vec![0.0; self.n_fregs],
            uf_args: Vec::new(),
            stats: InterpStats::default(),
        }
    }

    /// Creates the shared, immutable binding table for parallel block
    /// execution ([`VmShared::run_blocks`]): bind everything once on the
    /// calling thread, then dispatch blocks across a [`CpuPool`].
    pub fn shared(&self) -> VmShared<'_> {
        let s = &self.slots;
        VmShared {
            prog: self,
            vars: vec![0; s.var_slot_count()],
            var_bound: vec![false; s.free_vars.len()],
            ibufs: vec![Vec::new(); s.ibufs.len()],
            ibuf_bound: vec![false; s.ibufs.len()],
            fbufs: vec![Vec::new(); s.free_fbufs.len()],
            fbuf_bound: vec![false; s.free_fbufs.len()],
            ufs: vec![None; s.ufs.len()],
        }
    }

    /// Resolves a variable slot back to a source name for diagnostics and
    /// disassembly: free variables print bare, alpha-renamed binding
    /// slots print as `name@slot`.
    fn var_name(&self, slot: u32) -> String {
        let free = self.slots.free_vars.len();
        match self.slots.free_vars.names().get(slot as usize) {
            Some(n) => n.clone(),
            None => format!("{}@{slot}", self.var_slot_names[slot as usize - free]),
        }
    }
}

// ---------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------

/// Disassembly: one instruction per line (`pc  mnemonic operands`), with
/// every variable, buffer and UF slot resolved back to its source name.
/// Alpha-renamed binding slots print as `name@slot` so shadowed loops
/// stay distinguishable. Golden tests diff this text to catch bytecode
/// and outlining regressions.
impl fmt::Display for VmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ibin = |op: IBinOp| match op {
            IBinOp::Add => "iadd",
            IBinOp::Sub => "isub",
            IBinOp::Mul => "imul",
            IBinOp::FloorDiv => "idiv",
            IBinOp::FloorMod => "imod",
            IBinOp::Min => "imin",
            IBinOp::Max => "imax",
        };
        let fbin = |op: FBinOp| match op {
            FBinOp::Add => "fadd",
            FBinOp::Sub => "fsub",
            FBinOp::Mul => "fmul",
            FBinOp::Div => "fdiv",
            FBinOp::Max => "fmax",
        };
        let cmp = |op: CmpOp| match op {
            CmpOp::Lt => "br.lt",
            CmpOp::Le => "br.le",
            CmpOp::Eq => "br.eq",
            CmpOp::Ne => "br.ne",
        };
        let var = |slot: u32| self.var_name(slot);
        let ibuf = |slot: u32| self.slots.ibufs.names()[slot as usize].clone();
        let fbuf = |slot: u32| fbuf_name(self, slot);
        for (pc, instr) in self.code.iter().enumerate() {
            let line = match instr {
                Instr::IConst { dst, v } => format!("iconst   r{dst}, {v}"),
                Instr::IVar { dst, slot } => format!("ivar     r{dst}, {}", var(*slot)),
                Instr::ICopy { dst, src } => format!("icopy    r{dst}, r{src}"),
                Instr::IBin { op, dst, a, b } => {
                    format!("{:<8} r{dst}, r{a}, r{b}", ibin(*op))
                }
                Instr::IBinC { op, dst, a, c } => {
                    format!("{:<8} r{dst}, r{a}, #{c}", format!("{}.c", ibin(*op)))
                }
                Instr::IBinV { op, dst, a, vslot } => {
                    format!(
                        "{:<8} r{dst}, r{a}, {}",
                        format!("{}.v", ibin(*op)),
                        var(*vslot)
                    )
                }
                Instr::ILoad { dst, buf, idx } => {
                    format!("iload    r{dst}, {}[r{idx}]", ibuf(*buf))
                }
                Instr::ILoadV { dst, buf, vslot } => {
                    format!("iload.v  r{dst}, {}[{}]", ibuf(*buf), var(*vslot))
                }
                Instr::IUf { dst, uf, args } => {
                    let args: Vec<String> = args.iter().map(|a| format!("r{a}")).collect();
                    format!(
                        "iuf      r{dst}, {}({})",
                        self.slots.ufs.names()[*uf as usize],
                        args.join(", ")
                    )
                }
                Instr::SetVar { slot, src } => format!("setvar   {}, r{src}", var(*slot)),
                Instr::LetVar { slot, src, aux } => {
                    format!("letvar   {}, r{src}, aux={aux}", var(*slot))
                }
                Instr::BrVarGe { slot, lim, to } => {
                    format!("br.ge    {}, r{lim} -> {to}", var(*slot))
                }
                Instr::LoopNext { slot, lim, back } => {
                    format!("loop     {}, r{lim} -> {back}", var(*slot))
                }
                Instr::BrCmp {
                    op,
                    a,
                    b,
                    on_true,
                    on_false,
                } => format!("{:<8} r{a}, r{b} -> {on_true}, {on_false}", cmp(*op)),
                Instr::Jump { to } => format!("jump     -> {to}"),
                Instr::Guard { aux } => format!("guard    aux={aux}"),
                Instr::BumpAux { n } => format!("bumpaux  n={n}"),
                Instr::FConst { dst, v } => format!("fconst   f{dst}, {v:?}"),
                Instr::FLoad { dst, buf, idx, aux } => {
                    format!("fload    f{dst}, {}[r{idx}], aux={aux}", fbuf(*buf))
                }
                Instr::FCast { dst, src, aux } => {
                    format!("fcast    f{dst}, r{src}, aux={aux}")
                }
                Instr::FCopy { dst, src } => format!("fcopy    f{dst}, f{src}"),
                Instr::FBin { op, dst, a, b } => {
                    format!("{:<8} f{dst}, f{a}, f{b}", fbin(*op))
                }
                Instr::FBinC { op, dst, a, c } => {
                    format!("{:<8} f{dst}, f{a}, #{c:?}", format!("{}.c", fbin(*op)))
                }
                Instr::FBinCL { op, dst, c, b } => {
                    format!("{:<8} f{dst}, #{c:?}, f{b}", format!("{}.cl", fbin(*op)))
                }
                Instr::FUn { op, dst, a } => {
                    let name = match op {
                        FUnaryOp::Neg => "f.neg",
                        FUnaryOp::Exp => "f.exp",
                        FUnaryOp::Sqrt => "f.sqrt",
                        FUnaryOp::Recip => "f.recip",
                        FUnaryOp::Tanh => "f.tanh",
                        FUnaryOp::Relu => "f.relu",
                    };
                    format!("{name:<8} f{dst}, f{a}")
                }
                Instr::FStore {
                    buf,
                    idx,
                    val,
                    kind,
                    aux,
                } => {
                    let k = match kind {
                        StoreKind::Assign => "assign",
                        StoreKind::AddAssign => "add",
                        StoreKind::MaxAssign => "max",
                    };
                    format!("fstore   {}[r{idx}], f{val}, {k}, aux={aux}", fbuf(*buf))
                }
                Instr::FAlloc { slot, size, aux } => {
                    format!("falloc   {}, r{size}, aux={aux}", fbuf(*slot))
                }
            };
            writeln!(f, "{pc:>4}  {line}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

/// Stack-disciplined scratch-register allocator: expression compilation
/// allocates upward and releases back to a mark; values that must survive
/// a sub-compilation (a loop limit across its body) simply keep their
/// mark held. `max` becomes the register-file size.
#[derive(Debug, Default)]
struct RegAlloc {
    next: u16,
    max: u16,
}

impl RegAlloc {
    fn alloc(&mut self) -> u16 {
        let r = self.next;
        self.next = self.next.checked_add(1).expect("register file overflow");
        self.max = self.max.max(self.next);
        r
    }

    fn mark(&self) -> u16 {
        self.next
    }

    fn release(&mut self, mark: u16) {
        self.next = mark;
    }
}

struct Compiler {
    code: Vec<Instr>,
    /// Label id -> program counter (`u32::MAX` until placed).
    labels: Vec<u32>,
    iregs: RegAlloc,
    fregs: RegAlloc,
    /// Active `For`/`LetInt` bindings (name -> alpha-renamed slot).
    var_scope: Vec<(String, u32)>,
    /// Active `Alloc` bindings (name -> alpha-renamed slot).
    fbuf_scope: Vec<(String, u32)>,
    next_var_slot: u32,
    next_fbuf_slot: u32,
    /// Source names of alpha-renamed binding slots, in slot order.
    var_slot_names: Vec<String>,
    /// Source names of `Alloc` scratch slots, in slot order.
    fbuf_slot_names: Vec<String>,
    slots: StmtSlots,
}

impl Compiler {
    fn new_label(&mut self) -> u32 {
        let id = u32::try_from(self.labels.len()).expect("label count fits u32");
        self.labels.push(u32::MAX);
        id
    }

    fn place(&mut self, label: u32) {
        self.labels[label as usize] = u32::try_from(self.code.len()).expect("code fits u32");
    }

    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    fn resolve_var(&self, name: &str) -> u32 {
        if let Some((_, slot)) = self.var_scope.iter().rev().find(|(n, _)| n == name) {
            return *slot;
        }
        self.slots
            .free_vars
            .get(name)
            .unwrap_or_else(|| panic!("unresolved variable `{name}`"))
    }

    fn resolve_fbuf(&self, name: &str) -> u32 {
        if let Some((_, slot)) = self.fbuf_scope.iter().rev().find(|(n, _)| n == name) {
            return *slot;
        }
        self.slots
            .free_fbufs
            .get(name)
            .unwrap_or_else(|| panic!("unresolved float buffer `{name}`"))
    }

    fn push_var(&mut self, name: &str) -> u32 {
        let slot = self.next_var_slot;
        self.next_var_slot += 1;
        self.var_scope.push((name.to_string(), slot));
        self.var_slot_names.push(name.to_string());
        slot
    }

    fn push_fbuf(&mut self, name: &str) -> u32 {
        let slot = self.next_fbuf_slot;
        self.next_fbuf_slot += 1;
        self.fbuf_scope.push((name.to_string(), slot));
        self.fbuf_slot_names.push(name.to_string());
        slot
    }

    /// Compiles `e` into a fresh register and returns it. Emits no stat
    /// bumps: integer-expression aux loads are charged statically at each
    /// statement-level evaluation site, exactly like the interpreter's
    /// `eval_counting` (which counts the whole tree, both `Select`
    /// branches included, regardless of what actually executes).
    fn expr(&mut self, e: &Expr) -> u16 {
        // Neutral-element peephole on the shapes Algorithm-1 offset
        // lowering produces (`0 + x`, `x*1`, ...). Only literal operands
        // are discarded, so evaluation order, panic behaviour and the
        // (separately pre-computed) load counts are all unchanged.
        match e.kind() {
            ExprKind::Add(a, b) if a.as_int() == Some(0) => return self.expr(b),
            ExprKind::Add(a, b) if b.as_int() == Some(0) => return self.expr(a),
            ExprKind::Sub(a, b) if b.as_int() == Some(0) => return self.expr(a),
            ExprKind::Mul(a, b) if b.as_int() == Some(1) => return self.expr(a),
            ExprKind::Mul(a, b) if a.as_int() == Some(1) => return self.expr(b),
            _ => {}
        }
        match e.kind() {
            ExprKind::Int(v) => {
                let dst = self.iregs.alloc();
                self.emit(Instr::IConst { dst, v: *v });
                dst
            }
            ExprKind::Var(n) => {
                let slot = self.resolve_var(n);
                let dst = self.iregs.alloc();
                self.emit(Instr::IVar { dst, slot });
                dst
            }
            ExprKind::Add(a, b) => self.ibin(IBinOp::Add, a, b),
            ExprKind::Sub(a, b) => self.ibin(IBinOp::Sub, a, b),
            ExprKind::Mul(a, b) => self.ibin(IBinOp::Mul, a, b),
            ExprKind::FloorDiv(a, b) => self.ibin(IBinOp::FloorDiv, a, b),
            ExprKind::FloorMod(a, b) => self.ibin(IBinOp::FloorMod, a, b),
            ExprKind::Min(a, b) => self.ibin(IBinOp::Min, a, b),
            ExprKind::Max(a, b) => self.ibin(IBinOp::Max, a, b),
            ExprKind::Select(c, a, b) => {
                // The interpreter's `Env::eval` evaluates only the taken
                // branch and counts no guard; mirror with a plain branch.
                let dst = self.iregs.alloc();
                let (l_then, l_else, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.cond(c, l_then, l_else);
                self.place(l_then);
                let m = self.iregs.mark();
                let r = self.expr(a);
                self.emit(Instr::ICopy { dst, src: r });
                self.iregs.release(m);
                self.emit(Instr::Jump { to: l_end });
                self.place(l_else);
                let r = self.expr(b);
                self.emit(Instr::ICopy { dst, src: r });
                self.iregs.release(m);
                self.place(l_end);
                dst
            }
            ExprKind::Uf(f, args) => {
                let m = self.iregs.mark();
                let regs: Box<[u16]> = args.iter().map(|a| self.expr(a)).collect();
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                let uf =
                    self.slots.ufs.get(f.name()).unwrap_or_else(|| {
                        panic!("unresolved uninterpreted function `{}`", f.name())
                    });
                self.emit(Instr::IUf {
                    dst,
                    uf,
                    args: regs,
                });
                dst
            }
            ExprKind::Load(buf, idx) => {
                let b = self
                    .slots
                    .ibufs
                    .get(buf)
                    .unwrap_or_else(|| panic!("unresolved auxiliary buffer `{buf}`"));
                // Peephole: `aux[var]` is the hot ragged-access shape.
                if let ExprKind::Var(n) = idx.kind() {
                    let vslot = self.resolve_var(n);
                    let dst = self.iregs.alloc();
                    self.emit(Instr::ILoadV { dst, buf: b, vslot });
                    return dst;
                }
                let m = self.iregs.mark();
                let r_idx = self.expr(idx);
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                self.emit(Instr::ILoad {
                    dst,
                    buf: b,
                    idx: r_idx,
                });
                dst
            }
        }
    }

    fn ibin(&mut self, op: IBinOp, a: &Expr, b: &Expr) -> u16 {
        // Peephole right-operand fusions. Constants and variables are
        // side-effect free, so evaluation order and stats are unchanged.
        match b.kind() {
            ExprKind::Int(c) => {
                let m = self.iregs.mark();
                let ra = self.expr(a);
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                self.emit(Instr::IBinC {
                    op,
                    dst,
                    a: ra,
                    c: *c,
                });
                return dst;
            }
            ExprKind::Var(n) => {
                let vslot = self.resolve_var(n);
                let m = self.iregs.mark();
                let ra = self.expr(a);
                self.iregs.release(m);
                let dst = self.iregs.alloc();
                self.emit(Instr::IBinV {
                    op,
                    dst,
                    a: ra,
                    vslot,
                });
                return dst;
            }
            _ => {}
        }
        let m = self.iregs.mark();
        let ra = self.expr(a);
        let rb = self.expr(b);
        self.iregs.release(m);
        let dst = self.iregs.alloc();
        self.emit(Instr::IBin {
            op,
            dst,
            a: ra,
            b: rb,
        });
        dst
    }

    /// Compiles `c` as a short-circuit branch chain jumping to `on_true`
    /// or `on_false`. Evaluation order matches `Env::eval_cond`: `&&`
    /// evaluates its right side only when the left is true, `||` only
    /// when the left is false.
    fn cond(&mut self, c: &Cond, on_true: u32, on_false: u32) {
        match c.kind() {
            CondKind::Const(b) => {
                let to = if *b { on_true } else { on_false };
                self.emit(Instr::Jump { to });
            }
            CondKind::Lt(a, b) => self.cmp(CmpOp::Lt, a, b, on_true, on_false),
            CondKind::Le(a, b) => self.cmp(CmpOp::Le, a, b, on_true, on_false),
            CondKind::Eq(a, b) => self.cmp(CmpOp::Eq, a, b, on_true, on_false),
            CondKind::Ne(a, b) => self.cmp(CmpOp::Ne, a, b, on_true, on_false),
            CondKind::And(a, b) => {
                let mid = self.new_label();
                self.cond(a, mid, on_false);
                self.place(mid);
                self.cond(b, on_true, on_false);
            }
            CondKind::Or(a, b) => {
                let mid = self.new_label();
                self.cond(a, on_true, mid);
                self.place(mid);
                self.cond(b, on_true, on_false);
            }
            CondKind::Not(a) => self.cond(a, on_false, on_true),
        }
    }

    fn cmp(&mut self, op: CmpOp, a: &Expr, b: &Expr, on_true: u32, on_false: u32) {
        let m = self.iregs.mark();
        let ra = self.expr(a);
        let rb = self.expr(b);
        self.iregs.release(m);
        self.emit(Instr::BrCmp {
            op,
            a: ra,
            b: rb,
            on_true,
            on_false,
        });
    }

    /// Compiles a float expression into a fresh float register. Float
    /// arithmetic bumps `flops` per executed instruction; integer index
    /// sub-expressions charge their static aux-load counts when (and only
    /// when) their `FLoad`/`FCast` executes — the interpreter's dynamic
    /// behaviour for float `Select` branches.
    fn fexpr(&mut self, e: &FExpr) -> u16 {
        match e.kind() {
            FExprKind::Const(v) => {
                let dst = self.fregs.alloc();
                self.emit(Instr::FConst { dst, v: *v });
                dst
            }
            FExprKind::Load(buf, idx) => {
                let m = self.iregs.mark();
                let r_idx = self.expr(idx);
                self.iregs.release(m);
                let dst = self.fregs.alloc();
                let b = self.resolve_fbuf(buf);
                self.emit(Instr::FLoad {
                    dst,
                    buf: b,
                    idx: r_idx,
                    aux: aux_u32(count_loads(idx)),
                });
                dst
            }
            FExprKind::Cast(i) => {
                let m = self.iregs.mark();
                let r = self.expr(i);
                self.iregs.release(m);
                let dst = self.fregs.alloc();
                self.emit(Instr::FCast {
                    dst,
                    src: r,
                    aux: aux_u32(count_loads(i)),
                });
                dst
            }
            FExprKind::Add(a, b) => self.fbin(FBinOp::Add, a, b),
            FExprKind::Sub(a, b) => self.fbin(FBinOp::Sub, a, b),
            FExprKind::Mul(a, b) => self.fbin(FBinOp::Mul, a, b),
            FExprKind::Div(a, b) => self.fbin(FBinOp::Div, a, b),
            FExprKind::Max(a, b) => self.fbin(FBinOp::Max, a, b),
            FExprKind::Unary(op, a) => {
                let m = self.fregs.mark();
                let ra = self.fexpr(a);
                self.fregs.release(m);
                let dst = self.fregs.alloc();
                self.emit(Instr::FUn {
                    op: *op,
                    dst,
                    a: ra,
                });
                dst
            }
            FExprKind::Select(c, a, b) => {
                let dst = self.fregs.alloc();
                // Interpreter parity: a float select is a guard and (after
                // the stats-parity fix) charges its condition's aux loads,
                // exactly like `Stmt::If`.
                self.emit(Instr::Guard {
                    aux: aux_u32(count_cond_loads(c)),
                });
                let (l_then, l_else, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.cond(c, l_then, l_else);
                self.place(l_then);
                let m = self.fregs.mark();
                let r = self.fexpr(a);
                self.emit(Instr::FCopy { dst, src: r });
                self.fregs.release(m);
                self.emit(Instr::Jump { to: l_end });
                self.place(l_else);
                let r = self.fexpr(b);
                self.emit(Instr::FCopy { dst, src: r });
                self.fregs.release(m);
                self.place(l_end);
                dst
            }
        }
    }

    fn fbin(&mut self, op: FBinOp, a: &FExpr, b: &FExpr) -> u16 {
        // Peephole constant-operand fusions; operand order is preserved
        // (no commutativity assumptions), so results stay bit-identical.
        if let FExprKind::Const(c) = b.kind() {
            let m = self.fregs.mark();
            let ra = self.fexpr(a);
            self.fregs.release(m);
            let dst = self.fregs.alloc();
            self.emit(Instr::FBinC {
                op,
                dst,
                a: ra,
                c: *c,
            });
            return dst;
        }
        if let FExprKind::Const(c) = a.kind() {
            let m = self.fregs.mark();
            let rb = self.fexpr(b);
            self.fregs.release(m);
            let dst = self.fregs.alloc();
            self.emit(Instr::FBinCL {
                op,
                dst,
                c: *c,
                b: rb,
            });
            return dst;
        }
        let m = self.fregs.mark();
        let ra = self.fexpr(a);
        let rb = self.fexpr(b);
        self.fregs.release(m);
        let dst = self.fregs.alloc();
        self.emit(Instr::FBin {
            op,
            dst,
            a: ra,
            b: rb,
        });
        dst
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                body,
                kind: _,
            } => {
                let im = self.iregs.mark();
                let r_min = self.expr(min);
                let r_ext = self.expr(extent);
                // Loop bounds are evaluated once per For execution; the
                // interpreter charges their static load counts there.
                self.emit(Instr::BumpAux {
                    n: aux_u32(count_loads(min) + count_loads(extent)),
                });
                let slot = self.push_var(var);
                self.emit(Instr::SetVar { slot, src: r_min });
                // The limit register must survive the body: release the
                // operand marks, then hold one register for lo + n.
                self.iregs.release(im);
                let r_lim = self.iregs.alloc();
                self.emit(Instr::IBin {
                    op: IBinOp::Add,
                    dst: r_lim,
                    a: r_min,
                    b: r_ext,
                });
                let (l_body, l_exit) = (self.new_label(), self.new_label());
                // Zero-trip test once, then a fused increment+test+jump
                // back-edge: one dispatch of loop overhead per iteration.
                self.emit(Instr::BrVarGe {
                    slot,
                    lim: r_lim,
                    to: l_exit,
                });
                self.place(l_body);
                self.stmt(body);
                self.emit(Instr::LoopNext {
                    slot,
                    lim: r_lim,
                    back: l_body,
                });
                self.place(l_exit);
                self.var_scope.pop();
                self.iregs.release(im);
            }
            Stmt::LetInt { var, value, body } => {
                let m = self.iregs.mark();
                let r = self.expr(value);
                self.iregs.release(m);
                let slot = self.push_var(var);
                self.emit(Instr::LetVar {
                    slot,
                    src: r,
                    aux: aux_u32(count_loads(value)),
                });
                self.stmt(body);
                self.var_scope.pop();
            }
            Stmt::Store {
                buffer,
                index,
                value,
                kind,
            } => {
                let im = self.iregs.mark();
                let fm = self.fregs.mark();
                let r_idx = self.expr(index);
                let r_val = self.fexpr(value);
                let buf = self.resolve_fbuf(buffer);
                self.emit(Instr::FStore {
                    buf,
                    idx: r_idx,
                    val: r_val,
                    kind: *kind,
                    aux: aux_u32(count_loads(index)),
                });
                self.iregs.release(im);
                self.fregs.release(fm);
            }
            Stmt::If { cond, then_, else_ } => {
                self.emit(Instr::Guard {
                    aux: aux_u32(count_cond_loads(cond)),
                });
                let (l_then, l_else, l_end) =
                    (self.new_label(), self.new_label(), self.new_label());
                self.cond(cond, l_then, l_else);
                self.place(l_then);
                self.stmt(then_);
                self.emit(Instr::Jump { to: l_end });
                self.place(l_else);
                if let Some(e) = else_ {
                    self.stmt(e);
                }
                self.place(l_end);
            }
            Stmt::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            Stmt::Alloc { buffer, size, body } => {
                let m = self.iregs.mark();
                let r = self.expr(size);
                self.iregs.release(m);
                let slot = self.push_fbuf(buffer);
                self.emit(Instr::FAlloc {
                    slot,
                    size: r,
                    aux: aux_u32(count_loads(size)),
                });
                self.stmt(body);
                self.fbuf_scope.pop();
            }
            Stmt::Nop => {}
        }
    }

    /// Resolves label ids in jump fields to program counters.
    fn finish(mut self) -> VmProgram {
        for instr in &mut self.code {
            match instr {
                Instr::Jump { to }
                | Instr::BrVarGe { to, .. }
                | Instr::LoopNext { back: to, .. } => *to = self.labels[*to as usize],
                Instr::BrCmp {
                    on_true, on_false, ..
                } => {
                    *on_true = self.labels[*on_true as usize];
                    *on_false = self.labels[*on_false as usize];
                }
                _ => {}
            }
        }
        VmProgram {
            code: self.code,
            n_iregs: self.iregs.max as usize,
            n_fregs: self.fregs.max as usize,
            slots: self.slots,
            var_slot_names: self.var_slot_names,
            fbuf_slot_names: self.fbuf_slot_names,
        }
    }
}

fn aux_u32(n: u64) -> u32 {
    u32::try_from(n).expect("aux-load count fits u32")
}

// ---------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------

/// Run-state for one [`VmProgram`]: slot-indexed variable file, buffer
/// tables, register files, and execution statistics.
#[derive(Debug)]
pub struct VmMachine<'p> {
    prog: &'p VmProgram,
    vars: Vec<i64>,
    var_bound: Vec<bool>,
    ibufs: Vec<Vec<i64>>,
    ibuf_bound: Vec<bool>,
    fbufs: Vec<Vec<f32>>,
    fbuf_bound: Vec<bool>,
    ufs: Vec<Option<UfHandle>>,
    iregs: Vec<i64>,
    fregs: Vec<f32>,
    uf_args: Vec<i64>,
    /// Statistics accumulated by [`VmMachine::run`] (identical accounting
    /// to the tree-walking interpreter). For speed the dispatch loop
    /// batches counts in a local and publishes them on normal return, so
    /// unlike the interpreter this field is not updated if a run panics
    /// mid-kernel.
    pub stats: InterpStats,
}

impl VmMachine<'_> {
    /// Binds a free integer variable. Returns `false` if the program
    /// never references `name` (the binding is ignored).
    pub fn bind_var(&mut self, name: &str, v: i64) -> bool {
        match self.prog.slots.free_vars.get(name) {
            Some(slot) => {
                self.vars[slot as usize] = v;
                self.var_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an integer auxiliary buffer. Returns `false` if unused.
    pub fn set_ibuffer(&mut self, name: &str, data: Vec<i64>) -> bool {
        match self.prog.slots.ibufs.get(name) {
            Some(slot) => {
                self.ibufs[slot as usize] = data;
                self.ibuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs a float buffer. Returns `false` if unused.
    pub fn set_fbuffer(&mut self, name: &str, data: Vec<f32>) -> bool {
        match self.prog.slots.free_fbufs.get(name) {
            Some(slot) => {
                self.fbufs[slot as usize] = data;
                self.fbuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an uninterpreted-function table. Returns `false` if
    /// unused.
    pub fn set_uf(&mut self, name: &str, h: UfHandle) -> bool {
        match self.prog.slots.ufs.get(name) {
            Some(slot) => {
                self.ufs[slot as usize] = Some(h);
                true
            }
            None => false,
        }
    }

    /// Binds everything an interpreter [`Env`] holds: variables,
    /// auxiliary buffers, and uninterpreted-function tables the program
    /// references. Convenience for differential testing against the tree
    /// walker.
    pub fn bind_env(&mut self, env: &Env) {
        for (name, v) in env.vars() {
            self.bind_var(name, v);
        }
        for (name, buf) in env.buffers() {
            self.set_ibuffer(name, buf.to_vec());
        }
        let names: Vec<String> = self.prog.slots.ufs.names().to_vec();
        for name in names {
            if let Some(h) = env.uf_table().handle(&name) {
                self.set_uf(&name, h);
            }
        }
    }

    /// Reads a float buffer by its free name.
    pub fn fbuffer(&self, name: &str) -> Option<&[f32]> {
        self.prog
            .slots
            .free_fbufs
            .get(name)
            .map(|slot| self.fbufs[slot as usize].as_slice())
    }

    /// Takes a float buffer out of the machine by its free name.
    pub fn take_fbuffer(&mut self, name: &str) -> Option<Vec<f32>> {
        self.prog.slots.free_fbufs.get(name).map(|slot| {
            self.fbuf_bound[slot as usize] = false;
            std::mem::take(&mut self.fbufs[slot as usize])
        })
    }

    fn check_bound(&self) {
        let s = &self.prog.slots;
        for (i, bound) in self.var_bound.iter().enumerate() {
            assert!(*bound, "unbound variable `{}`", s.free_vars.names()[i]);
        }
        for (i, bound) in self.ibuf_bound.iter().enumerate() {
            assert!(*bound, "missing auxiliary buffer `{}`", s.ibufs.names()[i]);
        }
        for (i, bound) in self.fbuf_bound.iter().enumerate() {
            assert!(*bound, "missing float buffer `{}`", s.free_fbufs.names()[i]);
        }
        for (i, h) in self.ufs.iter().enumerate() {
            assert!(
                h.is_some(),
                "no runtime table for uninterpreted function `{}`",
                s.ufs.names()[i]
            );
        }
    }

    /// Executes the program.
    ///
    /// # Panics
    ///
    /// Panics on unbound inputs, out-of-bounds or negative accesses —
    /// lowering bugs by definition, matching interpreter behaviour.
    pub fn run(&mut self) {
        self.check_bound();
        let VmMachine {
            prog,
            vars,
            ibufs,
            fbufs,
            ufs,
            iregs,
            fregs,
            uf_args,
            stats,
            ..
        } = self;
        dispatch(
            prog,
            ibufs,
            ufs,
            &mut Regs {
                vars,
                iregs,
                fregs,
                uf_args,
            },
            &mut OwnedBufs(fbufs),
            stats,
        );
    }
}

// ---------------------------------------------------------------------
// Dispatch loop (shared by the serial machine and parallel workers)
// ---------------------------------------------------------------------

/// Float-buffer access abstraction for the dispatch loop. The serial
/// machine owns every buffer ([`OwnedBufs`]); a parallel worker layers
/// private `Alloc` scratch over shared read-only inputs and the shared
/// output ([`WorkerBufs`]). Both monomorphize to direct indexing.
trait FloatBufs {
    fn get(&self, slot: u32, idx: usize) -> f32;
    fn set(&mut self, slot: u32, idx: usize, v: f32);
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F);
    fn alloc(&mut self, slot: u32, n: usize);
}

/// The serial machine's float buffers: one owned `Vec` per slot.
struct OwnedBufs<'a>(&'a mut Vec<Vec<f32>>);

impl FloatBufs for OwnedBufs<'_> {
    #[inline]
    fn get(&self, slot: u32, idx: usize) -> f32 {
        self.0[slot as usize][idx]
    }

    #[inline]
    fn set(&mut self, slot: u32, idx: usize, v: f32) {
        self.0[slot as usize][idx] = v;
    }

    #[inline]
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F) {
        let cell = &mut self.0[slot as usize][idx];
        *cell = f(*cell);
    }

    fn alloc(&mut self, slot: u32, n: usize) {
        let buf = &mut self.0[slot as usize];
        buf.clear();
        buf.resize(n, 0.0);
    }
}

/// Mutable per-execution register state handed to the dispatch loop.
struct Regs<'a> {
    vars: &'a mut [i64],
    iregs: &'a mut [i64],
    fregs: &'a mut [f32],
    uf_args: &'a mut Vec<i64>,
}

/// Executes `prog` to completion over the given state. Statistics are
/// batched in a local and published on normal return, so `stats` is not
/// updated if execution panics mid-kernel.
fn dispatch<B: FloatBufs>(
    prog: &VmProgram,
    ibufs: &[Vec<i64>],
    ufs: &[Option<UfHandle>],
    regs: &mut Regs<'_>,
    fbufs: &mut B,
    stats: &mut InterpStats,
) {
    let code = prog.code.as_slice();
    let Regs {
        vars,
        iregs,
        fregs,
        uf_args,
    } = regs;
    let mut st = *stats;
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Instr::IConst { dst, v } => iregs[*dst as usize] = *v,
            Instr::IVar { dst, slot } => {
                iregs[*dst as usize] = vars[*slot as usize];
            }
            Instr::ICopy { dst, src } => {
                iregs[*dst as usize] = iregs[*src as usize];
            }
            Instr::IBin { op, dst, a, b } => {
                let x = iregs[*a as usize];
                let y = iregs[*b as usize];
                iregs[*dst as usize] = ibin_apply(*op, x, y);
            }
            Instr::IBinC { op, dst, a, c } => {
                let x = iregs[*a as usize];
                iregs[*dst as usize] = ibin_apply(*op, x, *c);
            }
            Instr::IBinV { op, dst, a, vslot } => {
                let x = iregs[*a as usize];
                let y = vars[*vslot as usize];
                iregs[*dst as usize] = ibin_apply(*op, x, y);
            }
            Instr::ILoad { dst, buf, idx } => {
                let i = iregs[*idx as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!(
                        "negative index {i} into buffer `{}`",
                        prog.slots.ibufs.names()[*buf as usize]
                    )
                });
                iregs[*dst as usize] = ibufs[*buf as usize][iu];
            }
            Instr::ILoadV { dst, buf, vslot } => {
                let i = vars[*vslot as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!(
                        "negative index {i} into buffer `{}`",
                        prog.slots.ibufs.names()[*buf as usize]
                    )
                });
                iregs[*dst as usize] = ibufs[*buf as usize][iu];
            }
            Instr::IUf { dst, uf, args } => {
                uf_args.clear();
                for &a in args.iter() {
                    uf_args.push(iregs[a as usize]);
                }
                let h = ufs[*uf as usize].as_ref().expect("checked bound");
                iregs[*dst as usize] = h.call(uf_args);
            }
            Instr::SetVar { slot, src } => {
                vars[*slot as usize] = iregs[*src as usize];
            }
            Instr::LetVar { slot, src, aux } => {
                vars[*slot as usize] = iregs[*src as usize];
                st.aux_loads += u64::from(*aux);
            }
            Instr::BrVarGe { slot, lim, to } => {
                if vars[*slot as usize] >= iregs[*lim as usize] {
                    pc = *to as usize;
                    continue;
                }
            }
            Instr::LoopNext { slot, lim, back } => {
                let v = vars[*slot as usize] + 1;
                vars[*slot as usize] = v;
                if v < iregs[*lim as usize] {
                    pc = *back as usize;
                    continue;
                }
            }
            Instr::BrCmp {
                op,
                a,
                b,
                on_true,
                on_false,
            } => {
                let x = iregs[*a as usize];
                let y = iregs[*b as usize];
                let t = match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                };
                pc = if t { *on_true } else { *on_false } as usize;
                continue;
            }
            Instr::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            Instr::Guard { aux } => {
                st.guards += 1;
                st.aux_loads += u64::from(*aux);
            }
            Instr::BumpAux { n } => st.aux_loads += u64::from(*n),
            Instr::FConst { dst, v } => fregs[*dst as usize] = *v,
            Instr::FLoad { dst, buf, idx, aux } => {
                st.aux_loads += u64::from(*aux);
                let i = iregs[*idx as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!("negative load index {i} into `{}`", fbuf_name(prog, *buf))
                });
                fregs[*dst as usize] = fbufs.get(*buf, iu);
            }
            Instr::FCast { dst, src, aux } => {
                st.aux_loads += u64::from(*aux);
                fregs[*dst as usize] = iregs[*src as usize] as f32;
            }
            Instr::FCopy { dst, src } => {
                fregs[*dst as usize] = fregs[*src as usize];
            }
            Instr::FBin { op, dst, a, b } => {
                let x = fregs[*a as usize];
                let y = fregs[*b as usize];
                fregs[*dst as usize] = fbin_apply(*op, x, y);
                st.flops += 1;
            }
            Instr::FBinC { op, dst, a, c } => {
                let x = fregs[*a as usize];
                fregs[*dst as usize] = fbin_apply(*op, x, *c);
                st.flops += 1;
            }
            Instr::FBinCL { op, dst, c, b } => {
                let y = fregs[*b as usize];
                fregs[*dst as usize] = fbin_apply(*op, *c, y);
                st.flops += 1;
            }
            Instr::FUn { op, dst, a } => {
                fregs[*dst as usize] = apply_unary(*op, fregs[*a as usize]);
                st.flops += 1;
            }
            Instr::FStore {
                buf,
                idx,
                val,
                kind,
                aux,
            } => {
                st.aux_loads += u64::from(*aux);
                let i = iregs[*idx as usize];
                let v = fregs[*val as usize];
                let iu = usize::try_from(i).unwrap_or_else(|_| {
                    panic!("negative store index {i} into `{}`", fbuf_name(prog, *buf))
                });
                match kind {
                    StoreKind::Assign => fbufs.set(*buf, iu, v),
                    StoreKind::AddAssign => {
                        fbufs.rmw(*buf, iu, |c| c + v);
                        st.flops += 1;
                    }
                    StoreKind::MaxAssign => {
                        fbufs.rmw(*buf, iu, |c| c.max(v));
                        st.flops += 1;
                    }
                }
                st.stores += 1;
            }
            Instr::FAlloc { slot, size, aux } => {
                st.aux_loads += u64::from(*aux);
                let n = iregs[*size as usize];
                let nu = usize::try_from(n)
                    .unwrap_or_else(|_| panic!("negative alloc size {n} for scratch buffer"));
                fbufs.alloc(*slot, nu);
            }
        }
        pc += 1;
    }
    *stats = st;
}

#[inline]
fn ibin_apply(op: IBinOp, x: i64, y: i64) -> i64 {
    match op {
        IBinOp::Add => x + y,
        IBinOp::Sub => x - y,
        IBinOp::Mul => x * y,
        IBinOp::FloorDiv => cora_ir::expr::floor_div_i64(x, y),
        IBinOp::FloorMod => cora_ir::expr::floor_mod_i64(x, y),
        IBinOp::Min => x.min(y),
        IBinOp::Max => x.max(y),
    }
}

#[inline]
fn fbin_apply(op: FBinOp, x: f32, y: f32) -> f32 {
    match op {
        FBinOp::Add => x + y,
        FBinOp::Sub => x - y,
        FBinOp::Mul => x * y,
        FBinOp::Div => x / y,
        FBinOp::Max => x.max(y),
    }
}

/// Best-effort name for a float-buffer slot (free buffers have names;
/// `Alloc` scratch slots are past the free range).
fn fbuf_name(prog: &VmProgram, slot: u32) -> String {
    let free = prog.slots.free_fbufs.len();
    match prog.slots.free_fbufs.names().get(slot as usize) {
        Some(n) => n.clone(),
        None => match prog.fbuf_slot_names.get(slot as usize - free) {
            Some(n) => format!("{n}@{slot}"),
            None => format!("<scratch slot {slot}>"),
        },
    }
}

// ---------------------------------------------------------------------
// Parallel execution
// ---------------------------------------------------------------------

/// The kernel output buffer shared by every parallel worker.
///
/// Built safely from an exclusive `&mut [f32]` via
/// [`Cell::from_mut`]/[`Cell::as_slice_of_cells`]; the only `unsafe` is
/// the `Sync` impl and the raw-pointer cell accesses below.
///
/// # Safety
///
/// Unsynchronized writes through the cells are sound *given* the
/// disjoint-store contract of [`VmShared::run_blocks`]: every store
/// executed for block index `b` targets an output element owned by `b`,
/// distinct blocks own disjoint element sets, and reads through
/// `SharedOut::get` only observe elements owned by the reading block
/// (read-modify-write reductions) — so no location is ever accessed
/// from two threads without ordering. The exclusive borrow keeps all
/// other access paths frozen for the region's lifetime, and
/// [`CpuPool::parallel_for`] joins every worker before `run_blocks`
/// returns.
///
/// The contract itself is the *caller's* obligation. The outliner in
/// `cora-core` screens for it syntactically (output-only stores,
/// no output read-back, store indices that depend on the block
/// variable), but dependence is necessary, not sufficient, for
/// disjointness — the guarantee ultimately rests on how CoRa's lowering
/// builds output indices (each spatial coordinate is stored exactly
/// once and the block axis partitions the spatial space). As
/// defence-in-depth, debug builds track a per-element owning block and
/// panic deterministically on any cross-block store overlap, so the
/// differential test suites would catch a violated contract rather
/// than race.
struct SharedOut<'a>(&'a [Cell<f32>]);

// SAFETY: see the type-level contract above — concurrent access is
// restricted to disjoint cells by the outliner.
#[allow(unsafe_code)]
unsafe impl Sync for SharedOut<'_> {}

impl<'a> SharedOut<'a> {
    fn new(buf: &'a mut [f32]) -> SharedOut<'a> {
        SharedOut(Cell::from_mut(buf).as_slice_of_cells())
    }

    #[inline]
    #[allow(unsafe_code)]
    fn get(&self, idx: usize) -> f32 {
        // SAFETY: only the block owning this element accesses it (see the
        // type-level contract), so the read cannot race a write.
        unsafe { *self.0[idx].as_ptr() }
    }

    #[inline]
    #[allow(unsafe_code)]
    fn set(&self, idx: usize, v: f32) {
        // SAFETY: as for `get` — this thread is the element's only
        // accessor during the region.
        unsafe { *self.0[idx].as_ptr() = v }
    }
}

/// Debug-build enforcement of the disjoint-store contract: one atomic
/// owner record per output element, claimed by the first block that
/// stores there. A second block claiming the same element means the
/// contract the `unsafe impl Sync` relies on is violated — panic
/// deterministically (under test) instead of racing (in release).
#[cfg(debug_assertions)]
struct OutOwners(Vec<std::sync::atomic::AtomicI64>);

#[cfg(debug_assertions)]
impl OutOwners {
    const UNCLAIMED: i64 = i64::MIN;

    fn new(len: usize) -> OutOwners {
        OutOwners(
            (0..len)
                .map(|_| std::sync::atomic::AtomicI64::new(Self::UNCLAIMED))
                .collect(),
        )
    }

    fn claim(&self, idx: usize, block: i64) {
        use std::sync::atomic::Ordering;
        if let Err(owner) = self.0[idx].compare_exchange(
            Self::UNCLAIMED,
            block,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            assert!(
                owner == block,
                "disjoint-store contract violated: blocks {owner} and {block} \
                 both stored to output element {idx}"
            );
        }
    }
}

/// A parallel worker's float-buffer view: shared read-only inputs, the
/// shared output, and private `Alloc` scratch.
struct WorkerBufs<'a> {
    prog: &'a VmProgram,
    /// Free-slot inputs, shared read-only (the output slot's entry is
    /// unused).
    shared: &'a [Vec<f32>],
    out_slot: u32,
    out: &'a SharedOut<'a>,
    /// Number of free float-buffer slots; slots at or past this index are
    /// per-worker `Alloc` scratch.
    n_free: usize,
    scratch: Vec<Vec<f32>>,
    #[cfg(debug_assertions)]
    owners: &'a OutOwners,
    /// Block-variable value currently executing (owner records).
    #[cfg(debug_assertions)]
    cur_block: i64,
}

impl WorkerBufs<'_> {
    #[inline]
    fn out_bounds_check(&self, idx: usize) {
        assert!(
            idx < self.out.0.len(),
            "index {idx} out of bounds for output `{}` (len {})",
            fbuf_name(self.prog, self.out_slot),
            self.out.0.len()
        );
    }

    #[inline]
    fn out_claim(&self, idx: usize) {
        self.out_bounds_check(idx);
        #[cfg(debug_assertions)]
        self.owners.claim(idx, self.cur_block);
    }
}

impl FloatBufs for WorkerBufs<'_> {
    #[inline]
    fn get(&self, slot: u32, idx: usize) -> f32 {
        if slot == self.out_slot {
            self.out_bounds_check(idx);
            self.out.get(idx)
        } else if (slot as usize) < self.n_free {
            self.shared[slot as usize][idx]
        } else {
            self.scratch[slot as usize - self.n_free][idx]
        }
    }

    #[inline]
    fn set(&mut self, slot: u32, idx: usize, v: f32) {
        if slot == self.out_slot {
            self.out_claim(idx);
            self.out.set(idx, v);
        } else if (slot as usize) >= self.n_free {
            self.scratch[slot as usize - self.n_free][idx] = v;
        } else {
            // The outliner rejects such programs statically; reaching this
            // arm means a compiler bug, not a user error.
            panic!(
                "parallel block stored to shared input buffer `{}`",
                fbuf_name(self.prog, slot)
            );
        }
    }

    #[inline]
    fn rmw<F: FnOnce(f32) -> f32>(&mut self, slot: u32, idx: usize, f: F) {
        if slot == self.out_slot {
            self.out_claim(idx);
            self.out.set(idx, f(self.out.get(idx)));
        } else if (slot as usize) >= self.n_free {
            let cell = &mut self.scratch[slot as usize - self.n_free][idx];
            *cell = f(*cell);
        } else {
            panic!(
                "parallel block stored to shared input buffer `{}`",
                fbuf_name(self.prog, slot)
            );
        }
    }

    fn alloc(&mut self, slot: u32, n: usize) {
        assert!(
            (slot as usize) >= self.n_free,
            "alloc of non-scratch slot `{}`",
            fbuf_name(self.prog, slot)
        );
        let buf = &mut self.scratch[slot as usize - self.n_free];
        buf.clear();
        buf.resize(n, 0.0);
    }
}

/// Shared, immutable per-run bindings for parallel block execution.
///
/// Created by [`VmProgram::shared`]; bind free variables, auxiliary
/// buffers, read-only float inputs and UF tables once, then execute the
/// program once per block index with [`VmShared::run_blocks`]. The block
/// variable and the output buffer stay unbound here — they are supplied
/// per block / per region.
#[derive(Debug)]
pub struct VmShared<'p> {
    prog: &'p VmProgram,
    /// Free-variable values (binding-site slots stay zero; each worker
    /// copies this file and writes its own loop variables).
    vars: Vec<i64>,
    var_bound: Vec<bool>,
    ibufs: Vec<Vec<i64>>,
    ibuf_bound: Vec<bool>,
    /// Free float buffers only (workers keep private `Alloc` scratch).
    fbufs: Vec<Vec<f32>>,
    fbuf_bound: Vec<bool>,
    ufs: Vec<Option<UfHandle>>,
}

impl VmShared<'_> {
    /// Binds a free integer variable. Returns `false` if the program
    /// never references `name` (the binding is ignored).
    pub fn bind_var(&mut self, name: &str, v: i64) -> bool {
        match self.prog.slots.free_vars.get(name) {
            Some(slot) => {
                self.vars[slot as usize] = v;
                self.var_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an integer auxiliary buffer. Returns `false` if unused.
    pub fn set_ibuffer(&mut self, name: &str, data: Vec<i64>) -> bool {
        match self.prog.slots.ibufs.get(name) {
            Some(slot) => {
                self.ibufs[slot as usize] = data;
                self.ibuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs a read-only float input buffer. Returns `false` if
    /// unused.
    pub fn set_fbuffer(&mut self, name: &str, data: Vec<f32>) -> bool {
        match self.prog.slots.free_fbufs.get(name) {
            Some(slot) => {
                self.fbufs[slot as usize] = data;
                self.fbuf_bound[slot as usize] = true;
                true
            }
            None => false,
        }
    }

    /// Installs an uninterpreted-function table. Returns `false` if
    /// unused.
    pub fn set_uf(&mut self, name: &str, h: UfHandle) -> bool {
        match self.prog.slots.ufs.get(name) {
            Some(slot) => {
                self.ufs[slot as usize] = Some(h);
                true
            }
            None => false,
        }
    }

    /// Verifies every external binding is present, except the block
    /// variable and the output buffer (supplied by `run_blocks` itself).
    fn check_bound(&self, block_slot: u32, out_slot: u32) {
        let s = &self.prog.slots;
        for (i, bound) in self.var_bound.iter().enumerate() {
            assert!(
                *bound || i == block_slot as usize,
                "unbound variable `{}`",
                s.free_vars.names()[i]
            );
        }
        for (i, bound) in self.ibuf_bound.iter().enumerate() {
            assert!(*bound, "missing auxiliary buffer `{}`", s.ibufs.names()[i]);
        }
        for (i, bound) in self.fbuf_bound.iter().enumerate() {
            assert!(
                *bound || i == out_slot as usize,
                "missing float buffer `{}`",
                s.free_fbufs.names()[i]
            );
        }
        for (i, h) in self.ufs.iter().enumerate() {
            assert!(
                h.is_some(),
                "no runtime table for uninterpreted function `{}`",
                s.ufs.names()[i]
            );
        }
    }

    /// Executes the program once per block index, in parallel.
    ///
    /// `batches` holds *values of the block variable* (`min + b`), packed
    /// into cost-balanced batches in dispatch order; each batch runs on
    /// one participant of `pool`, with its own registers, loop variables
    /// and `Alloc` scratch. All stores land in `out` (bound to the
    /// `output` buffer slot); per-worker [`InterpStats`] are summed, so
    /// the aggregate equals a serial run's statistics exactly (the
    /// counters are plain sums).
    ///
    /// # Safety
    ///
    /// The caller must guarantee the disjoint-store contract: across all
    /// of `batches`, distinct block-variable values store to disjoint
    /// elements of `out` and never load another block's elements (see
    /// `SharedOut`). Two helpers reduce the obligation but do not
    /// discharge it: in-place programs (output loaded *and* stored) are
    /// rejected up front, and debug builds record each output element's
    /// owning block, panicking deterministically on any cross-block
    /// overlap — release builds run unchecked, so a violated contract is
    /// a data race (undefined behaviour). The parallel outliner in
    /// `cora-core` validates the programs it produces (stores confined
    /// to the output, indices keyed by the block variable, one store per
    /// spatial coordinate from lowering), which is how
    /// `CompiledProgram::run_parallel` satisfies this contract.
    ///
    /// # Panics
    ///
    /// Panics if `block_var` or `output` are unknown to the program, if
    /// the program reads the output buffer back, if any other external
    /// binding is missing, or if the program itself panics
    /// (out-of-bounds access, negative index) — propagated after the
    /// region drains.
    #[allow(unsafe_code)] // the disjoint-store contract cannot be compiler-checked
    pub unsafe fn run_blocks(
        &self,
        pool: &CpuPool,
        block_var: &str,
        output: &str,
        out: &mut [f32],
        batches: &[Vec<i64>],
    ) -> InterpStats {
        let s = &self.prog.slots;
        let block_slot = s
            .free_vars
            .get(block_var)
            .unwrap_or_else(|| panic!("unknown block variable `{block_var}`"));
        let out_slot = s
            .free_fbufs
            .get(output)
            .unwrap_or_else(|| panic!("unknown output buffer `{output}`"));
        // An in-place program could read elements another block is
        // writing — reject it here (not just in the outliner) so the
        // race is unreachable through this public entry point.
        assert!(
            !s.fbuf_is_inplace(output),
            "program both loads and stores output `{output}`; \
             the parallel tier forbids in-place output access"
        );
        self.check_bound(block_slot, out_slot);
        #[cfg(debug_assertions)]
        let owners = OutOwners::new(out.len());
        let shared_out = SharedOut::new(out);
        let total = Mutex::new(InterpStats::default());
        pool.parallel_for(batches.len(), |bi| {
            let prog = self.prog;
            let mut vars = self.vars.clone();
            let mut iregs = vec![0i64; prog.n_iregs];
            let mut fregs = vec![0.0f32; prog.n_fregs];
            let mut uf_args = Vec::new();
            let mut bufs = WorkerBufs {
                prog,
                shared: &self.fbufs,
                out_slot,
                out: &shared_out,
                n_free: s.free_fbufs.len(),
                scratch: vec![Vec::new(); s.alloc_sites],
                #[cfg(debug_assertions)]
                owners: &owners,
                #[cfg(debug_assertions)]
                cur_block: 0,
            };
            let mut stats = InterpStats::default();
            for &bv in &batches[bi] {
                vars[block_slot as usize] = bv;
                #[cfg(debug_assertions)]
                {
                    bufs.cur_block = bv;
                }
                dispatch(
                    prog,
                    &self.ibufs,
                    &self.ufs,
                    &mut Regs {
                        vars: &mut vars,
                        iregs: &mut iregs,
                        fregs: &mut fregs,
                        uf_args: &mut uf_args,
                    },
                    &mut bufs,
                    &mut stats,
                );
            }
            let mut t = total.lock().unwrap_or_else(|e| e.into_inner());
            *t += stats;
        });
        total.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    // Tests exercise the unsafe `run_blocks` entry point directly; each
    // call either upholds the disjoint-store contract or deliberately
    // violates it to check the guards, which fire before any racing
    // write (in-place rejection up front; debug owner check before the
    // store).
    #![allow(unsafe_code)]

    use super::*;
    use crate::interp::Machine;
    use cora_ir::{Expr, ForKind, UfRef};

    /// Runs `s` through both tiers with the same bindings and asserts
    /// bit-identical buffers and identical statistics.
    fn differential(
        s: &Stmt,
        setup: impl Fn(&mut Machine),
        out_bufs: &[&str],
    ) -> (InterpStats, Vec<Vec<f32>>) {
        let mut m = Machine::new();
        setup(&mut m);
        let prog = compile(s);
        let mut vm = prog.machine();
        vm.bind_env(&m.env);
        for (name, buf) in m.fbuffers() {
            vm.set_fbuffer(name, buf.to_vec());
        }
        m.run(s);
        vm.run();
        assert_eq!(m.stats, vm.stats, "instruction-mix statistics diverge");
        let mut outs = Vec::new();
        for name in out_bufs {
            let a = m.fbuffer(name).expect("interp buffer");
            let b = vm.fbuffer(name).expect("vm buffer");
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "buffer `{name}` diverges");
            outs.push(b.to_vec());
        }
        (vm.stats, outs)
    }

    #[test]
    fn ragged_doubling_matches_interpreter() {
        let s_uf = UfRef::new("s", 1);
        let idx = Expr::load("row", Expr::var("o")) + Expr::var("i");
        let body = Stmt::store("B", idx.clone(), FExpr::load("A", idx) * 2.0);
        let nest = Stmt::loop_(
            "o",
            Expr::int(3),
            Stmt::loop_("i", Expr::uf(s_uf, vec![Expr::var("o")]), body),
        );
        let (stats, outs) = differential(
            &nest,
            |m| {
                m.env.uf_table_mut().insert_table1d("s", vec![5, 2, 3]);
                m.env.set_buffer("row", vec![0, 5, 7]);
                m.set_fbuffer("A", (0..10).map(|x| x as f32).collect());
                m.set_fbuffer("B", vec![0.0; 10]);
            },
            &["B"],
        );
        let expect: Vec<f32> = (0..10).map(|x| 2.0 * x as f32).collect();
        assert_eq!(outs[0], expect);
        assert_eq!(stats.stores, 10);
        assert_eq!(stats.flops, 10);
    }

    #[test]
    fn load_extent_loops_match_and_count() {
        // The satellite-bug shape: a ragged loop whose extent is an aux
        // load must charge aux_loads in both tiers.
        let body = Stmt::store("B", Expr::var("i"), FExpr::constant(1.0));
        let nest = Stmt::loop_(
            "o",
            Expr::int(2),
            Stmt::loop_("i", Expr::load("lens", Expr::var("o")), body),
        );
        let (stats, _) = differential(
            &nest,
            |m| {
                m.env.set_buffer("lens", vec![2, 3]);
                m.set_fbuffer("B", vec![0.0; 4]);
            },
            &["B"],
        );
        // Two inner-loop entries, each charging one extent load.
        assert_eq!(stats.aux_loads, 2);
        assert_eq!(stats.stores, 5);
    }

    #[test]
    fn guards_selects_and_short_circuit_match() {
        // if (i < 2 && lens[i] != 0) B[i] = select(lens[i] < 2, A[i], -A[i])
        // Note: lens has only 2 entries, so the && must short-circuit for
        // i in 2..4 exactly as the interpreter does.
        let cond = Expr::var("i")
            .lt(Expr::int(2))
            .and(Expr::load("lens", Expr::var("i")).ne_expr(Expr::int(0)));
        let sel = FExpr::select(
            Expr::load("lens", Expr::var("i")).lt(Expr::int(2)),
            FExpr::load("A", Expr::var("i")),
            FExpr::load("A", Expr::var("i")).unary(FUnaryOp::Neg),
        );
        let body = Stmt::if_then(cond, Stmt::store("B", Expr::var("i"), sel));
        let nest = Stmt::loop_("i", Expr::int(4), body);
        let (stats, outs) = differential(
            &nest,
            |m| {
                m.env.set_buffer("lens", vec![1, 5]);
                m.set_fbuffer("A", vec![1.0, 2.0, 3.0, 4.0]);
                m.set_fbuffer("B", vec![0.0; 4]);
            },
            &["B"],
        );
        assert_eq!(outs[0], vec![1.0, -2.0, 0.0, 0.0]);
        // 4 If guards + 2 Select guards (taken branch only evaluated).
        assert_eq!(stats.guards, 6);
    }

    #[test]
    fn alloc_let_and_reductions_match() {
        // Alloc a scratch row, accumulate with AddAssign and MaxAssign,
        // and exercise LetInt hoist bindings + Cast.
        let idx = Expr::var("h") + Expr::var("i");
        let fill = Stmt::store("tile", idx.clone(), FExpr::cast(idx));
        let acc = Stmt::Store {
            buffer: "acc".into(),
            index: Expr::int(0),
            value: FExpr::load("tile", Expr::var("i")),
            kind: StoreKind::AddAssign,
        };
        let mx = Stmt::Store {
            buffer: "acc".into(),
            index: Expr::int(1),
            value: FExpr::load("tile", Expr::var("i")),
            kind: StoreKind::MaxAssign,
        };
        let inner = Stmt::loop_("i", Expr::int(4), fill.then(acc).then(mx));
        let alloc = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::load("sz", Expr::int(0)),
            body: Box::new(inner),
        };
        let s = Stmt::LetInt {
            var: "h".into(),
            value: Expr::load("off", Expr::int(0)),
            body: Box::new(alloc),
        };
        let (stats, outs) = differential(
            &s,
            |m| {
                m.env.set_buffer("sz", vec![8]);
                m.env.set_buffer("off", vec![2]);
                m.set_fbuffer("acc", vec![0.0, f32::NEG_INFINITY]);
            },
            &["acc"],
        );
        // tile[h+i] = h+i for i in 0..4 with h = 2; acc[0] sums tile[i]
        // (i < 4: values 0,0,2,3... tile[0..2] stay zero).
        assert_eq!(outs[0][0], 0.0 + 0.0 + 2.0 + 3.0);
        assert_eq!(outs[0][1], 3.0);
        // LetInt charges 1 (off), Alloc charges 1 (sz).
        assert!(stats.aux_loads >= 2);
    }

    #[test]
    fn gpu_axes_execute_sequentially() {
        let body = Stmt::loop_kind(
            "t",
            Expr::int(3),
            ForKind::GpuThreadX,
            Stmt::store(
                "B",
                Expr::var("b") * 3 + Expr::var("t"),
                FExpr::constant(1.0),
            ),
        );
        let s = Stmt::loop_kind("b", Expr::int(2), ForKind::GpuBlockX, body);
        let (_, outs) = differential(
            &s,
            |m| {
                m.set_fbuffer("B", vec![0.0; 6]);
            },
            &["B"],
        );
        assert_eq!(outs[0], vec![1.0; 6]);
    }

    #[test]
    fn shadowed_loop_vars_are_alpha_renamed() {
        // for i in 0..2 { B[i] = 0; for i in 0..3 { C[i] = 1 } D[i] = 2 }
        // The inner `i` must not clobber the outer one.
        let inner = Stmt::loop_(
            "i",
            Expr::int(3),
            Stmt::store("C", Expr::var("i"), FExpr::constant(1.0)),
        );
        let body = Stmt::store("B", Expr::var("i"), FExpr::constant(0.0))
            .then(inner)
            .then(Stmt::store("D", Expr::var("i"), FExpr::constant(2.0)));
        let s = Stmt::loop_("i", Expr::int(2), body);
        differential(
            &s,
            |m| {
                m.set_fbuffer("B", vec![9.0; 2]);
                m.set_fbuffer("C", vec![9.0; 3]);
                m.set_fbuffer("D", vec![9.0; 2]);
            },
            &["B", "C", "D"],
        );
    }

    #[test]
    fn empty_and_negative_extents_run_zero_iterations() {
        let body = Stmt::store("B", Expr::int(0), FExpr::constant(1.0));
        let s = Stmt::loop_("i", Expr::int(0), body.clone()).then(Stmt::loop_(
            "j",
            Expr::int(-3),
            body,
        ));
        let (stats, outs) = differential(
            &s,
            |m| {
                m.set_fbuffer("B", vec![0.0]);
            },
            &["B"],
        );
        assert_eq!(outs[0], vec![0.0]);
        assert_eq!(stats.stores, 0);
    }

    #[test]
    #[should_panic(expected = "missing float buffer `A`")]
    fn unbound_input_panics() {
        let s = Stmt::store("B", Expr::int(0), FExpr::load("A", Expr::int(0)));
        let prog = compile(&s);
        let mut vm = prog.machine();
        vm.set_fbuffer("B", vec![0.0]);
        vm.run();
    }

    #[test]
    fn program_len_reports_flattened_size() {
        let s = Stmt::loop_(
            "i",
            Expr::int(4),
            Stmt::store("B", Expr::var("i"), FExpr::constant(1.0)),
        );
        let p = compile(&s);
        assert!(!p.is_empty());
        assert!(
            p.len() >= 6,
            "loop + store should flatten to several instrs"
        );
        assert!(compile(&Stmt::Nop).is_empty());
        assert_eq!(p.slots().free_fbufs.names(), &["B".to_string()]);
    }

    /// The block body of a ragged doubling kernel, outlined: `b` is the
    /// (free) block variable, `row` maps blocks to output rows.
    fn outlined_doubling_body() -> Stmt {
        let idx = Expr::load("row", Expr::var("b")) + Expr::var("i");
        let body = Stmt::store("B", idx.clone(), FExpr::load("A", idx) * 2.0);
        Stmt::loop_("i", Expr::load("lens", Expr::var("b")), body)
    }

    /// Runs `outlined_doubling_body` serially (block loop on one machine)
    /// and in parallel over `batches`, asserting identical outputs and
    /// stats.
    fn parallel_matches_serial(pool: &CpuPool, batches: &[Vec<i64>]) {
        let lens = vec![5i64, 0, 3, 2];
        let row = vec![0i64, 5, 5, 8];
        let n = 10usize;
        let input: Vec<f32> = (0..n).map(|x| x as f32 - 4.5).collect();

        // Serial reference: wrap the body in the block loop.
        let serial = Stmt::loop_kind(
            "b",
            Expr::int(4),
            ForKind::GpuBlockX,
            outlined_doubling_body(),
        );
        let sp = compile(&serial);
        let mut sm = sp.machine();
        sm.set_ibuffer("lens", lens.clone());
        sm.set_ibuffer("row", row.clone());
        sm.set_fbuffer("A", input.clone());
        sm.set_fbuffer("B", vec![0.0; n]);
        sm.run();

        // Parallel: compile only the body; `b` becomes a free variable.
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", lens);
        shared.set_ibuffer("row", row);
        shared.set_fbuffer("A", input);
        let mut out = vec![0.0f32; n];
        let stats = unsafe { shared.run_blocks(pool, "b", "B", &mut out, batches) };

        assert_eq!(sm.fbuffer("B").unwrap(), out.as_slice());
        // The serial program additionally charges the block loop's own
        // bound evaluation (a constant here: zero aux loads), so the sums
        // must line up exactly.
        assert_eq!(sm.stats, stats);
    }

    #[test]
    fn run_blocks_matches_serial_execution() {
        let pool = CpuPool::new(4);
        parallel_matches_serial(&pool, &[vec![0], vec![1], vec![2], vec![3]]);
        parallel_matches_serial(&pool, &[vec![3, 1], vec![0, 2]]);
        parallel_matches_serial(&pool, &[vec![0, 1, 2, 3]]);
        // The spawn backend exercises real OS-thread concurrency even on
        // single-core hosts.
        let spawn = CpuPool::new(4).with_backend(crate::cpu::Backend::Spawn);
        parallel_matches_serial(&spawn, &[vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn run_blocks_zero_batches_is_noop() {
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", vec![1]);
        shared.set_ibuffer("row", vec![0]);
        shared.set_fbuffer("A", vec![1.0]);
        let mut out = vec![7.0f32];
        let stats = unsafe { shared.run_blocks(&CpuPool::new(2), "b", "B", &mut out, &[]) };
        assert_eq!(stats, InterpStats::default());
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn run_blocks_gives_each_worker_private_scratch() {
        // Each block fills a scratch tile with its own block index and
        // reduces it into its private output cell; racing scratch would
        // corrupt the sums.
        let fill = Stmt::loop_(
            "i",
            Expr::int(8),
            Stmt::store("tile", Expr::var("i"), FExpr::cast(Expr::var("b"))),
        );
        let acc = Stmt::loop_(
            "i",
            Expr::int(8),
            Stmt::Store {
                buffer: "out".into(),
                index: Expr::var("b"),
                value: FExpr::load("tile", Expr::var("i")),
                kind: StoreKind::AddAssign,
            },
        );
        let body = Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::int(8),
            body: Box::new(fill.then(acc)),
        };
        let bp = compile(&body);
        let shared = bp.shared();
        let mut out = vec![0.0f32; 16];
        let batches: Vec<Vec<i64>> = (0..16).map(|b| vec![b]).collect();
        let pool = CpuPool::new(4).with_backend(crate::cpu::Backend::Spawn);
        unsafe { shared.run_blocks(&pool, "b", "out", &mut out, &batches) };
        let want: Vec<f32> = (0..16).map(|b| 8.0 * b as f32).collect();
        assert_eq!(out, want);
    }

    #[test]
    #[should_panic(expected = "forbids in-place output access")]
    fn run_blocks_rejects_inplace_output_programs() {
        // out[b] = out[1 - b] * 2: block 0 would read the element block 1
        // writes — rejected up front, in release builds too.
        let body = Stmt::store(
            "out",
            Expr::var("b"),
            FExpr::load("out", Expr::int(1) - Expr::var("b")) * 2.0,
        );
        let bp = compile(&body);
        let shared = bp.shared();
        let mut out = vec![0.0f32; 2];
        unsafe { shared.run_blocks(&CpuPool::new(2), "b", "out", &mut out, &[vec![0], vec![1]]) };
    }

    #[test]
    #[cfg(debug_assertions)]
    fn cross_block_store_overlap_panics_in_debug() {
        // Both blocks store to out[0]: the disjoint-store contract is
        // violated, and debug builds must fail deterministically instead
        // of racing.
        let body = Stmt::store("out", Expr::int(0), FExpr::cast(Expr::var("b")));
        let bp = compile(&body);
        let shared = bp.shared();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 1];
            unsafe {
                shared.run_blocks(&CpuPool::new(2), "b", "out", &mut out, &[vec![0], vec![1]])
            };
        }));
        let payload = r.expect_err("overlapping stores must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("disjoint-store contract violated"),
            "unexpected panic payload: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "missing auxiliary buffer `lens`")]
    fn run_blocks_checks_bindings() {
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("row", vec![0]);
        shared.set_fbuffer("A", vec![1.0]);
        let mut out = vec![0.0f32];
        unsafe { shared.run_blocks(&CpuPool::new(1), "b", "B", &mut out, &[vec![0]]) };
    }

    #[test]
    #[should_panic(expected = "unknown block variable `nope`")]
    fn run_blocks_rejects_unknown_block_var() {
        let bp = compile(&outlined_doubling_body());
        let shared = bp.shared();
        let mut out = vec![0.0f32];
        unsafe { shared.run_blocks(&CpuPool::new(1), "nope", "B", &mut out, &[]) };
    }

    #[test]
    fn run_blocks_propagates_body_panics() {
        // Block 1 indexes `lens` out of bounds; the panic must reach the
        // caller instead of poisoning the pool.
        let bp = compile(&outlined_doubling_body());
        let mut shared = bp.shared();
        shared.set_ibuffer("lens", vec![1]);
        shared.set_ibuffer("row", vec![0]);
        shared.set_fbuffer("A", vec![1.0, 2.0]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 2];
            unsafe { shared.run_blocks(&CpuPool::new(2), "b", "B", &mut out, &[vec![0], vec![1]]) };
        }));
        assert!(r.is_err(), "out-of-bounds block must panic the caller");
    }

    #[test]
    fn disassembly_resolves_slot_names() {
        let s = Stmt::loop_(
            "o",
            Expr::int(3),
            Stmt::loop_(
                "i",
                Expr::load("lens", Expr::var("o")),
                Stmt::store(
                    "B",
                    Expr::load("row", Expr::var("o")) + Expr::var("i"),
                    FExpr::load("A", Expr::var("n_free")) * 2.0,
                ),
            ),
        );
        let p = compile(&s);
        let text = p.to_string();
        assert!(text.contains("o@"), "bound loop var with slot:\n{text}");
        assert!(text.contains("lens["), "aux buffer name:\n{text}");
        assert!(text.contains("fstore   B["), "output store:\n{text}");
        assert!(
            text.contains("ivar     r0, n_free") || text.contains("n_free"),
            "free var by name:\n{text}"
        );
        assert_eq!(
            text.lines().count(),
            p.len(),
            "one line per instruction:\n{text}"
        );
        // Every line is `pc  mnemonic ...` with aligned pcs.
        for (i, line) in text.lines().enumerate() {
            assert!(
                line.starts_with(&format!("{i:>4}  ")),
                "line {i} misformatted: {line:?}"
            );
        }
    }
}
