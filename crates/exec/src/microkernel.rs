//! The vectorized microkernel ISA behind the VM's fused superinstructions.
//!
//! The fused loops (`fmulacc`, `fmulacc2`, `fmap`) stop interpreting
//! bytecode per element, but until this module they still executed as
//! *scalar* panels and tapes. Here the hot shapes become explicit SIMD
//! microkernels built from portable `[f32; LANES]` register blocks — the
//! compiler auto-vectorizes the fixed-width chunk loops on every
//! architecture, with a scalar tail for the ragged remainders that are
//! this codebase's whole point. Arch-gated intrinsics can slot in behind
//! the same functions later without touching the VM.
//!
//! # The ISA, declaratively
//!
//! Rather than hard-coding stride peepholes inside the VM's dispatch,
//! the recognisable loop shapes are described as a small table of
//! [`KernelDesc`] entries ([`PANEL_KERNELS`], [`AXPY_KERNELS`]) that the
//! executor pattern-matches runtime stride vectors against
//! ([`classify_panel`], [`classify_axpy`]). Adding a microkernel means
//! adding a row and an implementation — the match logic is data, not
//! control flow (the ACT-style mini-ISA framing).
//!
//! # Strict vs fast math
//!
//! Every kernel takes a [`MathMode`]:
//!
//! * [`MathMode::Strict`] — results are **bit-identical to the
//!   interpreter**. Vector lanes are used only where the per-element
//!   float-op sequence is provably unchanged: independent output
//!   elements may be computed in any order, so the register-blocked
//!   saxpy panel is legal, but reductions keep their serial
//!   accumulation order and transcendentals stay on `libm`.
//! * [`MathMode::Fast`] — reductions may reassociate into `LANES`
//!   parallel accumulators (combined in a fixed tree, so results stay
//!   deterministic run-to-run), and `exp`/`tanh` use polynomial
//!   approximations. The error bounds are part of this module's
//!   contract — [`EXP_REL_TOL`], [`TANH_ABS_TOL`] — and the unit tests
//!   here plus the differential harnesses assert them.

/// Floating-point semantics knob for compiled execution, threaded from
/// `CompiledProgram`/`CompiledPipeline` down to the VM's fused kernels.
///
/// `Strict` (the default) preserves the bit-identical-to-interpreter
/// contract every differential suite locks. `Fast` trades that for
/// speed under the documented tolerances above; it is still
/// deterministic (serial and parallel runs of the same program agree
/// bit-for-bit with each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MathMode {
    /// Bit-identical to the tree-walking interpreter.
    #[default]
    Strict,
    /// Reassociated reductions and approximate `exp`/`tanh`, within
    /// [`EXP_REL_TOL`] / [`TANH_ABS_TOL`] per operation.
    Fast,
}

/// Vector width of the portable register blocks. Eight `f32` lanes is
/// one AVX2 register / two NEON registers; the chunk loops below compile
/// to full-width vector ops on either.
pub const LANES: usize = 8;

/// Maximum relative error of [`exp_fast`] against `f32::exp` over the
/// non-flushing input range (|x| ≤ 87). Asserted by this module's tests.
pub const EXP_REL_TOL: f32 = 4e-6;

/// Maximum absolute error of [`tanh_fast`] against `f32::tanh` anywhere
/// on the real line. Asserted by this module's tests.
pub const TANH_ABS_TOL: f32 = 4e-7;

// ---------------------------------------------------------------------
// ISA descriptions
// ---------------------------------------------------------------------

/// Microkernels for the two-deep fused nest (`fmulacc2`), keyed by the
/// runtime stride pattern `(out, a, b) × (inner, outer)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelKind {
    /// i-k-j GEMM row panel: `out_row += a[t] · b_row(t)` — output and
    /// `b` stream the inner axis, `a` is the outer-axis scalar.
    Saxpy,
    /// Per-row dot panel: `out[t] += a_row(t) · b_row(t)` — output
    /// indexes the outer axis, both operands stream the inner axis.
    Dot,
}

/// Microkernels for the one-deep fused loop (`fmulacc`), keyed by the
/// runtime stride triple `(out, a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxpyKind {
    /// `out[o] += Σ a[t]·b[t]` — a dot-product reduction into one
    /// element (`so == 0`).
    DotAcc,
    /// `out[t] += s · b[t]` — a scalar-times-vector update (`sa == 0`,
    /// unit output/`b` strides).
    Saxpy,
}

/// Runtime shape of one fused nest: per tensor, the index strides along
/// the (inner, outer) loop axes. Bases are handled by the caller; a
/// kernel row matches on strides alone.
#[derive(Debug, Clone, Copy)]
pub struct PanelShape {
    /// Output strides (inner, outer).
    pub out: (i64, i64),
    /// Left-operand strides (inner, outer).
    pub a: (i64, i64),
    /// Right-operand strides (inner, outer).
    pub b: (i64, i64),
}

/// One row of the declarative microkernel table: a name (for docs and
/// disassembly), the stride pattern it requires, and the kernel id the
/// executor dispatches on.
pub struct KernelDesc<K: Copy> {
    /// Human-readable microkernel name.
    pub name: &'static str,
    /// Stride predicate: `Some(_) = must equal`, `None = don't care`.
    /// Order: `out_i, out_o, a_i, a_o, b_i, b_o`.
    pub strides: [Option<i64>; 6],
    /// Kernel id handed back to the executor.
    pub kind: K,
}

/// The two-deep nest microkernel ISA, in match-priority order.
pub const PANEL_KERNELS: &[KernelDesc<PanelKind>] = &[
    KernelDesc {
        name: "saxpy_panel",
        strides: [Some(1), Some(0), Some(0), None, Some(1), None],
        kind: PanelKind::Saxpy,
    },
    KernelDesc {
        name: "dot_panel",
        strides: [Some(0), Some(1), Some(1), None, Some(1), None],
        kind: PanelKind::Dot,
    },
];

/// The one-deep loop microkernel ISA, in match-priority order. Only the
/// first three stride slots (`out, a, b`) are meaningful.
pub const AXPY_KERNELS: &[KernelDesc<AxpyKind>] = &[
    KernelDesc {
        name: "dot_acc",
        strides: [Some(0), None, None, None, None, None],
        kind: AxpyKind::DotAcc,
    },
    KernelDesc {
        name: "saxpy",
        strides: [Some(1), Some(0), Some(1), None, None, None],
        kind: AxpyKind::Saxpy,
    },
];

fn matches<K: Copy>(desc: &KernelDesc<K>, strides: &[i64; 6]) -> bool {
    desc.strides
        .iter()
        .zip(strides)
        .all(|(want, got)| want.map_or(true, |w| w == *got))
}

/// Pattern-matches a two-deep nest's runtime strides against
/// [`PANEL_KERNELS`]. Negative bases/outer strides never match (the
/// kernels address `usize` ranges).
pub fn classify_panel(shape: &PanelShape) -> Option<PanelKind> {
    if shape.out.1 < 0 || shape.a.1 < 0 || shape.b.1 < 0 {
        return None;
    }
    let strides = [
        shape.out.0,
        shape.out.1,
        shape.a.0,
        shape.a.1,
        shape.b.0,
        shape.b.1,
    ];
    PANEL_KERNELS
        .iter()
        .find(|d| matches(d, &strides))
        .map(|d| d.kind)
}

/// Pattern-matches a one-deep loop's runtime stride triple against
/// [`AXPY_KERNELS`].
pub fn classify_axpy(so: i64, sa: i64, sb: i64) -> Option<AxpyKind> {
    let strides = [so, sa, sb, 0, 0, 0];
    AXPY_KERNELS
        .iter()
        .find(|d| matches(d, &strides))
        .map(|d| d.kind)
}

// ---------------------------------------------------------------------
// GEMM-shaped panels
// ---------------------------------------------------------------------

/// Register-blocked i-k-j saxpy panel:
/// `out[0..n_i] += a[a0 + t·sa_o] · b[b0 + t·sb_o ..][..n_i]` for
/// `t in 0..n_o`.
///
/// The output row is processed in `[f32; LANES]` register blocks held
/// across the *entire* outer loop, so each output element is loaded and
/// stored once instead of once per `t` — the classic GEMM register
/// tile. Per element the adds still happen in ascending-`t` order, one
/// `mul` + one `add` each, so results are **bit-identical to the scalar
/// nest in both math modes** (independent outputs reassociate nothing).
#[allow(clippy::too_many_arguments)]
pub fn saxpy_panel(
    out: &mut [f32],
    a: &[f32],
    a0: usize,
    sa_o: usize,
    b: &[f32],
    b0: usize,
    sb_o: usize,
    n_o: usize,
) {
    let n_i = out.len();
    let mut i = 0;
    while i + LANES <= n_i {
        let mut acc = [0.0f32; LANES];
        acc.copy_from_slice(&out[i..i + LANES]);
        for t in 0..n_o {
            let s = a[a0 + t * sa_o];
            let br = &b[b0 + t * sb_o + i..b0 + t * sb_o + i + LANES];
            for l in 0..LANES {
                acc[l] += s * br[l];
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    if i < n_i {
        // Scalar tail: same per-element op sequence, just unblocked.
        for t in 0..n_o {
            let s = a[a0 + t * sa_o];
            let br = &b[b0 + t * sb_o..b0 + t * sb_o + n_i];
            for (o, x) in out[i..].iter_mut().zip(&br[i..]) {
                *o += s * *x;
            }
        }
    }
}

/// Dot panel: `out[t] += a_row(t) · b_row(t)` for `t in 0..n_o`, rows of
/// length `n_i`.
///
/// `Strict` accumulates each row serially in element order (bit-identical
/// to the interpreter) but interleaves `DOT_BLOCK` *independent* rows
/// so their FMA chains overlap — short reductions (e.g. head_dim-length
/// attention dots) are latency-bound one at a time, and independent
/// outputs reassociate nothing. `Fast` splits each row across [`LANES`]
/// accumulators combined by a fixed horizontal-sum tree — reassociated
/// but deterministic.
#[allow(clippy::too_many_arguments)]
pub fn dot_panel(
    out: &mut [f32],
    o0: usize,
    a: &[f32],
    a0: usize,
    sa_o: usize,
    b: &[f32],
    b0: usize,
    sb_o: usize,
    n_i: usize,
    n_o: usize,
    mode: MathMode,
) {
    const DOT_BLOCK: usize = 4;
    let mut t = 0;
    if matches!(mode, MathMode::Strict) {
        while t + DOT_BLOCK <= n_o {
            let ab = a0 + t * sa_o;
            let bb = b0 + t * sb_o;
            let ar: [&[f32]; DOT_BLOCK] =
                std::array::from_fn(|u| &a[ab + u * sa_o..ab + u * sa_o + n_i]);
            let br: [&[f32]; DOT_BLOCK] =
                std::array::from_fn(|u| &b[bb + u * sb_o..bb + u * sb_o + n_i]);
            let mut acc = [0.0f32; DOT_BLOCK];
            acc.copy_from_slice(&out[o0 + t..o0 + t + DOT_BLOCK]);
            for k in 0..n_i {
                for u in 0..DOT_BLOCK {
                    acc[u] += ar[u][k] * br[u][k];
                }
            }
            out[o0 + t..o0 + t + DOT_BLOCK].copy_from_slice(&acc);
            t += DOT_BLOCK;
        }
    }
    for t in t..n_o {
        let ar = &a[a0 + t * sa_o..a0 + t * sa_o + n_i];
        let br = &b[b0 + t * sb_o..b0 + t * sb_o + n_i];
        let acc = out[o0 + t];
        out[o0 + t] = match mode {
            MathMode::Strict => {
                let mut acc = acc;
                for (x, y) in ar.iter().zip(br) {
                    acc += *x * *y;
                }
                acc
            }
            MathMode::Fast => acc + dot_fast(ar, br),
        };
    }
}

/// Lane-parallel dot product of two equal-length slices (reassociated;
/// `Fast`-mode only). Deterministic: lanes combine in a fixed tree.
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let (ac, at) = a.split_at(a.len() - a.len() % LANES);
    let (bc, bt) = b.split_at(ac.len());
    for (ar, br) in ac.chunks_exact(LANES).zip(bc.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += ar[l] * br[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in at.iter().zip(bt) {
        tail += *x * *y;
    }
    hsum(&acc) + tail
}

/// Fixed-tree horizontal sum of a lane block (deterministic).
#[inline]
fn hsum(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

// ---------------------------------------------------------------------
// Reductions (Fast mode)
// ---------------------------------------------------------------------

/// Lane-parallel sum of a slice (reassociated; `Fast`-mode only).
pub fn sum_fast(v: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let (chunks, tail) = v.split_at(v.len() - v.len() % LANES);
    for c in chunks.chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += c[l];
        }
    }
    let mut t = 0.0f32;
    for x in tail {
        t += *x;
    }
    hsum(&acc) + t
}

/// Lane-parallel maximum of a non-empty slice, seeded with `init`
/// (reassociated; `Fast`-mode only). Uses `f32::max` lane-wise, so NaN
/// inputs are absorbed exactly as in the serial fold.
pub fn max_fast(init: f32, v: &[f32]) -> f32 {
    let mut acc = [init; LANES];
    let (chunks, tail) = v.split_at(v.len() - v.len() % LANES);
    for c in chunks.chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] = acc[l].max(c[l]);
        }
    }
    let mut m = ((acc[0].max(acc[4])).max(acc[2].max(acc[6])))
        .max((acc[1].max(acc[5])).max(acc[3].max(acc[7])));
    for x in tail {
        m = m.max(*x);
    }
    m
}

// ---------------------------------------------------------------------
// Transcendental approximations (Fast mode)
// ---------------------------------------------------------------------

const LOG2_E: f32 = std::f32::consts::LOG2_E;
/// `ln 2` split for Cody–Waite range reduction: `LN2_HI + LN2_LO = ln 2`
/// with `LN2_HI` exact in 12 bits, so `x − n·LN2_HI` is exact for the
/// relevant `n` range.
#[allow(clippy::excessive_precision)] // the digits are the exact f32 value
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
/// Inputs beyond ±87.3 overflow/underflow `f32::exp` anyway; clamping
/// keeps the bit games below in range.
const EXP_CLAMP: f32 = 87.0;
/// `1.5 · 2²³`: adding and subtracting it rounds an `f32` in ±2²² to the
/// nearest integer using the FPU's round-to-nearest mode — unlike
/// `f32::round`, it is a plain add/sub pair, so the chunk sweeps stay
/// branch-free and vectorizable (no `roundf` libm call in the loop).
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Polynomial `exp` approximation (`Fast` mode): relative error ≤
/// [`EXP_REL_TOL`] on |x| ≤ 87, monotone clamp outside.
///
/// Classic `2^n · p(r)` construction: `n = round(x·log2 e)`, Cody–Waite
/// reduction `r = x − n·ln 2 ∈ [−ln2/2, ln2/2]`, a degree-5 Taylor-like
/// minimax polynomial for `e^r`, and an exponent-field bit add for the
/// `2^n` scale. Branch-free, so the chunk sweep vectorizes.
#[inline]
pub fn exp_fast(x: f32) -> f32 {
    let x = x.clamp(-EXP_CLAMP, EXP_CLAMP);
    // Magic-rounded `y` keeps `n` in its low mantissa bits (offset by
    // 2²²), so both the float `n` and the 2^n exponent scale fall out
    // without any float→int conversion — `f32 as i32` is a saturating
    // cast in Rust, and its NaN/overflow fixups are what kept this loop
    // from vectorizing.
    let y = x * LOG2_E + ROUND_MAGIC;
    let n = y - ROUND_MAGIC;
    let r = x - n * LN2_HI - n * LN2_LO;
    // e^r for r in [-0.3466, 0.3466]; Horner, coefficients from the
    // Cephes expf minimax fit.
    let p = 1.987_569_1e-4f32;
    let p = p * r + 1.398_199_9e-3;
    let p = p * r + 8.333_452e-3;
    let p = p * r + 4.166_579_5e-2;
    let p = p * r + 1.666_666_6e-1;
    let p = p * r + 0.5;
    let p = p * r * r + r + 1.0;
    // 2^n via the exponent field: `y`'s mantissa is `0x40_0000 + n` and
    // |n| ≤ 126 after the clamp, so `(n + 127) << 23` is the biased
    // exponent; the mantissa offset and `y`'s own exponent bits vanish
    // in the shift.
    let scale = f32::from_bits(y.to_bits().wrapping_add(127u32.wrapping_sub(0x40_0000)) << 23);
    p * scale
}

/// Polynomial `tanh` approximation (`Fast` mode): absolute error ≤
/// [`TANH_ABS_TOL`] everywhere.
///
/// `tanh x = 1 − 2/(e^{2x} + 1)` on the negative half-line (where
/// `e^{2x} ≤ 1` is well-conditioned), reflected by sign; saturates to
/// ±1 past |x| ≥ 9 like `f32::tanh`.
#[inline]
pub fn tanh_fast(x: f32) -> f32 {
    let ax = -x.abs();
    // `exp_fast(0) == 1` exactly, so `t(0) == 1 − 2/2 == 0` without a
    // special case — the whole body stays branch-free and vectorizes.
    let e = exp_fast(2.0 * ax);
    let t = 1.0 - 2.0 * e / (1.0 + e);
    t.copysign(x)
}

/// Applies [`exp_fast`] across a chunk (the `fmap` tape's vector sweep).
pub fn exp_chunk(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = exp_fast(*s);
    }
}

/// Applies [`tanh_fast`] across a chunk.
pub fn tanh_chunk(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = tanh_fast(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, k: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 7 + 3) % 23) as f32 * k - 5.0)
            .collect()
    }

    /// Scalar reference of the saxpy panel nest, in interpreter order.
    #[allow(clippy::too_many_arguments)]
    fn saxpy_ref(
        out: &mut [f32],
        a: &[f32],
        a0: usize,
        sa_o: usize,
        b: &[f32],
        b0: usize,
        sb_o: usize,
        n_o: usize,
    ) {
        for t in 0..n_o {
            let s = a[a0 + t * sa_o];
            for (i, o) in out.iter_mut().enumerate() {
                *o += s * b[b0 + t * sb_o + i];
            }
        }
    }

    #[test]
    fn saxpy_panel_is_bit_identical_to_scalar_nest() {
        // All tail lengths mod LANES, including 0 and a multi-block row.
        for n_i in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 67] {
            for n_o in [0usize, 1, 2, 5, 31] {
                let a = seq(n_o.max(1) * 3, 0.25);
                let b = seq(n_o.max(1) * (n_i + 2) + 4, 0.5);
                let mut out = seq(n_i, 1.0);
                let mut want = out.clone();
                saxpy_ref(&mut want, &a, 1, 2, &b, 3, n_i + 1, n_o);
                saxpy_panel(&mut out, &a, 1, 2, &b, 3, n_i + 1, n_o);
                let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ob, wb, "n_i={n_i} n_o={n_o}");
            }
        }
    }

    #[test]
    fn strict_dot_panel_is_bit_identical_to_serial_fold() {
        for n_i in [0usize, 1, 7, 8, 9, 33] {
            let n_o = 5;
            let a = seq(n_o * (n_i + 1) + 2, 0.3);
            let b = seq(n_o * (n_i + 1) + 2, 0.7);
            let mut out = seq(n_o + 1, 1.0);
            let mut want = out.clone();
            for t in 0..n_o {
                let mut acc = want[1 + t];
                for u in 0..n_i {
                    acc += a[t * (n_i + 1) + u] * b[2 + t * (n_i + 1) + u];
                }
                want[1 + t] = acc;
            }
            dot_panel(
                &mut out,
                1,
                &a,
                0,
                n_i + 1,
                &b,
                2,
                n_i + 1,
                n_i,
                n_o,
                MathMode::Strict,
            );
            assert_eq!(out, want, "n_i={n_i}");
        }
    }

    #[test]
    fn fast_reductions_match_serial_within_tolerance() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let v = seq(n, 0.37);
            let serial_sum: f32 = v.iter().sum();
            let fs = sum_fast(&v);
            assert!(
                (fs - serial_sum).abs() <= 1e-4 * (1.0 + serial_sum.abs()),
                "sum n={n}: {fs} vs {serial_sum}"
            );
            let serial_max = v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            assert_eq!(max_fast(f32::NEG_INFINITY, &v), serial_max, "max n={n}");

            let w = seq(n, 0.11);
            let serial_dot: f32 = v.iter().zip(&w).map(|(x, y)| x * y).sum();
            let fd = dot_fast(&v, &w);
            assert!(
                (fd - serial_dot).abs() <= 1e-3 * (1.0 + serial_dot.abs()),
                "dot n={n}: {fd} vs {serial_dot}"
            );
        }
    }

    #[test]
    fn exp_fast_meets_documented_tolerance() {
        let mut worst = 0.0f32;
        let mut x = -87.0f32;
        while x <= 87.0 {
            let got = exp_fast(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.0137;
        }
        assert!(worst <= EXP_REL_TOL, "worst exp relative error {worst}");
        // Extremes stay finite/ordered.
        assert!(exp_fast(1000.0).is_finite());
        assert_eq!(exp_fast(-1000.0), exp_fast(-87.0));
        assert_eq!(exp_fast(0.0), 1.0);
    }

    #[test]
    fn tanh_fast_meets_documented_tolerance() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (tanh_fast(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 0.0113;
        }
        assert!(worst <= TANH_ABS_TOL, "worst tanh absolute error {worst}");
        assert_eq!(tanh_fast(0.0), 0.0);
        assert_eq!(tanh_fast(50.0), 1.0);
        assert_eq!(tanh_fast(-50.0), -1.0);
        assert_eq!(tanh_fast(-3.0), -tanh_fast(3.0));
    }

    #[test]
    fn isa_tables_classify_the_canonical_shapes() {
        // The proj-GEMM shape: out/b stream columns, a is per-k scalar.
        let saxpy = PanelShape {
            out: (1, 0),
            a: (0, 1),
            b: (1, 64),
        };
        assert_eq!(classify_panel(&saxpy), Some(PanelKind::Saxpy));
        // The QKᵀ shape: out indexes rows, operands stream the head dim.
        let dot = PanelShape {
            out: (0, 1),
            a: (1, 0),
            b: (1, 8),
        };
        assert_eq!(classify_panel(&dot), Some(PanelKind::Dot));
        // Negative outer strides never match (usize addressing).
        let neg = PanelShape {
            out: (1, -4),
            a: (0, 1),
            b: (1, 4),
        };
        assert_eq!(classify_panel(&neg), None);
        // A generic strided nest matches nothing.
        let generic = PanelShape {
            out: (2, 1),
            a: (1, 3),
            b: (5, 0),
        };
        assert_eq!(classify_panel(&generic), None);

        assert_eq!(classify_axpy(0, 3, 1), Some(AxpyKind::DotAcc));
        assert_eq!(classify_axpy(1, 0, 1), Some(AxpyKind::Saxpy));
        assert_eq!(classify_axpy(1, 1, 1), None);
        for d in PANEL_KERNELS {
            assert!(!d.name.is_empty());
        }
        for d in AXPY_KERNELS {
            assert!(!d.name.is_empty());
        }
    }

    #[test]
    fn max_fast_absorbs_nan_like_serial_fold() {
        let mut v = seq(20, 0.5);
        v[3] = f32::NAN;
        v[17] = f32::NAN;
        let serial = v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        assert_eq!(max_fast(f32::NEG_INFINITY, &v), serial);
    }
}
