//! Real multithreaded CPU execution: a work-pulling parallel-for.
//!
//! The CPU experiments (Table 5, Table 9, Fig. 27) run for real on the
//! host. `parallel_for` distributes iterations dynamically (an atomic
//! cursor, like a guided OpenMP schedule); `parallel_for_static` splits
//! the range into contiguous chunks per worker — the policy under which
//! ragged workloads show load imbalance, used by the ablation benches.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width thread team for parallel loops.
#[derive(Debug, Clone, Copy)]
pub struct CpuPool {
    threads: usize,
}

impl CpuPool {
    /// Creates a pool that runs loops on `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        CpuPool { threads }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CpuPool::new(n)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n`, pulling iterations dynamically.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.threads == 1 || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    f(i);
                });
            }
        });
    }

    /// Runs `f(i)` for every `i in 0..n` with static contiguous chunking:
    /// worker `w` gets the `w`-th chunk. No load balancing.
    pub fn parallel_for_static<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.threads == 1 || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let workers = self.threads.min(n);
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let f = &f;
                scope.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    for i in lo..hi {
                        f(i);
                    }
                });
            }
        });
    }

    /// Splits `data` into `n` disjoint mutable rows of given lengths and
    /// runs `f(i, row_i)` in parallel. Rows are consecutive in `data`.
    ///
    /// # Panics
    ///
    /// Panics if the row lengths overrun `data`.
    pub fn parallel_rows<F>(&self, data: &mut [f32], row_lens: &[usize], f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let total: usize = row_lens.iter().sum();
        assert!(total <= data.len(), "row lengths overrun the buffer");
        // Pre-split into disjoint slices, then distribute.
        let mut rows: Vec<&mut [f32]> = Vec::with_capacity(row_lens.len());
        let mut rest = data;
        for &l in row_lens {
            let (head, tail) = rest.split_at_mut(l);
            rows.push(head);
            rest = tail;
        }
        let rows: Vec<std::sync::Mutex<Option<&mut [f32]>>> = rows
            .into_iter()
            .map(|r| std::sync::Mutex::new(Some(r)))
            .collect();
        self.parallel_for(rows.len(), |i| {
            let row = rows[i]
                .lock()
                .expect("row lock poisoned")
                .take()
                .expect("row taken once");
            f(i, row);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_all_iterations_once() {
        let pool = CpuPool::new(4);
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        pool.parallel_for(1000, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn static_schedule_covers_all() {
        let pool = CpuPool::new(3);
        let hits = AtomicU64::new(0);
        pool.parallel_for_static(10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_iterations_is_noop() {
        let pool = CpuPool::new(2);
        pool.parallel_for(0, |_| panic!("must not run"));
        pool.parallel_for_static(0, |_| panic!("must not run"));
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = CpuPool::new(1);
        let mut seen = 0u64;
        let cell = std::sync::Mutex::new(&mut seen);
        pool.parallel_for(5, |_| {
            **cell.lock().unwrap() += 1;
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn parallel_rows_disjoint_writes() {
        let pool = CpuPool::new(4);
        let mut data = vec![0.0f32; 10];
        pool.parallel_rows(&mut data, &[3, 2, 5], |i, row| {
            for v in row.iter_mut() {
                *v = i as f32 + 1.0;
            }
        });
        assert_eq!(data, vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        CpuPool::new(0);
    }
}
