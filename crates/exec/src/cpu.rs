//! `CpuPool`: the parallel-loop facade for CPU execution.
//!
//! The CPU experiments (Table 5, Table 9, Fig. 27) run for real on the
//! host. A [`CpuPool`] is a cheap, copyable *configuration* — thread
//! width, grain size, backend — over the process-wide persistent
//! [`Runtime`] (see [`crate::runtime`] for the worker model):
//!
//! * [`CpuPool::parallel_for`] distributes iterations dynamically
//!   (chunked work-stealing deques — the load-balanced schedule ragged
//!   loops need);
//! * [`CpuPool::parallel_for_static`] splits the range into contiguous
//!   per-worker chunks with no rebalancing — the policy under which
//!   ragged workloads show load imbalance, used by the ablation benches;
//! * [`CpuPool::parallel_rows`] hands out disjoint `&mut` rows of a
//!   buffer, pre-packed into cost-balanced batches.
//!
//! [`Backend::Spawn`] preserves the pre-runtime per-call
//! `std::thread::scope` executor so the spawn-overhead ablation
//! (Fig. 27, `BENCH_fig27_thread_scaling.json`) can measure both.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::runtime::{Runtime, Schedule};

/// A batch of `(row index, row slice)` pairs handed to one participant.
type RowBatch<'a> = Vec<(usize, &'a mut [f32])>;

/// Which executor a [`CpuPool`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The persistent work-stealing runtime (default): parked workers,
    /// no per-call thread spawns.
    Persistent,
    /// Per-call `std::thread::scope` spawn/join — the pre-runtime
    /// baseline, kept for the spawn-overhead ablation.
    Spawn,
}

/// A fixed-width thread team for parallel loops.
#[derive(Debug, Clone, Copy)]
pub struct CpuPool {
    threads: usize,
    grain: Option<usize>,
    backend: Backend,
}

impl CpuPool {
    /// Creates a pool that runs loops on `threads` workers. Under the
    /// default [`Backend::Persistent`] this caps how many of the global
    /// runtime's participants serve each loop (the Fig. 27 sweep builds
    /// one pool per thread count); it does not spawn threads itself.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        CpuPool {
            threads,
            grain: None,
            backend: Backend::Persistent,
        }
    }

    /// A pool sized to the full global runtime team — the machine's
    /// available parallelism, or `CORA_NUM_THREADS` if set.
    pub fn host() -> Self {
        CpuPool::new(Runtime::global().threads())
    }

    /// Overrides the dynamic-schedule chunk size (default: ~16 chunks per
    /// worker). Small grains maximize load balancing for ragged rows;
    /// large grains amortize scheduling for long loops of tiny bodies.
    ///
    /// # Panics
    ///
    /// Panics if `grain == 0`.
    pub fn with_grain(mut self, grain: usize) -> Self {
        assert!(grain > 0, "grain must be positive");
        self.grain = Some(grain);
        self
    }

    /// Selects the executor backend (see [`Backend`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured grain size, if overridden.
    pub fn grain(&self) -> Option<usize> {
        self.grain
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Runs `f(i)` for every `i in 0..n`, pulling iterations dynamically
    /// (chunked work-stealing under [`Backend::Persistent`]).
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match self.backend {
            Backend::Persistent => {
                Runtime::global().run(n, self.threads, Schedule::Dynamic, self.grain, f)
            }
            Backend::Spawn => spawn_dynamic(self.threads, n, &f),
        }
    }

    /// Runs `f(i)` for every `i in 0..n` with static contiguous chunking:
    /// worker `w` gets the `w`-th chunk. No load balancing.
    pub fn parallel_for_static<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match self.backend {
            Backend::Persistent => {
                Runtime::global().run(n, self.threads, Schedule::Static, None, f)
            }
            Backend::Spawn => spawn_static(self.threads, n, &f),
        }
    }

    /// Splits `data` into `n` disjoint mutable rows of given lengths and
    /// runs `f(i, row_i)` in parallel. Rows are consecutive in `data`.
    ///
    /// Rows are pre-packed into cost-balanced batches (cost = row length)
    /// so ragged rows load-balance without per-row locking: each batch is
    /// taken exactly once, with a single uncontended lock per batch.
    ///
    /// # Panics
    ///
    /// Panics if the row lengths overrun `data`.
    pub fn parallel_rows<F>(&self, data: &mut [f32], row_lens: &[usize], f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let total: usize = row_lens.iter().sum();
        assert!(total <= data.len(), "row lengths overrun the buffer");
        if row_lens.is_empty() {
            return;
        }
        // Pre-split into disjoint slices.
        let mut rows: Vec<(usize, &mut [f32])> = Vec::with_capacity(row_lens.len());
        let mut rest = data;
        for (i, &l) in row_lens.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(l);
            rows.push((i, head));
            rest = tail;
        }
        // Pack into batches of roughly equal total cost, preserving order
        // (sorted batches keep heavy rows scheduling first).
        let costs: Vec<f64> = row_lens.iter().map(|&l| l as f64).collect();
        let mut rows_iter = rows.into_iter();
        let batches: Vec<Mutex<RowBatch<'_>>> = cost_balanced_batches(&costs, self.threads)
            .into_iter()
            .map(|range| Mutex::new(rows_iter.by_ref().take(range.len()).collect()))
            .collect();
        let run_batch = |b: usize| {
            let batch = std::mem::take(&mut *batches[b].lock().unwrap_or_else(|e| e.into_inner()));
            for (i, row) in batch {
                f(i, row);
            }
        };
        match self.backend {
            Backend::Persistent => Runtime::global().run(
                batches.len(),
                self.threads,
                Schedule::Dynamic,
                Some(1),
                run_batch,
            ),
            Backend::Spawn => spawn_dynamic(self.threads, batches.len(), &run_batch),
        }
    }

    /// Runs `f` over each length-`n` row of `data` in parallel, with rows
    /// pre-batched into O(threads) contiguous chunks so the scheduling
    /// metadata stays tiny on hot paths. A trailing partial row (when
    /// `data.len()` is not a multiple of `n`) is passed to `f` short,
    /// matching `data.chunks_mut(n)` semantics.
    pub fn parallel_uniform_rows<F>(&self, data: &mut [f32], n: usize, f: F)
    where
        F: Fn(&mut [f32]) + Sync,
    {
        if n == 0 || data.is_empty() {
            return;
        }
        let len = data.len();
        let rows = len.div_ceil(n);
        let per = rows.div_ceil(self.threads * 4).max(1);
        let lens: Vec<usize> = (0..rows.div_ceil(per))
            .map(|b| ((b + 1) * per * n).min(len) - b * per * n)
            .collect();
        self.parallel_rows(data, &lens, |_, batch| {
            for row in batch.chunks_mut(n) {
                f(row);
            }
        });
    }
}

/// Cuts a cost sequence (one entry per work item, in dispatch order)
/// into consecutive batches of roughly equal total cost, targeting ~4
/// batches per thread so dynamic stealing can still rebalance. Every
/// batch is non-empty; zero- or negative-cost items count as cost 1 so
/// they batch with their neighbours instead of degenerating.
///
/// Shared by [`CpuPool::parallel_rows`] and the compiled-program
/// parallel tier (which packs thread blocks by their FLOP estimates in
/// remap-policy dispatch order).
pub fn cost_balanced_batches(costs: &[f64], threads: usize) -> Vec<std::ops::Range<usize>> {
    if costs.is_empty() {
        return Vec::new();
    }
    let total: f64 = costs.iter().map(|c| c.max(1.0)).sum();
    let target = (total / (threads.max(1) * 4) as f64).max(1.0);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut acc = 0.0f64;
    for (i, c) in costs.iter().enumerate() {
        acc += c.max(1.0);
        if acc >= target {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0.0;
        }
    }
    if start < costs.len() {
        out.push(start..costs.len());
    }
    out
}

/// The pre-runtime dynamic executor: spawns a fresh scoped thread team
/// per call, pulling single iterations off an atomic cursor. Kept as the
/// ablation baseline the persistent runtime is measured against.
fn spawn_dynamic<F>(threads: usize, n: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    if threads == 1 || n == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// The pre-runtime static executor (one contiguous chunk per spawned
/// thread); see [`spawn_dynamic`].
fn spawn_static<F>(threads: usize, n: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    if threads == 1 || n == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let f = &f;
            scope.spawn(move || {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                for i in lo..hi {
                    f(i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn both_backends() -> [CpuPool; 2] {
        [
            CpuPool::new(4),
            CpuPool::new(4).with_backend(Backend::Spawn),
        ]
    }

    #[test]
    fn covers_all_iterations_once() {
        for pool in both_backends() {
            let hits = AtomicU64::new(0);
            let sum = AtomicU64::new(0);
            pool.parallel_for(1000, |i| {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 1000, "{:?}", pool.backend());
            assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        }
    }

    #[test]
    fn static_schedule_covers_all() {
        for pool in [
            CpuPool::new(3),
            CpuPool::new(3).with_backend(Backend::Spawn),
        ] {
            let hits = AtomicU64::new(0);
            pool.parallel_for_static(10, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 10, "{:?}", pool.backend());
        }
    }

    #[test]
    fn zero_iterations_is_noop() {
        for pool in both_backends() {
            pool.parallel_for(0, |_| panic!("must not run"));
            pool.parallel_for_static(0, |_| panic!("must not run"));
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = CpuPool::new(1);
        let mut seen = 0u64;
        let cell = std::sync::Mutex::new(&mut seen);
        pool.parallel_for(5, |_| {
            **cell.lock().unwrap() += 1;
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn parallel_rows_disjoint_writes() {
        for pool in both_backends() {
            let mut data = vec![0.0f32; 10];
            pool.parallel_rows(&mut data, &[3, 2, 5], |i, row| {
                for v in row.iter_mut() {
                    *v = i as f32 + 1.0;
                }
            });
            assert_eq!(
                data,
                vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0, 3.0],
                "{:?}",
                pool.backend()
            );
        }
    }

    #[test]
    fn cost_batches_cover_everything_in_order() {
        for costs in [
            vec![1.0; 100],
            (0..64).map(|i| (64 - i) as f64 * 10.0).collect::<Vec<_>>(),
            vec![0.0; 7],
            vec![1e9],
        ] {
            let batches = cost_balanced_batches(&costs, 4);
            assert!(!batches.is_empty());
            let mut next = 0usize;
            for r in &batches {
                assert_eq!(r.start, next, "batches must be consecutive");
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, costs.len(), "batches must cover every item");
        }
        assert!(cost_balanced_batches(&[], 4).is_empty());
    }

    #[test]
    fn parallel_rows_handles_empty_rows_and_slack() {
        let pool = CpuPool::new(4);
        let mut data = vec![0.0f32; 8]; // 2 elements of slack at the end
        let visited = AtomicU64::new(0);
        pool.parallel_rows(&mut data, &[0, 3, 0, 3], |i, row| {
            visited.fetch_add(1 << i, Ordering::Relaxed);
            for v in row.iter_mut() {
                *v = 1.0;
            }
        });
        assert_eq!(visited.load(Ordering::Relaxed), 0b1111, "every row visited");
        assert_eq!(&data[..6], &[1.0; 6]);
        assert_eq!(&data[6..], &[0.0; 2], "slack untouched");
    }

    #[test]
    fn parallel_uniform_rows_covers_all_rows_and_tail() {
        let pool = CpuPool::new(4);
        let mut data = vec![0.0f32; 10];
        // n=4 → rows 0..4, 4..8, and the short tail 8..10.
        pool.parallel_uniform_rows(&mut data, 4, |row| {
            let len = row.len() as f32;
            for v in row.iter_mut() {
                *v = len;
            }
        });
        assert_eq!(&data[..8], &[4.0; 8]);
        assert_eq!(&data[8..], &[2.0; 2], "partial tail row visited");
    }

    #[test]
    fn grain_override_still_covers_everything() {
        for grain in [1usize, 7, 100, 100_000] {
            let pool = CpuPool::new(4).with_grain(grain);
            let hits = AtomicU64::new(0);
            pool.parallel_for(500, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 500, "grain={grain}");
        }
    }

    #[test]
    fn pool_panic_propagates() {
        let pool = CpuPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(64, |i| {
                if i == 13 {
                    panic!("pool boom");
                }
            });
        }));
        assert!(r.is_err(), "panic must reach the caller");
        // Pool (and the global runtime behind it) stays usable.
        let hits = AtomicU64::new(0);
        pool.parallel_for(64, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        CpuPool::new(0);
    }

    #[test]
    #[should_panic(expected = "grain must be positive")]
    fn zero_grain_rejected() {
        let _ = CpuPool::new(2).with_grain(0);
    }
}
