//! A scalar interpreter for the lowered statement IR.
//!
//! Gives the compiler's output precise, executable semantics: tests lower
//! ragged operators, interpret them, and compare against plain dense
//! references. The interpreter also counts FLOPs, guard evaluations and
//! auxiliary-array loads — the quantities the cost model prices — so the
//! simulation layer is calibrated against the real instruction mix.

use std::collections::HashMap;

use cora_ir::fexpr::apply_unary;
use cora_ir::visit::{count_cond_loads, count_loads};
use cora_ir::{Env, FExpr, FExprKind, Stmt, StoreKind};

/// Execution statistics gathered while interpreting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpStats {
    /// Floating-point operations executed (adds/subs/muls/divs/max/unary).
    pub flops: u64,
    /// Guard conditions evaluated.
    pub guards: u64,
    /// Auxiliary integer-array loads performed.
    pub aux_loads: u64,
    /// Float stores performed.
    pub stores: u64,
}

impl std::ops::AddAssign for InterpStats {
    fn add_assign(&mut self, o: InterpStats) {
        self.flops += o.flops;
        self.guards += o.guards;
        self.aux_loads += o.aux_loads;
        self.stores += o.stores;
    }
}

/// Statistics are plain event counts, so addition is exact and
/// order-independent: summing per-worker accumulators from a parallel
/// run reproduces the serial totals bit-for-bit.
impl std::ops::Add for InterpStats {
    type Output = InterpStats;

    fn add(mut self, o: InterpStats) -> InterpStats {
        self += o;
        self
    }
}

/// The interpreter's mutable machine state: float buffers plus the integer
/// environment (vars, int buffers, UF tables).
#[derive(Debug, Default)]
pub struct Machine {
    /// Integer environment (loop vars, aux buffers, UF tables).
    pub env: Env,
    fbufs: HashMap<String, Vec<f32>>,
    /// Statistics for the current/most recent run.
    pub stats: InterpStats,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a float buffer.
    pub fn set_fbuffer(&mut self, name: impl Into<String>, data: Vec<f32>) {
        self.fbufs.insert(name.into(), data);
    }

    /// Reads a float buffer.
    pub fn fbuffer(&self, name: &str) -> Option<&[f32]> {
        self.fbufs.get(name).map(|v| v.as_slice())
    }

    /// Iterates over every installed float buffer.
    pub fn fbuffers(&self) -> impl Iterator<Item = (&str, &[f32])> + '_ {
        self.fbufs.iter().map(|(n, v)| (n.as_str(), v.as_slice()))
    }

    /// Takes a float buffer out of the machine.
    pub fn take_fbuffer(&mut self, name: &str) -> Option<Vec<f32>> {
        self.fbufs.remove(name)
    }

    /// Runs a statement tree.
    ///
    /// # Panics
    ///
    /// Panics on missing buffers, unbound variables or out-of-bounds
    /// accesses — lowering bugs by definition.
    pub fn run(&mut self, s: &Stmt) {
        self.exec(s);
    }

    fn exec(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                min,
                extent,
                body,
                kind: _,
            } => {
                // GPU axes and parallel loops execute sequentially here;
                // the interpreter defines semantics, not performance.
                // Bounds are counted: ragged loop extents are aux loads
                // (`ExtentIr::Table` lowers to `Load(row, o)`), exactly
                // the accesses the cost model prices.
                let lo = self.eval_counting(min);
                let n = self.eval_counting(extent);
                let saved = self.env.lookup(var);
                for i in lo..lo + n {
                    self.env.bind(var.clone(), i);
                    self.exec(body);
                }
                match saved {
                    Some(v) => {
                        self.env.bind(var.clone(), v);
                    }
                    None => self.env.unbind(var),
                }
            }
            Stmt::LetInt { var, value, body } => {
                let v = self.eval_counting(value);
                let saved = self.env.lookup(var);
                self.env.bind(var.clone(), v);
                self.exec(body);
                match saved {
                    Some(v) => {
                        self.env.bind(var.clone(), v);
                    }
                    None => self.env.unbind(var),
                }
            }
            Stmt::Store {
                buffer,
                index,
                value,
                kind,
            } => {
                let i = self.eval_counting(index);
                let v = self.eval_f(value);
                let iu = usize::try_from(i)
                    .unwrap_or_else(|_| panic!("negative store index {i} into `{buffer}`"));
                let buf = self
                    .fbufs
                    .get_mut(buffer)
                    .unwrap_or_else(|| panic!("missing float buffer `{buffer}`"));
                match kind {
                    StoreKind::Assign => buf[iu] = v,
                    StoreKind::AddAssign => {
                        buf[iu] += v;
                        self.stats.flops += 1;
                    }
                    StoreKind::MaxAssign => {
                        buf[iu] = buf[iu].max(v);
                        self.stats.flops += 1;
                    }
                }
                self.stats.stores += 1;
            }
            Stmt::If { cond, then_, else_ } => {
                self.stats.guards += 1;
                self.stats.aux_loads += count_cond_loads(cond);
                if self.env.eval_cond(cond) {
                    self.exec(then_);
                } else if let Some(e) = else_ {
                    self.exec(e);
                }
            }
            Stmt::Seq(items) => {
                for item in items {
                    self.exec(item);
                }
            }
            Stmt::Alloc { buffer, size, body } => {
                let n = self.eval_counting(size);
                let nu = usize::try_from(n)
                    .unwrap_or_else(|_| panic!("negative alloc size {n} for `{buffer}`"));
                let saved = self.fbufs.insert(buffer.clone(), vec![0.0; nu]);
                self.exec(body);
                match saved {
                    Some(old) => {
                        self.fbufs.insert(buffer.clone(), old);
                    }
                    None => {
                        self.fbufs.remove(buffer);
                    }
                }
            }
            Stmt::Nop => {}
        }
    }

    fn eval_counting(&mut self, e: &cora_ir::Expr) -> i64 {
        self.stats.aux_loads += count_loads(e);
        self.env.eval(e)
    }

    fn eval_f(&mut self, e: &FExpr) -> f32 {
        match e.kind() {
            FExprKind::Const(v) => *v,
            FExprKind::Load(buf, idx) => {
                let i = self.eval_counting(idx);
                let iu = usize::try_from(i)
                    .unwrap_or_else(|_| panic!("negative load index {i} into `{buf}`"));
                self.fbufs
                    .get(buf)
                    .unwrap_or_else(|| panic!("missing float buffer `{buf}`"))[iu]
            }
            FExprKind::Cast(i) => {
                let v = self.eval_counting(i);
                v as f32
            }
            FExprKind::Add(a, b) => {
                let r = self.eval_f(a) + self.eval_f(b);
                self.stats.flops += 1;
                r
            }
            FExprKind::Sub(a, b) => {
                let r = self.eval_f(a) - self.eval_f(b);
                self.stats.flops += 1;
                r
            }
            FExprKind::Mul(a, b) => {
                let r = self.eval_f(a) * self.eval_f(b);
                self.stats.flops += 1;
                r
            }
            FExprKind::Div(a, b) => {
                let r = self.eval_f(a) / self.eval_f(b);
                self.stats.flops += 1;
                r
            }
            FExprKind::Max(a, b) => {
                let r = self.eval_f(a).max(self.eval_f(b));
                self.stats.flops += 1;
                r
            }
            FExprKind::Unary(op, a) => {
                let r = apply_unary(*op, self.eval_f(a));
                self.stats.flops += 1;
                r
            }
            FExprKind::Select(c, a, b) => {
                self.stats.guards += 1;
                // Stats parity with `Stmt::If`: the condition's aux loads
                // are charged whenever the guard is evaluated.
                self.stats.aux_loads += count_cond_loads(c);
                if self.env.eval_cond(c) {
                    self.eval_f(a)
                } else {
                    self.eval_f(b)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_ir::{Expr, FExpr, ForKind};

    #[test]
    fn ragged_doubling_from_fig1() {
        // for o in 0..3 { for i in 0..s(o) { B[row[o]+i] = 2*A[row[o]+i] } }
        let mut m = Machine::new();
        m.env.uf_table_mut().insert_table1d("s", vec![5, 2, 3]);
        m.env.set_buffer("row", vec![0, 5, 7]);
        m.set_fbuffer("A", (0..10).map(|x| x as f32).collect());
        m.set_fbuffer("B", vec![0.0; 10]);
        let s = cora_ir::UfRef::new("s", 1);
        let idx = Expr::load("row", Expr::var("o")) + Expr::var("i");
        let body = Stmt::store("B", idx.clone(), FExpr::load("A", idx) * 2.0);
        let nest = Stmt::loop_(
            "o",
            Expr::int(3),
            Stmt::loop_("i", Expr::uf(s, vec![Expr::var("o")]), body),
        );
        m.run(&nest);
        let b = m.fbuffer("B").unwrap();
        let expect: Vec<f32> = (0..10).map(|x| 2.0 * x as f32).collect();
        assert_eq!(b, expect.as_slice());
        assert_eq!(m.stats.stores, 10);
        assert_eq!(m.stats.flops, 10);
        assert!(m.stats.aux_loads >= 20); // row[o] twice per element
    }

    #[test]
    fn reduction_with_add_assign() {
        let mut m = Machine::new();
        m.set_fbuffer("x", vec![1.0, 2.0, 3.0, 4.0]);
        m.set_fbuffer("acc", vec![0.0]);
        let body = Stmt::Store {
            buffer: "acc".into(),
            index: Expr::int(0),
            value: FExpr::load("x", Expr::var("i")),
            kind: StoreKind::AddAssign,
        };
        m.run(&Stmt::loop_("i", Expr::int(4), body));
        assert_eq!(m.fbuffer("acc").unwrap()[0], 10.0);
    }

    #[test]
    fn guards_count_and_branch() {
        let mut m = Machine::new();
        m.set_fbuffer("B", vec![0.0; 4]);
        let body = Stmt::if_then(
            Expr::var("i").lt(Expr::int(2)),
            Stmt::store("B", Expr::var("i"), FExpr::constant(1.0)),
        );
        m.run(&Stmt::loop_("i", Expr::int(4), body));
        assert_eq!(m.stats.guards, 4);
        assert_eq!(m.fbuffer("B").unwrap(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn ragged_loop_extent_counts_aux_loads() {
        // Regression: `Stmt::For` bounds used to be evaluated with the
        // non-counting `env.eval`, dropping the `Load`-extent accesses
        // the cost model prices.
        let mut m = Machine::new();
        m.env.set_buffer("lens", vec![2, 3]);
        m.set_fbuffer("B", vec![0.0; 4]);
        let body = Stmt::store("B", Expr::var("i"), FExpr::constant(1.0));
        let nest = Stmt::loop_(
            "o",
            Expr::int(2),
            Stmt::loop_("i", Expr::load("lens", Expr::var("o")), body),
        );
        m.run(&nest);
        // The inner loop is entered twice; each entry loads lens[o] once.
        assert_eq!(m.stats.aux_loads, 2);
        assert_eq!(m.stats.stores, 5);
    }

    #[test]
    fn select_condition_counts_aux_loads_like_if() {
        // Regression: `FExprKind::Select` counted its guard but not the
        // condition's aux loads, unlike `Stmt::If`.
        let mut m = Machine::new();
        m.env.set_buffer("lens", vec![0, 2]);
        m.set_fbuffer("A", vec![1.0, 2.0]);
        m.set_fbuffer("B", vec![0.0; 2]);
        let sel = FExpr::select(
            Expr::load("lens", Expr::var("i")).lt(Expr::int(1)),
            FExpr::constant(0.0),
            FExpr::load("A", Expr::var("i")),
        );
        m.run(&Stmt::loop_(
            "i",
            Expr::int(2),
            Stmt::store("B", Expr::var("i"), sel),
        ));
        assert_eq!(m.fbuffer("B").unwrap(), &[0.0, 2.0]);
        assert_eq!(m.stats.guards, 2);
        // One condition load per select evaluation.
        assert_eq!(m.stats.aux_loads, 2);
    }

    #[test]
    fn alloc_scopes_scratch() {
        let mut m = Machine::new();
        m.set_fbuffer("out", vec![0.0]);
        let body = Stmt::store("tile", Expr::int(0), FExpr::constant(3.0)).then(Stmt::store(
            "out",
            Expr::int(0),
            FExpr::load("tile", Expr::int(0)),
        ));
        m.run(&Stmt::Alloc {
            buffer: "tile".into(),
            size: Expr::int(8),
            body: Box::new(body),
        });
        assert_eq!(m.fbuffer("out").unwrap()[0], 3.0);
        assert!(m.fbuffer("tile").is_none(), "scratch freed after scope");
    }

    #[test]
    fn let_binding_shadows_and_restores() {
        let mut m = Machine::new();
        m.env.bind("x", 1);
        m.set_fbuffer("B", vec![0.0; 1]);
        let inner = Stmt::store("B", Expr::int(0), FExpr::cast(Expr::var("x")));
        m.run(&Stmt::LetInt {
            var: "x".into(),
            value: Expr::int(9),
            body: Box::new(inner),
        });
        assert_eq!(m.fbuffer("B").unwrap()[0], 9.0);
        assert_eq!(m.env.lookup("x"), Some(1));
    }

    #[test]
    fn gpu_axes_interpret_as_loops() {
        let mut m = Machine::new();
        m.set_fbuffer("B", vec![0.0; 6]);
        let body = Stmt::loop_kind(
            "t",
            Expr::int(3),
            ForKind::GpuThreadX,
            Stmt::store(
                "B",
                Expr::var("b") * 3 + Expr::var("t"),
                FExpr::constant(1.0),
            ),
        );
        m.run(&Stmt::loop_kind(
            "b",
            Expr::int(2),
            ForKind::GpuBlockX,
            body,
        ));
        assert_eq!(m.fbuffer("B").unwrap(), &[1.0; 6]);
    }
}
