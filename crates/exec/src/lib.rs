//! # cora-exec
//!
//! Execution substrates for the CoRa reproduction:
//!
//! * [`gpu`] — a deterministic simulated GPU (in-order thread-block
//!   dispatch over streaming multiprocessors, launch and copy overheads)
//!   used for every GPU-side experiment, since real CUDA codegen is out of
//!   scope for this environment (see DESIGN.md §2).
//! * [`runtime`] — the persistent work-stealing CPU runtime: a
//!   process-wide team of parked worker threads with per-worker chunk
//!   deques, woken per parallel region instead of spawned per call.
//! * [`cpu`] — [`CpuPool`], the parallel-loop facade over the runtime
//!   used by the CPU experiments (wall-clock numbers).
//! * [`interp`] — a scalar interpreter giving the lowered IR executable
//!   semantics and instruction-mix statistics.
//! * [`vm`] — a slot-resolved bytecode VM: the compiled execution tier,
//!   bit-identical to the interpreter (outputs *and* statistics) but
//!   free of string hashing, tree recursion and per-expression
//!   allocation. A compiled [`VmProgram`] is `Sync`; [`VmShared`] holds
//!   the immutable per-run bindings and dispatches outlined thread
//!   blocks across a [`CpuPool`] with per-worker machine state.
//! * [`microkernel`] — the vectorized microkernel ISA behind the VM's
//!   fused superinstructions: register-blocked GEMM panels, chunked
//!   reductions and fast transcendentals, all keyed by the
//!   [`MathMode`] strict/fast contract.
//! * [`cost`] — the analytic cost model shared by the simulator and the
//!   benchmark harnesses.
//! * [`profile`] — per-operator breakdown accounting.
//!
//! ## CPU scheduling policies
//!
//! Ragged workloads give parallel loops wildly uneven iteration costs
//! (sorted sequence lengths decay across a batch), so the runtime offers
//! two schedules, mirroring the paper's CPU backend:
//!
//! * **Dynamic** ([`CpuPool::parallel_for`]) — iterations are cut into
//!   chunks of a configurable grain; each participant owns a deque of
//!   chunks and idle participants steal from the far end of a victim's
//!   deque. This is the load-balanced policy behind the CoRa lines of
//!   Table 5, Table 9, and Fig. 27.
//! * **Static** ([`CpuPool::parallel_for_static`]) — one contiguous chunk
//!   per participant, never rebalanced. Ragged batches load-imbalance
//!   under this policy; the scheduling ablations measure exactly that
//!   gap.
//!
//! [`CpuPool::parallel_rows`] pre-packs disjoint `&mut` rows into
//! cost-balanced batches and runs them under the dynamic schedule — the
//! pattern used by per-sequence SDPA (exactly `l×l` attention per
//! sequence, heaviest sequences first).

#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod gpu;
pub mod interp;
pub mod microkernel;
pub mod profile;
pub mod runtime;
pub mod vm;

pub use cost::{proxy_score, CpuModel, GpuModel, KernelTraits};
pub use cpu::{Backend, CpuPool};
pub use gpu::{GpuRunReport, GpuSim, KernelReport, SimKernel};
pub use interp::{InterpStats, Machine};
pub use microkernel::MathMode;
pub use profile::Profiler;
pub use runtime::{Runtime, Schedule};
pub use vm::{BoundBuf, StoreCert, VmMachine, VmProgram, VmShared};
