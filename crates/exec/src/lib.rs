//! # cora-exec
//!
//! Execution substrates for the CoRa reproduction:
//!
//! * [`gpu`] — a deterministic simulated GPU (in-order thread-block
//!   dispatch over streaming multiprocessors, launch and copy overheads)
//!   used for every GPU-side experiment, since real CUDA codegen is out of
//!   scope for this environment (see DESIGN.md §2).
//! * [`cpu`] — a real multithreaded parallel-for used for the CPU
//!   experiments (wall-clock numbers).
//! * [`interp`] — a scalar interpreter giving the lowered IR executable
//!   semantics and instruction-mix statistics.
//! * [`cost`] — the analytic cost model shared by the simulator and the
//!   benchmark harnesses.
//! * [`profile`] — per-operator breakdown accounting.

#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod gpu;
pub mod interp;
pub mod profile;

pub use cost::{CpuModel, GpuModel, KernelTraits};
pub use cpu::CpuPool;
pub use gpu::{GpuRunReport, GpuSim, KernelReport, SimKernel};
pub use interp::{InterpStats, Machine};
pub use profile::Profiler;
