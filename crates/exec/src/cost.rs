//! The analytic cost model behind the simulated devices.
//!
//! The paper's GPU results are driven by four quantities: how many FLOPs a
//! kernel actually performs (padding inflates this), how evenly work is
//! spread over streaming multiprocessors (thread remapping changes this),
//! how many kernels are launched (fusion changes this), and how much
//! auxiliary data is copied to the device (prelude overhead). The model
//! prices exactly these quantities. Constants are calibrated loosely to a
//! V100 (§7's hardware) — absolute values are irrelevant to the
//! experiments, which compare implementations under the *same* model.

/// Multiplicative efficiency/overhead factors for a kernel's inner loops.
#[derive(Debug, Clone, Copy)]
pub struct KernelTraits {
    /// Fraction of peak FLOP throughput the kernel's inner tiles reach.
    /// Vendor-library kernels (cuBLAS/MKL stand-ins) are the best tuned;
    /// compiler-generated dense code is close; ragged inner loops lose a
    /// little more to shorter vector bodies.
    pub efficiency: f64,
    /// Extra cost factor for a bound check executed per element of the
    /// main body (elided by operation splitting / padding).
    pub guard_factor: f64,
    /// Extra cost factor for un-hoisted indirect (auxiliary array)
    /// accesses per element.
    pub indirect_factor: f64,
}

impl KernelTraits {
    /// A vendor-library dense kernel: top efficiency, no guards, no
    /// indirect accesses.
    pub fn vendor() -> Self {
        KernelTraits {
            efficiency: 1.0,
            guard_factor: 1.0,
            indirect_factor: 1.0,
        }
    }

    /// Compiler-generated dense code (the gap §7.1 observes: CoRa reaches
    /// "better than 73%" of MKL and "within 81.3%" of cuBLAS).
    pub fn generated() -> Self {
        KernelTraits {
            efficiency: 0.85,
            guard_factor: 1.0,
            indirect_factor: 1.0,
        }
    }

    /// Adds per-element guard cost (un-split vloop tails, masking).
    pub fn with_guards(mut self) -> Self {
        self.guard_factor = 1.25;
        self
    }

    /// Adds un-hoisted indirect access cost (fused-vloop offset chains,
    /// §D.7's QKT case).
    pub fn with_indirect(mut self) -> Self {
        self.indirect_factor = 1.35;
        self
    }

    /// Adds *hoisted* indirect access cost — most of the penalty
    /// recovered, a small residue remains.
    pub fn with_hoisted_indirect(mut self) -> Self {
        self.indirect_factor = 1.04;
        self
    }

    /// Marks a scalar inner loop: no panel microkernels reachable, so
    /// the tile loses most of its throughput (the compiled tier's
    /// measured scalar-vs-panel gap).
    pub fn with_scalar_inner(mut self) -> Self {
        self.efficiency *= 0.35;
        self
    }

    /// Effective seconds-per-FLOP multiplier.
    pub fn cost_multiplier(&self) -> f64 {
        self.guard_factor * self.indirect_factor / self.efficiency
    }
}

/// A deterministic score for one measured candidate program, computed
/// from the interpreter-identical execution statistics of a single
/// serial VM run plus the program's fused-superinstruction census
/// (`(fmulacc, fmulacc2, fmap)` from `VmProgram::fused_counts`).
///
/// The score is a pure function of the program and its input shape —
/// no wall-clock anywhere — so two identically seeded tuning runs score
/// every candidate identically. Weights approximate the compiled
/// tier's relative instruction costs: guards and un-hoisted aux loads
/// are charged above plain flops, and programs whose reductions
/// collapsed into panel microkernels (`fmulacc`/`fmulacc2`) get the
/// vectorization discount that `fmap`-only or fully scalar programs
/// don't.
pub fn proxy_score(
    flops: u64,
    guards: u64,
    aux_loads: u64,
    stores: u64,
    fused: (usize, usize, usize),
) -> f64 {
    let (fmulacc, fmulacc2, fmap) = fused;
    let inner = if fmulacc > 0 || fmulacc2 > 0 {
        0.25 // register-blocked panels over the reduction
    } else if fmap > 0 {
        0.5 // chunked elementwise sweeps only
    } else {
        1.0 // scalar dispatch per element
    };
    flops as f64 * inner + guards as f64 * 1.5 + aux_loads as f64 * 1.25 + stores as f64 * 0.5
}

/// Device-level constants for the simulated GPU.
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Number of streaming multiprocessors (V100: 80).
    pub sm_count: usize,
    /// Peak FLOPs per SM per microsecond (V100 ≈ 15.7 TFLOP/s / 80 SMs).
    pub flops_per_sm_per_us: f64,
    /// Fixed cost of one kernel launch, microseconds.
    pub kernel_launch_us: f64,
    /// Host-to-device copy bandwidth, bytes per microsecond (PCIe 3 x16).
    pub h2d_bytes_per_us: f64,
    /// Fixed cost of one host-to-device copy call, microseconds.
    pub h2d_latency_us: f64,
    /// Smallest time a block can take (scheduling granularity floor), us.
    pub min_block_us: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            sm_count: 80,
            flops_per_sm_per_us: 196_000.0, // ~15.7 TFLOP/s across 80 SMs
            kernel_launch_us: 5.0,
            h2d_bytes_per_us: 12_000.0, // ~12 GB/s effective
            h2d_latency_us: 8.0,
            min_block_us: 0.2,
        }
    }
}

impl GpuModel {
    /// Time for one thread block executing `flops` with `traits`.
    pub fn block_time_us(&self, flops: f64, traits: KernelTraits) -> f64 {
        (flops * traits.cost_multiplier() / self.flops_per_sm_per_us).max(self.min_block_us)
    }

    /// Time to copy `bytes` host-to-device.
    pub fn copy_time_us(&self, bytes: usize) -> f64 {
        self.h2d_latency_us + bytes as f64 / self.h2d_bytes_per_us
    }
}

/// Device-level constants for the simulated multicore CPU.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Number of cores.
    pub cores: usize,
    /// Peak FLOPs per core per microsecond.
    pub flops_per_core_per_us: f64,
    /// Per-parallel-region fork/join overhead, microseconds.
    pub fork_join_us: f64,
}

impl CpuModel {
    /// A 64-core Graviton2-like CPU (§7's `c6g.16xlarge`).
    pub fn graviton64() -> Self {
        CpuModel {
            cores: 64,
            flops_per_core_per_us: 16_000.0,
            fork_join_us: 10.0,
        }
    }

    /// An 8-core Graviton2-like CPU (§7's `c6g.2xlarge`).
    pub fn graviton8() -> Self {
        CpuModel {
            cores: 8,
            flops_per_core_per_us: 16_000.0,
            fork_join_us: 6.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits_order_as_expected() {
        let v = KernelTraits::vendor().cost_multiplier();
        let g = KernelTraits::generated().cost_multiplier();
        let gg = KernelTraits::generated().with_guards().cost_multiplier();
        let gi = KernelTraits::generated().with_indirect().cost_multiplier();
        let gh = KernelTraits::generated()
            .with_hoisted_indirect()
            .cost_multiplier();
        assert!(v < g && g < gg && g < gi);
        assert!(gh < gi, "hoisting must recover most of the penalty");
    }

    #[test]
    fn block_time_has_floor() {
        let m = GpuModel::default();
        assert_eq!(m.block_time_us(0.0, KernelTraits::vendor()), m.min_block_us);
        assert!(m.block_time_us(1e9, KernelTraits::vendor()) > 1000.0);
    }

    #[test]
    fn proxy_score_orders_vectorization_tiers() {
        let panel = proxy_score(1000, 0, 0, 100, (4, 0, 0));
        let sweep = proxy_score(1000, 0, 0, 100, (0, 0, 4));
        let scalar = proxy_score(1000, 0, 0, 100, (0, 0, 0));
        assert!(panel < sweep && sweep < scalar);
        // Guards and aux loads are charged above plain flops.
        assert!(proxy_score(1000, 100, 0, 0, (0, 0, 0)) > scalar - 50.0 + 150.0 - 1.0);
        assert!(
            proxy_score(0, 0, 10, 0, (0, 0, 0)) > proxy_score(10, 0, 0, 0, (0, 0, 0)),
            "an aux load outprices a flop"
        );
        // Deterministic: same inputs, same score.
        assert_eq!(
            proxy_score(123, 4, 5, 6, (1, 2, 3)),
            proxy_score(123, 4, 5, 6, (1, 2, 3))
        );
    }

    #[test]
    fn scalar_inner_is_a_heavy_penalty() {
        let base = KernelTraits::generated().cost_multiplier();
        let scalar = KernelTraits::generated()
            .with_scalar_inner()
            .cost_multiplier();
        assert!(scalar > 2.0 * base);
    }

    #[test]
    fn copy_time_scales_with_bytes() {
        let m = GpuModel::default();
        let t1 = m.copy_time_us(1_000);
        let t2 = m.copy_time_us(10_000_000);
        assert!(t2 > t1);
        assert!(t1 >= m.h2d_latency_us);
    }
}
