//! Persistent work-stealing CPU runtime: the execution substrate behind
//! [`crate::cpu::CpuPool`].
//!
//! The CPU experiments (Table 5, Table 9, Fig. 27) are dominated by many
//! *small* parallel regions — one QKV projection, one batch of ragged SDPA
//! rows, one layer norm — so the old per-call `std::thread::scope`
//! executor paid a spawn/join cycle per region and the Fig. 27 thread
//! sweep measured spawn overhead as much as scheduling policy. This module
//! replaces it with a long-lived worker team:
//!
//! * **Parked workers.** `team - 1` OS threads are spawned once (lazily,
//!   process-wide via [`Runtime::global`]) and park on a condvar. Posting a
//!   parallel region bumps an epoch counter and wakes them; no thread is
//!   created or destroyed per call.
//! * **Chunked deques with stealing.** The iteration range is cut into
//!   chunks of `grain` iterations. Each participant owns a deque of
//!   contiguous chunks and pops from the front; an idle participant steals
//!   from the *back* of a victim's deque ([`Schedule::Dynamic`]). This is
//!   the load-balanced policy CoRa's ragged loops rely on (§6, Fig. 27).
//! * **Grain size.** Tiny ragged rows batch into chunks instead of paying
//!   one atomic operation per iteration; the default grain targets ~16
//!   chunks per participant and is overridable per pool
//!   ([`crate::cpu::CpuPool::with_grain`]).
//! * **Static schedule.** [`Schedule::Static`] splits the range into one
//!   contiguous chunk per participant and never rebalances — the policy
//!   under which ragged workloads show load imbalance, kept for the
//!   ablation benches.
//! * **Panic propagation.** A panicking iteration poisons the region
//!   (remaining chunks are skipped), the payload is captured, and the
//!   caller re-raises it after the region completes; workers survive.
//! * **Nested parallelism.** A parallel region entered from inside another
//!   region runs inline on the calling thread — the team is never
//!   oversubscribed and re-entry cannot deadlock.
//!
//! # Safety
//!
//! The workspace denies `unsafe_code`; this module and the VM's shared
//! output cell (`SharedOut` in [`crate::vm`], which carries its own
//! disjoint-store safety argument) are the two narrowly scoped
//! exceptions. Persistent workers must call
//! a borrowed closure (`&dyn Fn(usize) + Sync`) that is **not** `'static`,
//! which no safe std API permits — `std::thread::scope` exists precisely
//! to tie such borrows to a scope, and re-entering a scope per region is
//! the overhead being removed. The lifetime is erased into a raw pointer
//! (`FuncPtr`) whose dereferences are all completed before
//! [`Runtime::run`] returns: the caller blocks until every chunk has been
//! executed and accounted (`remaining == 0`, `AcqRel`/`Acquire` ordering),
//! and workers reach the closure only through chunks. A worker that wakes
//! late finds empty deques and never touches the pointer.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Locks a mutex, ignoring poisoning: the runtime's own state is always
/// consistent (guards protect plain data, never invariants spanning a
/// panic), and user panics are propagated separately.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scheduling policy for one parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Chunks of `grain` iterations, work-stealing between participants:
    /// the load-balanced policy for ragged loops (Fig. 27's "CoRa" line).
    Dynamic,
    /// One contiguous chunk per participant, never rebalanced: the
    /// load-imbalance baseline used by the scheduling ablations.
    Static,
}

/// Lifetime-erased pointer to the loop body of the region in flight.
///
/// Safety contract: dereferenced only while executing a chunk, and every
/// chunk execution happens-before [`Runtime::run`] returns (the caller
/// waits for `remaining == 0`). Late-waking workers see empty deques and
/// never dereference. Dangling *values* of this pointer may survive inside
/// an `Arc<Job>` held by a worker after the region ends — which is why it
/// is a raw pointer and not a `&'static` reference.
struct FuncPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and is only used
// within the region's lifetime as described on `FuncPtr`.
unsafe impl Send for FuncPtr {}
// SAFETY: as above — `&FuncPtr` only exposes a `Sync` pointee.
unsafe impl Sync for FuncPtr {}

/// Erases the lifetime of a borrowed loop body.
fn erase(f: &(dyn Fn(usize) + Sync)) -> FuncPtr {
    // SAFETY: fat-pointer-to-fat-pointer transmute that only erases the
    // lifetime; validity is maintained by the `FuncPtr` contract.
    FuncPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
    })
}

/// One posted parallel region.
struct Job {
    func: FuncPtr,
    /// Number of participants (caller + `width - 1` worker slots).
    width: usize,
    /// Arrival-order slot claims: the first `width - 1` workers to reach
    /// the job take participant slots 1..width; later arrivals skip. This
    /// lets the poster wake only as many workers as the region needs.
    claimed: AtomicUsize,
    /// Whether idle participants may steal from other deques.
    steal: bool,
    /// Per-participant chunk deques; owner pops front, thieves pop back.
    deques: Vec<Mutex<VecDeque<Range<usize>>>>,
    /// Iterations not yet executed-and-accounted. The region is complete
    /// when this reaches zero.
    remaining: AtomicUsize,
    /// Set when any chunk panicked: remaining chunks are skipped (but
    /// still accounted) so the region drains quickly.
    poisoned: AtomicBool,
    /// First captured panic payload, re-raised by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Pops the next chunk for participant `me`: own deque first (front),
    /// then — under [`Schedule::Dynamic`] — other deques back-first.
    fn take_chunk(&self, me: usize) -> Option<Range<usize>> {
        if let Some(r) = lock(&self.deques[me]).pop_front() {
            return Some(r);
        }
        if self.steal {
            for k in 1..self.width {
                let victim = (me + k) % self.width;
                if let Some(r) = lock(&self.deques[victim]).pop_back() {
                    return Some(r);
                }
            }
        }
        None
    }

    /// Runs chunks until none are obtainable, then returns. The last
    /// participant to account a chunk signals completion.
    fn run_participant(&self, me: usize) {
        while let Some(chunk) = self.take_chunk(me) {
            let len = chunk.len();
            if !self.poisoned.load(Ordering::Relaxed) {
                // SAFETY: see `FuncPtr` — we hold an unexecuted chunk, so
                // `remaining > 0` and the caller is still blocked in `run`.
                let f = unsafe { &*self.func.0 };
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for i in chunk {
                        f(i);
                    }
                }));
                if let Err(payload) = result {
                    self.poisoned.store(true, Ordering::Relaxed);
                    let mut slot = lock(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            if self.remaining.fetch_sub(len, Ordering::AcqRel) == len {
                *lock(&self.done) = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every iteration has been accounted.
    fn wait_done(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The post box workers park on.
struct PostBox {
    /// Bumped once per posted region; workers compare against the last
    /// epoch they served to detect fresh work.
    epoch: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    post: Mutex<PostBox>,
    post_cv: Condvar,
}

thread_local! {
    /// True on runtime worker threads, and on a caller thread while it
    /// participates in a region: nested `run` calls execute inline.
    static IN_RUNTIME: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker_main(shared: Arc<Shared>) {
    IN_RUNTIME.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut post = lock(&shared.post);
            loop {
                if post.shutdown {
                    return;
                }
                if post.epoch != seen {
                    seen = post.epoch;
                    break post.job.clone();
                }
                post = shared.post_cv.wait(post).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(job) = job {
            let slot = job.claimed.fetch_add(1, Ordering::Relaxed);
            if slot + 1 < job.width {
                job.run_participant(slot + 1);
            }
        }
    }
}

/// A persistent team of parked worker threads executing parallel regions.
///
/// One process-wide instance ([`Runtime::global`]) backs every
/// [`crate::cpu::CpuPool`]; tests may build private teams with
/// [`Runtime::new`] (they are joined on drop). Regions on one team are
/// serialized: a second caller blocks until the first region completes
/// (its own work then runs with the full team), and re-entrant calls from
/// inside a region run inline.
pub struct Runtime {
    shared: Arc<Shared>,
    /// Serializes regions on this team (post → completion).
    region: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Builds a team of `threads` participants: the calling thread plus
    /// `threads - 1` parked workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker thread cannot be spawned.
    pub fn new(threads: usize) -> Runtime {
        assert!(threads > 0, "thread count must be positive");
        let shared = Arc::new(Shared {
            post: Mutex::new(PostBox {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            post_cv: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cora-worker-{id}"))
                    .spawn(move || worker_main(shared))
                    .expect("failed to spawn runtime worker")
            })
            .collect();
        Runtime {
            shared,
            region: Mutex::new(()),
            handles,
            threads,
        }
    }

    /// The process-wide team, created on first use. Its size is
    /// `CORA_NUM_THREADS` (if set to a positive integer) or the machine's
    /// available parallelism. Benches pin thread counts per call via the
    /// `width` argument of [`Runtime::run`] / `CpuPool::new(t)` — the team
    /// itself is sized once.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("CORA_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            Runtime::new(threads)
        })
    }

    /// Team size (participants, including a region's calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n` on up to `width` participants.
    ///
    /// `grain` is the chunk size under [`Schedule::Dynamic`] (`None`
    /// targets ~16 chunks per participant); it is ignored under
    /// [`Schedule::Static`], which always cuts one chunk per participant.
    /// Panics inside `f` are re-raised on the calling thread after the
    /// region drains.
    pub fn run<F>(&self, n: usize, width: usize, schedule: Schedule, grain: Option<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let width = width.clamp(1, self.threads);
        if width == 1 || n == 1 || IN_RUNTIME.with(|c| c.get()) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let (grain, steal) = match schedule {
            Schedule::Static => (n.div_ceil(width.min(n)), false),
            Schedule::Dynamic => {
                let g = grain.unwrap_or_else(|| n.div_ceil(width * 16)).max(1);
                (g, true)
            }
        };
        let count = n.div_ceil(grain);
        let width = width.min(count);
        if width == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        // Deal contiguous blocks of chunks to each participant's deque:
        // owners keep locality, thieves take from the far end.
        let per_deque = count.div_ceil(width);
        let mut deques: Vec<Mutex<VecDeque<Range<usize>>>> =
            (0..width).map(|_| Mutex::new(VecDeque::new())).collect();
        for c in 0..count {
            let lo = c * grain;
            let hi = ((c + 1) * grain).min(n);
            let owner = (c / per_deque).min(width - 1);
            deques[owner]
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(lo..hi);
        }
        let job = Arc::new(Job {
            func: erase(&f),
            width,
            claimed: AtomicUsize::new(0),
            steal,
            deques,
            remaining: AtomicUsize::new(n),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        let region = lock(&self.region);
        {
            let mut post = lock(&self.shared.post);
            post.epoch = post.epoch.wrapping_add(1);
            post.job = Some(Arc::clone(&job));
            // Wake only as many workers as the region has slots for:
            // participation is claimed in arrival order, so any woken (or
            // already-running) worker can serve any slot, and a narrow
            // region on a wide team avoids a team-wide thundering herd.
            let wanted = width - 1;
            if wanted >= self.handles.len() {
                self.shared.post_cv.notify_all();
            } else {
                for _ in 0..wanted {
                    self.shared.post_cv.notify_one();
                }
            }
        }
        IN_RUNTIME.with(|c| c.set(true));
        job.run_participant(0);
        IN_RUNTIME.with(|c| c.set(false));
        job.wait_done();
        // Drop the region's job from the post box: late-waking workers see
        // a fresh epoch with no job and go straight back to sleep.
        lock(&self.shared.post).job = None;
        drop(region);
        let payload = lock(&job.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut post = lock(&self.shared.post);
            post.shutdown = true;
            self.shared.post_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dynamic_covers_every_index_once() {
        let rt = Runtime::new(4);
        for &n in &[1usize, 2, 7, 64, 1000] {
            for grain in [None, Some(1), Some(3), Some(64), Some(5000)] {
                let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                rt.run(n, 4, Schedule::Dynamic, grain, |i| {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "n={n} grain={grain:?}"
                );
            }
        }
    }

    #[test]
    fn static_covers_every_index_once() {
        let rt = Runtime::new(3);
        for &n in &[1usize, 2, 3, 10, 100] {
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            rt.run(n, 3, Schedule::Static, None, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}"
            );
        }
    }

    #[test]
    fn ragged_stress_dynamic_and_static_both_cover() {
        // Ragged per-iteration costs (quadratic decay, like sorted
        // sequence lengths): both policies must execute every index
        // exactly once even under heavy imbalance and repeated regions.
        let rt = Runtime::new(4);
        let n = 256usize;
        let cost = |i: usize| ((n - i) * (n - i)) / 512 + 1;
        for round in 0..20 {
            for schedule in [Schedule::Dynamic, Schedule::Static] {
                let sums: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                rt.run(n, 4, schedule, Some(1), |i| {
                    let mut acc = 0u64;
                    for k in 0..cost(i) {
                        acc = acc.wrapping_add((k as u64).wrapping_mul(0x9e3779b9));
                    }
                    sums[i].store(acc.max(1), Ordering::Relaxed);
                });
                assert!(
                    sums.iter().all(|s| s.load(Ordering::Relaxed) != 0),
                    "round={round} schedule={schedule:?}"
                );
            }
        }
    }

    #[test]
    fn width_capped_to_team() {
        let rt = Runtime::new(2);
        let hits = AtomicU64::new(0);
        rt.run(100, 64, Schedule::Dynamic, None, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_regions_run_inline() {
        let rt = Runtime::new(4);
        let hits = AtomicU64::new(0);
        rt.run(8, 4, Schedule::Dynamic, Some(1), |_| {
            // Inner region: must run inline on this participant (the
            // global runtime would deadlock re-posting otherwise).
            Runtime::global().run(16, 4, Schedule::Dynamic, None, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn panic_propagates_and_team_survives() {
        let rt = Runtime::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.run(100, 4, Schedule::Dynamic, Some(1), |i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 37"), "unexpected payload: {msg}");
        // The team must stay usable after a panicked region.
        let hits = AtomicU64::new(0);
        rt.run(50, 4, Schedule::Dynamic, None, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn drop_joins_workers() {
        let rt = Runtime::new(3);
        let hits = AtomicU64::new(0);
        rt.run(10, 3, Schedule::Dynamic, None, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        drop(rt);
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn global_runtime_is_shared_and_respects_min_one_thread() {
        let rt = Runtime::global();
        assert!(rt.threads() >= 1);
        let hits = AtomicU64::new(0);
        rt.run(100, rt.threads(), Schedule::Dynamic, None, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }
}
