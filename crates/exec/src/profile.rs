//! Per-operator timing breakdowns (Fig. 13, Fig. 24, Fig. 25).
//!
//! A [`Profiler`] accumulates named spans — either wall-clock (CPU
//! experiments) or simulated microseconds (GPU experiments) — and renders
//! the per-operator breakdown tables the paper reports.

use std::collections::HashMap;
use std::time::Instant;

/// Accumulates named time spans.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    spans: Vec<(String, f64)>,
    index: HashMap<String, usize>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `us` microseconds to span `name` (creating it on first use;
    /// insertion order is preserved for reporting).
    pub fn add_us(&mut self, name: &str, us: f64) {
        match self.index.get(name) {
            Some(&i) => self.spans[i].1 += us,
            None => {
                self.index.insert(name.to_string(), self.spans.len());
                self.spans.push((name.to_string(), us));
            }
        }
    }

    /// Times `f` with wall-clock and charges it to `name`; returns `f`'s
    /// result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add_us(name, t0.elapsed().as_secs_f64() * 1e6);
        out
    }

    /// Microseconds recorded for `name` (0 if absent).
    pub fn get_us(&self, name: &str) -> f64 {
        self.index
            .get(name)
            .map(|&i| self.spans[i].1)
            .unwrap_or(0.0)
    }

    /// Total microseconds across spans.
    pub fn total_us(&self) -> f64 {
        self.spans.iter().map(|(_, v)| v).sum()
    }

    /// All spans in insertion order.
    pub fn spans(&self) -> &[(String, f64)] {
        &self.spans
    }

    /// Renders a two-column table (name, milliseconds).
    pub fn render_ms(&self) -> String {
        let mut out = String::new();
        let width = self
            .spans
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max(5);
        for (name, us) in &self.spans {
            out.push_str(&format!("{name:width$}  {:>9.3} ms\n", us / 1e3));
        }
        out.push_str(&format!(
            "{:width$}  {:>9.3} ms\n",
            "TOTAL",
            self.total_us() / 1e3
        ));
        out
    }

    /// Merges another profiler's spans into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (name, us) in &other.spans {
            self.add_us(name, *us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_name() {
        let mut p = Profiler::new();
        p.add_us("gemm", 10.0);
        p.add_us("softmax", 5.0);
        p.add_us("gemm", 2.5);
        assert_eq!(p.get_us("gemm"), 12.5);
        assert_eq!(p.total_us(), 17.5);
        assert_eq!(p.spans()[0].0, "gemm");
    }

    #[test]
    fn time_measures_something() {
        let mut p = Profiler::new();
        let v = p.time("work", || {
            let mut s = 0u64;
            for i in 0..100_000u64 {
                s = s.wrapping_add(i);
            }
            s
        });
        assert!(v > 0);
        assert!(p.get_us("work") > 0.0);
    }

    #[test]
    fn render_includes_total() {
        let mut p = Profiler::new();
        p.add_us("a", 1000.0);
        let r = p.render_ms();
        assert!(r.contains("TOTAL"));
        assert!(r.contains("a"));
    }

    #[test]
    fn merge_sums_spans() {
        let mut a = Profiler::new();
        a.add_us("x", 1.0);
        let mut b = Profiler::new();
        b.add_us("x", 2.0);
        b.add_us("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get_us("x"), 3.0);
        assert_eq!(a.get_us("y"), 3.0);
    }
}
