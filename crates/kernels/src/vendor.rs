//! The vendor-library model: how cuBLAS/MKL-style kernels appear to the
//! simulated GPU.
//!
//! A vendor kernel computes on *fully padded* rectangular operands at top
//! efficiency. This module turns dense operator shapes into
//! [`SimKernel`]s (per-block cost lists) using the shared cost model, so
//! baselines and CoRa-generated kernels are priced by the same machine.
//! The defining trade-off is preserved: vendor kernels are the fastest per
//! FLOP but must execute every padding FLOP.

use cora_exec::cost::{GpuModel, KernelTraits};
use cora_exec::gpu::SimKernel;

use crate::gemm::gemm_flops;

/// Tile sizes used when carving dense gemms into thread blocks.
#[derive(Debug, Clone, Copy)]
pub struct GemmTiling {
    /// Output tile rows per block.
    pub tile_m: usize,
    /// Output tile columns per block.
    pub tile_n: usize,
}

impl Default for GemmTiling {
    fn default() -> Self {
        GemmTiling {
            tile_m: 64,
            tile_n: 64,
        }
    }
}

/// Builds the block-cost list of a dense `m×k×n` gemm.
pub fn gemm_kernel(
    name: &str,
    model: &GpuModel,
    traits: KernelTraits,
    tiling: GemmTiling,
    m: usize,
    k: usize,
    n: usize,
) -> SimKernel {
    let mut blocks = Vec::new();
    let bm = m.div_ceil(tiling.tile_m).max(1);
    let bn = n.div_ceil(tiling.tile_n).max(1);
    for bi in 0..bm {
        let rows = (m - bi * tiling.tile_m).min(tiling.tile_m);
        for bj in 0..bn {
            let cols = (n - bj * tiling.tile_n).min(tiling.tile_n);
            let flops = gemm_flops(rows, k, cols);
            blocks.push(model.block_time_us(flops, traits));
        }
    }
    SimKernel::new(name, blocks)
}

/// Builds the block list of a *batched* dense gemm where every problem in
/// the batch is padded to the same `m×k×n` (the cuBLAS
/// `batched gemm` baseline of Fig. 9).
#[allow(clippy::too_many_arguments)]
pub fn batched_gemm_kernel(
    name: &str,
    model: &GpuModel,
    traits: KernelTraits,
    tiling: GemmTiling,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) -> SimKernel {
    let one = gemm_kernel(name, model, traits, tiling, m, k, n);
    let mut blocks = Vec::with_capacity(one.block_costs_us.len() * batch);
    for _ in 0..batch {
        blocks.extend_from_slice(&one.block_costs_us);
    }
    SimKernel::new(name, blocks)
}

/// Builds the block list of a batched gemm with *per-problem* shapes —
/// the hand-optimised vgemm baselines (Li et al., 2019; MKL's vgemm),
/// which skip padding FLOPs but still run at vendor efficiency.
pub fn vgemm_kernel(
    name: &str,
    model: &GpuModel,
    traits: KernelTraits,
    tiling: GemmTiling,
    shapes: &[(usize, usize, usize)],
) -> SimKernel {
    let mut blocks = Vec::new();
    for &(m, k, n) in shapes {
        blocks.extend(gemm_kernel("t", model, traits, tiling, m, k, n).block_costs_us);
    }
    SimKernel::new(name, blocks)
}

/// Builds the block list of an elementwise kernel over `elems` elements
/// with `ops_per_elem` FLOPs each, `elems_per_block` per thread block.
pub fn elementwise_kernel(
    name: &str,
    model: &GpuModel,
    traits: KernelTraits,
    elems: usize,
    ops_per_elem: f64,
    elems_per_block: usize,
) -> SimKernel {
    let nblocks = elems.div_ceil(elems_per_block).max(1);
    let mut blocks = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let e = (elems - b * elems_per_block).min(elems_per_block);
        blocks.push(model.block_time_us(e as f64 * ops_per_elem, traits));
    }
    SimKernel::new(name, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cora_exec::gpu::GpuSim;

    #[test]
    fn gemm_blocks_cover_whole_output() {
        let model = GpuModel::default();
        let k = gemm_kernel(
            "g",
            &model,
            KernelTraits::vendor(),
            GemmTiling::default(),
            130,
            64,
            70,
        );
        // ceil(130/64) * ceil(70/64) = 3 * 2.
        assert_eq!(k.block_costs_us.len(), 6);
    }

    #[test]
    fn padded_batch_costs_more_than_vgemm() {
        let model = GpuModel::default();
        let shapes: Vec<(usize, usize, usize)> = (0..8).map(|i| (128 + 64 * i, 512, 512)).collect();
        let max_m = shapes.iter().map(|s| s.0).max().unwrap();
        let padded = batched_gemm_kernel(
            "pad",
            &model,
            KernelTraits::vendor(),
            GemmTiling::default(),
            shapes.len(),
            max_m,
            512,
            512,
        );
        let ragged = vgemm_kernel(
            "vg",
            &model,
            KernelTraits::vendor(),
            GemmTiling::default(),
            &shapes,
        );
        let sim = GpuSim::new();
        let tp = sim.run_kernel(&padded).makespan_us;
        let tr = sim.run_kernel(&ragged).makespan_us;
        assert!(tr < tp, "ragged {tr} must beat padded {tp}");
    }

    #[test]
    fn elementwise_block_count() {
        let model = GpuModel::default();
        let k = elementwise_kernel("e", &model, KernelTraits::vendor(), 1000, 1.0, 256);
        assert_eq!(k.block_costs_us.len(), 4);
    }
}
