//! Elementwise and data-movement operators of the encoder layer: bias add,
//! residual add, activations, transposes, and the padding-change copies
//! (AddPad / RemovePad / ChangePad of Fig. 3).

/// Adds `bias` (length `n`) to each length-`n` row of `data`.
pub fn bias_add_rows(data: &mut [f32], n: usize, bias: &[f32]) {
    assert_eq!(bias.len(), n, "bias length mismatch");
    for row in data.chunks_mut(n) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += *b;
        }
    }
}

/// `data[i] += other[i]`.
pub fn residual_add(data: &mut [f32], other: &[f32]) {
    assert_eq!(data.len(), other.len(), "residual length mismatch");
    for (v, o) in data.iter_mut().zip(other) {
        *v += *o;
    }
}

/// In-place ReLU.
pub fn relu(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = v.max(0.0);
    }
}

/// In-place tanh-approximation GELU (the activation of the encoder's FF1).
pub fn gelu(data: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for v in data.iter_mut() {
        let x = *v;
        *v = 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh());
    }
}

/// Scales every element by `s`.
pub fn scale(data: &mut [f32], s: f32) {
    for v in data.iter_mut() {
        *v *= s;
    }
}

/// Copies a `[rows, n]` matrix into a `[rows, n_padded]` buffer
/// (`AddPad`): each row is zero-extended.
pub fn add_pad_rows(src: &[f32], n: usize, n_padded: usize, dst: &mut [f32]) {
    assert!(n_padded >= n, "padding must not shrink rows");
    let rows = src.len() / n;
    assert!(dst.len() >= rows * n_padded, "destination too small");
    for r in 0..rows {
        dst[r * n_padded..r * n_padded + n].copy_from_slice(&src[r * n..(r + 1) * n]);
        for v in &mut dst[r * n_padded + n..(r + 1) * n_padded] {
            *v = 0.0;
        }
    }
}

/// Copies a `[rows, n_padded]` buffer back to `[rows, n]` (`RemovePad`).
pub fn remove_pad_rows(src: &[f32], n_padded: usize, n: usize, dst: &mut [f32]) {
    assert!(n_padded >= n, "cannot remove negative padding");
    let rows = src.len() / n_padded;
    assert!(dst.len() >= rows * n, "destination too small");
    for r in 0..rows {
        dst[r * n..(r + 1) * n].copy_from_slice(&src[r * n_padded..r * n_padded + n]);
    }
}

/// Transposes an `[m, n]` row-major matrix into `[n, m]`.
pub fn transpose(src: &[f32], m: usize, n: usize, dst: &mut [f32]) {
    assert!(src.len() >= m * n && dst.len() >= m * n, "buffer too small");
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_applies_per_row() {
        let mut d = vec![0.0, 0.0, 1.0, 1.0];
        bias_add_rows(&mut d, 2, &[10.0, 20.0]);
        assert_eq!(d, vec![10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn residual_adds() {
        let mut d = vec![1.0, 2.0];
        residual_add(&mut d, &[0.5, 0.5]);
        assert_eq!(d, vec![1.5, 2.5]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut d = vec![-1.0, 2.0, 0.0];
        relu(&mut d);
        assert_eq!(d, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut d = vec![0.0f32, 100.0];
        gelu(&mut d);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 100.0).abs() < 1e-3, "gelu(x) -> x for large x");
    }

    #[test]
    fn pad_round_trip() {
        let src = vec![1.0, 2.0, 3.0, 4.0]; // [2,2]
        let mut padded = vec![9.0; 6]; // [2,3]
        add_pad_rows(&src, 2, 3, &mut padded);
        assert_eq!(padded, vec![1.0, 2.0, 0.0, 3.0, 4.0, 0.0]);
        let mut back = vec![0.0; 4];
        remove_pad_rows(&padded, 3, 2, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn transpose_2x3() {
        let src = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut dst = vec![0.0; 6];
        transpose(&src, 2, 3, &mut dst);
        assert_eq!(dst, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}
