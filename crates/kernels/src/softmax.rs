//! Numerically stable row softmax, with optional masked/valid lengths.
//!
//! The transformer's Softmax operator runs over attention-score rows whose
//! valid length varies per sequence (and, under decoder masking, per row).

/// In-place softmax over `row[..valid]`; entries beyond `valid` are set to
/// zero (they correspond to padding and must not carry probability mass).
pub fn softmax_row(row: &mut [f32], valid: usize) {
    let valid = valid.min(row.len());
    if valid == 0 {
        for v in row.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    let mut maxv = f32::NEG_INFINITY;
    for &v in &row[..valid] {
        maxv = maxv.max(v);
    }
    if maxv == f32::NEG_INFINITY {
        // Fully masked prefix (every score -inf, e.g. an empty sequence
        // under causal masking): `v - maxv` would be NaN. No token may
        // carry probability mass, so the row is all zeros.
        for v in row.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    let mut sum = 0.0f32;
    for v in &mut row[..valid] {
        *v = (*v - maxv).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in &mut row[..valid] {
        *v *= inv;
    }
    for v in &mut row[valid..] {
        *v = 0.0;
    }
}

/// Softmax over each length-`n` row of a contiguous `[rows, n]` buffer,
/// with a shared valid length.
pub fn softmax_rows(data: &mut [f32], n: usize, valid: usize) {
    for row in data.chunks_mut(n) {
        softmax_row(row, valid);
    }
}

/// Parallel softmax over each length-`n` row of `data`, batched onto the
/// pool's persistent runtime (rows are tiny, so they are packed into
/// cost-balanced batches rather than scheduled one by one).
pub fn parallel_softmax_rows(pool: &cora_exec::CpuPool, data: &mut [f32], n: usize, valid: usize) {
    pool.parallel_uniform_rows(data, n, |row| softmax_row(row, valid));
}

/// FLOP count for one softmax row of length `l` (max + sub/exp + sum +
/// div ≈ 4 ops per element, the convention used for the analytic figures).
pub fn softmax_flops(l: usize) -> f64 {
    4.0 * l as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one_and_orders() {
        let mut r = vec![1.0, 3.0, 2.0];
        softmax_row(&mut r, 3);
        let s: f32 = r.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(r[1] > r[2] && r[2] > r[0]);
    }

    #[test]
    fn masked_tail_gets_zero() {
        let mut r = vec![5.0, 5.0, 100.0, 100.0];
        softmax_row(&mut r, 2);
        assert_eq!(&r[2..], &[0.0, 0.0]);
        assert!((r[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn stable_for_large_values() {
        let mut r = vec![1e30f32, 1e30];
        softmax_row(&mut r, 2);
        assert!((r[0] - 0.5).abs() < 1e-6);
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_valid_is_all_zero() {
        let mut r = vec![3.0, 4.0];
        softmax_row(&mut r, 0);
        assert_eq!(r, vec![0.0, 0.0]);
    }

    #[test]
    fn fully_masked_prefix_is_all_zero_not_nan() {
        // All valid entries -inf (a fully masked row): the old code
        // produced NaN everywhere via (-inf) - (-inf).
        let mut r = vec![f32::NEG_INFINITY, f32::NEG_INFINITY, 7.0];
        softmax_row(&mut r, 2);
        assert_eq!(r, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn partially_masked_prefix_still_normalizes() {
        let mut r = vec![f32::NEG_INFINITY, 1.0, 1.0];
        softmax_row(&mut r, 3);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 0.5).abs() < 1e-6 && (r[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rows_helper_applies_per_row() {
        let mut d = vec![0.0, 0.0, 10.0, 10.0];
        softmax_rows(&mut d, 2, 2);
        assert!((d[0] - 0.5).abs() < 1e-6);
        assert!((d[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn parallel_rows_matches_serial() {
        let n = 7;
        let rows = 300;
        let mut serial: Vec<f32> = (0..rows * n).map(|i| ((i % 23) as f32) - 11.0).collect();
        let mut par = serial.clone();
        softmax_rows(&mut serial, n, 5);
        parallel_softmax_rows(&cora_exec::CpuPool::new(4), &mut par, n, 5);
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_rows_processes_trailing_partial_row() {
        // data.len() not a multiple of n: the short tail row must be
        // softmaxed too, matching serial chunks_mut semantics.
        let n = 4;
        let mut serial: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let mut par = serial.clone();
        softmax_rows(&mut serial, n, n);
        parallel_softmax_rows(&cora_exec::CpuPool::new(4), &mut par, n, n);
        assert_eq!(serial, par);
        let tail: f32 = par[8..].iter().sum();
        assert!((tail - 1.0).abs() < 1e-6, "tail row must be normalized");
    }
}
