//! # cora-kernels
//!
//! Dense baseline kernels and microkernels for the CoRa reproduction:
//! blocked row-major gemm (plain, transposed-B, batched, triangular),
//! softmax, layer norm, elementwise/padding-change operators, and the
//! vendor-library cost model that prices cuBLAS/MKL-style kernels on the
//! simulated GPU.
//!
//! CoRa-compiled operators dispatch their dense inner tiles to the
//! leading-dimension gemm variants here, mirroring the paper's CPU backend
//! offloading inner tiles to MKL.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod elementwise;
pub mod gemm;
pub mod layernorm;
pub mod softmax;
pub mod vendor;

pub use gemm::{
    batched_sgemm, gemm_flops, parallel_sgemm, sgemm, sgemm_ld, sgemm_nt, sgemm_nt_ld, trmm_lower,
};
pub use layernorm::{layernorm_row, layernorm_rows, parallel_layernorm_rows};
pub use softmax::{parallel_softmax_rows, softmax_row, softmax_rows};
