//! Layer normalisation over hidden vectors.

/// In-place layer norm of one hidden vector with scale `gamma`, shift
/// `beta` and stabiliser `eps`.
pub fn layernorm_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let n = row.len();
    assert_eq!(gamma.len(), n, "gamma length mismatch");
    assert_eq!(beta.len(), n, "beta length mismatch");
    if n == 0 {
        return;
    }
    let mean: f32 = row.iter().sum::<f32>() / n as f32;
    let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
    let inv = 1.0 / (var + eps).sqrt();
    for ((v, g), b) in row.iter_mut().zip(gamma).zip(beta) {
        *v = (*v - mean) * inv * *g + *b;
    }
}

/// Layer norm over each length-`n` row of a contiguous `[rows, n]` buffer.
pub fn layernorm_rows(data: &mut [f32], n: usize, gamma: &[f32], beta: &[f32], eps: f32) {
    for row in data.chunks_mut(n) {
        layernorm_row(row, gamma, beta, eps);
    }
}

/// Parallel layer norm over each length-`n` row of `data`, batched onto
/// the pool's persistent runtime.
pub fn parallel_layernorm_rows(
    pool: &cora_exec::CpuPool,
    data: &mut [f32],
    n: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    pool.parallel_uniform_rows(data, n, |row| layernorm_row(row, gamma, beta, eps));
}

/// FLOP count for one layer-norm row of length `n` (≈ 8 ops/element).
pub fn layernorm_flops(n: usize) -> f64 {
    8.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_to_zero_mean_unit_var() {
        let mut r = vec![1.0, 2.0, 3.0, 4.0];
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        layernorm_row(&mut r, &g, &b, 1e-5);
        let mean: f32 = r.iter().sum::<f32>() / 4.0;
        let var: f32 = r.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_applied() {
        let mut r = vec![-1.0, 1.0];
        let g = vec![2.0, 2.0];
        let b = vec![10.0, 10.0];
        layernorm_row(&mut r, &g, &b, 0.0);
        assert!((r[0] - 8.0).abs() < 1e-5);
        assert!((r[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "gamma length mismatch")]
    fn mismatched_gamma_rejected() {
        let mut r = vec![1.0, 2.0];
        layernorm_row(&mut r, &[1.0], &[0.0, 0.0], 1e-5);
    }

    #[test]
    fn parallel_rows_matches_serial() {
        let n = 5;
        let rows = 257;
        let gamma: Vec<f32> = (0..n).map(|i| 0.5 + i as f32).collect();
        let beta: Vec<f32> = (0..n).map(|i| i as f32 - 2.0).collect();
        let mut serial: Vec<f32> = (0..rows * n).map(|i| ((i % 17) as f32) - 8.0).collect();
        let mut par = serial.clone();
        layernorm_rows(&mut serial, n, &gamma, &beta, 1e-5);
        parallel_layernorm_rows(
            &cora_exec::CpuPool::new(4),
            &mut par,
            n,
            &gamma,
            &beta,
            1e-5,
        );
        assert_eq!(serial, par);
    }
}
