//! Dense single-precision matrix multiplication.
//!
//! These are the workhorse kernels: the fully padded baselines call them on
//! rectangular tensors, and CoRa-compiled operators call the
//! leading-dimension variants on the dense inner tiles of ragged iteration
//! spaces — mirroring the paper's CPU backend, which "offloads the
//! computation of inner gemm tiles to MKL".
//!
//! All matrices are row-major `f32`.

/// `C[m,n] += A[m,k] · B[k,n]` (row-major, contiguous).
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_ld(m, k, n, a, k, b, n, c, n);
}

/// `C += A · B` with explicit leading dimensions, so callers can address
/// tiles inside larger (possibly ragged) buffers.
///
/// # Panics
///
/// Panics (in debug builds) if any slice is too short for the given
/// dimensions and leading dimensions.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_ld(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    debug_assert!(m == 0 || k == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert!(k == 0 || n == 0 || b.len() >= (k - 1) * ldb + n);
    debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
    // i-k-j ordering: the innermost loop streams B and C rows and
    // auto-vectorizes.
    for i in 0..m {
        let c_row = &mut c[i * ldc..i * ldc + n];
        for p in 0..k {
            let a_ip = a[i * lda + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * ldb..p * ldb + n];
            for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += a_ip * *bv;
            }
        }
    }
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ` (B stored row-major as `[n,k]`).
///
/// The form attention's `QKᵀ` takes with row-major Q and K.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_nt_ld(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    debug_assert!(m == 0 || k == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert!(n == 0 || k == 0 || b.len() >= (n - 1) * ldb + k);
    debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
    for i in 0..m {
        let a_row = &a[i * lda..i * lda + k];
        for j in 0..n {
            let b_row = &b[j * ldb..j * ldb + k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += *av * *bv;
            }
            c[i * ldc + j] += acc;
        }
    }
}

/// Contiguous convenience wrapper for [`sgemm_nt_ld`].
pub fn sgemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_nt_ld(m, k, n, a, k, b, k, c, n);
}

/// Batched gemm on equal-shaped (fully padded) operands:
/// `C[b] += A[b] · B[b]` for each of `batch` problems.
pub fn batched_sgemm(
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for bi in 0..batch {
        sgemm(
            m,
            k,
            n,
            &a[bi * m * k..(bi + 1) * m * k],
            &b[bi * k * n..(bi + 1) * k * n],
            &mut c[bi * m * n..(bi + 1) * m * n],
        );
    }
}

/// Reference triangular matrix multiply: `C[n,n] += L[n,n] · B[n,n]` where
/// `L` is lower-triangular (entries above the diagonal ignored).
///
/// Row `i` of `L` has `i+1` meaningful entries, which is what makes trmm a
/// ragged problem (§7.1).
pub fn trmm_lower(n: usize, l: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..n {
        let row = &l[i * n..i * n + i + 1];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &l_ip) in row.iter().enumerate() {
            if l_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += l_ip * *bv;
            }
        }
    }
}

/// Multithreaded gemm: `C[m,n] += A[m,k]·B[k,n]`, rows split into one
/// contiguous block per worker and dispatched onto the pool's persistent
/// runtime. Small problems (`m < 64`) run serially.
pub fn parallel_sgemm(
    pool: &cora_exec::CpuPool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    if m == 0 || n == 0 {
        return;
    }
    let workers = pool.threads().min(m);
    if workers <= 1 || m < 64 {
        sgemm(m, k, n, a, b, c);
        return;
    }
    let chunk = m.div_ceil(workers);
    // Recompute the chunk count from the rounded-up chunk size: with
    // m=64, workers=24 → chunk=3 the last two "workers" would otherwise
    // get empty chunks starting past the end of `a`.
    let workers = m.div_ceil(chunk);
    let chunk_lens: Vec<usize> = (0..workers)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(m);
            hi.saturating_sub(lo) * n
        })
        .collect();
    pool.parallel_rows(&mut c[..m * n], &chunk_lens, |w, c_chunk| {
        let rows = c_chunk.len() / n;
        let lo = w * chunk;
        sgemm(rows, k, n, &a[lo * k..(lo + rows) * k], b, c_chunk);
    });
}

/// FLOP count of a dense `m×k×n` gemm (multiply-adds counted as 2).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        let (m, k, n) = (5, 7, 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn sgemm_accumulates() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0; 4];
        let b = vec![1.0; 4];
        let mut c = vec![10.0; 4];
        sgemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, vec![12.0; 4]);
    }

    #[test]
    fn ld_variant_addresses_tiles() {
        // Multiply the top-left 2x2 tiles of 4x4 matrices.
        let a = seq(16);
        let b = seq(16);
        let mut c = vec![0.0; 16];
        sgemm_ld(2, 2, 2, &a, 4, &b, 4, &mut c, 4);
        for i in 0..2 {
            for j in 0..2 {
                let want: f32 = (0..2).map(|p| a[i * 4 + p] * b[p * 4 + j]).sum();
                assert_eq!(c[i * 4 + j], want);
            }
        }
        // Untouched region stays zero.
        assert_eq!(c[15], 0.0);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let bt = seq(n * k); // stored as [n, k]
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_nt(m, k, n, &a, &bt, &mut c1);
        assert_eq!(c1, naive(m, k, n, &a, &b));
    }

    #[test]
    fn batched_processes_each_problem() {
        let (batch, m, k, n) = (3, 2, 3, 2);
        let a = seq(batch * m * k);
        let b = seq(batch * k * n);
        let mut c = vec![0.0; batch * m * n];
        batched_sgemm(batch, m, k, n, &a, &b, &mut c);
        for bi in 0..batch {
            let want = naive(
                m,
                k,
                n,
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * k * n..(bi + 1) * k * n],
            );
            assert_eq!(&c[bi * m * n..(bi + 1) * m * n], want.as_slice());
        }
    }

    #[test]
    fn trmm_ignores_upper_triangle() {
        let n = 4;
        let mut l = seq(n * n);
        // Poison the upper triangle; trmm_lower must not read it.
        for i in 0..n {
            for j in (i + 1)..n {
                l[i * n + j] = f32::NAN;
            }
        }
        let b = seq(n * n);
        let mut c = vec![0.0; n * n];
        trmm_lower(n, &l, &b, &mut c);
        assert!(c.iter().all(|v| v.is_finite()));
        // Check one entry: c[2][1] = sum_{p<=2} l[2][p] * b[p][1].
        let want: f32 = (0..=2).map(|p| l[2 * n + p] * b[p * n + 1]).sum();
        assert_eq!(c[2 * n + 1], want);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
    }

    #[test]
    fn parallel_sgemm_matches_serial() {
        let (m, k, n) = (130, 17, 11);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c_serial = vec![0.0; m * n];
        let mut c_par = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c_serial);
        parallel_sgemm(&cora_exec::CpuPool::new(4), m, k, n, &a, &b, &mut c_par);
        assert_eq!(c_serial, c_par);
    }

    #[test]
    fn parallel_sgemm_small_and_degenerate() {
        // Below the parallel threshold and with zero dimensions.
        let pool = cora_exec::CpuPool::new(4);
        let a = seq(8 * 3);
        let b = seq(3 * 2);
        let mut c1 = vec![0.0; 8 * 2];
        let mut c2 = vec![0.0; 8 * 2];
        sgemm(8, 3, 2, &a, &b, &mut c1);
        parallel_sgemm(&pool, 8, 3, 2, &a, &b, &mut c2);
        assert_eq!(c1, c2);
        parallel_sgemm(&pool, 0, 3, 2, &[], &b, &mut []);
        parallel_sgemm(&pool, 8, 3, 0, &a, &[], &mut []);
    }

    #[test]
    fn parallel_sgemm_more_threads_than_chunks() {
        // m=64, 24 workers → chunk=3 → only 22 non-empty chunks; the
        // trailing workers must not index past the end of `a`.
        let (m, k, n) = (64, 3, 2);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c1);
        parallel_sgemm(&cora_exec::CpuPool::new(24), m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
